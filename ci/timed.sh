#!/bin/sh
# Run a CI step and append its wall time to the GitHub step summary:
#
#   ci/timed.sh <label> <command...>
#
# Appends "| <label> | <seconds>s | ok/FAIL |" to $GITHUB_STEP_SUMMARY
# (the jobs write the table header first) and propagates the command's
# exit code. Outside Actions the summary append is skipped, so the
# wrapper is a no-op shim around the command.
set -eu
label="$1"
shift
start=$(date +%s)
rc=0
"$@" || rc=$?
end=$(date +%s)
if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
    if [ "$rc" -eq 0 ]; then result=ok; else result=FAIL; fi
    printf '| %s | %ss | %s |\n' "$label" "$((end - start))" "$result" \
        >>"$GITHUB_STEP_SUMMARY"
fi
exit "$rc"
