#!/bin/sh
# Run one experiment bench in quick mode against its committed baseline:
#
#   ci/bench_gate.sh <ID> [pct]
#
# <ID> is the experiment id (E17, E18, E19, E20, E21); [pct] is the allowed
# regression percentage against ci/BENCH_<ID>.baseline.json (default 20).
# The bench writes target/BENCH_<ID>.json (uploaded as a CI artifact)
# and exits non-zero past the threshold. The baseline path is passed
# absolute: cargo runs bench binaries with CWD set to the package
# directory.
set -eu

ID="${1:?usage: ci/bench_gate.sh <ID> [pct]}"
PCT="${2:-20}"

case "$ID" in
E17) BENCH=expt_saturation ;;
E18) BENCH=expt_storm ;;
E19) BENCH=expt_consistent_update ;;
E20) BENCH=expt_consensus ;;
E21) BENCH=expt_shard ;;
*)
    echo "bench_gate: unknown experiment id '$ID'" >&2
    exit 2
    ;;
esac

CI_DIR=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)
BASELINE="$CI_DIR/BENCH_$ID.baseline.json"
if [ ! -f "$BASELINE" ]; then
    echo "bench_gate: missing baseline $BASELINE" >&2
    exit 2
fi

env "BENCH_${ID}_QUICK=1" \
    "BENCH_${ID}_BASELINE=$BASELINE" \
    "BENCH_${ID}_PCT=$PCT" \
    cargo bench -p zen-bench --bench "$BENCH"
