//! # zen — software-defined networking in Rust
//!
//! A self-contained SDN platform: a programmable match-action data plane,
//! an OpenFlow-style control protocol, a network operating system with
//! pluggable applications, classical distributed routing baselines, and a
//! deterministic discrete-event network simulator.
//!
//! This facade crate re-exports the workspace crates under stable paths:
//!
//! * [`wire`] — packet parsing and emission (Ethernet, ARP, IPv4, ICMPv4,
//!   UDP, TCP, LLDP).
//! * [`sim`] — deterministic discrete-event simulation substrate.
//! * [`fib`] — longest-prefix-match forwarding tables.
//! * [`graph`] — network graphs and path algorithms.
//! * [`dataplane`] — the match-action switch (flow tables, groups, meters).
//! * [`proto`] — the binary control protocol between switches and the
//!   controller.
//! * [`cluster`] — distributed control-plane substrate: membership,
//!   per-switch mastership, and the eventually-consistent east-west
//!   event store.
//! * [`routing`] — distributed control-plane baselines (link-state,
//!   distance-vector, learning switches).
//! * [`te`] — traffic-engineering algorithms.
//! * [`telemetry`] — the causal flight recorder and deterministic
//!   JSON-lines telemetry export.
//! * [`core`] — the network operating system: controller, discovery,
//!   network view, and applications.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use zen_cluster as cluster;
pub use zen_core as core;
pub use zen_dataplane as dataplane;
pub use zen_fib as fib;
pub use zen_graph as graph;
pub use zen_proto as proto;
pub use zen_routing as routing;
pub use zen_sim as sim;
pub use zen_te as te;
pub use zen_telemetry as telemetry;
pub use zen_wire as wire;
