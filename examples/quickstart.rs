//! Quickstart: build a four-switch SDN ring, let the controller discover
//! it, and ping across it.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! What happens under the hood:
//! 1. Four switch agents handshake with the controller (HELLO /
//!    FEATURES) over the out-of-band control channel.
//! 2. The controller discovers every link with LLDP PACKET_OUT probes.
//! 3. Hosts announce themselves with gratuitous ARPs.
//! 4. Host 0 pings host 2; the first packet is punted, the reactive
//!    forwarding app computes the shortest path and installs flows, and
//!    the remaining packets never leave the data plane.

use zen::core::apps::ReactiveForwarding;
use zen::core::harness::{build_fabric_with_hosts, default_host_ip, FabricOptions};
use zen::core::Controller;
use zen::sim::{Duration, Host, Instant, LinkParams, Topology, Workload, World};

fn main() {
    let topo = Topology::ring(4, LinkParams::default()).with_host_per_switch();
    let mut world = World::new(42);

    let fabric = build_fabric_with_hosts(
        &mut world,
        &topo,
        vec![Box::new(ReactiveForwarding::new())],
        FabricOptions::default(),
        |i, mac, ip| {
            let host = Host::new(mac, ip).with_gratuitous_arp();
            if i == 0 {
                host.with_workload(Workload::Ping {
                    dst: default_host_ip(2),
                    count: 10,
                    interval: Duration::from_millis(50),
                    start: Instant::from_millis(500),
                })
            } else {
                host
            }
        },
    );

    world.run_until(Instant::from_secs(2));

    let controller = world.node_as::<Controller>(fabric.controller);
    println!("zen quickstart — {} on a 4-switch ring", topo.name);
    println!(
        "  discovered: {} switches, {} directed links, {} hosts",
        controller.view.switches.len(),
        controller.view.links.len(),
        controller.view.hosts.len()
    );
    println!(
        "  control channel: {} msgs received, {} flow-mods sent, {} packet-ins",
        controller.stats.msgs_received, controller.stats.flow_mods, controller.stats.packet_ins
    );

    let h0 = world.node_as::<Host>(fabric.hosts[0]);
    let rtts = &h0.stats.ping_rtts;
    println!("  ping 10.0.0.1 -> 10.0.0.3: {}/10 replies", rtts.count());
    let mut rtts = h0.stats.ping_rtts.clone();
    if let (Some(first), Some(min)) = (rtts.samples().first().copied(), rtts.min()) {
        println!(
            "  first RTT {:.1} us (includes flow setup), steady-state {:.1} us",
            first * 1e6,
            min * 1e6
        );
    }
    let median = rtts.median().unwrap_or(0.0);
    println!("  median RTT {:.1} us", median * 1e6);
    assert_eq!(rtts.count(), 10, "quickstart should complete all pings");
    println!("ok.");
}
