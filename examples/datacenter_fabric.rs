//! A proactively programmed k=4 fat-tree datacenter fabric.
//!
//! ```text
//! cargo run --example datacenter_fabric
//! ```
//!
//! The fabric manager knows the host inventory up front (as a real
//! datacenter SDN does) and pushes ECMP forwarding state before any
//! traffic flows: one SELECT group per destination edge switch, one /32
//! rule per host. All 16 hosts then run a random permutation traffic
//! pattern; the run reports delivery, latency, the spread of traffic
//! across core links, and — the SDN point — that zero data packets
//! visited the controller.

use zen::core::apps::proactive::FABRIC_MAC;
use zen::core::apps::ProactiveFabric;
use zen::core::harness::{build_fabric, build_fabric_with_hosts, default_host_ip, FabricOptions};
use zen::core::Controller;
use zen::sim::{Duration, Host, Instant, LinkParams, Rng, Topology, Workload, World};

fn main() {
    let topo = Topology::fat_tree(4, LinkParams::default());
    let n_hosts = topo.host_count();
    let expected_links = 2 * topo.links.len();
    println!(
        "zen datacenter fabric — {}: {} switches, {} links, {} hosts",
        topo.name,
        topo.switches,
        topo.links.len(),
        n_hosts
    );

    // The inventory the fabric manager works from.
    let inventory = {
        let mut scratch = World::new(1);
        build_fabric(&mut scratch, &topo, vec![], FabricOptions::default()).static_hosts()
    };

    // Random permutation workload: every host sends to a distinct peer.
    let mut perm: Vec<usize> = (0..n_hosts).collect();
    let mut rng = Rng::new(7);
    loop {
        rng.shuffle(&mut perm);
        if perm.iter().enumerate().all(|(i, &p)| i != p) {
            break;
        }
    }

    let mut world = World::new(1);
    let fabric = build_fabric_with_hosts(
        &mut world,
        &topo,
        vec![Box::new(ProactiveFabric::new(
            inventory,
            topo.switches,
            expected_links,
        ))],
        FabricOptions::default(),
        |i, mac, ip| {
            let dst = default_host_ip(perm[i]);
            Host::new(mac, ip)
                .with_static_arp(dst, FABRIC_MAC)
                .with_workload(Workload::Udp {
                    dst,
                    dst_port: 9,
                    size: 1000,
                    count: 500,
                    interval: Duration::from_micros(200), // 40 Mb/s per host
                    start: Instant::from_secs(1),
                })
        },
    );

    world.run_until(Instant::from_secs(3));

    // Delivery and latency.
    let mut delivered = 0u64;
    let mut worst = 0f64;
    for &host in &fabric.hosts {
        let h = world.node_as::<Host>(host);
        delivered += h.stats.udp_rx;
        worst = worst.max(h.stats.udp_latency.max().unwrap_or(0.0));
    }
    println!(
        "  delivered {}/{} datagrams, worst one-way latency {:.0} us",
        delivered,
        500 * n_hosts,
        worst * 1e6
    );

    // ECMP spread: how many inter-switch links carried traffic?
    let loaded = world
        .links()
        .filter(|(_, l)| l.ab.tx_bytes + l.ba.tx_bytes > 100_000)
        .count();
    println!(
        "  links carrying >100 kB: {} of {}",
        loaded,
        world.links().count()
    );

    let controller = world.node_as::<Controller>(fabric.controller);
    println!(
        "  controller: {} flow-mods, {} group-mods pushed; {} packet-ins total",
        controller.stats.flow_mods, controller.stats.group_mods, controller.stats.packet_ins
    );
    assert_eq!(delivered, 500 * n_hosts as u64, "lossless fabric expected");
    println!("ok.");
}
