//! Centralized vs. distributed failure recovery, side by side.
//!
//! ```text
//! cargo run --example failover
//! ```
//!
//! The same square topology (two disjoint paths between the traffic
//! endpoints) is built three times: as an SDN fabric with proactive
//! fast-failover groups, as a network of OSPF-style link-state routers,
//! and as RIP-style distance-vector routers. A continuous probe stream
//! runs while the primary link is cut — first as a *detected* failure
//! (carrier drop: everyone reacts immediately) and then as a *silent*
//! failure (frames blackhole without notification: only protocol
//! liveness — LLDP aging, dead intervals, route timeouts — catches it).
//! Lost probes measure each architecture's black-hole window.

use zen::core::apps::proactive::FABRIC_MAC;
use zen::core::apps::ProactiveFabric;
use zen::core::harness::{build_fabric, build_fabric_with_hosts, default_host_ip, FabricOptions};
use zen::routing::{DistanceVectorRouter, LinkStateRouter};
use zen::sim::{Duration, Host, Instant, LinkParams, NodeId, Topology, Workload, World};
use zen::wire::{EthernetAddress, Ipv4Address};

const PROBES: u64 = 3000;
const PROBE_GAP: Duration = Duration::from_millis(1);
const CUT_AT: Instant = Instant::from_secs(2);

fn topo() -> Topology {
    let mut t = Topology::ring(4, LinkParams::default());
    t.hosts = vec![0, 2];
    t
}

/// Probe workload from host 0 to host 1 (at the opposite corner).
fn probe_workload(dst: Ipv4Address) -> Workload {
    Workload::Udp {
        dst,
        dst_port: 9,
        size: 100,
        count: PROBES,
        interval: PROBE_GAP,
        start: Instant::from_secs(1),
    }
}

fn run_sdn(silent: bool) -> u64 {
    let topo = topo();
    let inventory = {
        let mut scratch = World::new(3);
        build_fabric(&mut scratch, &topo, vec![], FabricOptions::default()).static_hosts()
    };
    let mut world = World::new(3);
    let fabric = build_fabric_with_hosts(
        &mut world,
        &topo,
        vec![Box::new(ProactiveFabric::new(
            inventory,
            topo.switches,
            2 * topo.links.len(),
        ))],
        FabricOptions::default(),
        |i, mac, ip| {
            let host = Host::new(mac, ip).with_static_arp(default_host_ip(1 - i), FABRIC_MAC);
            if i == 0 {
                host.with_workload(probe_workload(default_host_ip(1)))
            } else {
                host
            }
        },
    );
    if silent {
        world.schedule_link_state_silent(fabric.switch_links[0], false, CUT_AT);
    } else {
        world.schedule_link_state(fabric.switch_links[0], false, CUT_AT);
    }
    world.run_until(Instant::from_secs(6));
    let h1 = world.node_as::<Host>(fabric.hosts[1]);
    PROBES - h1.stats.udp_rx
}

enum RouterKind {
    LinkState,
    DistVec,
}

fn run_routers(kind: RouterKind, silent: bool) -> u64 {
    let topo = topo();
    let mut world = World::new(3);
    let routers: Vec<NodeId> = (0..topo.switches)
        .map(|i| -> NodeId {
            match kind {
                RouterKind::LinkState => world.add_node(Box::new(LinkStateRouter::new(i as u64))),
                RouterKind::DistVec => {
                    world.add_node(Box::new(DistanceVectorRouter::new(i as u64)))
                }
            }
        })
        .collect();
    let links: Vec<_> = topo
        .links
        .iter()
        .map(|l| world.connect(routers[l.a], routers[l.b], l.params).0)
        .collect();

    let mut hosts = Vec::new();
    for (i, &sw) in topo.hosts.iter().enumerate() {
        let ip = Ipv4Address::new(10, 0, 0, (i + 1) as u8);
        let mut host =
            Host::new(EthernetAddress::from_id(0x50_0000 + i as u64), ip).with_gratuitous_arp();
        if i == 0 {
            host = host.with_workload(probe_workload(Ipv4Address::new(10, 0, 0, 2)));
        }
        let id = world.add_node(Box::new(host));
        world.connect(id, routers[sw], LinkParams::default());
        hosts.push(id);
    }

    if silent {
        world.schedule_link_state_silent(links[0], false, CUT_AT);
    } else {
        world.schedule_link_state(links[0], false, CUT_AT);
    }
    world.run_until(Instant::from_secs(6));
    let h1 = world.node_as::<Host>(hosts[1]);
    PROBES - h1.stats.udp_rx
}

fn main() {
    println!("zen failover — square topology, primary link cut at t=2s");
    println!("  {} probes at 1 kHz from corner to corner\n", PROBES);

    let report = |name: &str, lost: u64| {
        println!(
            "  {name:<28} lost {lost:>5} probes  (~{} ms black-hole)",
            lost * PROBE_GAP.as_millis()
        );
    };

    println!("detected failure (carrier drop):");
    report("SDN fast-failover groups:", run_sdn(false));
    report(
        "link-state (OSPF-style):",
        run_routers(RouterKind::LinkState, false),
    );
    report(
        "distance-vector (RIP-style):",
        run_routers(RouterKind::DistVec, false),
    );

    println!("\nsilent failure (blackhole, no carrier event):");
    let sdn_lost = run_sdn(true);
    let ls_lost = run_routers(RouterKind::LinkState, true);
    let dv_lost = run_routers(RouterKind::DistVec, true);
    report("SDN (LLDP link aging):", sdn_lost);
    report("link-state (dead interval):", ls_lost);
    report("distance-vector (route timeout):", dv_lost);

    assert!(
        sdn_lost < dv_lost,
        "controller LLDP aging should beat DV route timeouts"
    );
    println!("\nok.");
}
