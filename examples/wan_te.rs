//! B4-style WAN traffic engineering across a 12-site backbone.
//!
//! ```text
//! cargo run --example wan_te
//! ```
//!
//! Each site owns `10.<site>.0.0/16` and hosts one traffic endpoint.
//! A demand matrix is allocated by the TE app's max-min water-filling
//! over k-shortest candidate paths, realized as VLAN-labelled tunnels
//! with weighted ECMP groups. The example runs the same demands with
//! k=1 (shortest path only — "what OSPF would do") and k=3 (TE), and
//! prints the granted rates: the TE run admits measurably more traffic.

use std::collections::BTreeMap;

use zen::core::apps::proactive::FABRIC_MAC;
use zen::core::apps::te::SiteDemand;
use zen::core::apps::TrafficEngineering;
use zen::core::harness::{build_fabric_with_hosts, site_host_ip, FabricOptions};
use zen::core::Controller;
use zen::sim::{Host, Instant, Topology, World};
use zen::wire::Ipv4Cidr;

const LINK_BPS: u64 = 1_000_000_000;

fn run(k: usize, demands: &[SiteDemand]) -> (u64, u64) {
    let topo = {
        let mut t = Topology::b4(LINK_BPS);
        t.hosts = (0..12).collect();
        t
    };
    let expected_links = 2 * topo.links.len();

    let inventory: Vec<zen::core::apps::proactive::StaticHost> = {
        let mut scratch = World::new(5);
        let f = build_fabric_with_hosts(
            &mut scratch,
            &topo,
            vec![],
            FabricOptions::default(),
            |i, mac, _| Host::new(mac, site_host_ip(i, 0)),
        );
        f.static_hosts()
    };
    let prefixes: BTreeMap<u64, Ipv4Cidr> = (0..12u64)
        .map(|s| (s, format!("10.{s}.0.0/16").parse().unwrap()))
        .collect();

    let te = TrafficEngineering::new(
        prefixes,
        inventory,
        demands.to_vec(),
        LINK_BPS,
        k,
        topo.switches,
        expected_links,
    );

    let mut world = World::new(5);
    let fabric = build_fabric_with_hosts(
        &mut world,
        &topo,
        vec![Box::new(te)],
        FabricOptions::default(),
        |i, mac, _| {
            let mut host = Host::new(mac, site_host_ip(i, 0));
            for s in 0..12 {
                if s != i {
                    host = host.with_static_arp(site_host_ip(s, 0), FABRIC_MAC);
                }
            }
            host
        },
    );
    world.run_until(Instant::from_secs(2));

    let controller = world.node_as::<Controller>(fabric.controller);
    let app = controller
        .app(0)
        .as_any()
        .downcast_ref::<TrafficEngineering>()
        .unwrap();
    assert!(app.programmed(), "TE must have programmed tunnels");
    let granted: u64 = app.last_rates.iter().sum();
    let requested: u64 = app.last_demands.iter().map(|d| d.rate_bps).sum();
    (granted, requested)
}

fn main() {
    println!(
        "zen WAN TE — B4-style 12-site backbone, {} Gb/s links",
        LINK_BPS / 1_000_000_000
    );

    // A hot demand set: the three transoceanic pairs each want 2.5 Gb/s
    // (more than any single path), plus regional chatter.
    let mut demands = vec![
        SiteDemand {
            src: 0,
            dst: 9,
            rate_bps: 2_500_000_000,
        },
        SiteDemand {
            src: 1,
            dst: 10,
            rate_bps: 2_500_000_000,
        },
        SiteDemand {
            src: 4,
            dst: 6,
            rate_bps: 2_500_000_000,
        },
    ];
    for (a, b) in [(0, 3), (2, 5), (6, 8), (9, 11)] {
        demands.push(SiteDemand {
            src: a,
            dst: b,
            rate_bps: 400_000_000,
        });
    }

    println!(
        "  demands: {} pairs, {:.1} Gb/s total requested",
        demands.len(),
        demands.iter().map(|d| d.rate_bps).sum::<u64>() as f64 / 1e9
    );

    let (sp_granted, requested) = run(1, &demands);
    let (te_granted, _) = run(3, &demands);

    println!(
        "  shortest-path only (k=1): {:.2} Gb/s granted ({:.0}% of demand)",
        sp_granted as f64 / 1e9,
        100.0 * sp_granted as f64 / requested as f64
    );
    println!(
        "  traffic engineering (k=3): {:.2} Gb/s granted ({:.0}% of demand)",
        te_granted as f64 / 1e9,
        100.0 * te_granted as f64 / requested as f64
    );
    println!("  TE gain: {:.2}x", te_granted as f64 / sp_granted as f64);
    assert!(te_granted > sp_granted, "TE must beat single shortest path");
    println!("ok.");
}
