#!/bin/sh
# The repo's CI gate, runnable locally: exactly what .github/workflows/ci.yml
# runs. Fully offline — the workspace has zero external dependencies.
set -eux

cargo build --release --workspace
cargo test --workspace -q
cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
