#!/bin/sh
# The repo's CI gate, runnable locally: the union of what the parallel
# jobs in .github/workflows/ci.yml run, serialized. Fully offline — the
# workspace has zero external dependencies.
set -eux

cargo build --release --workspace
cargo test --workspace -q
cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings -D deprecated

# Chaos soak: fixed-seed fault-injection run on a fat-tree; ignored in
# the normal test pass because it simulates ~10 s of fabric time twice.
# On failure the seed is printed in the assertion message.
cargo test --release -p zen-core --test chaos -- --ignored --nocapture

# Telemetry determinism gate: the same seeded scenario run twice must
# produce byte-identical JSONL exports (metrics, controller counters,
# monitor state, trace ring), in release mode where any UB or
# iteration-order dependence is most likely to surface.
cargo test --release -p zen-core --test telemetry -- --nocapture

# Cluster failover soak: fixed-seed kill-and-heal of a master replica,
# run twice, asserting byte-identical mastership, tables, and stats;
# ignored in the normal pass because it simulates ~6 s of fabric time
# per run.
cargo test --release -p zen-core --test cluster -- --ignored --nocapture

# Table-pressure soak: fixed-seed churn against 256-entry tables under
# the evict policy, run twice; asserts occupancy never exceeds the
# bound, every eviction reaches the master, zero lost acks, and a
# byte-identical replay.
cargo test --release -p zen-core --test pressure -- --ignored --nocapture

# Saturation smoke: a 200 ms fixed-seed cbench run against the
# controller, run twice; asserts a conservative wall-clock setups/sec
# floor and a byte-identical replay of every deterministic observable.
cargo test --release -p zen-core --test saturation -- --ignored --nocapture

# Defense soak: fixed-seed 10x PACKET_IN flood from one rogue edge port
# against the defended fabric (agent punt meter + controller admission
# + push-back), asserting bounded innocent black-hole time, zero lost
# acks, a starving undefended contrast, and a byte-identical replay.
cargo test --release -p zen-core --test defense -- --ignored --nocapture

# Consistency soak: fixed-seed epoch-update churn on the diamond fabric
# (control jitter, a controller-switch partition, control-plane loss,
# and a link flap), run twice, asserting the planner converges, both
# hosts keep receiving, and the full counter digest replays
# byte-identical.
cargo test --release -p zen-core --test consistency -- --ignored --nocapture

# Consensus soak: ACL intents and a mastership pin ride the replicated
# log while the consensus leader is killed and healed, run twice from
# the same seed, asserting byte-identical end states (election, log
# replication, snapshot catch-up, digest anti-entropy, intent dispatch).
cargo test --release -p zen-core --test consensus -- --ignored --nocapture

# Shard-determinism soak: the Datapath-backed fat-tree fabric run on
# the sharded engine at 1, 2 and 4 shards from one seed, with a
# mid-run admin link flap; asserts the per-event digest, all merged
# counters, the event total, and every host's deliveries are
# byte-identical across shard counts.
cargo test --release -p zen-core --test shard -- --ignored --nocapture

# Perf-regression gates: each runs one experiment bench in quick mode
# against its committed baseline (ci/BENCH_<ID>.baseline.json), writes
# target/BENCH_<ID>.json (uploaded as a CI artifact), and fails past
# the regression threshold.
#   E17: peak closed-loop setups/sec (floor)
#   E18: attack-mode defended innocent setups/sec (floor)
#   E19: two-phase rewrite commit latency (ceiling); also asserts the
#        rewrite loses zero packets while the naive burst does not
#   E20: digest-mode east-west entries at 5 replicas (ceiling); also
#        asserts zero intents lost across a leader kill
#   E21: peak sharded-fabric packets/sec (floor); also asserts merged
#        counters are identical across shard counts
ci/bench_gate.sh E17 20
ci/bench_gate.sh E18 20
ci/bench_gate.sh E19 20
ci/bench_gate.sh E20 20
ci/bench_gate.sh E21 20
