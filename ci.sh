#!/bin/sh
# The repo's CI gate, runnable locally: exactly what .github/workflows/ci.yml
# runs. Fully offline — the workspace has zero external dependencies.
set -eux

cargo build --release --workspace
cargo test --workspace -q
cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings

# Chaos soak: fixed-seed fault-injection run on a fat-tree; ignored in
# the normal test pass because it simulates ~10 s of fabric time twice.
# On failure the seed is printed in the assertion message.
cargo test --release -p zen-core --test chaos -- --ignored --nocapture

# Telemetry determinism gate: the same seeded scenario run twice must
# produce byte-identical JSONL exports (metrics, controller counters,
# monitor state, trace ring), in release mode where any UB or
# iteration-order dependence is most likely to surface.
cargo test --release -p zen-core --test telemetry -- --nocapture

# Cluster failover soak: fixed-seed kill-and-heal of a master replica,
# run twice, asserting byte-identical mastership, tables, and stats;
# ignored in the normal pass because it simulates ~6 s of fabric time
# per run.
cargo test --release -p zen-core --test cluster -- --ignored --nocapture

# Table-pressure soak: fixed-seed churn against 256-entry tables under
# the evict policy, run twice; asserts occupancy never exceeds the
# bound, every eviction reaches the master, zero lost acks, and a
# byte-identical replay.
cargo test --release -p zen-core --test pressure -- --ignored --nocapture
