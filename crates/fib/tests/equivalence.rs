//! Randomized tests: every FIB structure must agree with the linear
//! oracle under arbitrary insert/remove/lookup sequences.
//!
//! Driven by the in-tree deterministic [`Lcg`] generator with fixed
//! seeds, so every run exercises the same reproducible sequences.

use zen_fib::{BinaryTrieFib, Dir24Fib, Fib, Ipv4Address, Ipv4Cidr, LinearFib, RadixTrieFib};
use zen_wire::lcg::Lcg;

#[derive(Debug, Clone)]
enum Op {
    Insert(Ipv4Cidr, u32),
    Remove(Ipv4Cidr),
    Lookup(Ipv4Address),
}

/// Addresses drawn from a small universe so inserts, removes, and
/// lookups actually collide. The few seed bits are spread across the
/// word so different prefix lengths overlap interestingly.
fn addr_for(seed: u32) -> Ipv4Address {
    let addr = seed
        .wrapping_mul(0x0101_0101)
        .rotate_left(seed % 13)
        .wrapping_add(0x0a00_0000);
    Ipv4Address::from_u32(addr)
}

/// A prefix over the seed universe with any length in `[0, 32]`.
fn gen_cidr_full(rng: &mut Lcg) -> Ipv4Cidr {
    let plen = if rng.gen_ratio(1, 33) {
        0
    } else {
        1 + rng.gen_range(32) as u8
    };
    Ipv4Cidr::new(addr_for(rng.gen_range(256) as u32), plen).unwrap()
}

/// DIR-24-8 updates touch one cell per covered /24, so very short
/// prefixes (millions of cells) are excluded from its randomized suite;
/// they are covered by unit tests instead.
fn gen_cidr_dir(rng: &mut Lcg) -> Ipv4Cidr {
    let plen = 12 + rng.gen_range(21) as u8;
    Ipv4Cidr::new(addr_for(rng.gen_range(256) as u32), plen).unwrap()
}

fn gen_op(rng: &mut Lcg, cidr: impl Fn(&mut Lcg) -> Ipv4Cidr) -> Op {
    // Weights 3:1:4 over insert/remove/lookup.
    match rng.gen_index(8) {
        0..=2 => Op::Insert(cidr(rng), rng.gen_range(1000) as u32),
        3 => Op::Remove(cidr(rng)),
        _ => Op::Lookup(addr_for(rng.gen_range(256) as u32)),
    }
}

fn check_sequence(ops: Vec<Op>, fibs: &mut [&mut dyn Fib], oracle: &mut LinearFib) {
    for (i, op) in ops.into_iter().enumerate() {
        match op {
            Op::Insert(prefix, nh) => {
                oracle.insert(prefix, nh);
                for f in fibs.iter_mut() {
                    f.insert(prefix, nh);
                }
            }
            Op::Remove(prefix) => {
                let expect = oracle.remove(prefix);
                for (j, f) in fibs.iter_mut().enumerate() {
                    assert_eq!(f.remove(prefix), expect, "fib {j} remove at op {i}");
                }
            }
            Op::Lookup(addr) => {
                let expect = oracle.lookup(addr);
                for (j, f) in fibs.iter_mut().enumerate() {
                    assert_eq!(f.lookup(addr), expect, "fib {j} lookup {addr} at op {i}");
                }
            }
        }
        for (j, f) in fibs.iter_mut().enumerate() {
            assert_eq!(f.len(), oracle.len(), "fib {j} len at op {i}");
        }
    }
    // Sweep the whole key universe at the end.
    for seed in 0u32..=0xff {
        let addr = addr_for(seed);
        let expect = oracle.lookup(addr);
        for (j, f) in fibs.iter_mut().enumerate() {
            assert_eq!(f.lookup(addr), expect, "fib {j} sweep {addr}");
        }
    }
}

#[test]
fn tries_agree_with_oracle() {
    let mut rng = Lcg::new(0xF1B01);
    for _ in 0..48 {
        let ops: Vec<Op> = (0..1 + rng.gen_index(119))
            .map(|_| gen_op(&mut rng, gen_cidr_full))
            .collect();
        let mut oracle = LinearFib::new();
        let mut trie = BinaryTrieFib::new();
        let mut radix = RadixTrieFib::new();
        check_sequence(ops, &mut [&mut trie, &mut radix], &mut oracle);
    }
}

#[test]
fn dir24_agrees_with_oracle() {
    // DIR-24-8 allocates ~80 MB per instance and its update cost grows
    // with covered range; keep case counts moderate.
    let mut rng = Lcg::new(0xF1B02);
    for _ in 0..12 {
        let ops: Vec<Op> = (0..1 + rng.gen_index(59))
            .map(|_| gen_op(&mut rng, gen_cidr_dir))
            .collect();
        let mut oracle = LinearFib::new();
        let mut trie = BinaryTrieFib::new();
        let mut dir = Dir24Fib::new();
        check_sequence(ops, &mut [&mut trie, &mut dir], &mut oracle);
    }
}

#[test]
fn structures_agree_on_synthetic_table() {
    let table = zen_fib::SyntheticTable::generate(3000, 99);
    let mut oracle = LinearFib::new();
    let mut trie = BinaryTrieFib::new();
    let mut radix = RadixTrieFib::new();
    let mut dir = Dir24Fib::new();
    table.load(&mut oracle);
    table.load(&mut trie);
    table.load(&mut radix);
    table.load(&mut dir);
    for key in table.lookup_keys(5000, 5) {
        let expect = oracle.lookup(key);
        assert_eq!(trie.lookup(key), expect, "trie {key}");
        assert_eq!(radix.lookup(key), expect, "radix {key}");
        assert_eq!(dir.lookup(key), expect, "dir {key}");
    }
    // Remove half the table and re-check.
    for (i, &(prefix, _)) in table.entries.iter().enumerate() {
        if i % 2 == 0 {
            assert!(oracle.remove(prefix));
            assert!(trie.remove(prefix));
            assert!(radix.remove(prefix));
            assert!(dir.remove(prefix));
        }
    }
    for key in table.lookup_keys(5000, 6) {
        let expect = oracle.lookup(key);
        assert_eq!(trie.lookup(key), expect);
        assert_eq!(radix.lookup(key), expect);
        assert_eq!(dir.lookup(key), expect);
    }
}
