//! Property tests: every FIB structure must agree with the linear oracle
//! under arbitrary insert/remove/lookup sequences.

use proptest::prelude::*;

use zen_fib::{BinaryTrieFib, Dir24Fib, Fib, Ipv4Address, Ipv4Cidr, LinearFib, RadixTrieFib};

#[derive(Debug, Clone)]
enum Op {
    Insert(Ipv4Cidr, u32),
    Remove(Ipv4Cidr),
    Lookup(Ipv4Address),
}

/// Prefixes drawn from a small universe so inserts, removes, and lookups
/// actually collide.
fn arb_cidr_full() -> impl Strategy<Value = Ipv4Cidr> {
    arb_cidr(prop_oneof![Just(0u8), 1u8..=32].boxed())
}

/// DIR-24-8 updates touch one cell per covered /24, so very short
/// prefixes (millions of cells) are excluded from its randomized suite;
/// they are covered by unit tests instead.
fn arb_cidr_dir() -> impl Strategy<Value = Ipv4Cidr> {
    arb_cidr((12u8..=32).boxed())
}

fn arb_cidr(plen: BoxedStrategy<u8>) -> impl Strategy<Value = Ipv4Cidr> {
    (0u32..=0xff, plen).prop_map(|(seed, plen)| {
        // Spread the few seed bits across the word so different prefix
        // lengths overlap interestingly.
        let addr = seed
            .wrapping_mul(0x0101_0101)
            .rotate_left(seed % 13)
            .wrapping_add(0x0a00_0000);
        Ipv4Cidr::new(Ipv4Address::from_u32(addr), plen).unwrap()
    })
}

fn arb_addr() -> impl Strategy<Value = Ipv4Address> {
    (0u32..=0xff).prop_map(|seed| {
        let addr = seed
            .wrapping_mul(0x0101_0101)
            .rotate_left(seed % 13)
            .wrapping_add(0x0a00_0000);
        Ipv4Address::from_u32(addr)
    })
}

fn arb_op(cidr: BoxedStrategy<Ipv4Cidr>) -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (cidr.clone(), 0u32..1000).prop_map(|(c, nh)| Op::Insert(c, nh)),
        1 => cidr.prop_map(Op::Remove),
        4 => arb_addr().prop_map(Op::Lookup),
    ]
}

fn check_sequence(ops: Vec<Op>, fibs: &mut [&mut dyn Fib], oracle: &mut LinearFib) {
    for (i, op) in ops.into_iter().enumerate() {
        match op {
            Op::Insert(prefix, nh) => {
                oracle.insert(prefix, nh);
                for f in fibs.iter_mut() {
                    f.insert(prefix, nh);
                }
            }
            Op::Remove(prefix) => {
                let expect = oracle.remove(prefix);
                for (j, f) in fibs.iter_mut().enumerate() {
                    assert_eq!(f.remove(prefix), expect, "fib {j} remove at op {i}");
                }
            }
            Op::Lookup(addr) => {
                let expect = oracle.lookup(addr);
                for (j, f) in fibs.iter_mut().enumerate() {
                    assert_eq!(f.lookup(addr), expect, "fib {j} lookup {addr} at op {i}");
                }
            }
        }
        for (j, f) in fibs.iter_mut().enumerate() {
            assert_eq!(f.len(), oracle.len(), "fib {j} len at op {i}");
        }
    }
    // Sweep the whole key universe at the end.
    for seed in 0u32..=0xff {
        let addr = Ipv4Address::from_u32(
            seed.wrapping_mul(0x0101_0101)
                .rotate_left(seed % 13)
                .wrapping_add(0x0a00_0000),
        );
        let expect = oracle.lookup(addr);
        for (j, f) in fibs.iter_mut().enumerate() {
            assert_eq!(f.lookup(addr), expect, "fib {j} sweep {addr}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn tries_agree_with_oracle(
        ops in proptest::collection::vec(arb_op(arb_cidr_full().boxed()), 1..120)
    ) {
        let mut oracle = LinearFib::new();
        let mut trie = BinaryTrieFib::new();
        let mut radix = RadixTrieFib::new();
        check_sequence(ops, &mut [&mut trie, &mut radix], &mut oracle);
    }
}

proptest! {
    // DIR-24-8 allocates ~80 MB per instance and its update cost grows
    // with covered range; keep case counts moderate.
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn dir24_agrees_with_oracle(
        ops in proptest::collection::vec(arb_op(arb_cidr_dir().boxed()), 1..60)
    ) {
        let mut oracle = LinearFib::new();
        let mut trie = BinaryTrieFib::new();
        let mut dir = Dir24Fib::new();
        check_sequence(ops, &mut [&mut trie, &mut dir], &mut oracle);
    }
}

#[test]
fn structures_agree_on_synthetic_table() {
    let table = zen_fib::SyntheticTable::generate(3000, 99);
    let mut oracle = LinearFib::new();
    let mut trie = BinaryTrieFib::new();
    let mut radix = RadixTrieFib::new();
    let mut dir = Dir24Fib::new();
    table.load(&mut oracle);
    table.load(&mut trie);
    table.load(&mut radix);
    table.load(&mut dir);
    for key in table.lookup_keys(5000, 5) {
        let expect = oracle.lookup(key);
        assert_eq!(trie.lookup(key), expect, "trie {key}");
        assert_eq!(radix.lookup(key), expect, "radix {key}");
        assert_eq!(dir.lookup(key), expect, "dir {key}");
    }
    // Remove half the table and re-check.
    for (i, &(prefix, _)) in table.entries.iter().enumerate() {
        if i % 2 == 0 {
            assert!(oracle.remove(prefix));
            assert!(trie.remove(prefix));
            assert!(radix.remove(prefix));
            assert!(dir.remove(prefix));
        }
    }
    for key in table.lookup_keys(5000, 6) {
        let expect = oracle.lookup(key);
        assert_eq!(trie.lookup(key), expect);
        assert_eq!(radix.lookup(key), expect);
        assert_eq!(dir.lookup(key), expect);
    }
}
