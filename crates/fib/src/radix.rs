//! A path-compressed (Patricia/radix) trie.
//!
//! Chains of single-child nodes in the binary trie are collapsed into one
//! node holding the whole bit-string, so a lookup visits at most one node
//! per *branching point* instead of one per bit. This is the structure
//! production routers used for decades (BSD radix tree) and the starting
//! point of the FIB-compression literature.

use crate::{Fib, NextHop};
use zen_wire::{Ipv4Address, Ipv4Cidr};

#[derive(Debug, Clone)]
struct Node {
    /// The full prefix from the root, left-aligned.
    prefix: u32,
    /// Number of significant bits of `prefix` (absolute, not relative).
    plen: u8,
    entry: Option<NextHop>,
    children: [Option<Box<Node>>; 2],
}

impl Node {
    fn new(prefix: u32, plen: u8) -> Node {
        Node {
            prefix: mask(prefix, plen),
            plen,
            entry: None,
            children: [None, None],
        }
    }
}

/// Keep only the first `plen` bits of `v`.
#[inline]
fn mask(v: u32, plen: u8) -> u32 {
    if plen == 0 {
        0
    } else {
        v & (u32::MAX << (32 - plen as u32))
    }
}

/// Bit `i` (0 = most significant).
#[inline]
fn bit(v: u32, i: u8) -> usize {
    ((v >> (31 - i)) & 1) as usize
}

/// Length of the common prefix of `a` and `b`, capped at `limit`.
#[inline]
fn common_prefix_len(a: u32, b: u32, limit: u8) -> u8 {
    let diff = a ^ b;
    let cpl = diff.leading_zeros() as u8;
    cpl.min(limit)
}

/// A path-compressed radix trie FIB.
#[derive(Debug, Clone)]
pub struct RadixTrieFib {
    root: Node,
    len: usize,
}

impl Default for RadixTrieFib {
    fn default() -> RadixTrieFib {
        RadixTrieFib::new()
    }
}

impl RadixTrieFib {
    /// An empty trie.
    pub fn new() -> RadixTrieFib {
        RadixTrieFib {
            root: Node::new(0, 0),
            len: 0,
        }
    }

    /// Number of trie nodes (memory proxy for benchmarks).
    pub fn node_count(&self) -> usize {
        fn count(node: &Node) -> usize {
            1 + node
                .children
                .iter()
                .flatten()
                .map(|c| count(c))
                .sum::<usize>()
        }
        count(&self.root)
    }
}

impl Fib for RadixTrieFib {
    fn insert(&mut self, prefix: Ipv4Cidr, next_hop: NextHop) {
        let net = prefix.network().to_u32();
        let plen = prefix.prefix_len();
        let mut node = &mut self.root;
        loop {
            debug_assert!(node.plen <= plen && mask(net, node.plen) == node.prefix);
            if node.plen == plen {
                if node.entry.is_none() {
                    self.len += 1;
                }
                node.entry = Some(next_hop);
                return;
            }
            let b = bit(net, node.plen);
            match &node.children[b] {
                None => {
                    let mut leaf = Node::new(net, plen);
                    leaf.entry = Some(next_hop);
                    node.children[b] = Some(Box::new(leaf));
                    self.len += 1;
                    return;
                }
                Some(child) => {
                    let cpl = common_prefix_len(net, child.prefix, child.plen.min(plen));
                    if cpl == child.plen {
                        // Fully inside the child's edge: descend.
                        node = node.children[b].as_mut().unwrap();
                    } else if cpl == plen {
                        // The new prefix ends inside the child's edge:
                        // insert a node above the child.
                        let old = node.children[b].take().unwrap();
                        let mut mid = Node::new(net, plen);
                        mid.entry = Some(next_hop);
                        let ob = bit(old.prefix, plen);
                        mid.children[ob] = Some(old);
                        node.children[b] = Some(Box::new(mid));
                        self.len += 1;
                        return;
                    } else {
                        // Diverge inside the edge: split with a bare
                        // internal node at the divergence point.
                        let old = node.children[b].take().unwrap();
                        let mut split = Node::new(net, cpl);
                        let ob = bit(old.prefix, cpl);
                        split.children[ob] = Some(old);
                        let mut leaf = Node::new(net, plen);
                        leaf.entry = Some(next_hop);
                        split.children[1 - ob] = Some(Box::new(leaf));
                        node.children[b] = Some(Box::new(split));
                        self.len += 1;
                        return;
                    }
                }
            }
        }
    }

    fn remove(&mut self, prefix: Ipv4Cidr) -> bool {
        let net = prefix.network().to_u32();
        let plen = prefix.prefix_len();

        fn walk(node: &mut Node, net: u32, plen: u8) -> Option<bool> {
            if node.plen == plen {
                if node.entry.take().is_some() {
                    return Some(true);
                }
                return Some(false);
            }
            let b = bit(net, node.plen);
            let child = node.children[b].as_mut()?;
            if child.plen > plen || mask(net, child.plen) != child.prefix {
                return None;
            }
            let removed = walk(child, net, plen)?;
            if removed {
                // Compact: drop childless empty nodes; splice out
                // single-child empty internals.
                let c = node.children[b].as_mut().unwrap();
                if c.entry.is_none() {
                    let kids = c.children.iter().flatten().count();
                    if kids == 0 {
                        node.children[b] = None;
                    } else if kids == 1 {
                        let mut boxed = node.children[b].take().unwrap();
                        let only = boxed.children.iter_mut().find_map(Option::take).unwrap();
                        node.children[b] = Some(only);
                    }
                }
            }
            Some(removed)
        }

        if plen == 0 {
            if self.root.entry.take().is_some() {
                self.len -= 1;
                return true;
            }
            return false;
        }
        match walk(&mut self.root, net, plen) {
            Some(true) => {
                self.len -= 1;
                true
            }
            _ => false,
        }
    }

    fn lookup(&self, addr: Ipv4Address) -> Option<NextHop> {
        let a = addr.to_u32();
        let mut best = self.root.entry;
        let mut node = &self.root;
        loop {
            let b = bit(a, node.plen);
            match &node.children[b] {
                Some(child) if mask(a, child.plen) == child.prefix => {
                    if let Some(nh) = child.entry {
                        best = Some(nh);
                    }
                    if child.plen == 32 {
                        return best;
                    }
                    node = child;
                }
                _ => return best,
            }
        }
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cidr(s: &str) -> Ipv4Cidr {
        s.parse().unwrap()
    }

    fn addr(s: &str) -> Ipv4Address {
        s.parse().unwrap()
    }

    #[test]
    fn longest_match() {
        let mut fib = RadixTrieFib::new();
        fib.insert(cidr("10.0.0.0/8"), 1);
        fib.insert(cidr("10.1.0.0/16"), 2);
        fib.insert(cidr("10.1.2.0/24"), 3);
        assert_eq!(fib.lookup(addr("10.1.2.3")), Some(3));
        assert_eq!(fib.lookup(addr("10.1.3.3")), Some(2));
        assert_eq!(fib.lookup(addr("10.2.2.3")), Some(1));
        assert_eq!(fib.lookup(addr("9.0.0.1")), None);
    }

    #[test]
    fn split_on_divergence() {
        let mut fib = RadixTrieFib::new();
        // 10.0.0.0/24 and 10.0.1.0/24 share 23 bits then diverge.
        fib.insert(cidr("10.0.0.0/24"), 1);
        fib.insert(cidr("10.0.1.0/24"), 2);
        assert_eq!(fib.lookup(addr("10.0.0.5")), Some(1));
        assert_eq!(fib.lookup(addr("10.0.1.5")), Some(2));
        assert_eq!(fib.lookup(addr("10.0.2.5")), None);
        // Root + split node at /23 + two leaves.
        assert_eq!(fib.node_count(), 4);
    }

    #[test]
    fn insert_above_existing() {
        let mut fib = RadixTrieFib::new();
        fib.insert(cidr("10.0.1.0/24"), 2);
        fib.insert(cidr("10.0.0.0/16"), 1); // ends inside the /24's edge
        assert_eq!(fib.lookup(addr("10.0.1.5")), Some(2));
        assert_eq!(fib.lookup(addr("10.0.9.5")), Some(1));
    }

    #[test]
    fn compression_keeps_node_count_low() {
        let mut fib = RadixTrieFib::new();
        // A single /32 should take 2 nodes (root + leaf), not 33.
        fib.insert(cidr("203.0.113.7/32"), 9);
        assert_eq!(fib.node_count(), 2);
        assert_eq!(fib.lookup(addr("203.0.113.7")), Some(9));
        assert_eq!(fib.lookup(addr("203.0.113.6")), None);
    }

    #[test]
    fn default_route() {
        let mut fib = RadixTrieFib::new();
        fib.insert(cidr("0.0.0.0/0"), 7);
        assert_eq!(fib.lookup(addr("8.8.8.8")), Some(7));
        assert!(fib.remove(cidr("0.0.0.0/0")));
        assert_eq!(fib.lookup(addr("8.8.8.8")), None);
    }

    #[test]
    fn remove_restores_cover_and_compacts() {
        let mut fib = RadixTrieFib::new();
        fib.insert(cidr("10.0.0.0/8"), 1);
        fib.insert(cidr("10.0.0.0/24"), 2);
        fib.insert(cidr("10.0.1.0/24"), 3);
        assert!(fib.remove(cidr("10.0.0.0/24")));
        assert_eq!(fib.lookup(addr("10.0.0.1")), Some(1));
        assert_eq!(fib.lookup(addr("10.0.1.1")), Some(3));
        assert!(fib.remove(cidr("10.0.1.0/24")));
        assert_eq!(fib.lookup(addr("10.0.1.1")), Some(1));
        // Only root + the /8 leaf remain after compaction.
        assert_eq!(fib.node_count(), 2);
        assert_eq!(fib.len(), 1);
    }

    #[test]
    fn remove_missing_is_false() {
        let mut fib = RadixTrieFib::new();
        fib.insert(cidr("10.0.0.0/8"), 1);
        assert!(!fib.remove(cidr("10.0.0.0/16")));
        assert!(!fib.remove(cidr("11.0.0.0/8")));
        assert!(!fib.remove(cidr("0.0.0.0/0")));
        assert_eq!(fib.len(), 1);
    }

    #[test]
    fn dense_sibling_host_routes() {
        let mut fib = RadixTrieFib::new();
        for i in 0..=255u32 {
            fib.insert(
                Ipv4Cidr::new(Ipv4Address::from_u32(0x0a000000 | i), 32).unwrap(),
                i,
            );
        }
        assert_eq!(fib.len(), 256);
        for i in 0..=255u32 {
            assert_eq!(
                fib.lookup(Ipv4Address::from_u32(0x0a000000 | i)),
                Some(i),
                "addr 10.0.0.{i}"
            );
        }
    }
}
