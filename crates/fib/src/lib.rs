//! # zen-fib — longest-prefix-match forwarding tables
//!
//! The forwarding primitive of the classical (pre-SDN) architecture, and
//! the controller's RIB representation: IPv4 longest-prefix match with
//! incremental updates.
//!
//! Four interchangeable structures implement the [`Fib`] trait, spanning
//! the lookup/update/memory trade-off space that the FIB-compression
//! literature studies:
//!
//! * [`LinearFib`] — a sorted scan; the correctness oracle.
//! * [`trie::BinaryTrieFib`] — one node per prefix bit; fast updates.
//! * [`radix::RadixTrieFib`] — path-compressed (Patricia); fewer nodes,
//!   fewer cache misses.
//! * [`dir24::Dir24Fib`] — DIR-24-8 direct indexing; one or two memory
//!   probes per lookup, at the cost of expensive updates and a large
//!   table.
//!
//! [`synth::SyntheticTable`] generates prefix tables with a realistic
//! prefix-length mix for benchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dir24;
pub mod radix;
pub mod synth;
pub mod trie;

pub use dir24::Dir24Fib;
pub use radix::RadixTrieFib;
pub use synth::SyntheticTable;
pub use trie::BinaryTrieFib;
pub use zen_wire::{Ipv4Address, Ipv4Cidr};

/// A next-hop identifier (an adjacency or port index).
pub type NextHop = u32;

/// A longest-prefix-match forwarding table.
pub trait Fib {
    /// Insert or replace the entry for `prefix`.
    fn insert(&mut self, prefix: Ipv4Cidr, next_hop: NextHop);

    /// Remove the entry for `prefix`. Returns whether it existed.
    fn remove(&mut self, prefix: Ipv4Cidr) -> bool;

    /// The next hop of the longest prefix covering `addr`, if any.
    fn lookup(&self, addr: Ipv4Address) -> Option<NextHop>;

    /// Number of installed prefixes.
    fn len(&self) -> usize;

    /// Whether the table is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The baseline: prefixes kept sorted by descending length and scanned
/// linearly. O(n) lookup, trivially correct — the oracle the fancy
/// structures are tested against.
#[derive(Debug, Clone, Default)]
pub struct LinearFib {
    /// (prefix, next_hop), sorted by descending prefix length then
    /// network for determinism.
    entries: Vec<(Ipv4Cidr, NextHop)>,
}

impl LinearFib {
    /// An empty table.
    pub fn new() -> LinearFib {
        LinearFib::default()
    }

    fn position(&self, prefix: &Ipv4Cidr) -> Result<usize, usize> {
        let key = (core::cmp::Reverse(prefix.prefix_len()), prefix.network());
        self.entries.binary_search_by_key(&key, |(p, _)| {
            (core::cmp::Reverse(p.prefix_len()), p.network())
        })
    }
}

impl Fib for LinearFib {
    fn insert(&mut self, prefix: Ipv4Cidr, next_hop: NextHop) {
        let canon = Ipv4Cidr::new(prefix.network(), prefix.prefix_len()).unwrap();
        match self.position(&canon) {
            Ok(i) => self.entries[i].1 = next_hop,
            Err(i) => self.entries.insert(i, (canon, next_hop)),
        }
    }

    fn remove(&mut self, prefix: Ipv4Cidr) -> bool {
        let canon = Ipv4Cidr::new(prefix.network(), prefix.prefix_len()).unwrap();
        match self.position(&canon) {
            Ok(i) => {
                self.entries.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    fn lookup(&self, addr: Ipv4Address) -> Option<NextHop> {
        // Entries are sorted longest-first, so the first hit wins.
        self.entries
            .iter()
            .find(|(p, _)| p.contains(addr))
            .map(|&(_, nh)| nh)
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cidr(s: &str) -> Ipv4Cidr {
        s.parse().unwrap()
    }

    fn addr(s: &str) -> Ipv4Address {
        s.parse().unwrap()
    }

    #[test]
    fn linear_longest_match_wins() {
        let mut fib = LinearFib::new();
        fib.insert(cidr("10.0.0.0/8"), 1);
        fib.insert(cidr("10.1.0.0/16"), 2);
        fib.insert(cidr("10.1.2.0/24"), 3);
        assert_eq!(fib.lookup(addr("10.1.2.3")), Some(3));
        assert_eq!(fib.lookup(addr("10.1.9.1")), Some(2));
        assert_eq!(fib.lookup(addr("10.9.9.9")), Some(1));
        assert_eq!(fib.lookup(addr("11.0.0.1")), None);
    }

    #[test]
    fn linear_insert_replaces() {
        let mut fib = LinearFib::new();
        fib.insert(cidr("10.0.0.0/8"), 1);
        fib.insert(cidr("10.0.0.0/8"), 9);
        assert_eq!(fib.len(), 1);
        assert_eq!(fib.lookup(addr("10.0.0.1")), Some(9));
    }

    #[test]
    fn linear_remove() {
        let mut fib = LinearFib::new();
        fib.insert(cidr("10.0.0.0/8"), 1);
        fib.insert(cidr("10.1.0.0/16"), 2);
        assert!(fib.remove(cidr("10.1.0.0/16")));
        assert!(!fib.remove(cidr("10.1.0.0/16")));
        assert_eq!(fib.lookup(addr("10.1.0.1")), Some(1));
    }

    #[test]
    fn linear_default_route() {
        let mut fib = LinearFib::new();
        fib.insert(cidr("0.0.0.0/0"), 7);
        assert_eq!(fib.lookup(addr("1.2.3.4")), Some(7));
        fib.insert(cidr("1.0.0.0/8"), 8);
        assert_eq!(fib.lookup(addr("1.2.3.4")), Some(8));
        assert_eq!(fib.lookup(addr("2.2.3.4")), Some(7));
    }

    #[test]
    fn linear_host_route() {
        let mut fib = LinearFib::new();
        fib.insert(cidr("10.0.0.1/32"), 1);
        assert_eq!(fib.lookup(addr("10.0.0.1")), Some(1));
        assert_eq!(fib.lookup(addr("10.0.0.2")), None);
    }

    #[test]
    fn non_canonical_prefix_is_canonicalized() {
        let mut fib = LinearFib::new();
        fib.insert(cidr("10.1.2.3/16"), 5);
        assert_eq!(fib.lookup(addr("10.1.9.9")), Some(5));
        assert!(fib.remove(cidr("10.1.0.0/16")));
    }
}
