//! Synthetic routing tables with a realistic prefix-length mix.
//!
//! Real hardware traces (RouteViews dumps) are not available offline, so
//! benchmarks draw from a generator calibrated to the well-known shape of
//! the global IPv4 table: /24 dominates (~55–60%), /22–/23 around 15%,
//! /16 and neighbours most of the rest, with thin tails of short prefixes
//! and host routes.

use std::collections::BTreeSet;

use zen_wire::{Ipv4Address, Ipv4Cidr};

use crate::{Fib, NextHop};

/// Cumulative prefix-length distribution: (length, per-mille cumulative).
/// Approximates the 2013-era global table shape.
const LENGTH_CDF: &[(u8, u32)] = &[
    (8, 4),
    (12, 10),
    (14, 20),
    (15, 30),
    (16, 130),
    (17, 160),
    (18, 200),
    (19, 260),
    (20, 330),
    (21, 400),
    (22, 490),
    (23, 560),
    (24, 985),
    (28, 990),
    (30, 994),
    (32, 1000),
];

/// A deterministic SplitMix64 stream, private to the generator so the
/// crate stays dependency-free.
#[derive(Debug, Clone)]
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next() % bound
        }
    }
}

/// A generated table plus helpers to load it and to draw lookup keys.
#[derive(Debug, Clone)]
pub struct SyntheticTable {
    /// Distinct `(prefix, next_hop)` entries.
    pub entries: Vec<(Ipv4Cidr, NextHop)>,
}

impl SyntheticTable {
    /// Generate `n` distinct prefixes using `seed`. Next hops cycle
    /// through a small set, as in a router with a handful of adjacencies.
    pub fn generate(n: usize, seed: u64) -> SyntheticTable {
        let mut rng = SplitMix(seed);
        let mut seen = BTreeSet::new();
        let mut entries = Vec::with_capacity(n);
        while entries.len() < n {
            let roll = rng.below(1000) as u32;
            let plen = LENGTH_CDF
                .iter()
                .find(|&&(_, cum)| roll < cum)
                .map(|&(l, _)| l)
                .unwrap_or(24);
            // Bias networks into the unicast space (avoid class D/E).
            let raw = (rng.next() as u32) & 0x00ff_ffff | ((rng.below(224) as u32) << 24);
            let cidr = Ipv4Cidr::new(Ipv4Address::from_u32(raw), plen).unwrap();
            let net = (cidr.network(), plen);
            if seen.insert(net) {
                let nh = (entries.len() % 64) as NextHop;
                entries.push((Ipv4Cidr::new(net.0, plen).unwrap(), nh));
            }
        }
        SyntheticTable { entries }
    }

    /// Load every entry into `fib`.
    pub fn load<F: Fib>(&self, fib: &mut F) {
        for &(prefix, nh) in &self.entries {
            fib.insert(prefix, nh);
        }
    }

    /// Draw `m` lookup addresses: ~90% uniformly inside random table
    /// prefixes (hits), ~10% uniformly random (mostly misses).
    pub fn lookup_keys(&self, m: usize, seed: u64) -> Vec<Ipv4Address> {
        let mut rng = SplitMix(seed ^ 0xabcd_ef01_2345_6789);
        let mut keys = Vec::with_capacity(m);
        for _ in 0..m {
            if !self.entries.is_empty() && rng.below(10) != 0 {
                let (prefix, _) = self.entries[rng.below(self.entries.len() as u64) as usize];
                let host_bits = 32 - prefix.prefix_len() as u32;
                let offset = if host_bits == 0 {
                    0
                } else {
                    (rng.next() as u32) & ((1u64 << host_bits) as u32).wrapping_sub(1)
                };
                keys.push(Ipv4Address::from_u32(prefix.network().to_u32() | offset));
            } else {
                keys.push(Ipv4Address::from_u32(rng.next() as u32));
            }
        }
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinearFib;

    #[test]
    fn generates_requested_count_distinct() {
        let t = SyntheticTable::generate(2000, 42);
        assert_eq!(t.entries.len(), 2000);
        let set: BTreeSet<_> = t
            .entries
            .iter()
            .map(|(p, _)| (p.network(), p.prefix_len()))
            .collect();
        assert_eq!(set.len(), 2000);
    }

    #[test]
    fn deterministic() {
        let a = SyntheticTable::generate(500, 7);
        let b = SyntheticTable::generate(500, 7);
        assert_eq!(a.entries, b.entries);
        let c = SyntheticTable::generate(500, 8);
        assert_ne!(a.entries, c.entries);
    }

    #[test]
    fn length_mix_is_realistic() {
        let t = SyntheticTable::generate(10_000, 1);
        let p24 = t
            .entries
            .iter()
            .filter(|(p, _)| p.prefix_len() == 24)
            .count();
        let frac = p24 as f64 / t.entries.len() as f64;
        assert!((0.35..0.55).contains(&frac), "p24 fraction {frac}");
        assert!(t.entries.iter().all(|(p, _)| p.prefix_len() <= 32));
    }

    #[test]
    fn lookup_keys_mostly_hit() {
        let t = SyntheticTable::generate(5000, 3);
        let mut fib = LinearFib::new();
        t.load(&mut fib);
        let keys = t.lookup_keys(1000, 3);
        let hits = keys.iter().filter(|&&k| fib.lookup(k).is_some()).count();
        assert!(hits > 800, "only {hits}/1000 hits");
    }
}
