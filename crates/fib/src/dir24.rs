//! DIR-24-8: full direct indexing on the first 24 bits.
//!
//! The classic line-rate software/ASIC lookup scheme (Gupta, Lin &
//! McKeown, INFOCOM'98): a 2²⁴-entry table resolves any prefix of length
//! ≤ 24 in one probe; longer prefixes chain to per-/24 blocks of 256
//! slots, for a worst case of two probes. The price is memory (~80 MB
//! here) and update cost proportional to the address range a prefix
//! covers — the opposite end of the trade-off space from the tries.

use std::collections::BTreeMap;

use crate::{Fib, NextHop};
use zen_wire::{Ipv4Address, Ipv4Cidr};

const SUB_FLAG: u32 = 0x8000_0000;
const EMPTY: u32 = 0;
/// Length codes: 0 = empty, otherwise `prefix_len + 1`.
const LEN_EMPTY: u8 = 0;

/// A DIR-24-8 direct-index FIB. Next-hop values must fit in 31 bits
/// (minus the empty sentinel), i.e. `< 0x7fff_fffe`.
pub struct Dir24Fib {
    /// Per-/24 cell: `EMPTY`, `nh + 1`, or `SUB_FLAG | block_index`.
    tbl24: Vec<u32>,
    /// Length code of the prefix that wrote each /24 cell.
    tbl24_len: Vec<u8>,
    /// Second-level blocks, 256 slots each, same value encoding
    /// (never `SUB_FLAG`).
    tbl8: Vec<u32>,
    tbl8_len: Vec<u8>,
    /// Authoritative copy, used for update repair and `len`.
    master: BTreeMap<(u8, u32), NextHop>,
}

impl Default for Dir24Fib {
    fn default() -> Dir24Fib {
        Dir24Fib::new()
    }
}

#[inline]
fn net_mask(net: u32, plen: u8) -> u32 {
    if plen == 0 {
        0
    } else {
        net & (u32::MAX << (32 - plen as u32))
    }
}

impl Dir24Fib {
    /// An empty table. Allocates the 2²⁴-entry level-one arrays (~80 MB).
    pub fn new() -> Dir24Fib {
        Dir24Fib {
            tbl24: vec![EMPTY; 1 << 24],
            tbl24_len: vec![LEN_EMPTY; 1 << 24],
            tbl8: Vec::new(),
            tbl8_len: Vec::new(),
            master: BTreeMap::new(),
        }
    }

    /// Approximate memory footprint in bytes (benchmark reporting).
    pub fn memory_bytes(&self) -> usize {
        self.tbl24.len() * 4 + self.tbl24_len.len() + self.tbl8.len() * 4 + self.tbl8_len.len()
    }

    /// Number of allocated second-level blocks.
    pub fn block_count(&self) -> usize {
        self.tbl8.len() / 256
    }

    /// The best (longest) strictly-shorter covering entry for `net`
    /// below length `plen`.
    fn cover_below(&self, net: u32, plen: u8) -> Option<(NextHop, u8)> {
        (0..plen)
            .rev()
            .find_map(|l| self.master.get(&(l, net_mask(net, l))).map(|&nh| (nh, l)))
    }

    /// Write `(value, len_code)` into a /24 cell or, if the cell chains to
    /// a block, into every block slot the predicate admits.
    fn overwrite_cell(&mut self, cell: usize, nh: NextHop, plen: u8, replace_len: ReplaceRule) {
        let code = plen + 1;
        let v = self.tbl24[cell];
        if v & SUB_FLAG != 0 {
            let base = ((v & !SUB_FLAG) as usize) * 256;
            for s in 0..256 {
                if replace_len.admits(self.tbl8_len[base + s]) {
                    self.tbl8[base + s] = nh + 1;
                    self.tbl8_len[base + s] = code;
                }
            }
        } else if replace_len.admits(self.tbl24_len[cell]) {
            self.tbl24[cell] = nh + 1;
            self.tbl24_len[cell] = code;
        }
    }

    /// Clear-or-replace a /24 cell (and chained slots) whose writer had
    /// exactly length `plen`, restoring `cover`.
    fn restore_cell(&mut self, cell: usize, plen: u8, cover: Option<(NextHop, u8)>) {
        let code = plen + 1;
        let (cv, cl) = match cover {
            Some((nh, l)) => (nh + 1, l + 1),
            None => (EMPTY, LEN_EMPTY),
        };
        let v = self.tbl24[cell];
        if v & SUB_FLAG != 0 {
            let base = ((v & !SUB_FLAG) as usize) * 256;
            for s in 0..256 {
                if self.tbl8_len[base + s] == code {
                    self.tbl8[base + s] = cv;
                    self.tbl8_len[base + s] = cl;
                }
            }
        } else if self.tbl24_len[cell] == code {
            self.tbl24[cell] = cv;
            self.tbl24_len[cell] = cl;
        }
    }
}

/// Which existing length codes an insert may overwrite.
#[derive(Clone, Copy)]
struct ReplaceRule {
    /// Overwrite entries with length code ≤ this (plus empties).
    max_code: u8,
}

impl ReplaceRule {
    fn admits(&self, existing_code: u8) -> bool {
        existing_code == LEN_EMPTY || existing_code <= self.max_code
    }
}

impl Fib for Dir24Fib {
    fn insert(&mut self, prefix: Ipv4Cidr, next_hop: NextHop) {
        assert!(
            next_hop < SUB_FLAG - 1,
            "next hop must fit in 31 bits minus the empty sentinel"
        );
        let net = prefix.network().to_u32();
        let plen = prefix.prefix_len();
        self.master.insert((plen, net), next_hop);
        let rule = ReplaceRule { max_code: plen + 1 };

        if plen <= 24 {
            let first = (net >> 8) as usize;
            let count = 1usize << (24 - plen);
            for cell in first..first + count {
                self.overwrite_cell(cell, next_hop, plen, rule);
            }
        } else {
            let cell = (net >> 8) as usize;
            let v = self.tbl24[cell];
            let base = if v & SUB_FLAG != 0 {
                ((v & !SUB_FLAG) as usize) * 256
            } else {
                // Promote the cell to a block seeded with its current
                // contents.
                let block = self.tbl8.len() / 256;
                self.tbl8.extend(std::iter::repeat_n(v, 256));
                self.tbl8_len
                    .extend(std::iter::repeat_n(self.tbl24_len[cell], 256));
                self.tbl24[cell] = SUB_FLAG | block as u32;
                self.tbl24_len[cell] = LEN_EMPTY;
                block * 256
            };
            let first = (net & 0xff) as usize;
            let count = 1usize << (32 - plen);
            for s in first..first + count {
                if rule.admits(self.tbl8_len[base + s]) {
                    self.tbl8[base + s] = next_hop + 1;
                    self.tbl8_len[base + s] = plen + 1;
                }
            }
        }
    }

    fn remove(&mut self, prefix: Ipv4Cidr) -> bool {
        let net = prefix.network().to_u32();
        let plen = prefix.prefix_len();
        if self.master.remove(&(plen, net)).is_none() {
            return false;
        }
        let cover = self.cover_below(net, plen);

        if plen <= 24 {
            let first = (net >> 8) as usize;
            let count = 1usize << (24 - plen);
            for cell in first..first + count {
                self.restore_cell(cell, plen, cover);
            }
        } else {
            let cell = (net >> 8) as usize;
            let v = self.tbl24[cell];
            debug_assert!(v & SUB_FLAG != 0, "long prefix without block");
            if v & SUB_FLAG != 0 {
                let base = ((v & !SUB_FLAG) as usize) * 256;
                let code = plen + 1;
                let (cv, cl) = match cover {
                    Some((nh, l)) => (nh + 1, l + 1),
                    None => (EMPTY, LEN_EMPTY),
                };
                let first = (net & 0xff) as usize;
                let count = 1usize << (32 - plen);
                for s in first..first + count {
                    if self.tbl8_len[base + s] == code {
                        self.tbl8[base + s] = cv;
                        self.tbl8_len[base + s] = cl;
                    }
                }
            }
        }
        true
    }

    fn lookup(&self, addr: Ipv4Address) -> Option<NextHop> {
        let a = addr.to_u32();
        let v = self.tbl24[(a >> 8) as usize];
        if v == EMPTY {
            return None;
        }
        if v & SUB_FLAG != 0 {
            let base = ((v & !SUB_FLAG) as usize) * 256;
            let s = self.tbl8[base + (a & 0xff) as usize];
            if s == EMPTY {
                None
            } else {
                Some(s - 1)
            }
        } else {
            Some(v - 1)
        }
    }

    fn len(&self) -> usize {
        self.master.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cidr(s: &str) -> Ipv4Cidr {
        s.parse().unwrap()
    }

    fn addr(s: &str) -> Ipv4Address {
        s.parse().unwrap()
    }

    #[test]
    fn short_prefixes() {
        let mut fib = Dir24Fib::new();
        fib.insert(cidr("10.0.0.0/8"), 1);
        fib.insert(cidr("10.1.0.0/16"), 2);
        fib.insert(cidr("10.1.2.0/24"), 3);
        assert_eq!(fib.lookup(addr("10.1.2.3")), Some(3));
        assert_eq!(fib.lookup(addr("10.1.3.3")), Some(2));
        assert_eq!(fib.lookup(addr("10.2.2.3")), Some(1));
        assert_eq!(fib.lookup(addr("11.0.0.1")), None);
        assert_eq!(fib.block_count(), 0);
    }

    #[test]
    fn long_prefixes_allocate_blocks() {
        let mut fib = Dir24Fib::new();
        fib.insert(cidr("10.0.0.0/8"), 1);
        fib.insert(cidr("10.1.2.128/25"), 4);
        fib.insert(cidr("10.1.2.130/32"), 5);
        assert_eq!(fib.block_count(), 1);
        assert_eq!(fib.lookup(addr("10.1.2.130")), Some(5));
        assert_eq!(fib.lookup(addr("10.1.2.131")), Some(4));
        assert_eq!(fib.lookup(addr("10.1.2.1")), Some(1)); // below the /25
    }

    #[test]
    fn shorter_insert_does_not_clobber_longer() {
        let mut fib = Dir24Fib::new();
        fib.insert(cidr("10.1.2.0/24"), 3);
        fib.insert(cidr("10.0.0.0/8"), 1); // inserted after, shorter
        assert_eq!(fib.lookup(addr("10.1.2.9")), Some(3));
        assert_eq!(fib.lookup(addr("10.1.3.9")), Some(1));
    }

    #[test]
    fn remove_restores_cover() {
        let mut fib = Dir24Fib::new();
        fib.insert(cidr("10.0.0.0/8"), 1);
        fib.insert(cidr("10.1.0.0/16"), 2);
        assert!(fib.remove(cidr("10.1.0.0/16")));
        assert_eq!(fib.lookup(addr("10.1.5.5")), Some(1));
        assert!(fib.remove(cidr("10.0.0.0/8")));
        assert_eq!(fib.lookup(addr("10.1.5.5")), None);
        assert_eq!(fib.len(), 0);
    }

    #[test]
    fn remove_long_prefix_restores_block_slots() {
        let mut fib = Dir24Fib::new();
        fib.insert(cidr("10.1.2.0/24"), 3);
        fib.insert(cidr("10.1.2.128/25"), 4);
        assert!(fib.remove(cidr("10.1.2.128/25")));
        assert_eq!(fib.lookup(addr("10.1.2.200")), Some(3));
        // Remove again is false.
        assert!(!fib.remove(cidr("10.1.2.128/25")));
    }

    #[test]
    fn replace_same_prefix() {
        let mut fib = Dir24Fib::new();
        fib.insert(cidr("10.1.0.0/16"), 2);
        fib.insert(cidr("10.1.0.0/16"), 7);
        assert_eq!(fib.len(), 1);
        assert_eq!(fib.lookup(addr("10.1.2.3")), Some(7));
    }

    #[test]
    fn default_route_fills_everything() {
        let mut fib = Dir24Fib::new();
        fib.insert(cidr("0.0.0.0/0"), 9);
        assert_eq!(fib.lookup(addr("1.2.3.4")), Some(9));
        assert_eq!(fib.lookup(addr("255.255.255.255")), Some(9));
        fib.insert(cidr("8.0.0.0/8"), 1);
        assert_eq!(fib.lookup(addr("8.8.8.8")), Some(1));
        assert!(fib.remove(cidr("0.0.0.0/0")));
        assert_eq!(fib.lookup(addr("1.2.3.4")), None);
        assert_eq!(fib.lookup(addr("8.8.8.8")), Some(1));
    }

    #[test]
    fn cover_through_block() {
        // Remove a /32 inside a block; the /16 underneath must show.
        let mut fib = Dir24Fib::new();
        fib.insert(cidr("10.1.0.0/16"), 2);
        fib.insert(cidr("10.1.2.3/32"), 9);
        assert_eq!(fib.lookup(addr("10.1.2.3")), Some(9));
        assert!(fib.remove(cidr("10.1.2.3/32")));
        assert_eq!(fib.lookup(addr("10.1.2.3")), Some(2));
    }
}
