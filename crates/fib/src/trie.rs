//! A binary (unibit) trie: the textbook IP lookup structure.
//!
//! One node per prefix bit, arena-allocated. Lookups walk at most 32
//! levels recording the last entry seen; updates touch only the affected
//! path, making this the fastest structure for churny tables.

use crate::{Fib, NextHop};
use zen_wire::{Ipv4Address, Ipv4Cidr};

const NO_NODE: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct TrieNode {
    children: [u32; 2],
    entry: Option<NextHop>,
}

impl TrieNode {
    fn new() -> TrieNode {
        TrieNode {
            children: [NO_NODE, NO_NODE],
            entry: None,
        }
    }
}

/// An arena-allocated binary trie FIB.
#[derive(Debug, Clone)]
pub struct BinaryTrieFib {
    nodes: Vec<TrieNode>,
    len: usize,
}

impl Default for BinaryTrieFib {
    fn default() -> BinaryTrieFib {
        BinaryTrieFib::new()
    }
}

/// Bit `i` (0 = most significant) of `addr`.
#[inline]
fn bit(addr: u32, i: u8) -> usize {
    ((addr >> (31 - i)) & 1) as usize
}

impl BinaryTrieFib {
    /// An empty trie.
    pub fn new() -> BinaryTrieFib {
        BinaryTrieFib {
            nodes: vec![TrieNode::new()],
            len: 0,
        }
    }

    /// Number of trie nodes (memory proxy for benchmarks).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn alloc(&mut self) -> u32 {
        self.nodes.push(TrieNode::new());
        (self.nodes.len() - 1) as u32
    }
}

impl Fib for BinaryTrieFib {
    fn insert(&mut self, prefix: Ipv4Cidr, next_hop: NextHop) {
        let net = prefix.network().to_u32();
        let plen = prefix.prefix_len();
        let mut node = 0u32;
        for i in 0..plen {
            let b = bit(net, i);
            let child = self.nodes[node as usize].children[b];
            let child = if child == NO_NODE {
                let new = self.alloc();
                self.nodes[node as usize].children[b] = new;
                new
            } else {
                child
            };
            node = child;
        }
        let entry = &mut self.nodes[node as usize].entry;
        if entry.is_none() {
            self.len += 1;
        }
        *entry = Some(next_hop);
    }

    fn remove(&mut self, prefix: Ipv4Cidr) -> bool {
        let net = prefix.network().to_u32();
        let plen = prefix.prefix_len();
        let mut node = 0u32;
        for i in 0..plen {
            let b = bit(net, i);
            node = self.nodes[node as usize].children[b];
            if node == NO_NODE {
                return false;
            }
        }
        let entry = &mut self.nodes[node as usize].entry;
        if entry.take().is_some() {
            // Structural pruning is deliberately lazy: empty nodes stay in
            // the arena. Lookup correctness is unaffected and re-inserts
            // reuse the path.
            self.len -= 1;
            true
        } else {
            false
        }
    }

    fn lookup(&self, addr: Ipv4Address) -> Option<NextHop> {
        let a = addr.to_u32();
        let mut node = 0u32;
        let mut best = self.nodes[0].entry;
        for i in 0..32 {
            node = self.nodes[node as usize].children[bit(a, i)];
            if node == NO_NODE {
                break;
            }
            if let Some(nh) = self.nodes[node as usize].entry {
                best = Some(nh);
            }
        }
        best
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cidr(s: &str) -> Ipv4Cidr {
        s.parse().unwrap()
    }

    fn addr(s: &str) -> Ipv4Address {
        s.parse().unwrap()
    }

    #[test]
    fn longest_match() {
        let mut fib = BinaryTrieFib::new();
        fib.insert(cidr("10.0.0.0/8"), 1);
        fib.insert(cidr("10.1.0.0/16"), 2);
        fib.insert(cidr("10.1.2.0/24"), 3);
        assert_eq!(fib.lookup(addr("10.1.2.3")), Some(3));
        assert_eq!(fib.lookup(addr("10.1.3.3")), Some(2));
        assert_eq!(fib.lookup(addr("10.2.2.3")), Some(1));
        assert_eq!(fib.lookup(addr("9.0.0.1")), None);
        assert_eq!(fib.len(), 3);
    }

    #[test]
    fn default_route() {
        let mut fib = BinaryTrieFib::new();
        fib.insert(cidr("0.0.0.0/0"), 42);
        assert_eq!(fib.lookup(addr("255.255.255.255")), Some(42));
        assert_eq!(fib.lookup(addr("0.0.0.0")), Some(42));
    }

    #[test]
    fn host_route_and_neighbors() {
        let mut fib = BinaryTrieFib::new();
        fib.insert(cidr("10.0.0.1/32"), 1);
        fib.insert(cidr("10.0.0.0/31"), 2);
        assert_eq!(fib.lookup(addr("10.0.0.1")), Some(1));
        assert_eq!(fib.lookup(addr("10.0.0.0")), Some(2));
        assert_eq!(fib.lookup(addr("10.0.0.2")), None);
    }

    #[test]
    fn insert_replace_remove() {
        let mut fib = BinaryTrieFib::new();
        fib.insert(cidr("192.168.0.0/16"), 1);
        fib.insert(cidr("192.168.0.0/16"), 2);
        assert_eq!(fib.len(), 1);
        assert_eq!(fib.lookup(addr("192.168.1.1")), Some(2));
        assert!(fib.remove(cidr("192.168.0.0/16")));
        assert!(!fib.remove(cidr("192.168.0.0/16")));
        assert_eq!(fib.lookup(addr("192.168.1.1")), None);
        assert_eq!(fib.len(), 0);
    }

    #[test]
    fn removal_uncovers_shorter_prefix() {
        let mut fib = BinaryTrieFib::new();
        fib.insert(cidr("10.0.0.0/8"), 1);
        fib.insert(cidr("10.1.0.0/16"), 2);
        assert_eq!(fib.lookup(addr("10.1.1.1")), Some(2));
        fib.remove(cidr("10.1.0.0/16"));
        assert_eq!(fib.lookup(addr("10.1.1.1")), Some(1));
    }
}
