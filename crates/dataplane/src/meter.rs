//! Token-bucket meters for data-plane rate limiting.

use crate::Nanos;

/// A token-bucket meter: sustained `rate_bps` with `burst_bytes` of
/// slack. Frames that find insufficient tokens are dropped (the OpenFlow
/// "drop" band).
#[derive(Debug, Clone)]
pub struct Meter {
    rate_bps: u64,
    burst_bytes: u64,
    /// Token level in *bits*, scaled to avoid rounding drift.
    tokens_bits: u64,
    last_update: Nanos,
    /// Frames admitted.
    pub passed: u64,
    /// Frames dropped by the meter.
    pub dropped: u64,
}

impl Meter {
    /// A meter admitting `rate_bps` sustained with `burst_bytes` slack.
    pub fn new(rate_bps: u64, burst_bytes: u64) -> Meter {
        Meter {
            rate_bps,
            burst_bytes,
            tokens_bits: burst_bytes * 8,
            last_update: 0,
            passed: 0,
            dropped: 0,
        }
    }

    /// The configured rate in bits/sec.
    pub fn rate_bps(&self) -> u64 {
        self.rate_bps
    }

    fn refill(&mut self, now: Nanos) {
        if now <= self.last_update {
            return;
        }
        let elapsed = now - self.last_update;
        self.last_update = now;
        let add = (elapsed as u128 * self.rate_bps as u128 / 1_000_000_000) as u64;
        self.tokens_bits = (self.tokens_bits + add).min(self.burst_bytes * 8);
    }

    /// Offer a frame of `len` bytes at time `now`; `true` admits it.
    pub fn allow(&mut self, now: Nanos, len: usize) -> bool {
        self.refill(now);
        let need = len as u64 * 8;
        if self.tokens_bits >= need {
            self.tokens_bits -= need;
            self.passed += 1;
            true
        } else {
            self.dropped += 1;
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_throttle() {
        // 8 kb/s, 1000-byte burst.
        let mut meter = Meter::new(8_000, 1000);
        // The initial burst passes...
        assert!(meter.allow(0, 500));
        assert!(meter.allow(0, 500));
        // ...then the bucket is empty.
        assert!(!meter.allow(0, 1));
        // After one second, 8000 bits = 1000 bytes refill.
        assert!(meter.allow(1_000_000_000, 1000));
        assert!(!meter.allow(1_000_000_000, 1));
        assert_eq!(meter.passed, 3);
        assert_eq!(meter.dropped, 2);
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut meter = Meter::new(1_000_000, 100);
        assert!(meter.allow(0, 100));
        // A long quiet period must not accumulate more than the burst.
        assert!(meter.allow(60_000_000_000, 100));
        assert!(!meter.allow(60_000_000_000, 100));
    }

    #[test]
    fn sustained_rate_close_to_config() {
        // 1 Mb/s; send 1000-byte frames every ms for 1 s = 8 Mb offered.
        let mut meter = Meter::new(1_000_000, 2_000);
        let mut passed_bytes = 0u64;
        for i in 0..1000u64 {
            if meter.allow(i * 1_000_000, 1000) {
                passed_bytes += 1000;
            }
        }
        let rate = passed_bytes as f64 * 8.0; // over one second
        assert!((0.9e6..=1.2e6).contains(&rate), "metered rate {rate} b/s");
    }

    #[test]
    fn time_does_not_go_backwards() {
        let mut meter = Meter::new(8_000, 100);
        assert!(meter.allow(1_000_000_000, 100));
        // An out-of-order timestamp must not mint tokens.
        assert!(!meter.allow(500_000_000, 100));
    }
}
