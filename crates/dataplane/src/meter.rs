//! Token-bucket meters for data-plane rate limiting.

use crate::Nanos;

/// A token-bucket meter: sustained `rate_bps` with `burst_bytes` of
/// slack. Frames that find insufficient tokens are dropped (the OpenFlow
/// "drop" band).
#[derive(Debug, Clone)]
pub struct Meter {
    rate_bps: u64,
    burst_bytes: u64,
    /// Token level in *bits*, scaled to avoid rounding drift.
    tokens_bits: u64,
    /// Sub-bit refill remainder in bit-nanoseconds (`elapsed * rate`
    /// modulo 1e9), carried across refills so high-frequency polling
    /// of a low-rate meter still accrues the configured rate instead
    /// of truncating every partial bit to zero.
    frac_bitnanos: u64,
    last_update: Nanos,
    /// Frames admitted.
    pub passed: u64,
    /// Frames dropped by the meter.
    pub dropped: u64,
}

impl Meter {
    /// A meter admitting `rate_bps` sustained with `burst_bytes` slack.
    pub fn new(rate_bps: u64, burst_bytes: u64) -> Meter {
        Meter {
            rate_bps,
            burst_bytes,
            tokens_bits: burst_bytes * 8,
            frac_bitnanos: 0,
            last_update: 0,
            passed: 0,
            dropped: 0,
        }
    }

    /// A meter counting *frames* instead of bytes: `rate_pps` frames
    /// per second sustained with `burst_frames` of slack. Internally
    /// one frame costs one bucket byte (8 bits); pair with
    /// [`Meter::allow_one`]. Used on the punt path, where the cost of
    /// a PACKET_IN is per-message, not per-byte.
    pub fn per_packet(rate_pps: u64, burst_frames: u64) -> Meter {
        Meter::new(rate_pps.saturating_mul(8), burst_frames)
    }

    /// The configured rate in bits/sec.
    pub fn rate_bps(&self) -> u64 {
        self.rate_bps
    }

    fn refill(&mut self, now: Nanos) {
        if now <= self.last_update {
            return;
        }
        let elapsed = now - self.last_update;
        self.last_update = now;
        let cap = self.burst_bytes * 8;
        if self.tokens_bits >= cap {
            // Already full: idle time must not bank a remainder, or a
            // quiet period would mint a larger-than-burst first wave.
            self.frac_bitnanos = 0;
            return;
        }
        let total = elapsed as u128 * self.rate_bps as u128 + self.frac_bitnanos as u128;
        let add = (total / 1_000_000_000).min(cap as u128) as u64;
        self.tokens_bits = self.tokens_bits.saturating_add(add);
        if self.tokens_bits >= cap {
            self.tokens_bits = cap;
            self.frac_bitnanos = 0;
        } else {
            self.frac_bitnanos = (total % 1_000_000_000) as u64;
        }
    }

    /// Offer a frame of `len` bytes at time `now`; `true` admits it.
    pub fn allow(&mut self, now: Nanos, len: usize) -> bool {
        self.refill(now);
        let need = len as u64 * 8;
        if self.tokens_bits >= need {
            self.tokens_bits -= need;
            self.passed += 1;
            true
        } else {
            self.dropped += 1;
            false
        }
    }

    /// Offer one frame at `now`, charging a single packet token (for
    /// meters built with [`Meter::per_packet`]).
    pub fn allow_one(&mut self, now: Nanos) -> bool {
        self.allow(now, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_throttle() {
        // 8 kb/s, 1000-byte burst.
        let mut meter = Meter::new(8_000, 1000);
        // The initial burst passes...
        assert!(meter.allow(0, 500));
        assert!(meter.allow(0, 500));
        // ...then the bucket is empty.
        assert!(!meter.allow(0, 1));
        // After one second, 8000 bits = 1000 bytes refill.
        assert!(meter.allow(1_000_000_000, 1000));
        assert!(!meter.allow(1_000_000_000, 1));
        assert_eq!(meter.passed, 3);
        assert_eq!(meter.dropped, 2);
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut meter = Meter::new(1_000_000, 100);
        assert!(meter.allow(0, 100));
        // A long quiet period must not accumulate more than the burst.
        assert!(meter.allow(60_000_000_000, 100));
        assert!(!meter.allow(60_000_000_000, 100));
    }

    #[test]
    fn sustained_rate_close_to_config() {
        // 1 Mb/s; send 1000-byte frames every ms for 1 s = 8 Mb offered.
        let mut meter = Meter::new(1_000_000, 2_000);
        let mut passed_bytes = 0u64;
        for i in 0..1000u64 {
            if meter.allow(i * 1_000_000, 1000) {
                passed_bytes += 1000;
            }
        }
        let rate = passed_bytes as f64 * 8.0; // over one second
        assert!((0.9e6..=1.2e6).contains(&rate), "metered rate {rate} b/s");
    }

    #[test]
    fn time_does_not_go_backwards() {
        let mut meter = Meter::new(8_000, 100);
        assert!(meter.allow(1_000_000_000, 100));
        // An out-of-order timestamp must not mint tokens.
        assert!(!meter.allow(500_000_000, 100));
    }

    #[test]
    fn high_frequency_polls_do_not_starve() {
        // Regression: refill used to truncate `elapsed * rate / 1e9`
        // per call. An 8 kb/s meter polled every 100 µs earns 0.8 bits
        // per refill — truncated to zero forever, so nothing after the
        // initial burst ever passed. The carried remainder fixes it.
        let mut meter = Meter::new(8_000, 125);
        let mut passed = 0u64;
        for i in 0..20_000u64 {
            // One 125-byte (1000-bit) frame offered every 100 µs for 2 s.
            if meter.allow(i * 100_000, 125) {
                passed += 1;
            }
        }
        // 8 kb/s admits one 1000-bit frame per 125 ms: 16 over 2 s,
        // plus the initial 125-byte burst. Starvation admits just 1.
        assert!((15..=18).contains(&passed), "passed {passed} frames");
    }

    #[test]
    fn remainder_does_not_inflate_burst() {
        // At 1 kb/s each 1 µs poll accrues 0.001 bit of remainder; the
        // byte must complete at exactly 8000 µs, never earlier, and a
        // full bucket must forget the remainder.
        let mut meter = Meter::new(1_000, 1); // 1 kb/s, 1-byte burst
        assert!(meter.allow(0, 1)); // drain the 8-bit burst
        for i in 1..=7_999u64 {
            // 8000 µs at 1 kb/s = exactly 8 bits = 1 byte.
            assert!(!meter.allow(i * 1_000, 1), "refilled early at {i} µs");
        }
        assert!(meter.allow(8_000_000, 1));
        // Long idle: bucket caps at burst and the remainder resets.
        assert!(!meter.allow(8_000_001, 1));
        assert!(meter.allow(60_000_000_000, 1));
        assert!(!meter.allow(60_000_000_000, 1));
    }

    #[test]
    fn packet_meter_counts_frames() {
        // 100 punts/sec, burst of 10 — frame length is irrelevant.
        let mut meter = Meter::per_packet(100, 10);
        let mut passed = 0u64;
        for _ in 0..100 {
            if meter.allow_one(0) {
                passed += 1;
            }
        }
        assert_eq!(passed, 10, "burst admits exactly burst_frames");
        // 10 ms later one more token (100/s) has accrued.
        assert!(meter.allow_one(10_000_000));
        assert!(!meter.allow_one(10_000_000));
    }
}
