//! # zen-dataplane — a programmable match-action forwarding plane
//!
//! The abstract machine of an OpenFlow 1.3-class switch (the role Open
//! vSwitch or a fixed-function ASIC plays in a deployed SDN), implemented
//! as a pure state machine with no I/O of its own:
//!
//! * [`key::FlowKey`] — header fields extracted from a frame once, then
//!   matched against.
//! * [`matching::FlowMatch`] — wildcardable match over in-port, Ethernet,
//!   VLAN, IPv4 (with prefix masks), and L4 ports.
//! * [`action::Action`] — output, flood, punt-to-controller, header
//!   rewrites (with checksum repair), VLAN push/pop, group, meter.
//! * [`table::FlowTable`] — priority-ordered entries with idle/hard
//!   timeouts and per-entry counters.
//! * [`group::GroupTable`] — ALL (replicate), SELECT (ECMP by flow
//!   hash), and FAST-FAILOVER (first live bucket) groups.
//! * [`meter::Meter`] — token-bucket rate limiters.
//! * [`cache::FlowCache`] — OVS-style two-tier (microflow/megaflow)
//!   classification cache in front of the table walk.
//! * [`datapath::Datapath`] — the multi-table pipeline tying it all
//!   together: `process(now, port, frame) → effects`.
//!
//! Embedding: a simulator node (or a real I/O loop) feeds frames in and
//! executes the returned [`datapath::Effect`]s; the control plane mutates
//! tables through the same typed API the `zen-proto` FLOW_MOD decoder
//! calls.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod action;
pub mod cache;
pub mod datapath;
pub mod epoch;
pub mod group;
pub mod key;
pub mod matching;
pub mod meter;
pub mod table;

pub use action::Action;
pub use cache::{CacheStats, FlowCache, Program, Segment};
pub use datapath::{Datapath, Effect, MissPolicy};
pub use epoch::{epoch_tag, is_epoch_tag, EPOCH_TAG_BASE, EPOCH_TAG_SPAN};
pub use group::{Bucket, GroupDesc, GroupTable, GroupType};
pub use key::FlowKey;
pub use matching::{FlowMatch, KeyMask};
pub use meter::Meter;
pub use table::{AddOutcome, FlowEntry, FlowSpec, FlowTable, OverflowPolicy, RemovedReason};

/// A switch port number (1-based; 0 is reserved).
pub type PortNo = u32;

/// A datapath (switch) identifier.
pub type DatapathId = u64;

/// Simulation-time in nanoseconds. The data plane is time-agnostic apart
/// from timeouts and meters, so it takes plain nanosecond counts rather
/// than depending on a clock.
pub type Nanos = u64;
