//! The two-tier packet-classification cache (OVS-style).
//!
//! The slow path classifies a packet by walking every flow table with a
//! linear priority scan. This module memoizes the *trajectory* of that
//! walk — which entry matched in which table, and the action list it
//! carried — behind two caches consulted in order:
//!
//! 1. A **microflow cache**: exact match on the full parsed [`FlowKey`]
//!    (which includes the ingress port). One entry per active flow;
//!    a single hash lookup on the hot path.
//! 2. A **megaflow cache**: entries carry a [`KeyMask`] — the union of
//!    key fields the slow-path classification actually consulted — and
//!    match any packet that agrees on just those fields. One megaflow
//!    covers every microflow the tables cannot distinguish.
//!
//! A hit replays the recorded per-table trajectory: the saved action
//! lists are re-executed against the *current* packet and datapath
//! state (meters, group buckets, port liveness), and the matched
//! entries' counters are credited exactly as the slow path would.
//! Replaying actions rather than memoized effects keeps stateful
//! actions (meters, SELECT group hashing, TTL decrement) bit-identical
//! to the uncached path without widening the mask.
//!
//! Consistency is by generation: any table/meter/port mutation clears
//! both tiers ([`FlowCache::invalidate`]) and bumps a generation
//! counter, so a cached trajectory's `(table, entry-index)` references
//! are always valid when consulted.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use crate::action::Action;
use crate::key::FlowKey;
use crate::matching::KeyMask;

/// One step of a recorded pipeline trajectory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Segment {
    /// The scan of `table_id` matched the entry at `entry_idx`; its
    /// action list (cloned at record time) is re-executed on replay.
    Hit {
        /// Which table matched.
        table_id: usize,
        /// Position of the matched entry within that table (stable
        /// until the next invalidation).
        entry_idx: usize,
        /// The matched entry's actions, cloned at record time.
        actions: Vec<Action>,
    },
    /// The scan of `table_id` matched nothing; the datapath's miss
    /// policy applies.
    Miss {
        /// Which table missed.
        table_id: usize,
    },
}

/// A memoized classification: the table-walk trajectory for one
/// equivalence class of packets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// The recorded steps, in pipeline order.
    pub segments: Vec<Segment>,
}

/// Observable cache counters, surfaced through datapath stats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Packets answered by the exact-match microflow tier.
    pub micro_hits: u64,
    /// Packets answered by the wildcard megaflow tier.
    pub mega_hits: u64,
    /// Packets that took the slow path.
    pub misses: u64,
    /// Programs inserted (microflow and megaflow entries count once).
    pub inserts: u64,
    /// Whole-cache invalidations (flow-mod, expiry, meter, port events).
    pub invalidations: u64,
    /// Microflow entries recycled by capacity eviction. Includes
    /// megaflow promotions cycling back out of tier 1, so this is
    /// turnover, not pressure.
    pub micro_evictions: u64,
    /// Megaflow entries dropped by capacity eviction — the real
    /// wildcard-tier pressure signal.
    pub mega_evictions: u64,
}

impl CacheStats {
    /// Total lookups that hit either tier.
    pub fn hits(&self) -> u64 {
        self.micro_hits + self.mega_hits
    }

    /// Capacity evictions across both tiers.
    pub fn evictions(&self) -> u64 {
        self.micro_evictions + self.mega_evictions
    }
}

/// Which cache tier answered a lookup (for stats attribution and the
/// flight recorder's per-packet match events).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitTier {
    /// Exact-match microflow tier.
    Micro,
    /// Masked megaflow tier.
    Mega,
}

/// The two-tier flow cache. See the module docs for the design.
#[derive(Debug, Default)]
pub struct FlowCache {
    /// Tier 1: exact FlowKey (includes in-port) → program.
    micro: HashMap<FlowKey, Arc<Program>>,
    /// Tier 2: per-mask maps of projected keys → program. Iteration
    /// order over masks is irrelevant for correctness: all masks a
    /// packet can hit agree on its trajectory (they were all recorded
    /// from the same tables-generation).
    mega: Vec<(KeyMask, HashMap<FlowKey, Arc<Program>>)>,
    /// FIFO of microflow keys for capacity eviction.
    micro_fifo: VecDeque<FlowKey>,
    /// FIFO of (mask, projected key) for capacity eviction.
    mega_fifo: VecDeque<(KeyMask, FlowKey)>,
    /// Bumped on every invalidation; lets observers (and tests) detect
    /// revalidation boundaries.
    generation: u64,
    /// Counters.
    pub stats: CacheStats,
}

/// Microflow-tier capacity (entries).
pub const MICRO_CAP: usize = 8192;
/// Megaflow-tier capacity (entries across all masks).
pub const MEGA_CAP: usize = 4096;

impl FlowCache {
    /// An empty cache.
    pub fn new() -> FlowCache {
        FlowCache::default()
    }

    /// The current generation (bumped by every invalidation).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Look up `key`, trying the microflow tier then the megaflow tier.
    /// A megaflow hit promotes the program into the microflow tier so
    /// subsequent packets of the same flow take the exact-match path.
    pub fn lookup(&mut self, key: &FlowKey) -> Option<Arc<Program>> {
        self.lookup_tiered(key).map(|(_, program)| program)
    }

    /// Like [`FlowCache::lookup`], additionally reporting which tier
    /// answered.
    pub fn lookup_tiered(&mut self, key: &FlowKey) -> Option<(HitTier, Arc<Program>)> {
        if let Some(program) = self.micro.get(key) {
            self.stats.micro_hits += 1;
            return Some((HitTier::Micro, Arc::clone(program)));
        }
        for (mask, map) in &self.mega {
            let projected = mask.project(key);
            if let Some(program) = map.get(&projected) {
                self.stats.mega_hits += 1;
                let program = Arc::clone(program);
                self.insert_micro(*key, Arc::clone(&program));
                return Some((HitTier::Mega, program));
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Record a slow-path classification: `key` (exact, for tier 1) and
    /// its consulted-field `mask` (for tier 2) both map to `program`.
    /// Returns the shared handle so batch processing can replay the
    /// trajectory for sibling frames without re-probing.
    pub fn insert(&mut self, key: FlowKey, mask: KeyMask, program: Program) -> Arc<Program> {
        let program = Arc::new(program);
        self.stats.inserts += 1;
        self.insert_micro(key, Arc::clone(&program));

        let projected = mask.project(&key);
        let map = match self.mega.iter_mut().find(|(m, _)| *m == mask) {
            Some((_, map)) => map,
            None => {
                self.mega.push((mask, HashMap::new()));
                &mut self.mega.last_mut().expect("just pushed").1
            }
        };
        if let Entry::Vacant(slot) = map.entry(projected) {
            slot.insert(Arc::clone(&program));
            self.mega_fifo.push_back((mask, projected));
            if self.mega_fifo.len() > MEGA_CAP {
                if let Some((old_mask, old_key)) = self.mega_fifo.pop_front() {
                    if let Some(pos) = self.mega.iter().position(|(m, _)| *m == old_mask) {
                        self.mega[pos].1.remove(&old_key);
                        // Prune the bucket once its last entry is gone,
                        // or every subsequent miss keeps scanning a
                        // dead mask until the next invalidation.
                        if self.mega[pos].1.is_empty() {
                            self.mega.remove(pos);
                        }
                    }
                    self.stats.mega_evictions += 1;
                }
            }
        }
        program
    }

    fn insert_micro(&mut self, key: FlowKey, program: Arc<Program>) {
        if let Entry::Vacant(slot) = self.micro.entry(key) {
            slot.insert(program);
            self.micro_fifo.push_back(key);
            if self.micro_fifo.len() > MICRO_CAP {
                if let Some(old) = self.micro_fifo.pop_front() {
                    self.micro.remove(&old);
                    self.stats.micro_evictions += 1;
                }
            }
        } else {
            self.micro.insert(key, program);
            // An overwrite is a re-insert: move the key to the back of
            // the FIFO so it is not evicted on the schedule of the
            // stale slot it would otherwise inherit.
            if let Some(pos) = self.micro_fifo.iter().position(|k| *k == key) {
                self.micro_fifo.remove(pos);
            }
            self.micro_fifo.push_back(key);
        }
    }

    /// Drop everything and bump the generation. Called on any mutation
    /// that could change classification results: flow add/delete,
    /// expiry, meter config, port state.
    pub fn invalidate(&mut self) {
        self.micro.clear();
        self.mega.clear();
        self.micro_fifo.clear();
        self.mega_fifo.clear();
        self.generation += 1;
        self.stats.invalidations += 1;
    }

    /// Number of distinct megaflow masks currently installed (every
    /// miss scans all of them, so this is the wildcard-tier scan cost).
    pub fn mask_count(&self) -> usize {
        self.mega.len()
    }

    /// Total entries across both tiers (for observability).
    pub fn len(&self) -> usize {
        self.micro.len() + self.mega.iter().map(|(_, m)| m.len()).sum::<usize>()
    }

    /// Whether both tiers are empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zen_wire::builder::PacketBuilder;
    use zen_wire::{EthernetAddress, Ipv4Address};

    fn key(port: u16) -> FlowKey {
        let frame = PacketBuilder::udp(
            EthernetAddress::from_id(1),
            Ipv4Address::new(10, 0, 0, 1),
            1000,
            EthernetAddress::from_id(2),
            Ipv4Address::new(10, 0, 0, 2),
            port,
            b"x",
        );
        FlowKey::extract(1, &frame).unwrap()
    }

    fn program(tag: usize) -> Program {
        Program {
            segments: vec![Segment::Hit {
                table_id: 0,
                entry_idx: tag,
                actions: vec![],
            }],
        }
    }

    #[test]
    fn micro_hit_after_insert() {
        let mut cache = FlowCache::new();
        assert!(cache.lookup(&key(1)).is_none());
        cache.insert(key(1), KeyMask::default(), program(7));
        let hit = cache.lookup(&key(1)).unwrap();
        assert_eq!(hit.segments, program(7).segments);
        assert_eq!(cache.stats.micro_hits, 1);
        assert_eq!(cache.stats.misses, 1);
    }

    #[test]
    fn mega_covers_unconsulted_fields_and_promotes() {
        let mut cache = FlowCache::new();
        // Mask that only consults the destination /24.
        let mask = KeyMask {
            ipv4_presence: true,
            ipv4_dst_plen: 24,
            ..KeyMask::default()
        };
        cache.insert(key(1), mask, program(3));
        // Different L4 port: not in the mask, so the megaflow covers it.
        let other = key(9);
        assert!(cache.lookup(&other).is_some());
        assert_eq!(cache.stats.mega_hits, 1);
        // The hit was promoted to the microflow tier.
        assert!(cache.lookup(&other).is_some());
        assert_eq!(cache.stats.micro_hits, 1);
    }

    #[test]
    fn invalidate_clears_and_bumps_generation() {
        let mut cache = FlowCache::new();
        cache.insert(key(1), KeyMask::default(), program(0));
        let g = cache.generation();
        cache.invalidate();
        assert!(cache.is_empty());
        assert_eq!(cache.generation(), g + 1);
        assert!(cache.lookup(&key(1)).is_none());
        assert_eq!(cache.stats.invalidations, 1);
    }

    #[test]
    fn micro_capacity_evicts_fifo() {
        let mut cache = FlowCache::new();
        // All-wildcard masks project every key to the same megaflow, so
        // only the microflow tier grows here.
        for i in 0..(MICRO_CAP + 10) {
            let frame = PacketBuilder::udp(
                EthernetAddress::from_id(1),
                Ipv4Address::from_u32(0x0a00_0000 + i as u32),
                1,
                EthernetAddress::from_id(2),
                Ipv4Address::new(10, 0, 0, 2),
                2,
                b"x",
            );
            let k = FlowKey::extract(1, &frame).unwrap();
            cache.insert(k, KeyMask::default(), program(i));
        }
        assert!(cache.micro.len() <= MICRO_CAP);
        assert!(cache.stats.micro_evictions >= 10);
        assert_eq!(cache.stats.mega_evictions, 0);
    }

    /// A key whose IPv4 destination is `dst` (other fields fixed).
    fn key_to(dst: u32) -> FlowKey {
        let frame = PacketBuilder::udp(
            EthernetAddress::from_id(1),
            Ipv4Address::new(10, 0, 0, 1),
            1000,
            EthernetAddress::from_id(2),
            Ipv4Address::from_u32(dst),
            2,
            b"x",
        );
        FlowKey::extract(1, &frame).unwrap()
    }

    #[test]
    fn mega_eviction_prunes_empty_mask_buckets() {
        let mut cache = FlowCache::new();
        let mask_a = KeyMask {
            ipv4_presence: true,
            ipv4_dst_plen: 32,
            ..KeyMask::default()
        };
        let mask_b = KeyMask {
            ipv4_presence: true,
            ipv4_dst_plen: 24,
            ..KeyMask::default()
        };
        // Fill the megaflow tier exactly with mask-A entries, then churn
        // a full capacity of mask-B entries (distinct /24s) through it.
        for i in 0..MEGA_CAP {
            cache.insert(key_to(0x0a00_0000 + i as u32), mask_a, program(i));
        }
        assert_eq!(cache.mask_count(), 1);
        for i in 0..MEGA_CAP {
            cache.insert(key_to(0x3000_0000 + ((i as u32) << 8)), mask_b, program(i));
        }
        // Every mask-A entry was FIFO-evicted, so its bucket must be
        // pruned — not left behind as a dead mask every miss rescans.
        assert_eq!(cache.mask_count(), 1);
        assert_eq!(cache.stats.mega_evictions, MEGA_CAP as u64);
    }

    #[test]
    fn micro_overwrite_refreshes_fifo_position() {
        let mut cache = FlowCache::new();
        // Two resident keys, inserted in order k0 then k1.
        cache.insert(key(10), KeyMask::default(), program(0));
        cache.insert(key(11), KeyMask::default(), program(1));
        // Overwrite k0: it must move to the back of the FIFO.
        cache.insert(key(10), KeyMask::default(), program(2));
        assert_eq!(cache.micro.len(), cache.micro_fifo.len(), "no FIFO drift");
        // Churn distinct keys until exactly one eviction happens; the
        // victim must be k1 (now oldest), not the refreshed k0.
        for i in 0..(MICRO_CAP - 2) {
            cache.insert(
                key_to(0x0b00_0000 + i as u32),
                KeyMask::default(),
                program(i),
            );
        }
        assert_eq!(cache.stats.micro_evictions, 0);
        cache.insert(key_to(0x0c00_0000), KeyMask::default(), program(9));
        assert_eq!(cache.stats.micro_evictions, 1, "exactly one eviction");
        assert!(
            cache.micro.contains_key(&key(10)),
            "overwritten key must survive (FIFO position refreshed)"
        );
        assert!(
            !cache.micro.contains_key(&key(11)),
            "oldest un-refreshed key must be the victim"
        );
        assert_eq!(cache.micro.len(), cache.micro_fifo.len(), "no FIFO drift");
        // The overwrite installed the new program, not the stale one.
        assert_eq!(
            cache.lookup(&key(10)).unwrap().segments,
            program(2).segments
        );
    }
}
