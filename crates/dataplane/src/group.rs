//! Group tables: ALL, SELECT (ECMP), and FAST-FAILOVER.

use std::collections::BTreeMap;

use crate::action::Action;
use crate::PortNo;

/// Group semantics, mirroring OpenFlow 1.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupType {
    /// Execute every bucket (replication / broadcast trees).
    All,
    /// Execute one bucket chosen by flow hash over *live* buckets —
    /// equal-cost multipath that never splits a flow.
    Select,
    /// Execute the first bucket whose watch port is live — sub-RTT local
    /// repair without controller involvement.
    FastFailover,
}

/// One group bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bucket {
    /// The actions this bucket executes.
    pub actions: Vec<Action>,
    /// The port whose liveness gates this bucket (SELECT and
    /// FAST-FAILOVER). `None` means always live.
    pub watch_port: Option<PortNo>,
}

impl Bucket {
    /// A bucket that outputs on `port` and watches it.
    pub fn output(port: PortNo) -> Bucket {
        Bucket {
            actions: vec![Action::Output(port)],
            watch_port: Some(port),
        }
    }
}

/// A group definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupDesc {
    /// The semantics.
    pub group_type: GroupType,
    /// The buckets, in priority order for FAST-FAILOVER.
    pub buckets: Vec<Bucket>,
}

/// The set of groups on a datapath.
#[derive(Debug, Clone, Default)]
pub struct GroupTable {
    groups: BTreeMap<u32, GroupDesc>,
}

impl GroupTable {
    /// An empty group table.
    pub fn new() -> GroupTable {
        GroupTable::default()
    }

    /// Install or replace a group.
    pub fn add(&mut self, id: u32, desc: GroupDesc) {
        self.groups.insert(id, desc);
    }

    /// Remove a group; returns whether it existed.
    pub fn remove(&mut self, id: u32) -> bool {
        self.groups.remove(&id).is_some()
    }

    /// Look up a group.
    pub fn get(&self, id: u32) -> Option<&GroupDesc> {
        self.groups.get(&id)
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether no groups are installed.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Iterate installed groups in id order (deterministic — used by
    /// tests that digest whole-switch forwarding state).
    pub fn iter(&self) -> impl Iterator<Item = (u32, &GroupDesc)> {
        self.groups.iter().map(|(&id, desc)| (id, desc))
    }

    /// Select the bucket(s) to execute for a frame with `flow_hash`,
    /// given a port-liveness oracle. Returns indices into the group's
    /// bucket list.
    pub fn select_buckets(
        &self,
        id: u32,
        flow_hash: u64,
        port_live: impl Fn(PortNo) -> bool,
    ) -> Vec<usize> {
        let Some(group) = self.groups.get(&id) else {
            return Vec::new();
        };
        let live = |b: &Bucket| b.watch_port.is_none_or(&port_live);
        match group.group_type {
            GroupType::All => (0..group.buckets.len())
                .filter(|&i| live(&group.buckets[i]))
                .collect(),
            GroupType::Select => {
                let live_ix: Vec<usize> = (0..group.buckets.len())
                    .filter(|&i| live(&group.buckets[i]))
                    .collect();
                if live_ix.is_empty() {
                    Vec::new()
                } else {
                    vec![live_ix[(flow_hash % live_ix.len() as u64) as usize]]
                }
            }
            GroupType::FastFailover => (0..group.buckets.len())
                .find(|&i| live(&group.buckets[i]))
                .map(|i| vec![i])
                .unwrap_or_default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ecmp_group(ports: &[PortNo]) -> GroupDesc {
        GroupDesc {
            group_type: GroupType::Select,
            buckets: ports.iter().map(|&p| Bucket::output(p)).collect(),
        }
    }

    #[test]
    fn select_spreads_and_is_stable() {
        let mut table = GroupTable::new();
        table.add(1, ecmp_group(&[10, 11, 12]));
        let all_up = |_p: PortNo| true;
        let mut seen = std::collections::BTreeSet::new();
        for hash in 0..100u64 {
            let picks = table.select_buckets(1, hash, all_up);
            assert_eq!(picks.len(), 1);
            seen.insert(picks[0]);
            // Stability: same hash, same bucket.
            assert_eq!(picks, table.select_buckets(1, hash, all_up));
        }
        assert_eq!(seen.len(), 3, "hashing failed to cover all buckets");
    }

    #[test]
    fn select_avoids_dead_ports() {
        let mut table = GroupTable::new();
        table.add(1, ecmp_group(&[10, 11, 12]));
        let up = |p: PortNo| p != 11;
        for hash in 0..50u64 {
            let picks = table.select_buckets(1, hash, up);
            assert_eq!(picks.len(), 1);
            assert_ne!(picks[0], 1, "selected the dead bucket");
        }
        // All dead: nothing selected.
        assert!(table.select_buckets(1, 0, |_| false).is_empty());
    }

    #[test]
    fn fast_failover_prefers_first_live() {
        let mut table = GroupTable::new();
        table.add(
            2,
            GroupDesc {
                group_type: GroupType::FastFailover,
                buckets: vec![Bucket::output(5), Bucket::output(6)],
            },
        );
        assert_eq!(table.select_buckets(2, 0, |_| true), vec![0]);
        assert_eq!(table.select_buckets(2, 0, |p| p != 5), vec![1]);
        assert!(table.select_buckets(2, 0, |_| false).is_empty());
    }

    #[test]
    fn all_executes_every_live_bucket() {
        let mut table = GroupTable::new();
        table.add(
            3,
            GroupDesc {
                group_type: GroupType::All,
                buckets: vec![Bucket::output(1), Bucket::output(2), Bucket::output(3)],
            },
        );
        assert_eq!(table.select_buckets(3, 9, |_| true), vec![0, 1, 2]);
        assert_eq!(table.select_buckets(3, 9, |p| p != 2), vec![0, 2]);
    }

    #[test]
    fn missing_group_selects_nothing() {
        let table = GroupTable::new();
        assert!(table.select_buckets(9, 0, |_| true).is_empty());
    }

    #[test]
    fn add_remove() {
        let mut table = GroupTable::new();
        table.add(1, ecmp_group(&[1]));
        assert_eq!(table.len(), 1);
        assert!(table.remove(1));
        assert!(!table.remove(1));
        assert!(table.is_empty());
    }
}
