//! The multi-table pipeline: scalar `process` and OVS-style
//! `process_batch` entry points over the same table walk.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use zen_telemetry::{trace_id_for_frame, CacheTier, Recorder, TraceEvent, TraceId};

use crate::action::{apply_rewrite, Action, Rewrite};
use crate::cache::{CacheStats, FlowCache, HitTier, Program, Segment};
use crate::group::GroupTable;
use crate::key::FlowKey;
use crate::matching::{FlowMatch, KeyMask};
use crate::meter::Meter;
use crate::table::{AddOutcome, FlowEntry, FlowSpec, FlowTable, OverflowPolicy, RemovedReason};
use crate::{DatapathId, Nanos, PortNo};

/// What to do with frames no table entry matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissPolicy {
    /// Silently drop (the OpenFlow 1.3 default).
    Drop,
    /// Punt to the controller, truncated to `max_len` bytes.
    ToController {
        /// Truncation limit.
        max_len: u16,
    },
}

/// Why a frame was punted to the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketInReason {
    /// Table miss.
    NoMatch,
    /// An explicit `ToController` action.
    Action,
}

/// An externally visible outcome of processing a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Effect {
    /// Emit `frame` on `port`.
    Output {
        /// Egress port.
        port: PortNo,
        /// The frame as rewritten up to the output action.
        frame: Vec<u8>,
    },
    /// Deliver (a prefix of) the frame to the controller.
    ToController {
        /// Why the frame was punted.
        reason: PacketInReason,
        /// Ingress port.
        in_port: PortNo,
        /// The (possibly truncated) frame.
        frame: Vec<u8>,
        /// The table that punted it.
        table_id: u8,
    },
}

/// Per-port counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortStats {
    /// Frames received.
    pub rx_frames: u64,
    /// Bytes received.
    pub rx_bytes: u64,
    /// Frames emitted.
    pub tx_frames: u64,
    /// Bytes emitted.
    pub tx_bytes: u64,
    /// Frames dropped at egress (down port).
    pub tx_dropped: u64,
}

/// A complete switch data plane: flow tables, groups, meters, and ports.
#[derive(Debug)]
pub struct Datapath {
    /// The datapath id this switch announces to the controller.
    pub dpid: DatapathId,
    tables: Vec<FlowTable>,
    /// The group table.
    pub groups: GroupTable,
    meters: BTreeMap<u32, Meter>,
    ports: BTreeMap<PortNo, bool>,
    port_stats: BTreeMap<PortNo, PortStats>,
    miss_policy: MissPolicy,
    /// Frames dropped because no entry matched under [`MissPolicy::Drop`],
    /// a meter fired, or TTL expired.
    pub pipeline_drops: u64,
    cache: FlowCache,
    cache_enabled: bool,
    /// Shared flight recorder (disabled instance by default). Tap points
    /// cost one enabled-check when recording is off.
    recorder: Recorder,
    /// Trace of the frame currently in the pipeline, set only while the
    /// recorder is enabled; lets group/meter taps attribute events.
    current_trace: Option<TraceId>,
    /// Per-batch microflow→probe-outcome memo. Scratch state: cleared at
    /// the top of every [`Datapath::process_batch`], kept on the struct
    /// only to recycle its allocation.
    batch_memo: HashMap<FlowKey, BatchMemo>,
    /// Scratch buffer holding the frame being rewritten, recycled across
    /// frames and calls.
    scratch_frame: Vec<u8>,
}

/// Memoized cache-probe outcome for one microflow group within a batch.
#[derive(Debug, Clone)]
enum BatchMemo {
    /// The group's first frame resolved to this trajectory (cache hit or
    /// freshly installed); siblings replay it without re-probing.
    Cached(Arc<Program>),
    /// The group's latest slow run terminated early (meter red, TTL), so
    /// nothing was cached; siblings re-run the slow path, still without
    /// re-probing.
    SlowUncached,
}

/// Per-switch ECMP hash: a SplitMix64-style scramble of the flow hash
/// salted with the datapath id. Without the salt, every switch on a
/// multi-tier path extracts the same low bits from the same flow hash,
/// so SELECT choices at successive tiers are perfectly correlated and a
/// fat-tree polarizes onto a fraction of its cores.
fn ecmp_hash(flow_hash: u64, dpid: DatapathId) -> u64 {
    let mut x = flow_hash ^ dpid.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl Datapath {
    /// A datapath with `n_tables` flow tables (≥ 1) and the given miss
    /// policy.
    pub fn new(dpid: DatapathId, n_tables: usize, miss_policy: MissPolicy) -> Datapath {
        assert!((1..=255).contains(&n_tables));
        Datapath {
            dpid,
            tables: (0..n_tables).map(|_| FlowTable::new()).collect(),
            groups: GroupTable::new(),
            meters: BTreeMap::new(),
            ports: BTreeMap::new(),
            port_stats: BTreeMap::new(),
            miss_policy,
            pipeline_drops: 0,
            cache: FlowCache::new(),
            cache_enabled: true,
            recorder: Recorder::new(),
            current_trace: None,
            batch_memo: HashMap::new(),
            scratch_frame: Vec::new(),
        }
    }

    /// Install a shared flight recorder handle. The datapath records
    /// per-packet match/group/meter events into it while it is enabled.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// Enable or disable the two-tier flow cache (enabled by default).
    /// Disabling also drops all cached entries, so re-enabling starts
    /// cold. Cached and uncached processing are behaviourally identical;
    /// the toggle exists for benchmarking and differential testing.
    pub fn set_flow_cache_enabled(&mut self, enabled: bool) {
        if self.cache_enabled != enabled {
            self.cache_enabled = enabled;
            self.cache.invalidate();
        }
    }

    /// Whether the flow cache is consulted by [`Datapath::process`].
    pub fn flow_cache_enabled(&self) -> bool {
        self.cache_enabled
    }

    /// Flow-cache hit/miss/invalidation counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats
    }

    /// The cache generation: bumped on every invalidation, so observers
    /// can tell "same counters" from "cleared and refilled".
    pub fn cache_generation(&self) -> u64 {
        self.cache.generation()
    }

    /// Entries currently cached across both tiers.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Register a port (initially up).
    pub fn add_port(&mut self, port: PortNo) {
        self.ports.insert(port, true);
        self.port_stats.entry(port).or_default();
        self.cache.invalidate();
    }

    /// Record a port's operational state.
    pub fn set_port_up(&mut self, port: PortNo, up: bool) {
        if let Some(state) = self.ports.get_mut(&port) {
            if *state != up {
                *state = up;
                self.cache.invalidate();
            }
        }
    }

    /// Whether a port exists and is up.
    pub fn port_up(&self, port: PortNo) -> bool {
        self.ports.get(&port).copied().unwrap_or(false)
    }

    /// All registered ports in ascending order.
    pub fn ports(&self) -> Vec<PortNo> {
        self.ports.keys().copied().collect()
    }

    /// Counters for `port` (zeroes for unknown ports).
    pub fn port_stats(&self, port: PortNo) -> PortStats {
        self.port_stats.get(&port).copied().unwrap_or_default()
    }

    /// Number of flow tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Access a flow table (stats, dumps).
    pub fn table(&self, id: u8) -> &FlowTable {
        &self.tables[id as usize]
    }

    /// Bound table `table_id` at `max_entries` under `policy`.
    ///
    /// # Panics
    /// Panics if `table_id` is out of range.
    pub fn set_table_limit(&mut self, table_id: u8, max_entries: usize, policy: OverflowPolicy) {
        self.tables[table_id as usize].set_limit(max_entries, policy);
    }

    /// Install a flow in a table, reporting what the table did with it
    /// (capacity refusal or eviction included). A refused add leaves
    /// the pipeline untouched, so the cache stays valid.
    ///
    /// # Panics
    /// Panics if `table_id` is out of range.
    pub fn add_flow(&mut self, table_id: u8, spec: FlowSpec, now: Nanos) -> AddOutcome {
        let outcome = self.tables[table_id as usize].add(spec, now);
        if !matches!(outcome, AddOutcome::Refused) {
            self.cache.invalidate();
        }
        outcome
    }

    /// Strict-delete a flow. Returns it if present.
    pub fn delete_flow_strict(
        &mut self,
        table_id: u8,
        priority: u16,
        matcher: &FlowMatch,
    ) -> Option<FlowEntry> {
        let removed = self.tables[table_id as usize].delete_strict(priority, matcher);
        if removed.is_some() {
            self.cache.invalidate();
        }
        removed
    }

    /// Delete all flows carrying `cookie`, across every table.
    pub fn delete_flows_by_cookie(&mut self, cookie: u64) -> Vec<(u8, FlowEntry)> {
        let mut removed = Vec::new();
        for (id, table) in self.tables.iter_mut().enumerate() {
            for entry in table.delete_by_cookie(cookie) {
                removed.push((id as u8, entry));
            }
        }
        if !removed.is_empty() {
            self.cache.invalidate();
        }
        removed
    }

    /// Total installed flow entries across tables.
    pub fn flow_count(&self) -> usize {
        self.tables.iter().map(FlowTable::len).sum()
    }

    /// Run table expiry; returns evicted entries for FLOW_REMOVED.
    pub fn expire(&mut self, now: Nanos) -> Vec<(u8, FlowEntry, RemovedReason)> {
        let mut removed = Vec::new();
        for (id, table) in self.tables.iter_mut().enumerate() {
            for (entry, reason) in table.expire(now) {
                removed.push((id as u8, entry, reason));
            }
        }
        if !removed.is_empty() {
            self.cache.invalidate();
        }
        removed
    }

    /// Install or replace a meter.
    pub fn set_meter(&mut self, id: u32, rate_bps: u64, burst_bytes: u64) {
        self.meters.insert(id, Meter::new(rate_bps, burst_bytes));
        self.cache.invalidate();
    }

    /// Remove a meter; returns whether it existed.
    pub fn remove_meter(&mut self, id: u32) -> bool {
        let existed = self.meters.remove(&id).is_some();
        if existed {
            self.cache.invalidate();
        }
        existed
    }

    /// Inspect a meter.
    pub fn meter(&self, id: u32) -> Option<&Meter> {
        self.meters.get(&id)
    }

    /// Execute a controller-supplied action list on an injected frame
    /// (the PACKET_OUT path). `in_port` is used by `Flood` exclusion and
    /// may be 0 for "none".
    pub fn inject(
        &mut self,
        now: Nanos,
        in_port: PortNo,
        actions: &[Action],
        frame: &[u8],
    ) -> Vec<Effect> {
        let key = FlowKey::extract(in_port, frame).unwrap_or(FlowKey {
            in_port,
            eth_src: zen_wire::EthernetAddress::ZERO,
            eth_dst: zen_wire::EthernetAddress::ZERO,
            ethertype: 0,
            vlan: None,
            epoch: None,
            ipv4: None,
            l4: None,
        });
        self.current_trace = if self.recorder.is_enabled() {
            trace_id_for_frame(frame)
        } else {
            None
        };
        let mut working = frame.to_vec();
        let mut effects = Vec::new();
        self.execute_actions(actions, &key, in_port, &mut working, &mut effects, now, 0);
        self.account_outputs(&effects);
        self.current_trace = None;
        effects
    }

    /// Process one received frame through the pipeline.
    ///
    /// With the flow cache enabled (the default), the parsed key is
    /// first checked against the microflow and megaflow tiers; a hit
    /// replays the memoized table-walk trajectory — re-executing the
    /// recorded action lists against current datapath state and
    /// crediting the matched entries' counters — which is observably
    /// identical to walking the tables. A miss takes the slow path,
    /// accumulating the mask of consulted key fields, and installs the
    /// resulting trajectory into both tiers.
    /// This is a batch-of-one shim over [`Datapath::process_batch`].
    pub fn process(&mut self, now: Nanos, in_port: PortNo, frame: &[u8]) -> Vec<Effect> {
        let mut effects = Vec::new();
        self.process_batch(now, &[(in_port, frame)], &mut effects);
        effects
    }

    /// Process a batch of received frames, appending every externally
    /// visible outcome to `effects` in frame order.
    ///
    /// Frames are processed strictly in submitted order — meters and
    /// counters are order-dependent, so grouping must never reorder —
    /// but per-frame fixed costs are amortized the way OVS batches do:
    /// frames sharing a microflow key probe the cache once (the group's
    /// first frame) and siblings replay the same memoized trajectory,
    /// and the rewrite buffer is recycled instead of allocated per
    /// frame. Skipping sibling probes is sound because nothing inside
    /// frame processing invalidates the cache — only table, meter, and
    /// port mutations do, and none can happen mid-batch. Cache probe
    /// counters consequently count *probes* (at most one per microflow
    /// group per batch), not packets; every other observable — effects,
    /// port stats, entry counters, meter state, `pipeline_drops` — is
    /// bit-identical to calling [`Datapath::process`] per frame and
    /// concatenating the results.
    pub fn process_batch(
        &mut self,
        now: Nanos,
        batch: &[(PortNo, &[u8])],
        effects: &mut Vec<Effect>,
    ) {
        let mut memo = std::mem::take(&mut self.batch_memo);
        memo.clear();
        let mut working = std::mem::take(&mut self.scratch_frame);
        // A batch of one cannot amortize anything; skip memo bookkeeping
        // so the scalar shim stays as lean as the old scalar path.
        let use_memo = self.cache_enabled && batch.len() > 1;
        for &(in_port, frame) in batch {
            {
                let stats = self.port_stats.entry(in_port).or_default();
                stats.rx_frames += 1;
                stats.rx_bytes += frame.len() as u64;
            }
            let Some(key) = FlowKey::extract(in_port, frame) else {
                self.pipeline_drops += 1;
                continue;
            };
            self.current_trace = if self.recorder.is_enabled() {
                trace_id_for_frame(frame)
            } else {
                None
            };

            // One cache probe per microflow group: after the group's
            // first frame, the memo answers instead of the cache.
            let mut probe_skipped = false;
            let mut hit: Option<(Arc<Program>, CacheTier)> = None;
            if use_memo {
                match memo.get(&key) {
                    Some(BatchMemo::Cached(program)) => {
                        // Scalar processing would find the trajectory in
                        // the microflow tier by now (the group's first
                        // frame promoted or installed it).
                        hit = Some((Arc::clone(program), CacheTier::Micro));
                        probe_skipped = true;
                    }
                    Some(BatchMemo::SlowUncached) => probe_skipped = true,
                    None => {}
                }
            }
            if !probe_skipped && self.cache_enabled {
                if let Some((tier, program)) = self.cache.lookup_tiered(&key) {
                    let tier = match tier {
                        HitTier::Micro => CacheTier::Micro,
                        HitTier::Mega => CacheTier::Mega,
                    };
                    if use_memo {
                        memo.insert(key, BatchMemo::Cached(Arc::clone(&program)));
                    }
                    hit = Some((program, tier));
                }
            }

            let start = effects.len();
            working.clear();
            working.extend_from_slice(frame);
            match hit {
                Some((program, tier)) => {
                    if let Some(trace) = self.current_trace {
                        self.recorder.record(
                            now,
                            trace,
                            TraceEvent::DpMatch {
                                dpid: self.dpid,
                                tier,
                            },
                        );
                    }
                    self.replay_into(
                        &program,
                        &key,
                        in_port,
                        frame.len(),
                        now,
                        &mut working,
                        effects,
                    );
                }
                None => {
                    if let Some(trace) = self.current_trace {
                        self.recorder.record(
                            now,
                            trace,
                            TraceEvent::DpMatch {
                                dpid: self.dpid,
                                tier: CacheTier::Slow,
                            },
                        );
                    }
                    let inserted =
                        self.process_slow(now, &key, in_port, frame.len(), &mut working, effects);
                    if use_memo {
                        match inserted {
                            Some(program) => memo.insert(key, BatchMemo::Cached(program)),
                            None => memo.insert(key, BatchMemo::SlowUncached),
                        };
                    }
                }
            }
            self.account_outputs(&effects[start..]);
            self.current_trace = None;
        }
        self.batch_memo = memo;
        self.scratch_frame = working;
    }

    /// Walk the tables for one frame (cache miss or cache disabled),
    /// appending its effects. `working` arrives pre-loaded with the
    /// frame. Returns the trajectory installed into the cache, if the
    /// run completed and caching is on.
    #[allow(clippy::too_many_arguments)]
    fn process_slow(
        &mut self,
        now: Nanos,
        key: &FlowKey,
        in_port: PortNo,
        frame_len: usize,
        working: &mut Vec<u8>,
        effects: &mut Vec<Effect>,
    ) -> Option<Arc<Program>> {
        let mut table_id = 0u8;
        let mut mask = KeyMask::default();
        let mut segments: Vec<Segment> = Vec::new();
        let mut terminated_early = false;
        loop {
            let table = &mut self.tables[table_id as usize];
            let Some((entry_idx, entry)) = table.lookup_with_mask(key, frame_len, now, &mut mask)
            else {
                if self.cache_enabled {
                    segments.push(Segment::Miss {
                        table_id: table_id as usize,
                    });
                }
                match self.miss_policy {
                    MissPolicy::Drop => {
                        self.pipeline_drops += 1;
                    }
                    MissPolicy::ToController { max_len } => {
                        let take = working.len().min(usize::from(max_len));
                        effects.push(Effect::ToController {
                            reason: PacketInReason::NoMatch,
                            in_port,
                            frame: working[..take].to_vec(),
                            table_id,
                        });
                    }
                }
                break;
            };
            let actions = entry.spec.actions.clone();
            let goto = entry.spec.goto_table;
            if self.cache_enabled {
                segments.push(Segment::Hit {
                    table_id: table_id as usize,
                    entry_idx,
                    actions: actions.clone(),
                });
            }
            if !self.execute_actions(&actions, key, in_port, working, effects, now, table_id) {
                // Dropped mid-pipeline (meter red or TTL expired). The
                // tables this run never reached leave no record, so the
                // trajectory is not a faithful classification — don't
                // cache it. The stateful check reruns on the slow path
                // until a run completes.
                terminated_early = true;
                break;
            }
            match goto {
                Some(next) if next > table_id && (next as usize) < self.tables.len() => {
                    table_id = next;
                }
                Some(_) | None => break,
            }
        }
        if self.cache_enabled && !terminated_early {
            Some(self.cache.insert(*key, mask, Program { segments }))
        } else {
            None
        }
    }

    /// Re-run a cached trajectory against the current frame and state.
    /// Mirrors the slow-path loop exactly: entry and table counters are
    /// credited as if the lookup had happened, actions execute against
    /// live meter/group/port state, and a mid-replay drop (meter red,
    /// TTL expired) terminates the walk just as it would uncached.
    /// `working` arrives pre-loaded with the frame.
    #[allow(clippy::too_many_arguments)]
    fn replay_into(
        &mut self,
        program: &Program,
        key: &FlowKey,
        in_port: PortNo,
        frame_len: usize,
        now: Nanos,
        working: &mut Vec<u8>,
        effects: &mut Vec<Effect>,
    ) {
        for segment in &program.segments {
            match segment {
                Segment::Hit {
                    table_id,
                    entry_idx,
                    actions,
                } => {
                    self.tables[*table_id].record_hit(*entry_idx, frame_len, now);
                    if !self.execute_actions(
                        actions,
                        key,
                        in_port,
                        working,
                        effects,
                        now,
                        *table_id as u8,
                    ) {
                        break;
                    }
                }
                Segment::Miss { table_id } => {
                    self.tables[*table_id].record_miss();
                    match self.miss_policy {
                        MissPolicy::Drop => {
                            self.pipeline_drops += 1;
                        }
                        MissPolicy::ToController { max_len } => {
                            let take = working.len().min(usize::from(max_len));
                            effects.push(Effect::ToController {
                                reason: PacketInReason::NoMatch,
                                in_port,
                                frame: working[..take].to_vec(),
                                table_id: *table_id as u8,
                            });
                        }
                    }
                }
            }
        }
    }

    /// Execute an action list against `working`. Returns `false` if the
    /// frame was dropped (meter red or TTL expired).
    #[allow(clippy::too_many_arguments)]
    fn execute_actions(
        &mut self,
        actions: &[Action],
        key: &FlowKey,
        in_port: PortNo,
        working: &mut Vec<u8>,
        effects: &mut Vec<Effect>,
        now: Nanos,
        table_id: u8,
    ) -> bool {
        for &action in actions {
            match action {
                Action::Output(port) => {
                    effects.push(Effect::Output {
                        port,
                        frame: working.clone(),
                    });
                }
                Action::Flood => {
                    for (&port, &up) in &self.ports {
                        if up && port != in_port {
                            effects.push(Effect::Output {
                                port,
                                frame: working.clone(),
                            });
                        }
                    }
                }
                Action::ToController { max_len } => {
                    let take = working.len().min(usize::from(max_len));
                    effects.push(Effect::ToController {
                        reason: PacketInReason::Action,
                        in_port,
                        frame: working[..take].to_vec(),
                        table_id,
                    });
                }
                Action::Group(id) => {
                    if let Some(trace) = self.current_trace {
                        self.recorder.record(
                            now,
                            trace,
                            TraceEvent::DpGroup {
                                dpid: self.dpid,
                                group_id: id,
                            },
                        );
                    }
                    let ports_snapshot = self.ports.clone();
                    let picks = self.groups.select_buckets(
                        id,
                        ecmp_hash(key.flow_hash(), self.dpid),
                        |p| ports_snapshot.get(&p).copied().unwrap_or(false),
                    );
                    let buckets: Vec<Vec<Action>> = picks
                        .iter()
                        .filter_map(|&i| self.groups.get(id).map(|g| g.buckets[i].actions.clone()))
                        .collect();
                    for bucket_actions in buckets {
                        // Each bucket works on its own copy.
                        let mut copy = working.clone();
                        if !self.execute_actions(
                            &bucket_actions,
                            key,
                            in_port,
                            &mut copy,
                            effects,
                            now,
                            table_id,
                        ) {
                            return false;
                        }
                    }
                }
                Action::Meter(id) => {
                    let len = working.len();
                    if let Some(meter) = self.meters.get_mut(&id) {
                        let passed = meter.allow(now, len);
                        if let Some(trace) = self.current_trace {
                            self.recorder.record(
                                now,
                                trace,
                                TraceEvent::DpMeter {
                                    dpid: self.dpid,
                                    meter_id: id,
                                    passed,
                                },
                            );
                        }
                        if !passed {
                            self.pipeline_drops += 1;
                            return false;
                        }
                    }
                }
                rewrite => {
                    if apply_rewrite(rewrite, working) == Rewrite::Drop {
                        self.pipeline_drops += 1;
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Update tx counters, filtering outputs to down or unknown ports.
    fn account_outputs(&mut self, effects: &[Effect]) {
        for effect in effects {
            if let Effect::Output { port, frame } = effect {
                let up = self.ports.get(port).copied().unwrap_or(false);
                let stats = self.port_stats.entry(*port).or_default();
                if up {
                    stats.tx_frames += 1;
                    stats.tx_bytes += frame.len() as u64;
                } else {
                    stats.tx_dropped += 1;
                }
            }
        }
    }

    /// Drop `Output` effects aimed at down ports (the embedding calls
    /// this before transmitting; `process` already counted them).
    pub fn filter_live_outputs(&self, effects: Vec<Effect>) -> Vec<Effect> {
        effects
            .into_iter()
            .filter(|e| match e {
                Effect::Output { port, .. } => self.port_up(*port),
                Effect::ToController { .. } => true,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::{Bucket, GroupDesc, GroupType};
    use zen_wire::builder::PacketBuilder;
    use zen_wire::{EthernetAddress, Ipv4Address};

    const M1: EthernetAddress = EthernetAddress([2, 0, 0, 0, 0, 1]);
    const M2: EthernetAddress = EthernetAddress([2, 0, 0, 0, 0, 2]);
    const IP1: Ipv4Address = Ipv4Address::new(10, 0, 0, 1);
    const IP2: Ipv4Address = Ipv4Address::new(10, 0, 0, 2);

    fn dp(n_tables: usize) -> Datapath {
        let mut dp = Datapath::new(1, n_tables, MissPolicy::ToController { max_len: 128 });
        for p in 1..=4 {
            dp.add_port(p);
        }
        dp
    }

    fn udp(dst_port: u16) -> Vec<u8> {
        PacketBuilder::udp(M1, IP1, 999, M2, IP2, dst_port, b"payload")
    }

    #[test]
    fn exact_forwarding() {
        let mut dp = dp(1);
        let key = FlowKey::extract(1, &udp(53)).unwrap();
        dp.add_flow(
            0,
            FlowSpec::new(10, FlowMatch::exact(&key), vec![Action::Output(2)]),
            0,
        );
        let effects = dp.process(0, 1, &udp(53));
        assert_eq!(effects.len(), 1);
        assert!(matches!(&effects[0], Effect::Output { port: 2, .. }));
        assert_eq!(dp.port_stats(2).tx_frames, 1);
        assert_eq!(dp.port_stats(1).rx_frames, 1);
    }

    #[test]
    fn miss_punts_truncated() {
        let mut dp = Datapath::new(1, 1, MissPolicy::ToController { max_len: 20 });
        dp.add_port(1);
        let frame = udp(53);
        let effects = dp.process(0, 1, &frame);
        assert_eq!(effects.len(), 1);
        match &effects[0] {
            Effect::ToController {
                reason,
                in_port,
                frame: punted,
                table_id,
            } => {
                assert_eq!(*reason, PacketInReason::NoMatch);
                assert_eq!(*in_port, 1);
                assert_eq!(punted.len(), 20);
                assert_eq!(*table_id, 0);
                assert_eq!(&punted[..], &frame[..20]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn miss_policy_drop() {
        let mut dp = Datapath::new(1, 1, MissPolicy::Drop);
        dp.add_port(1);
        assert!(dp.process(0, 1, &udp(1)).is_empty());
        assert_eq!(dp.pipeline_drops, 1);
    }

    #[test]
    fn flood_excludes_ingress_and_down() {
        let mut dp = dp(1);
        dp.set_port_up(3, false);
        dp.add_flow(0, FlowSpec::new(1, FlowMatch::ANY, vec![Action::Flood]), 0);
        let effects = dp.process(0, 1, &udp(1));
        let ports: Vec<PortNo> = effects
            .iter()
            .map(|e| match e {
                Effect::Output { port, .. } => *port,
                _ => panic!(),
            })
            .collect();
        assert_eq!(ports, vec![2, 4]);
    }

    #[test]
    fn multi_table_acl_then_forward() {
        let mut dp = dp(2);
        // Table 0: drop UDP/53 (deny rule: no actions, no goto), else goto 1.
        dp.add_flow(
            0,
            FlowSpec::new(10, FlowMatch::ANY.with_ip_proto(17).with_l4_dst(53), vec![]),
            0,
        );
        dp.add_flow(0, FlowSpec::new(1, FlowMatch::ANY, vec![]).with_goto(1), 0);
        // Table 1: forward everything to port 2.
        dp.add_flow(
            1,
            FlowSpec::new(1, FlowMatch::ANY, vec![Action::Output(2)]),
            0,
        );

        assert!(dp.process(0, 1, &udp(53)).is_empty(), "denied flow leaked");
        let effects = dp.process(0, 1, &udp(80));
        assert_eq!(effects.len(), 1);
        assert!(matches!(&effects[0], Effect::Output { port: 2, .. }));
    }

    #[test]
    fn goto_must_move_forward() {
        let mut dp = dp(2);
        // A malformed goto pointing at its own table must not loop.
        dp.add_flow(
            1,
            FlowSpec::new(1, FlowMatch::ANY, vec![Action::Output(2)]).with_goto(1),
            0,
        );
        dp.add_flow(0, FlowSpec::new(1, FlowMatch::ANY, vec![]).with_goto(1), 0);
        let effects = dp.process(0, 1, &udp(1));
        assert_eq!(effects.len(), 1, "pipeline must terminate");
    }

    #[test]
    fn select_group_is_flow_stable() {
        let mut dp = dp(1);
        dp.groups.add(
            7,
            GroupDesc {
                group_type: GroupType::Select,
                buckets: vec![Bucket::output(2), Bucket::output(3), Bucket::output(4)],
            },
        );
        dp.add_flow(
            0,
            FlowSpec::new(1, FlowMatch::ANY, vec![Action::Group(7)]),
            0,
        );
        let first = dp.process(0, 1, &udp(1000));
        // Same flow, later packet: same bucket.
        let second = dp.process(1, 1, &udp(1000));
        assert_eq!(first, second);
        // Different flows eventually use different ports.
        let mut ports = std::collections::BTreeSet::new();
        for dst in 0..64u16 {
            for e in dp.process(2, 1, &udp(dst)) {
                if let Effect::Output { port, .. } = e {
                    ports.insert(port);
                }
            }
        }
        assert!(ports.len() >= 2, "ECMP never spread: {ports:?}");
    }

    #[test]
    fn failover_group_reacts_to_port_state() {
        let mut dp = dp(1);
        dp.groups.add(
            9,
            GroupDesc {
                group_type: GroupType::FastFailover,
                buckets: vec![Bucket::output(2), Bucket::output(3)],
            },
        );
        dp.add_flow(
            0,
            FlowSpec::new(1, FlowMatch::ANY, vec![Action::Group(9)]),
            0,
        );
        let effects = dp.process(0, 1, &udp(1));
        assert!(matches!(&effects[0], Effect::Output { port: 2, .. }));
        dp.set_port_up(2, false);
        let effects = dp.process(1, 1, &udp(1));
        assert!(matches!(&effects[0], Effect::Output { port: 3, .. }));
    }

    #[test]
    fn meter_drops_excess() {
        let mut dp = dp(1);
        dp.set_meter(1, 8_000, 50); // 8 kb/s, 50-byte burst
        dp.add_flow(
            0,
            FlowSpec::new(1, FlowMatch::ANY, vec![Action::Meter(1), Action::Output(2)]),
            0,
        );
        // One 43-byte frame fits in the burst; a second at the same
        // instant does not.
        let small = PacketBuilder::udp(M1, IP1, 1, M2, IP2, 2, b"x");
        assert!(!dp.process(0, 1, &small).is_empty());
        // Bucket exhausted: next frame at the same instant drops.
        assert!(dp.process(0, 1, &small).is_empty());
        assert_eq!(dp.meter(1).unwrap().dropped, 1);
    }

    #[test]
    fn rewrite_then_output() {
        let mut dp = dp(1);
        let m3 = EthernetAddress([2, 0, 0, 0, 0, 3]);
        dp.add_flow(
            0,
            FlowSpec::new(
                1,
                FlowMatch::ANY,
                vec![Action::SetEthDst(m3), Action::DecTtl, Action::Output(2)],
            ),
            0,
        );
        let effects = dp.process(0, 1, &udp(1));
        let Effect::Output { frame, .. } = &effects[0] else {
            panic!();
        };
        let key = FlowKey::extract(2, frame).unwrap();
        assert_eq!(key.eth_dst, m3);
    }

    #[test]
    fn output_before_rewrite_sends_original() {
        let mut dp = dp(1);
        let m3 = EthernetAddress([2, 0, 0, 0, 0, 3]);
        dp.add_flow(
            0,
            FlowSpec::new(
                1,
                FlowMatch::ANY,
                vec![Action::Output(2), Action::SetEthDst(m3), Action::Output(3)],
            ),
            0,
        );
        let effects = dp.process(0, 1, &udp(1));
        let frames: Vec<&Vec<u8>> = effects
            .iter()
            .map(|e| match e {
                Effect::Output { frame, .. } => frame,
                _ => panic!(),
            })
            .collect();
        let k0 = FlowKey::extract(1, frames[0]).unwrap();
        let k1 = FlowKey::extract(1, frames[1]).unwrap();
        assert_eq!(k0.eth_dst, M2, "first output sees pre-rewrite frame");
        assert_eq!(k1.eth_dst, m3);
    }

    #[test]
    fn output_to_down_port_filtered() {
        let mut dp = dp(1);
        dp.add_flow(
            0,
            FlowSpec::new(1, FlowMatch::ANY, vec![Action::Output(2)]),
            0,
        );
        dp.set_port_up(2, false);
        let effects = dp.process(0, 1, &udp(1));
        assert_eq!(effects.len(), 1, "process still reports the intent");
        assert_eq!(dp.port_stats(2).tx_dropped, 1);
        assert!(dp.filter_live_outputs(effects).is_empty());
    }

    #[test]
    fn expiry_and_cookie_delete() {
        let mut dp = dp(1);
        dp.add_flow(
            0,
            FlowSpec::new(1, FlowMatch::ANY, vec![])
                .with_timeouts(0, 100)
                .with_cookie(5),
            0,
        );
        dp.add_flow(
            0,
            FlowSpec::new(2, FlowMatch::ANY, vec![]).with_cookie(5),
            0,
        );
        assert_eq!(dp.flow_count(), 2);
        let expired = dp.expire(100);
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].2, RemovedReason::HardTimeout);
        assert_eq!(dp.delete_flows_by_cookie(5).len(), 1);
        assert_eq!(dp.flow_count(), 0);
    }
}
