//! Wildcardable flow matching.

use zen_wire::{EthernetAddress, Ipv4Address, Ipv4Cidr};

use crate::key::{FlowKey, Ipv4Key, L4Key};
use crate::PortNo;

/// The union of [`FlowKey`] fields a classification run consulted.
///
/// Accumulated by [`FlowMatch::matches_masked`] as tables are walked:
/// every field examined before a match decision (including the failing
/// field of a non-matching entry) is recorded. Any packet that agrees
/// with a cached packet on all recorded fields is guaranteed to take the
/// same trajectory through the tables — the megaflow-cache soundness
/// argument, as in Open vSwitch.
///
/// IPv4 prefixes record the *longest* prefix length consulted per side;
/// agreeing on the top `ipv4_src_plen` bits implies agreeing on every
/// shorter prefix's containment decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct KeyMask {
    /// Ingress port was consulted.
    pub in_port: bool,
    /// Ethernet source was consulted.
    pub eth_src: bool,
    /// Ethernet destination was consulted.
    pub eth_dst: bool,
    /// EtherType was consulted.
    pub ethertype: bool,
    /// VLAN tag (presence and id) was consulted.
    pub vlan: bool,
    /// Configuration-epoch tag (presence and id) was consulted.
    pub epoch: bool,
    /// Whether the frame carries IPv4 was consulted.
    pub ipv4_presence: bool,
    /// Longest source-prefix length consulted (0 = none).
    pub ipv4_src_plen: u8,
    /// Longest destination-prefix length consulted (0 = none).
    pub ipv4_dst_plen: u8,
    /// IP protocol was consulted.
    pub ip_proto: bool,
    /// Whether the frame carries TCP/UDP ports was consulted.
    pub l4_presence: bool,
    /// L4 source port was consulted.
    pub l4_src: bool,
    /// L4 destination port was consulted.
    pub l4_dst: bool,
}

impl KeyMask {
    /// Project `key` onto this mask: unconsulted fields are zeroed so
    /// all keys in one megaflow share a single canonical representative.
    /// The projection is only comparable among keys projected through
    /// the *same* mask (the megaflow cache keeps one map per mask).
    pub fn project(&self, key: &FlowKey) -> FlowKey {
        let wants_ipv4 =
            self.ipv4_presence || self.ipv4_src_plen > 0 || self.ipv4_dst_plen > 0 || self.ip_proto;
        let wants_l4 = self.l4_presence || self.l4_src || self.l4_dst;
        FlowKey {
            in_port: if self.in_port { key.in_port } else { 0 },
            eth_src: if self.eth_src {
                key.eth_src
            } else {
                EthernetAddress([0; 6])
            },
            eth_dst: if self.eth_dst {
                key.eth_dst
            } else {
                EthernetAddress([0; 6])
            },
            ethertype: if self.ethertype { key.ethertype } else { 0 },
            vlan: if self.vlan { key.vlan } else { None },
            epoch: if self.epoch { key.epoch } else { None },
            ipv4: if wants_ipv4 {
                key.ipv4.map(|ip| Ipv4Key {
                    src: mask_addr(ip.src, self.ipv4_src_plen),
                    dst: mask_addr(ip.dst, self.ipv4_dst_plen),
                    proto: if self.ip_proto { ip.proto } else { 0 },
                    dscp_ecn: 0,
                })
            } else {
                None
            },
            l4: if wants_l4 {
                key.l4.map(|l4| L4Key {
                    src_port: if self.l4_src { l4.src_port } else { 0 },
                    dst_port: if self.l4_dst { l4.dst_port } else { 0 },
                })
            } else {
                None
            },
        }
    }
}

/// Keep only the top `plen` bits of `addr`.
fn mask_addr(addr: Ipv4Address, plen: u8) -> Ipv4Address {
    if plen == 0 {
        return Ipv4Address::from_u32(0);
    }
    let bits = addr.to_u32();
    Ipv4Address::from_u32(bits & (u32::MAX << (32 - u32::from(plen.min(32)))))
}

/// A match over [`FlowKey`] fields. `None` fields are wildcards.
///
/// IPv4 addresses match by prefix ([`Ipv4Cidr`]), so the same type
/// expresses exact microflow rules and aggregated rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlowMatch {
    /// Ingress port.
    pub in_port: Option<PortNo>,
    /// Ethernet source, exact.
    pub eth_src: Option<EthernetAddress>,
    /// Ethernet destination, exact.
    pub eth_dst: Option<EthernetAddress>,
    /// Inner EtherType.
    pub ethertype: Option<u16>,
    /// VLAN id; `Some(None)` matches untagged frames specifically.
    pub vlan: Option<Option<u16>>,
    /// Configuration-epoch tag; `Some(None)` matches un-stamped frames
    /// specifically, `Some(Some(tag))` requires the given epoch tag.
    pub epoch: Option<Option<u16>>,
    /// IPv4 source prefix. Implies the frame must carry IPv4.
    pub ipv4_src: Option<Ipv4Cidr>,
    /// IPv4 destination prefix. Implies the frame must carry IPv4.
    pub ipv4_dst: Option<Ipv4Cidr>,
    /// IP protocol. Implies IPv4.
    pub ip_proto: Option<u8>,
    /// L4 source port. Implies TCP or UDP.
    pub l4_src: Option<u16>,
    /// L4 destination port. Implies TCP or UDP.
    pub l4_dst: Option<u16>,
}

impl FlowMatch {
    /// Match everything (the table-miss wildcard).
    pub const ANY: FlowMatch = FlowMatch {
        in_port: None,
        eth_src: None,
        eth_dst: None,
        ethertype: None,
        vlan: None,
        epoch: None,
        ipv4_src: None,
        ipv4_dst: None,
        ip_proto: None,
        l4_src: None,
        l4_dst: None,
    };

    /// An exact match on every field present in `key` (a "microflow"
    /// rule, what a reactive controller installs).
    pub fn exact(key: &FlowKey) -> FlowMatch {
        FlowMatch {
            in_port: Some(key.in_port),
            eth_src: Some(key.eth_src),
            eth_dst: Some(key.eth_dst),
            ethertype: Some(key.ethertype),
            vlan: Some(key.vlan),
            epoch: Some(key.epoch),
            ipv4_src: key
                .ipv4
                .map(|ip| Ipv4Cidr::new(ip.src, 32).expect("32 is valid")),
            ipv4_dst: key
                .ipv4
                .map(|ip| Ipv4Cidr::new(ip.dst, 32).expect("32 is valid")),
            ip_proto: key.ipv4.map(|ip| ip.proto),
            l4_src: key.l4.map(|l4| l4.src_port),
            l4_dst: key.l4.map(|l4| l4.dst_port),
        }
    }

    /// Match frames destined to an L2 address.
    pub fn eth_to(dst: EthernetAddress) -> FlowMatch {
        FlowMatch {
            eth_dst: Some(dst),
            ..FlowMatch::ANY
        }
    }

    /// Match IPv4 frames destined into a prefix.
    pub fn ipv4_to(dst: Ipv4Cidr) -> FlowMatch {
        FlowMatch {
            ethertype: Some(0x0800),
            ipv4_dst: Some(dst),
            ..FlowMatch::ANY
        }
    }

    /// Builder: also require an ingress port.
    pub fn with_in_port(mut self, port: PortNo) -> FlowMatch {
        self.in_port = Some(port);
        self
    }

    /// Builder: also require an IP protocol.
    pub fn with_ip_proto(mut self, proto: u8) -> FlowMatch {
        self.ethertype = Some(0x0800);
        self.ip_proto = Some(proto);
        self
    }

    /// Builder: also require an L4 destination port.
    pub fn with_l4_dst(mut self, port: u16) -> FlowMatch {
        self.l4_dst = Some(port);
        self
    }

    /// Whether `key` satisfies every present field.
    pub fn matches(&self, key: &FlowKey) -> bool {
        if let Some(p) = self.in_port {
            if key.in_port != p {
                return false;
            }
        }
        if let Some(m) = self.eth_src {
            if key.eth_src != m {
                return false;
            }
        }
        if let Some(m) = self.eth_dst {
            if key.eth_dst != m {
                return false;
            }
        }
        if let Some(t) = self.ethertype {
            if key.ethertype != t {
                return false;
            }
        }
        if let Some(v) = self.vlan {
            if key.vlan != v {
                return false;
            }
        }
        if let Some(e) = self.epoch {
            if key.epoch != e {
                return false;
            }
        }
        if self.ipv4_src.is_some() || self.ipv4_dst.is_some() || self.ip_proto.is_some() {
            let Some(ip) = key.ipv4 else {
                return false;
            };
            if let Some(cidr) = self.ipv4_src {
                if !cidr.contains(ip.src) {
                    return false;
                }
            }
            if let Some(cidr) = self.ipv4_dst {
                if !cidr.contains(ip.dst) {
                    return false;
                }
            }
            if let Some(proto) = self.ip_proto {
                if ip.proto != proto {
                    return false;
                }
            }
        }
        if self.l4_src.is_some() || self.l4_dst.is_some() {
            let Some(l4) = key.l4 else {
                return false;
            };
            if let Some(p) = self.l4_src {
                if l4.src_port != p {
                    return false;
                }
            }
            if let Some(p) = self.l4_dst {
                if l4.dst_port != p {
                    return false;
                }
            }
        }
        true
    }

    /// Like [`FlowMatch::matches`], but records every key field this
    /// decision consulted into `mask` — including the field whose
    /// mismatch ends the scan. Field order and early-exit behaviour are
    /// identical to `matches`, so the recorded set is exactly what the
    /// decision depended on.
    pub fn matches_masked(&self, key: &FlowKey, mask: &mut KeyMask) -> bool {
        if let Some(p) = self.in_port {
            mask.in_port = true;
            if key.in_port != p {
                return false;
            }
        }
        if let Some(m) = self.eth_src {
            mask.eth_src = true;
            if key.eth_src != m {
                return false;
            }
        }
        if let Some(m) = self.eth_dst {
            mask.eth_dst = true;
            if key.eth_dst != m {
                return false;
            }
        }
        if let Some(t) = self.ethertype {
            mask.ethertype = true;
            if key.ethertype != t {
                return false;
            }
        }
        if let Some(v) = self.vlan {
            mask.vlan = true;
            if key.vlan != v {
                return false;
            }
        }
        if let Some(e) = self.epoch {
            mask.epoch = true;
            if key.epoch != e {
                return false;
            }
        }
        if self.ipv4_src.is_some() || self.ipv4_dst.is_some() || self.ip_proto.is_some() {
            mask.ipv4_presence = true;
            let Some(ip) = key.ipv4 else {
                return false;
            };
            if let Some(cidr) = self.ipv4_src {
                mask.ipv4_src_plen = mask.ipv4_src_plen.max(cidr.prefix_len());
                if !cidr.contains(ip.src) {
                    return false;
                }
            }
            if let Some(cidr) = self.ipv4_dst {
                mask.ipv4_dst_plen = mask.ipv4_dst_plen.max(cidr.prefix_len());
                if !cidr.contains(ip.dst) {
                    return false;
                }
            }
            if let Some(proto) = self.ip_proto {
                mask.ip_proto = true;
                if ip.proto != proto {
                    return false;
                }
            }
        }
        if self.l4_src.is_some() || self.l4_dst.is_some() {
            mask.l4_presence = true;
            let Some(l4) = key.l4 else {
                return false;
            };
            if let Some(p) = self.l4_src {
                mask.l4_src = true;
                if l4.src_port != p {
                    return false;
                }
            }
            if let Some(p) = self.l4_dst {
                mask.l4_dst = true;
                if l4.dst_port != p {
                    return false;
                }
            }
        }
        true
    }

    /// A crude specificity score (count of constrained fields plus prefix
    /// lengths), useful for debugging and table dumps; priority, not
    /// specificity, decides matching order.
    pub fn specificity(&self) -> u32 {
        let mut s = 0;
        s += u32::from(self.in_port.is_some());
        s += u32::from(self.eth_src.is_some());
        s += u32::from(self.eth_dst.is_some());
        s += u32::from(self.ethertype.is_some());
        s += u32::from(self.vlan.is_some());
        s += u32::from(self.epoch.is_some());
        s += self.ipv4_src.map_or(0, |c| 1 + u32::from(c.prefix_len()));
        s += self.ipv4_dst.map_or(0, |c| 1 + u32::from(c.prefix_len()));
        s += u32::from(self.ip_proto.is_some());
        s += u32::from(self.l4_src.is_some());
        s += u32::from(self.l4_dst.is_some());
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zen_wire::builder::PacketBuilder;
    use zen_wire::Ipv4Address;

    const M1: EthernetAddress = EthernetAddress([2, 0, 0, 0, 0, 1]);
    const M2: EthernetAddress = EthernetAddress([2, 0, 0, 0, 0, 2]);
    const IP1: Ipv4Address = Ipv4Address::new(10, 0, 0, 1);
    const IP2: Ipv4Address = Ipv4Address::new(10, 1, 2, 3);

    fn udp_key() -> FlowKey {
        let frame = PacketBuilder::udp(M1, IP1, 1234, M2, IP2, 53, b"q");
        FlowKey::extract(3, &frame).unwrap()
    }

    #[test]
    fn any_matches_everything() {
        assert!(FlowMatch::ANY.matches(&udp_key()));
    }

    #[test]
    fn exact_matches_own_key_only() {
        let key = udp_key();
        let m = FlowMatch::exact(&key);
        assert!(m.matches(&key));
        let mut other = key;
        other.in_port = 4;
        assert!(!m.matches(&other));
    }

    #[test]
    fn prefix_match() {
        let key = udp_key();
        let m = FlowMatch::ipv4_to("10.1.0.0/16".parse().unwrap());
        assert!(m.matches(&key));
        let m = FlowMatch::ipv4_to("10.2.0.0/16".parse().unwrap());
        assert!(!m.matches(&key));
    }

    #[test]
    fn ip_fields_require_ip() {
        let arp = PacketBuilder::arp_request(M1, IP1, IP2);
        let key = FlowKey::extract(1, &arp).unwrap();
        assert!(!FlowMatch::ipv4_to("0.0.0.0/0".parse().unwrap()).matches(&key));
        assert!(!FlowMatch::ANY.with_ip_proto(17).matches(&key));
        assert!(FlowMatch::ANY.matches(&key));
    }

    #[test]
    fn l4_fields_require_l4() {
        let icmp = PacketBuilder::icmp_echo_request(M1, IP1, M2, IP2, 1, 1);
        let key = FlowKey::extract(1, &icmp).unwrap();
        assert!(!FlowMatch::ANY.with_l4_dst(53).matches(&key));
        assert!(FlowMatch::ANY.with_ip_proto(1).matches(&key));
    }

    #[test]
    fn untagged_vlan_match() {
        let key = udp_key();
        let m = FlowMatch {
            vlan: Some(None),
            ..FlowMatch::ANY
        };
        assert!(m.matches(&key));
        let m = FlowMatch {
            vlan: Some(Some(100)),
            ..FlowMatch::ANY
        };
        assert!(!m.matches(&key));
    }

    #[test]
    fn epoch_match_is_disjoint_from_vlan() {
        let tag = crate::epoch::epoch_tag(7);
        let mut stamped = udp_key();
        stamped.epoch = Some(tag);
        let unstamped = udp_key();

        let wants_epoch = FlowMatch {
            epoch: Some(Some(tag)),
            ..FlowMatch::ANY
        };
        assert!(wants_epoch.matches(&stamped));
        assert!(!wants_epoch.matches(&unstamped));

        let wants_unstamped = FlowMatch {
            epoch: Some(None),
            ..FlowMatch::ANY
        };
        assert!(wants_unstamped.matches(&unstamped));
        assert!(!wants_unstamped.matches(&stamped));

        // An epoch tag is not a VLAN: untagged-VLAN rules still apply.
        let untagged_vlan = FlowMatch {
            vlan: Some(None),
            ..FlowMatch::ANY
        };
        assert!(untagged_vlan.matches(&stamped));

        // The mask records the consult, so cached megaflows from one
        // epoch cannot swallow the other epoch's packets.
        let mut mask = KeyMask::default();
        assert!(wants_epoch.matches_masked(&stamped, &mut mask));
        assert!(mask.epoch);
        assert_ne!(mask.project(&stamped), mask.project(&unstamped));
    }

    #[test]
    fn masked_matches_agrees_with_matches() {
        let key = udp_key();
        let matchers = [
            FlowMatch::ANY,
            FlowMatch::exact(&key),
            FlowMatch::ipv4_to("10.1.0.0/16".parse().unwrap()),
            FlowMatch::ipv4_to("10.2.0.0/16".parse().unwrap()),
            FlowMatch::ANY.with_ip_proto(17),
            FlowMatch::ANY.with_l4_dst(53),
            FlowMatch::ANY.with_in_port(9),
            FlowMatch::eth_to(M1),
        ];
        for m in matchers {
            let mut mask = KeyMask::default();
            assert_eq!(m.matches(&key), m.matches_masked(&key, &mut mask), "{m:?}");
        }
    }

    #[test]
    fn mask_records_consulted_fields_with_early_exit() {
        let key = udp_key();
        let mut mask = KeyMask::default();
        // in_port mismatches, so nothing after it is consulted.
        let m = FlowMatch::exact(&key).with_in_port(99);
        assert!(!m.matches_masked(&key, &mut mask));
        assert!(mask.in_port);
        assert!(!mask.eth_src && !mask.ethertype && mask.ipv4_src_plen == 0);

        // A full match consults everything the matcher constrains.
        let mut mask = KeyMask::default();
        assert!(FlowMatch::exact(&key).matches_masked(&key, &mut mask));
        assert!(mask.in_port && mask.eth_src && mask.eth_dst && mask.ethertype && mask.vlan);
        assert_eq!((mask.ipv4_src_plen, mask.ipv4_dst_plen), (32, 32));
        assert!(mask.ip_proto && mask.l4_src && mask.l4_dst);
    }

    #[test]
    fn mask_accumulates_longest_prefix() {
        let key = udp_key();
        let mut mask = KeyMask::default();
        assert!(FlowMatch::ipv4_to("10.0.0.0/8".parse().unwrap()).matches_masked(&key, &mut mask));
        assert_eq!(mask.ipv4_dst_plen, 8);
        assert!(FlowMatch::ipv4_to("10.1.0.0/16".parse().unwrap()).matches_masked(&key, &mut mask));
        assert_eq!(mask.ipv4_dst_plen, 16);
        // A shorter prefix later does not shrink the mask.
        assert!(FlowMatch::ipv4_to("10.0.0.0/8".parse().unwrap()).matches_masked(&key, &mut mask));
        assert_eq!(mask.ipv4_dst_plen, 16);
    }

    #[test]
    fn projection_canonicalizes_within_mask() {
        let key = udp_key();
        let mask = {
            let mut m = KeyMask::default();
            FlowMatch::ipv4_to("10.1.0.0/16".parse().unwrap()).matches_masked(&key, &mut m);
            m
        };
        // A key differing only in unconsulted fields projects identically.
        let other_frame = PacketBuilder::udp(M2, IP1, 7777, M1, IP2, 53, b"zzz");
        let other = FlowKey::extract(8, &other_frame).unwrap();
        assert_eq!(mask.project(&key), mask.project(&other));
        // A key differing in a consulted field projects differently.
        let far_frame =
            PacketBuilder::udp(M1, IP1, 1234, M2, Ipv4Address::new(10, 9, 0, 1), 53, b"q");
        let far = FlowKey::extract(3, &far_frame).unwrap();
        assert_ne!(mask.project(&key), mask.project(&far));
    }

    #[test]
    fn specificity_ranks_exact_over_wildcard() {
        let key = udp_key();
        assert!(FlowMatch::exact(&key).specificity() > FlowMatch::eth_to(M2).specificity());
        assert_eq!(FlowMatch::ANY.specificity(), 0);
    }
}
