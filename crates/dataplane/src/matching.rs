//! Wildcardable flow matching.

use zen_wire::{EthernetAddress, Ipv4Cidr};

use crate::key::FlowKey;
use crate::PortNo;

/// A match over [`FlowKey`] fields. `None` fields are wildcards.
///
/// IPv4 addresses match by prefix ([`Ipv4Cidr`]), so the same type
/// expresses exact microflow rules and aggregated rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlowMatch {
    /// Ingress port.
    pub in_port: Option<PortNo>,
    /// Ethernet source, exact.
    pub eth_src: Option<EthernetAddress>,
    /// Ethernet destination, exact.
    pub eth_dst: Option<EthernetAddress>,
    /// Inner EtherType.
    pub ethertype: Option<u16>,
    /// VLAN id; `Some(None)` matches untagged frames specifically.
    pub vlan: Option<Option<u16>>,
    /// IPv4 source prefix. Implies the frame must carry IPv4.
    pub ipv4_src: Option<Ipv4Cidr>,
    /// IPv4 destination prefix. Implies the frame must carry IPv4.
    pub ipv4_dst: Option<Ipv4Cidr>,
    /// IP protocol. Implies IPv4.
    pub ip_proto: Option<u8>,
    /// L4 source port. Implies TCP or UDP.
    pub l4_src: Option<u16>,
    /// L4 destination port. Implies TCP or UDP.
    pub l4_dst: Option<u16>,
}

impl FlowMatch {
    /// Match everything (the table-miss wildcard).
    pub const ANY: FlowMatch = FlowMatch {
        in_port: None,
        eth_src: None,
        eth_dst: None,
        ethertype: None,
        vlan: None,
        ipv4_src: None,
        ipv4_dst: None,
        ip_proto: None,
        l4_src: None,
        l4_dst: None,
    };

    /// An exact match on every field present in `key` (a "microflow"
    /// rule, what a reactive controller installs).
    pub fn exact(key: &FlowKey) -> FlowMatch {
        FlowMatch {
            in_port: Some(key.in_port),
            eth_src: Some(key.eth_src),
            eth_dst: Some(key.eth_dst),
            ethertype: Some(key.ethertype),
            vlan: Some(key.vlan),
            ipv4_src: key
                .ipv4
                .map(|ip| Ipv4Cidr::new(ip.src, 32).expect("32 is valid")),
            ipv4_dst: key
                .ipv4
                .map(|ip| Ipv4Cidr::new(ip.dst, 32).expect("32 is valid")),
            ip_proto: key.ipv4.map(|ip| ip.proto),
            l4_src: key.l4.map(|l4| l4.src_port),
            l4_dst: key.l4.map(|l4| l4.dst_port),
        }
    }

    /// Match frames destined to an L2 address.
    pub fn eth_to(dst: EthernetAddress) -> FlowMatch {
        FlowMatch {
            eth_dst: Some(dst),
            ..FlowMatch::ANY
        }
    }

    /// Match IPv4 frames destined into a prefix.
    pub fn ipv4_to(dst: Ipv4Cidr) -> FlowMatch {
        FlowMatch {
            ethertype: Some(0x0800),
            ipv4_dst: Some(dst),
            ..FlowMatch::ANY
        }
    }

    /// Builder: also require an ingress port.
    pub fn with_in_port(mut self, port: PortNo) -> FlowMatch {
        self.in_port = Some(port);
        self
    }

    /// Builder: also require an IP protocol.
    pub fn with_ip_proto(mut self, proto: u8) -> FlowMatch {
        self.ethertype = Some(0x0800);
        self.ip_proto = Some(proto);
        self
    }

    /// Builder: also require an L4 destination port.
    pub fn with_l4_dst(mut self, port: u16) -> FlowMatch {
        self.l4_dst = Some(port);
        self
    }

    /// Whether `key` satisfies every present field.
    pub fn matches(&self, key: &FlowKey) -> bool {
        if let Some(p) = self.in_port {
            if key.in_port != p {
                return false;
            }
        }
        if let Some(m) = self.eth_src {
            if key.eth_src != m {
                return false;
            }
        }
        if let Some(m) = self.eth_dst {
            if key.eth_dst != m {
                return false;
            }
        }
        if let Some(t) = self.ethertype {
            if key.ethertype != t {
                return false;
            }
        }
        if let Some(v) = self.vlan {
            if key.vlan != v {
                return false;
            }
        }
        if self.ipv4_src.is_some() || self.ipv4_dst.is_some() || self.ip_proto.is_some() {
            let Some(ip) = key.ipv4 else {
                return false;
            };
            if let Some(cidr) = self.ipv4_src {
                if !cidr.contains(ip.src) {
                    return false;
                }
            }
            if let Some(cidr) = self.ipv4_dst {
                if !cidr.contains(ip.dst) {
                    return false;
                }
            }
            if let Some(proto) = self.ip_proto {
                if ip.proto != proto {
                    return false;
                }
            }
        }
        if self.l4_src.is_some() || self.l4_dst.is_some() {
            let Some(l4) = key.l4 else {
                return false;
            };
            if let Some(p) = self.l4_src {
                if l4.src_port != p {
                    return false;
                }
            }
            if let Some(p) = self.l4_dst {
                if l4.dst_port != p {
                    return false;
                }
            }
        }
        true
    }

    /// A crude specificity score (count of constrained fields plus prefix
    /// lengths), useful for debugging and table dumps; priority, not
    /// specificity, decides matching order.
    pub fn specificity(&self) -> u32 {
        let mut s = 0;
        s += u32::from(self.in_port.is_some());
        s += u32::from(self.eth_src.is_some());
        s += u32::from(self.eth_dst.is_some());
        s += u32::from(self.ethertype.is_some());
        s += u32::from(self.vlan.is_some());
        s += self.ipv4_src.map_or(0, |c| 1 + u32::from(c.prefix_len()));
        s += self.ipv4_dst.map_or(0, |c| 1 + u32::from(c.prefix_len()));
        s += u32::from(self.ip_proto.is_some());
        s += u32::from(self.l4_src.is_some());
        s += u32::from(self.l4_dst.is_some());
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zen_wire::builder::PacketBuilder;
    use zen_wire::Ipv4Address;

    const M1: EthernetAddress = EthernetAddress([2, 0, 0, 0, 0, 1]);
    const M2: EthernetAddress = EthernetAddress([2, 0, 0, 0, 0, 2]);
    const IP1: Ipv4Address = Ipv4Address::new(10, 0, 0, 1);
    const IP2: Ipv4Address = Ipv4Address::new(10, 1, 2, 3);

    fn udp_key() -> FlowKey {
        let frame = PacketBuilder::udp(M1, IP1, 1234, M2, IP2, 53, b"q");
        FlowKey::extract(3, &frame).unwrap()
    }

    #[test]
    fn any_matches_everything() {
        assert!(FlowMatch::ANY.matches(&udp_key()));
    }

    #[test]
    fn exact_matches_own_key_only() {
        let key = udp_key();
        let m = FlowMatch::exact(&key);
        assert!(m.matches(&key));
        let mut other = key;
        other.in_port = 4;
        assert!(!m.matches(&other));
    }

    #[test]
    fn prefix_match() {
        let key = udp_key();
        let m = FlowMatch::ipv4_to("10.1.0.0/16".parse().unwrap());
        assert!(m.matches(&key));
        let m = FlowMatch::ipv4_to("10.2.0.0/16".parse().unwrap());
        assert!(!m.matches(&key));
    }

    #[test]
    fn ip_fields_require_ip() {
        let arp = PacketBuilder::arp_request(M1, IP1, IP2);
        let key = FlowKey::extract(1, &arp).unwrap();
        assert!(!FlowMatch::ipv4_to("0.0.0.0/0".parse().unwrap()).matches(&key));
        assert!(!FlowMatch::ANY.with_ip_proto(17).matches(&key));
        assert!(FlowMatch::ANY.matches(&key));
    }

    #[test]
    fn l4_fields_require_l4() {
        let icmp = PacketBuilder::icmp_echo_request(M1, IP1, M2, IP2, 1, 1);
        let key = FlowKey::extract(1, &icmp).unwrap();
        assert!(!FlowMatch::ANY.with_l4_dst(53).matches(&key));
        assert!(FlowMatch::ANY.with_ip_proto(1).matches(&key));
    }

    #[test]
    fn untagged_vlan_match() {
        let key = udp_key();
        let m = FlowMatch {
            vlan: Some(None),
            ..FlowMatch::ANY
        };
        assert!(m.matches(&key));
        let m = FlowMatch {
            vlan: Some(Some(100)),
            ..FlowMatch::ANY
        };
        assert!(!m.matches(&key));
    }

    #[test]
    fn specificity_ranks_exact_over_wildcard() {
        let key = udp_key();
        assert!(FlowMatch::exact(&key).specificity() > FlowMatch::eth_to(M2).specificity());
        assert_eq!(FlowMatch::ANY.specificity(), 0);
    }
}
