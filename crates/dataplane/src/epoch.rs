//! Configuration-epoch tagging for per-packet consistent updates.
//!
//! Two-phase updates (Reitblatt et al.) need packets to carry the
//! configuration version they entered the network under, so internal
//! rules can match "entirely old" or "entirely new" state and never a
//! mix. We carry the epoch in a reserved slice of the 802.1Q VLAN-id
//! space: edge rules stamp `epoch_tag(epoch)` onto untagged frames,
//! internal rules match it, and the egress edge strips it before
//! delivery. The reserved range is disjoint from the tag bases the TE
//! app allocates (100 and 2100), so epoch tags and TE tunnel tags never
//! collide; a frame wears at most one of them.
//!
//! [`crate::key::FlowKey::extract`] recognises the reserved range and
//! surfaces the tag as [`crate::key::FlowKey::epoch`] instead of
//! `vlan`, so epoch-qualified rules and plain VLAN rules live in
//! disjoint match dimensions and megaflow masks stay sound.

/// First VLAN id of the reserved epoch-tag range.
pub const EPOCH_TAG_BASE: u16 = 0x0e00;

/// Number of VLAN ids reserved for epoch tags. Epochs wrap modulo this
/// span; with two-phase commit at most two epochs are ever live at once,
/// so 256 distinct tags give a comfortable reuse distance.
pub const EPOCH_TAG_SPAN: u16 = 0x0100;

/// The VLAN-id encoding of a configuration epoch.
pub fn epoch_tag(epoch: u64) -> u16 {
    EPOCH_TAG_BASE + (epoch % u64::from(EPOCH_TAG_SPAN)) as u16
}

/// Whether a VLAN id falls in the reserved epoch-tag range.
pub fn is_epoch_tag(vid: u16) -> bool {
    (EPOCH_TAG_BASE..EPOCH_TAG_BASE + EPOCH_TAG_SPAN).contains(&vid)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_wrap_inside_reserved_range() {
        assert_eq!(epoch_tag(0), EPOCH_TAG_BASE);
        assert_eq!(epoch_tag(1), EPOCH_TAG_BASE + 1);
        assert_eq!(epoch_tag(u64::from(EPOCH_TAG_SPAN)), EPOCH_TAG_BASE);
        for e in 0..1024u64 {
            assert!(is_epoch_tag(epoch_tag(e)));
        }
    }

    #[test]
    fn te_tag_bases_are_outside_the_range() {
        assert!(!is_epoch_tag(100));
        assert!(!is_epoch_tag(2100));
        assert!(!is_epoch_tag(0));
        assert!(!is_epoch_tag(EPOCH_TAG_BASE - 1));
        assert!(!is_epoch_tag(EPOCH_TAG_BASE + EPOCH_TAG_SPAN));
    }
}
