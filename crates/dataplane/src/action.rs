//! Forwarding actions and in-place header rewriting.

use zen_wire::ethernet::{self, EtherType, Frame};
use zen_wire::{ipv4, EthernetAddress, Ipv4Address};

use crate::PortNo;

/// One action of a flow entry's action list, executed in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Emit the frame (as rewritten so far) out of a port.
    Output(PortNo),
    /// Emit out of every up port except the ingress port.
    Flood,
    /// Punt (up to `max_len` bytes of) the frame to the controller.
    ToController {
        /// Truncation limit for the punted copy.
        max_len: u16,
    },
    /// Rewrite the Ethernet source address.
    SetEthSrc(EthernetAddress),
    /// Rewrite the Ethernet destination address.
    SetEthDst(EthernetAddress),
    /// Rewrite the IPv4 source (fixes IP and L4 checksums).
    SetIpv4Src(Ipv4Address),
    /// Rewrite the IPv4 destination (fixes IP and L4 checksums).
    SetIpv4Dst(Ipv4Address),
    /// Rewrite the DSCP/ECN byte.
    SetDscp(u8),
    /// Decrement the IPv4 TTL; the frame is dropped if TTL expires.
    DecTtl,
    /// Push an 802.1Q tag with the given VLAN id.
    PushVlan(u16),
    /// Pop the outer 802.1Q tag (no-op on untagged frames).
    PopVlan,
    /// Stamp the frame with a configuration-epoch tag (a reserved-range
    /// 802.1Q tag, see [`crate::epoch`]). If an epoch tag is already
    /// present it is rewritten in place; otherwise one is pushed.
    SetEpoch(u16),
    /// Strip the epoch tag, if the outer tag is one (no-op otherwise).
    PopEpoch,
    /// Process through a group.
    Group(u32),
    /// Apply a meter; the frame is dropped if the meter is red.
    Meter(u32),
}

/// Rewrite outcome for a single set-field style action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rewrite {
    /// The frame was modified (or the action did not apply and the frame
    /// is unchanged but forwarding continues).
    Continue,
    /// The frame must be dropped (TTL expired).
    Drop,
}

/// Apply a header-rewrite action to `frame` in place. Output, flood,
/// controller, group and meter actions are *not* handled here — the
/// pipeline interprets those.
pub fn apply_rewrite(action: Action, frame: &mut Vec<u8>) -> Rewrite {
    match action {
        Action::SetEthSrc(mac) => {
            if let Ok(mut eth) = Frame::new_checked(&mut frame[..]) {
                eth.set_src_addr(mac);
            }
            Rewrite::Continue
        }
        Action::SetEthDst(mac) => {
            if let Ok(mut eth) = Frame::new_checked(&mut frame[..]) {
                eth.set_dst_addr(mac);
            }
            Rewrite::Continue
        }
        Action::SetIpv4Src(addr) => {
            rewrite_ip(frame, |ip| ip.set_src_addr(addr));
            Rewrite::Continue
        }
        Action::SetIpv4Dst(addr) => {
            rewrite_ip(frame, |ip| ip.set_dst_addr(addr));
            Rewrite::Continue
        }
        Action::SetDscp(value) => {
            rewrite_ip(frame, |ip| ip.set_dscp_ecn(value));
            Rewrite::Continue
        }
        Action::DecTtl => {
            let mut expired = false;
            rewrite_ip_no_l4(frame, |ip| {
                expired = !ip.decrement_ttl();
            });
            if expired {
                Rewrite::Drop
            } else {
                Rewrite::Continue
            }
        }
        Action::PushVlan(vid) => {
            push_vlan(frame, vid);
            Rewrite::Continue
        }
        Action::PopVlan => {
            pop_vlan(frame);
            Rewrite::Continue
        }
        Action::SetEpoch(tag) => {
            set_epoch(frame, tag);
            Rewrite::Continue
        }
        Action::PopEpoch => {
            pop_epoch(frame);
            Rewrite::Continue
        }
        _ => Rewrite::Continue,
    }
}

/// Offset of the IPv4 header within an (optionally VLAN-tagged) frame,
/// or `None` if the frame is not IPv4.
fn ipv4_offset(frame: &[u8]) -> Option<usize> {
    let eth = Frame::new_checked(frame).ok()?;
    match eth.ethertype() {
        EtherType::Ipv4 => Some(ethernet::HEADER_LEN),
        EtherType::Vlan => {
            let p = eth.payload();
            if p.len() >= 4 && u16::from_be_bytes([p[2], p[3]]) == 0x0800 {
                Some(ethernet::HEADER_LEN + 4)
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Mutate the IPv4 header, then repair the IP header checksum and, for
/// address changes, the TCP/UDP checksum via incremental update
/// (RFC 1624-style recompute here, since we have the whole packet).
fn rewrite_ip(frame: &mut [u8], f: impl FnOnce(&mut ipv4::Packet<&mut [u8]>)) {
    let Some(off) = ipv4_offset(frame) else {
        return;
    };
    let Ok(mut ip) = ipv4::Packet::new_checked(&mut frame[off..]) else {
        return;
    };
    f(&mut ip);
    ip.fill_checksum();
    let (src, dst, proto) = (ip.src_addr(), ip.dst_addr(), ip.protocol());
    // Recompute the transport checksum over the pseudo-header.
    match proto {
        ipv4::Protocol::Udp => {
            let payload = ip.payload_mut();
            if let Ok(mut dgram) = zen_wire::udp::Datagram::new_checked(payload) {
                dgram.fill_checksum(src, dst);
            }
        }
        ipv4::Protocol::Tcp => {
            let payload = ip.payload_mut();
            if let Ok(mut seg) = zen_wire::tcp::Segment::new_checked(payload) {
                seg.fill_checksum(src, dst);
            }
        }
        _ => {}
    }
}

/// Mutate the IPv4 header without touching L4 (TTL/DSCP changes do not
/// enter the pseudo-header).
fn rewrite_ip_no_l4(frame: &mut [u8], f: impl FnOnce(&mut ipv4::Packet<&mut [u8]>)) {
    let Some(off) = ipv4_offset(frame) else {
        return;
    };
    let Ok(mut ip) = ipv4::Packet::new_checked(&mut frame[off..]) else {
        return;
    };
    f(&mut ip);
    ip.fill_checksum();
}

/// Insert an 802.1Q tag after the source MAC. Double-tagging stacks.
fn push_vlan(frame: &mut Vec<u8>, vid: u16) {
    if frame.len() < ethernet::HEADER_LEN {
        return;
    }
    let mut tag = [0u8; 4];
    tag[0..2].copy_from_slice(&0x8100u16.to_be_bytes());
    tag[2..4].copy_from_slice(&(vid & 0x0fff).to_be_bytes());
    // New layout: dst(6) src(6) [0x8100 tci] original-ethertype payload.
    frame.splice(12..12, tag.iter().copied());
}

/// Remove the outer 802.1Q tag, if present.
fn pop_vlan(frame: &mut Vec<u8>) {
    if frame.len() < ethernet::HEADER_LEN + 4 {
        return;
    }
    if u16::from_be_bytes([frame[12], frame[13]]) == 0x8100 {
        frame.drain(12..16);
    }
}

/// The VLAN id of the outer 802.1Q tag, if the frame wears one.
fn outer_vid(frame: &[u8]) -> Option<u16> {
    if frame.len() < ethernet::HEADER_LEN + 4 {
        return None;
    }
    if u16::from_be_bytes([frame[12], frame[13]]) != 0x8100 {
        return None;
    }
    Some(u16::from_be_bytes([frame[14], frame[15]]) & 0x0fff)
}

/// Stamp `tag` (an epoch-range VLAN id) onto the frame: rewrite an
/// existing epoch tag in place, else push a fresh 802.1Q tag.
fn set_epoch(frame: &mut Vec<u8>, tag: u16) {
    let tag = tag & 0x0fff;
    match outer_vid(frame) {
        Some(vid) if crate::epoch::is_epoch_tag(vid) => {
            frame[14..16].copy_from_slice(&tag.to_be_bytes());
        }
        _ => push_vlan(frame, tag),
    }
}

/// Remove the outer tag only if it is an epoch tag, so plain VLANs
/// survive an edge rule that unconditionally strips epochs.
fn pop_epoch(frame: &mut Vec<u8>) {
    if outer_vid(frame).is_some_and(crate::epoch::is_epoch_tag) {
        frame.drain(12..16);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::FlowKey;
    use zen_wire::builder::PacketBuilder;
    use zen_wire::udp;

    const M1: EthernetAddress = EthernetAddress([2, 0, 0, 0, 0, 1]);
    const M2: EthernetAddress = EthernetAddress([2, 0, 0, 0, 0, 2]);
    const M3: EthernetAddress = EthernetAddress([2, 0, 0, 0, 0, 3]);
    const IP1: Ipv4Address = Ipv4Address::new(10, 0, 0, 1);
    const IP2: Ipv4Address = Ipv4Address::new(10, 0, 0, 2);
    const IP3: Ipv4Address = Ipv4Address::new(10, 0, 0, 3);

    fn udp_frame() -> Vec<u8> {
        PacketBuilder::udp(M1, IP1, 1111, M2, IP2, 2222, b"data")
    }

    #[test]
    fn set_eth_addrs() {
        let mut frame = udp_frame();
        apply_rewrite(Action::SetEthDst(M3), &mut frame);
        apply_rewrite(Action::SetEthSrc(M2), &mut frame);
        let key = FlowKey::extract(1, &frame).unwrap();
        assert_eq!(key.eth_dst, M3);
        assert_eq!(key.eth_src, M2);
    }

    #[test]
    fn set_ipv4_dst_repairs_checksums() {
        let mut frame = udp_frame();
        apply_rewrite(Action::SetIpv4Dst(IP3), &mut frame);
        let eth = Frame::new_checked(&frame[..]).unwrap();
        let ip = ipv4::Packet::new_checked(eth.payload()).unwrap();
        assert!(ip.verify_checksum());
        assert_eq!(ip.dst_addr(), IP3);
        let dgram = udp::Datagram::new_checked(ip.payload()).unwrap();
        assert!(dgram.verify_checksum(IP1, IP3));
        assert_eq!(dgram.payload(), b"data");
    }

    #[test]
    fn dec_ttl_and_expiry() {
        let mut frame = udp_frame();
        assert_eq!(apply_rewrite(Action::DecTtl, &mut frame), Rewrite::Continue);
        let eth = Frame::new_checked(&frame[..]).unwrap();
        let ip = ipv4::Packet::new_checked(eth.payload()).unwrap();
        assert_eq!(ip.ttl(), 63);
        assert!(ip.verify_checksum());

        // Burn it down to expiry.
        for _ in 0..62 {
            assert_eq!(apply_rewrite(Action::DecTtl, &mut frame), Rewrite::Continue);
        }
        assert_eq!(apply_rewrite(Action::DecTtl, &mut frame), Rewrite::Drop);
    }

    #[test]
    fn vlan_push_pop_roundtrip() {
        let original = udp_frame();
        let mut frame = original.clone();
        apply_rewrite(Action::PushVlan(42), &mut frame);
        assert_eq!(frame.len(), original.len() + 4);
        let key = FlowKey::extract(1, &frame).unwrap();
        assert_eq!(key.vlan, Some(42));
        assert_eq!(key.ethertype, 0x0800);

        apply_rewrite(Action::PopVlan, &mut frame);
        assert_eq!(frame, original);
    }

    #[test]
    fn pop_vlan_on_untagged_is_noop() {
        let original = udp_frame();
        let mut frame = original.clone();
        apply_rewrite(Action::PopVlan, &mut frame);
        assert_eq!(frame, original);
    }

    #[test]
    fn epoch_stamp_rewrite_and_strip() {
        let original = udp_frame();
        let mut frame = original.clone();
        let t1 = crate::epoch::epoch_tag(1);
        let t2 = crate::epoch::epoch_tag(2);

        // Stamp pushes a tag; the key surfaces it as epoch, not vlan.
        apply_rewrite(Action::SetEpoch(t1), &mut frame);
        assert_eq!(frame.len(), original.len() + 4);
        let key = FlowKey::extract(1, &frame).unwrap();
        assert_eq!((key.epoch, key.vlan), (Some(t1), None));

        // Re-stamping rewrites in place (no double tag).
        apply_rewrite(Action::SetEpoch(t2), &mut frame);
        assert_eq!(frame.len(), original.len() + 4);
        let key = FlowKey::extract(1, &frame).unwrap();
        assert_eq!(key.epoch, Some(t2));

        // Stripping restores the original frame exactly.
        apply_rewrite(Action::PopEpoch, &mut frame);
        assert_eq!(frame, original);
    }

    #[test]
    fn pop_epoch_leaves_plain_vlan_alone() {
        let mut frame = udp_frame();
        apply_rewrite(Action::PushVlan(42), &mut frame);
        let tagged = frame.clone();
        apply_rewrite(Action::PopEpoch, &mut frame);
        assert_eq!(frame, tagged);

        let untagged = udp_frame();
        let mut frame = untagged.clone();
        apply_rewrite(Action::PopEpoch, &mut frame);
        assert_eq!(frame, untagged);
    }

    #[test]
    fn set_ip_through_vlan_tag() {
        let mut frame = udp_frame();
        apply_rewrite(Action::PushVlan(7), &mut frame);
        apply_rewrite(Action::SetIpv4Src(IP3), &mut frame);
        apply_rewrite(Action::PopVlan, &mut frame);
        let eth = Frame::new_checked(&frame[..]).unwrap();
        let ip = ipv4::Packet::new_checked(eth.payload()).unwrap();
        assert_eq!(ip.src_addr(), IP3);
        assert!(ip.verify_checksum());
    }

    #[test]
    fn rewrites_ignore_non_ip() {
        let original = PacketBuilder::arp_request(M1, IP1, IP2);
        let mut frame = original.clone();
        apply_rewrite(Action::SetIpv4Dst(IP3), &mut frame);
        apply_rewrite(Action::DecTtl, &mut frame);
        assert_eq!(frame, original);
    }
}
