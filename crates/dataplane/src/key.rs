//! Flow-key extraction: parse a frame's headers once into a fixed
//! struct, then match against that.

use zen_wire::ethernet::{EtherType, Frame};
use zen_wire::ipv4::Protocol;
use zen_wire::{ipv4, tcp, udp, EthernetAddress, Ipv4Address};

use crate::PortNo;

/// IPv4-level key fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ipv4Key {
    /// Source address.
    pub src: Ipv4Address,
    /// Destination address.
    pub dst: Ipv4Address,
    /// Protocol number.
    pub proto: u8,
    /// DSCP/ECN byte.
    pub dscp_ecn: u8,
}

/// Transport-level key fields (TCP and UDP).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct L4Key {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
}

/// The extracted header fields of one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    /// Ingress port.
    pub in_port: PortNo,
    /// Ethernet source.
    pub eth_src: EthernetAddress,
    /// Ethernet destination.
    pub eth_dst: EthernetAddress,
    /// The *inner* EtherType (past any single 802.1Q tag).
    pub ethertype: u16,
    /// The VLAN id if the frame is tagged (excluding epoch tags).
    pub vlan: Option<u16>,
    /// The configuration-epoch tag, if the outer 802.1Q tag falls in the
    /// reserved epoch range (see [`crate::epoch`]). Such frames report
    /// `vlan: None`: epoch tags and plain VLANs are disjoint dimensions.
    pub epoch: Option<u16>,
    /// IPv4 fields if the frame carries IPv4.
    pub ipv4: Option<Ipv4Key>,
    /// L4 ports if the frame carries TCP or UDP over IPv4.
    pub l4: Option<L4Key>,
}

impl FlowKey {
    /// Extract a key from a raw frame. Returns `None` only if the frame
    /// is too short to be Ethernet; deeper parse failures simply leave
    /// the corresponding layers `None`.
    pub fn extract(in_port: PortNo, frame: &[u8]) -> Option<FlowKey> {
        let eth = Frame::new_checked(frame).ok()?;
        let mut key = FlowKey {
            in_port,
            eth_src: eth.src_addr(),
            eth_dst: eth.dst_addr(),
            ethertype: eth.ethertype().into(),
            vlan: None,
            epoch: None,
            ipv4: None,
            l4: None,
        };
        let mut payload = eth.payload();
        if eth.ethertype() == EtherType::Vlan {
            // 802.1Q: TCI (2 bytes) + inner EtherType (2 bytes).
            if payload.len() < 4 {
                return Some(key);
            }
            let vid = u16::from_be_bytes([payload[0], payload[1]]) & 0x0fff;
            if crate::epoch::is_epoch_tag(vid) {
                key.epoch = Some(vid);
            } else {
                key.vlan = Some(vid);
            }
            key.ethertype = u16::from_be_bytes([payload[2], payload[3]]);
            payload = &payload[4..];
        }
        if key.ethertype == u16::from(EtherType::Ipv4) {
            if let Ok(ip) = ipv4::Packet::new_checked(payload) {
                if ip.version() == 4 {
                    key.ipv4 = Some(Ipv4Key {
                        src: ip.src_addr(),
                        dst: ip.dst_addr(),
                        proto: ip.protocol().into(),
                        dscp_ecn: ip.dscp_ecn(),
                    });
                    match ip.protocol() {
                        Protocol::Tcp => {
                            if let Ok(seg) = tcp::Segment::new_checked(ip.payload()) {
                                key.l4 = Some(L4Key {
                                    src_port: seg.src_port(),
                                    dst_port: seg.dst_port(),
                                });
                            }
                        }
                        Protocol::Udp => {
                            if let Ok(dgram) = udp::Datagram::new_checked(ip.payload()) {
                                key.l4 = Some(L4Key {
                                    src_port: dgram.src_port(),
                                    dst_port: dgram.dst_port(),
                                });
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
        Some(key)
    }

    /// A deterministic 64-bit hash of the flow's 5-tuple (falling back to
    /// L2 addresses for non-IP frames), used by SELECT groups for ECMP.
    /// Frames of one flow always hash alike; the in-port is excluded.
    pub fn flow_hash(&self) -> u64 {
        // FNV-1a over the identifying fields.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |byte: u8| {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        match (self.ipv4, self.l4) {
            (Some(ip), l4) => {
                for b in ip.src.as_bytes() {
                    eat(*b);
                }
                for b in ip.dst.as_bytes() {
                    eat(*b);
                }
                eat(ip.proto);
                if let Some(l4) = l4 {
                    for b in l4.src_port.to_be_bytes() {
                        eat(b);
                    }
                    for b in l4.dst_port.to_be_bytes() {
                        eat(b);
                    }
                }
            }
            (None, _) => {
                for b in self.eth_src.as_bytes() {
                    eat(*b);
                }
                for b in self.eth_dst.as_bytes() {
                    eat(*b);
                }
                for b in self.ethertype.to_be_bytes() {
                    eat(b);
                }
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zen_wire::builder::PacketBuilder;
    use zen_wire::tcp::Flags;

    const M1: EthernetAddress = EthernetAddress([2, 0, 0, 0, 0, 1]);
    const M2: EthernetAddress = EthernetAddress([2, 0, 0, 0, 0, 2]);
    const IP1: Ipv4Address = Ipv4Address::new(10, 0, 0, 1);
    const IP2: Ipv4Address = Ipv4Address::new(10, 0, 0, 2);

    #[test]
    fn extracts_udp_five_tuple() {
        let frame = PacketBuilder::udp(M1, IP1, 1234, M2, IP2, 53, b"q");
        let key = FlowKey::extract(7, &frame).unwrap();
        assert_eq!(key.in_port, 7);
        assert_eq!(key.eth_src, M1);
        assert_eq!(key.eth_dst, M2);
        assert_eq!(key.ethertype, 0x0800);
        let ip = key.ipv4.unwrap();
        assert_eq!((ip.src, ip.dst, ip.proto), (IP1, IP2, 17));
        let l4 = key.l4.unwrap();
        assert_eq!((l4.src_port, l4.dst_port), (1234, 53));
    }

    #[test]
    fn extracts_tcp() {
        let frame = PacketBuilder::tcp(M1, IP1, 40000, M2, IP2, 80, Flags::SYN, b"");
        let key = FlowKey::extract(1, &frame).unwrap();
        assert_eq!(key.ipv4.unwrap().proto, 6);
        assert_eq!(key.l4.unwrap().dst_port, 80);
    }

    #[test]
    fn arp_has_no_ip_layer() {
        let frame = PacketBuilder::arp_request(M1, IP1, IP2);
        let key = FlowKey::extract(1, &frame).unwrap();
        assert_eq!(key.ethertype, 0x0806);
        assert!(key.ipv4.is_none());
        assert!(key.l4.is_none());
    }

    #[test]
    fn vlan_tag_parsed() {
        // Hand-build an 802.1Q frame around a minimal payload.
        let inner = PacketBuilder::udp(M1, IP1, 1, M2, IP2, 2, b"x");
        let mut frame = inner[..12].to_vec(); // MACs
        frame.extend_from_slice(&0x8100u16.to_be_bytes());
        frame.extend_from_slice(&0x0064u16.to_be_bytes()); // VLAN 100
        frame.extend_from_slice(&inner[12..]); // ethertype + payload
        let key = FlowKey::extract(1, &frame).unwrap();
        assert_eq!(key.vlan, Some(100));
        assert_eq!(key.epoch, None);
        assert_eq!(key.ethertype, 0x0800);
        assert!(key.ipv4.is_some());
    }

    #[test]
    fn epoch_range_tag_surfaces_as_epoch_not_vlan() {
        let inner = PacketBuilder::udp(M1, IP1, 1, M2, IP2, 2, b"x");
        let mut frame = inner[..12].to_vec();
        frame.extend_from_slice(&0x8100u16.to_be_bytes());
        frame.extend_from_slice(&crate::epoch::epoch_tag(3).to_be_bytes());
        frame.extend_from_slice(&inner[12..]);
        let key = FlowKey::extract(1, &frame).unwrap();
        assert_eq!(key.vlan, None);
        assert_eq!(key.epoch, Some(crate::epoch::epoch_tag(3)));
        assert_eq!(key.ethertype, 0x0800);
        assert!(key.ipv4.is_some());
    }

    #[test]
    fn too_short_is_none() {
        assert!(FlowKey::extract(1, &[0u8; 13]).is_none());
    }

    #[test]
    fn hash_stable_per_flow_and_ignores_port() {
        let f1 = PacketBuilder::udp(M1, IP1, 1234, M2, IP2, 53, b"a");
        let f2 = PacketBuilder::udp(M1, IP1, 1234, M2, IP2, 53, b"bbbb");
        let k1 = FlowKey::extract(1, &f1).unwrap();
        let k2 = FlowKey::extract(9, &f2).unwrap();
        assert_eq!(k1.flow_hash(), k2.flow_hash());

        let f3 = PacketBuilder::udp(M1, IP1, 1235, M2, IP2, 53, b"a");
        let k3 = FlowKey::extract(1, &f3).unwrap();
        assert_ne!(k1.flow_hash(), k3.flow_hash());
    }

    #[test]
    fn hash_for_non_ip_uses_l2() {
        let a = PacketBuilder::arp_request(M1, IP1, IP2);
        let b = PacketBuilder::arp_request(M2, IP2, IP1);
        let ka = FlowKey::extract(1, &a).unwrap();
        let kb = FlowKey::extract(1, &b).unwrap();
        assert_ne!(ka.flow_hash(), kb.flow_hash());
    }
}
