//! Priority-ordered flow tables with timeouts and counters.

use crate::action::Action;
use crate::key::FlowKey;
use crate::matching::{FlowMatch, KeyMask};
use crate::Nanos;

/// What a controller supplies when adding a flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowSpec {
    /// Match priority; higher wins.
    pub priority: u16,
    /// The match.
    pub matcher: FlowMatch,
    /// Action list, applied in order.
    pub actions: Vec<Action>,
    /// Continue processing in a later table after the action list.
    pub goto_table: Option<u8>,
    /// Opaque controller cookie.
    pub cookie: u64,
    /// Evict if unmatched for this long. `0` = never.
    pub idle_timeout: Nanos,
    /// Evict this long after installation regardless of use. `0` = never.
    pub hard_timeout: Nanos,
    /// Eviction weight under [`OverflowPolicy::Evict`]: when the table is
    /// full, the entry with the lowest `(importance, last_hit)` goes
    /// first. Default 0 (evicted before anything marked important).
    pub importance: u16,
}

impl FlowSpec {
    /// A spec with the given priority, match and actions; no timeouts,
    /// no goto, cookie 0.
    pub fn new(priority: u16, matcher: FlowMatch, actions: Vec<Action>) -> FlowSpec {
        FlowSpec {
            priority,
            matcher,
            actions,
            goto_table: None,
            cookie: 0,
            idle_timeout: 0,
            hard_timeout: 0,
            importance: 0,
        }
    }

    /// Builder: set timeouts.
    pub fn with_timeouts(mut self, idle: Nanos, hard: Nanos) -> FlowSpec {
        self.idle_timeout = idle;
        self.hard_timeout = hard;
        self
    }

    /// Builder: set the cookie.
    pub fn with_cookie(mut self, cookie: u64) -> FlowSpec {
        self.cookie = cookie;
        self
    }

    /// Builder: continue in a later table.
    pub fn with_goto(mut self, table: u8) -> FlowSpec {
        self.goto_table = Some(table);
        self
    }

    /// Builder: set the eviction importance.
    pub fn with_importance(mut self, importance: u16) -> FlowSpec {
        self.importance = importance;
        self
    }
}

/// An installed entry: the spec plus its counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowEntry {
    /// The controller-supplied parameters.
    pub spec: FlowSpec,
    /// Installation time.
    pub installed_at: Nanos,
    /// Last packet hit (== `installed_at` when unused).
    pub last_hit: Nanos,
    /// Packets matched.
    pub packets: u64,
    /// Bytes matched.
    pub bytes: u64,
    /// Insertion sequence, breaking priority ties deterministically
    /// (earlier installation wins).
    seq: u64,
}

/// Why an entry was removed (reported to the controller).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemovedReason {
    /// Idle timeout expired.
    IdleTimeout,
    /// Hard timeout expired.
    HardTimeout,
    /// Deleted by a controller request.
    Delete,
    /// Displaced by a capacity eviction ([`OverflowPolicy::Evict`]).
    Eviction,
}

/// What a full table does with a new install.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Bounce the add; the agent reports `TABLE_FULL` to the controller.
    Refuse,
    /// Make room by evicting the entry with the lowest
    /// `(importance, last_hit)` — oldest install breaks remaining ties.
    Evict,
}

/// What [`FlowTable::add`] did with the spec.
#[derive(Debug, Clone, PartialEq)]
pub enum AddOutcome {
    /// Installed (or replaced an identical `(priority, match)` entry).
    Added,
    /// Table full under [`OverflowPolicy::Refuse`]; nothing changed.
    Refused,
    /// Installed after evicting the returned victims (normally one;
    /// more only if the limit was tightened below current occupancy).
    Evicted(Vec<FlowEntry>),
}

/// A single flow table.
#[derive(Debug, Clone, Default)]
pub struct FlowTable {
    /// Sorted by (priority desc, seq asc).
    entries: Vec<FlowEntry>,
    next_seq: u64,
    /// Capacity bound and overflow policy; `None` = unbounded.
    limit: Option<(usize, OverflowPolicy)>,
    /// Lookups that matched no entry.
    pub misses: u64,
    /// Lookups that matched an entry.
    pub hits: u64,
    /// Entries displaced by capacity eviction since creation.
    pub evictions: u64,
    /// Adds bounced by [`OverflowPolicy::Refuse`] since creation.
    pub refusals: u64,
}

impl FlowTable {
    /// An empty table.
    pub fn new() -> FlowTable {
        FlowTable::default()
    }

    /// Bound the table at `max_entries` (clamped to ≥ 1) under `policy`.
    /// Existing excess entries stay until the next add forces the issue.
    pub fn set_limit(&mut self, max_entries: usize, policy: OverflowPolicy) {
        self.limit = Some((max_entries.max(1), policy));
    }

    /// The configured capacity bound, if any. `None` = unbounded.
    pub fn max_entries(&self) -> Option<usize> {
        self.limit.map(|(max, _)| max)
    }

    /// Number of installed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in match order.
    pub fn entries(&self) -> impl Iterator<Item = &FlowEntry> {
        self.entries.iter()
    }

    /// Install `spec`. An entry with identical (priority, match) is
    /// replaced in place, preserving OpenFlow ADD semantics (counters
    /// reset) — replacement never counts against capacity. A fresh
    /// insert into a full table follows the configured
    /// [`OverflowPolicy`]; see [`AddOutcome`].
    pub fn add(&mut self, spec: FlowSpec, now: Nanos) -> AddOutcome {
        if let Some(existing) = self
            .entries
            .iter_mut()
            .find(|e| e.spec.priority == spec.priority && e.spec.matcher == spec.matcher)
        {
            let seq = existing.seq;
            *existing = FlowEntry {
                spec,
                installed_at: now,
                last_hit: now,
                packets: 0,
                bytes: 0,
                seq,
            };
            return AddOutcome::Added;
        }
        let mut victims = Vec::new();
        if let Some((max, policy)) = self.limit {
            while self.entries.len() >= max {
                match policy {
                    OverflowPolicy::Refuse => {
                        self.refusals += 1;
                        return AddOutcome::Refused;
                    }
                    OverflowPolicy::Evict => match self.pick_victim() {
                        Some(idx) => {
                            victims.push(self.entries.remove(idx));
                            self.evictions += 1;
                        }
                        None => break,
                    },
                }
            }
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = FlowEntry {
            spec,
            installed_at: now,
            last_hit: now,
            packets: 0,
            bytes: 0,
            seq,
        };
        // Insert keeping (priority desc, seq asc) order.
        let pos = self
            .entries
            .partition_point(|e| e.spec.priority >= entry.spec.priority);
        self.entries.insert(pos, entry);
        if victims.is_empty() {
            AddOutcome::Added
        } else {
            AddOutcome::Evicted(victims)
        }
    }

    /// The eviction victim: lowest `(importance, last_hit, seq)`.
    fn pick_victim(&self) -> Option<usize> {
        self.entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| (e.spec.importance, e.last_hit, e.seq))
            .map(|(idx, _)| idx)
    }

    /// Delete the entry with exactly this (priority, match). Returns it if
    /// present.
    pub fn delete_strict(&mut self, priority: u16, matcher: &FlowMatch) -> Option<FlowEntry> {
        let pos = self
            .entries
            .iter()
            .position(|e| e.spec.priority == priority && e.spec.matcher == *matcher)?;
        Some(self.entries.remove(pos))
    }

    /// Delete every entry whose cookie equals `cookie`; returns them.
    pub fn delete_by_cookie(&mut self, cookie: u64) -> Vec<FlowEntry> {
        let (gone, keep) = self
            .entries
            .drain(..)
            .partition(|e| e.spec.cookie == cookie);
        self.entries = keep;
        gone
    }

    /// Delete all entries; returns them.
    pub fn clear(&mut self) -> Vec<FlowEntry> {
        self.entries.drain(..).collect()
    }

    /// The highest-priority matching entry, updating its counters.
    pub fn lookup(&mut self, key: &FlowKey, frame_len: usize, now: Nanos) -> Option<&FlowEntry> {
        match self
            .entries
            .iter_mut()
            .find(|e| e.spec.matcher.matches(key))
        {
            Some(entry) => {
                entry.packets += 1;
                entry.bytes += frame_len as u64;
                entry.last_hit = now;
                self.hits += 1;
                Some(&*entry)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Like [`FlowTable::lookup`], but accumulates every key field the
    /// scan consulted — across non-matching higher-priority entries and
    /// the matching one — into `mask`, and also reports the matched
    /// entry's position for cache trajectory recording. The position is
    /// stable until the table is mutated (the flow cache invalidates on
    /// any mutation).
    pub fn lookup_with_mask(
        &mut self,
        key: &FlowKey,
        frame_len: usize,
        now: Nanos,
        mask: &mut KeyMask,
    ) -> Option<(usize, &FlowEntry)> {
        match self
            .entries
            .iter()
            .position(|e| e.spec.matcher.matches_masked(key, mask))
        {
            Some(idx) => {
                let entry = &mut self.entries[idx];
                entry.packets += 1;
                entry.bytes += frame_len as u64;
                entry.last_hit = now;
                self.hits += 1;
                Some((idx, &self.entries[idx]))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Credit a cache-replayed packet to the entry at `idx`, exactly as
    /// a slow-path [`FlowTable::lookup`] hit would: per-entry packet and
    /// byte counters, idle-timeout freshness, and the table hit counter.
    pub fn record_hit(&mut self, idx: usize, frame_len: usize, now: Nanos) {
        if let Some(entry) = self.entries.get_mut(idx) {
            entry.packets += 1;
            entry.bytes += frame_len as u64;
            entry.last_hit = now;
            self.hits += 1;
        }
    }

    /// Credit a cache-replayed table miss, as a slow-path lookup would.
    pub fn record_miss(&mut self) {
        self.misses += 1;
    }

    /// A read-only lookup that leaves counters untouched (for stats and
    /// conflict analysis).
    pub fn peek(&self, key: &FlowKey) -> Option<&FlowEntry> {
        self.entries.iter().find(|e| e.spec.matcher.matches(key))
    }

    /// Evict expired entries; returns them with the reason, for
    /// FLOW_REMOVED notifications.
    pub fn expire(&mut self, now: Nanos) -> Vec<(FlowEntry, RemovedReason)> {
        let mut removed = Vec::new();
        self.entries.retain(|e| {
            if e.spec.hard_timeout > 0 && now >= e.installed_at + e.spec.hard_timeout {
                removed.push((e.clone(), RemovedReason::HardTimeout));
                false
            } else if e.spec.idle_timeout > 0 && now >= e.last_hit + e.spec.idle_timeout {
                removed.push((e.clone(), RemovedReason::IdleTimeout));
                false
            } else {
                true
            }
        });
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zen_wire::builder::PacketBuilder;
    use zen_wire::{EthernetAddress, Ipv4Address};

    const M1: EthernetAddress = EthernetAddress([2, 0, 0, 0, 0, 1]);
    const M2: EthernetAddress = EthernetAddress([2, 0, 0, 0, 0, 2]);

    fn key(dst_port: u16) -> FlowKey {
        let frame = PacketBuilder::udp(
            M1,
            Ipv4Address::new(10, 0, 0, 1),
            999,
            M2,
            Ipv4Address::new(10, 0, 0, 2),
            dst_port,
            b"x",
        );
        FlowKey::extract(1, &frame).unwrap()
    }

    #[test]
    fn priority_order_wins() {
        let mut table = FlowTable::new();
        table.add(FlowSpec::new(1, FlowMatch::ANY, vec![Action::Output(1)]), 0);
        table.add(
            FlowSpec::new(
                10,
                FlowMatch::ANY.with_ip_proto(17),
                vec![Action::Output(2)],
            ),
            0,
        );
        let hit = table.lookup(&key(53), 60, 100).unwrap();
        assert_eq!(hit.spec.actions, vec![Action::Output(2)]);
        assert_eq!(table.hits, 1);
    }

    #[test]
    fn equal_priority_earlier_install_wins() {
        let mut table = FlowTable::new();
        table.add(
            FlowSpec::new(5, FlowMatch::ANY, vec![Action::Output(1)]).with_cookie(1),
            0,
        );
        table.add(
            FlowSpec::new(5, FlowMatch::ANY.with_ip_proto(17), vec![Action::Output(2)])
                .with_cookie(2),
            0,
        );
        let hit = table.lookup(&key(53), 60, 0).unwrap();
        assert_eq!(hit.spec.cookie, 1);
    }

    #[test]
    fn add_replaces_same_priority_and_match() {
        let mut table = FlowTable::new();
        table.add(FlowSpec::new(5, FlowMatch::ANY, vec![Action::Output(1)]), 0);
        table.lookup(&key(1), 60, 1);
        table.add(FlowSpec::new(5, FlowMatch::ANY, vec![Action::Output(9)]), 2);
        assert_eq!(table.len(), 1);
        let hit = table.lookup(&key(1), 60, 3).unwrap();
        assert_eq!(hit.spec.actions, vec![Action::Output(9)]);
        assert_eq!(hit.packets, 1, "counters reset on replace");
    }

    #[test]
    fn counters_accumulate() {
        let mut table = FlowTable::new();
        table.add(FlowSpec::new(5, FlowMatch::ANY, vec![Action::Output(1)]), 0);
        table.lookup(&key(1), 100, 1);
        table.lookup(&key(2), 50, 2);
        let entry = table.entries().next().unwrap();
        assert_eq!(entry.packets, 2);
        assert_eq!(entry.bytes, 150);
        assert_eq!(entry.last_hit, 2);
    }

    #[test]
    fn miss_counts() {
        let mut table = FlowTable::new();
        assert!(table.lookup(&key(1), 60, 0).is_none());
        assert_eq!(table.misses, 1);
    }

    #[test]
    fn idle_timeout_expires_only_when_idle() {
        let mut table = FlowTable::new();
        table.add(
            FlowSpec::new(5, FlowMatch::ANY, vec![Action::Output(1)]).with_timeouts(100, 0),
            0,
        );
        // Kept alive by hits.
        table.lookup(&key(1), 60, 50);
        assert!(table.expire(120).is_empty());
        // Goes idle.
        let removed = table.expire(160);
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].1, RemovedReason::IdleTimeout);
        assert!(table.is_empty());
    }

    #[test]
    fn hard_timeout_expires_despite_hits() {
        let mut table = FlowTable::new();
        table.add(
            FlowSpec::new(5, FlowMatch::ANY, vec![Action::Output(1)]).with_timeouts(0, 100),
            0,
        );
        table.lookup(&key(1), 60, 99);
        let removed = table.expire(100);
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].1, RemovedReason::HardTimeout);
    }

    #[test]
    fn delete_strict_and_by_cookie() {
        let mut table = FlowTable::new();
        let m = FlowMatch::ANY.with_ip_proto(17);
        table.add(FlowSpec::new(5, m, vec![]).with_cookie(7), 0);
        table.add(FlowSpec::new(6, FlowMatch::ANY, vec![]).with_cookie(7), 0);
        assert!(table.delete_strict(5, &m).is_some());
        assert!(table.delete_strict(5, &m).is_none());
        assert_eq!(table.delete_by_cookie(7).len(), 1);
        assert!(table.is_empty());
    }

    #[test]
    fn peek_does_not_count() {
        let mut table = FlowTable::new();
        table.add(FlowSpec::new(5, FlowMatch::ANY, vec![]), 0);
        assert!(table.peek(&key(1)).is_some());
        assert_eq!(table.hits, 0);
        assert_eq!(table.entries().next().unwrap().packets, 0);
    }

    /// A spec distinguished by destination UDP port, so each is a fresh
    /// (priority, match) identity.
    fn port_spec(port: u16) -> FlowSpec {
        FlowSpec::new(
            5,
            FlowMatch::ANY.with_ip_proto(17).with_l4_dst(port),
            vec![Action::Output(1)],
        )
    }

    #[test]
    fn refuse_policy_bounces_add_and_counts() {
        let mut table = FlowTable::new();
        table.set_limit(2, OverflowPolicy::Refuse);
        assert_eq!(table.add(port_spec(1), 0), AddOutcome::Added);
        assert_eq!(table.add(port_spec(2), 1), AddOutcome::Added);
        assert_eq!(table.add(port_spec(3), 2), AddOutcome::Refused);
        assert_eq!(table.len(), 2);
        assert_eq!(table.refusals, 1);
        // A replace of an existing identity still goes through when full.
        assert_eq!(table.add(port_spec(2), 3), AddOutcome::Added);
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn evict_policy_removes_lowest_importance_then_coldest() {
        let mut table = FlowTable::new();
        table.set_limit(3, OverflowPolicy::Evict);
        table.add(port_spec(1).with_importance(7), 0);
        table.add(port_spec(2), 0);
        table.add(port_spec(3), 0);
        // Warm up entry 2 so entry 3 is the coldest importance-0 entry.
        table.lookup(&key(2), 60, 50);
        match table.add(port_spec(4), 100) {
            AddOutcome::Evicted(victims) => {
                assert_eq!(victims.len(), 1);
                assert_eq!(
                    victims[0].spec.matcher,
                    port_spec(3).matcher,
                    "coldest importance-0 entry must go first"
                );
            }
            other => panic!("expected eviction, got {other:?}"),
        }
        assert_eq!(table.len(), 3);
        assert_eq!(table.evictions, 1);
        // The importance-7 entry survives further churn over importance-0
        // peers even though it is the coldest overall.
        table.add(port_spec(5), 200);
        table.add(port_spec(6), 300);
        assert!(table
            .entries()
            .any(|e| e.spec.importance == 7 && e.spec.matcher == port_spec(1).matcher));
        assert_eq!(table.evictions, 3);
    }

    #[test]
    fn evict_ties_break_by_oldest_install() {
        let mut table = FlowTable::new();
        table.set_limit(2, OverflowPolicy::Evict);
        table.add(port_spec(1), 10);
        table.add(port_spec(2), 10);
        match table.add(port_spec(3), 20) {
            AddOutcome::Evicted(victims) => {
                assert_eq!(victims[0].spec.matcher, port_spec(1).matcher);
            }
            other => panic!("expected eviction, got {other:?}"),
        }
    }

    #[test]
    fn tightened_limit_evicts_down_to_bound() {
        let mut table = FlowTable::new();
        table.add(port_spec(1), 0);
        table.add(port_spec(2), 1);
        table.add(port_spec(3), 2);
        table.set_limit(2, OverflowPolicy::Evict);
        match table.add(port_spec(4), 3) {
            AddOutcome::Evicted(victims) => assert_eq!(victims.len(), 2),
            other => panic!("expected eviction, got {other:?}"),
        }
        assert_eq!(table.len(), 2);
        assert_eq!(table.max_entries(), Some(2));
    }
}
