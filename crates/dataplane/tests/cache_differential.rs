//! Differential test for the two-tier flow cache: a cached and an
//! uncached datapath are driven through identical randomized
//! packet/flow-mod interleavings and must stay observably identical —
//! same effect sequences, same entry/table/port counters, same drops.
//!
//! This is the cache's soundness proof in executable form: whatever
//! state the megaflow masks and trajectory replay reach, the slow path
//! would have reached too.

use zen_dataplane::{
    Action, Bucket, Datapath, FlowMatch, FlowSpec, GroupDesc, GroupType, MissPolicy,
};
use zen_wire::builder::PacketBuilder;
use zen_wire::lcg::Lcg;
use zen_wire::{EthernetAddress, Ipv4Address, Ipv4Cidr};

const CASES: usize = 100;
const OPS_PER_CASE: usize = 200;

/// A small universe of frames so cached flows are revisited often.
fn gen_frame(rng: &mut Lcg) -> (u32, Vec<u8>) {
    let in_port = 1 + rng.gen_range(4) as u32;
    let src_ip = Ipv4Address::new(10, 0, rng.gen_range(2) as u8, rng.gen_range(8) as u8);
    let dst_ip = Ipv4Address::new(10, 0, 1 + rng.gen_range(2) as u8, rng.gen_range(8) as u8);
    let sport = 1000 + rng.gen_range(4) as u16;
    let dport = 50 + rng.gen_range(6) as u16;
    let frame = PacketBuilder::udp(
        EthernetAddress::from_id(u64::from(in_port)),
        src_ip,
        sport,
        EthernetAddress::from_id(99),
        dst_ip,
        dport,
        b"differential",
    );
    (in_port, frame)
}

fn gen_cidr(rng: &mut Lcg, third_octet: u8) -> Ipv4Cidr {
    let plen = *rng.choose(&[0u8, 8, 16, 24, 32]).unwrap();
    Ipv4Cidr::new(
        Ipv4Address::new(10, 0, third_octet, rng.gen_range(8) as u8),
        plen,
    )
    .unwrap()
}

fn opt<T>(rng: &mut Lcg, f: impl FnOnce(&mut Lcg) -> T) -> Option<T> {
    if rng.gen_ratio(1, 2) {
        Some(f(rng))
    } else {
        None
    }
}

fn gen_match(rng: &mut Lcg) -> FlowMatch {
    FlowMatch {
        in_port: opt(rng, |r| 1 + r.gen_range(4) as u32),
        ipv4_src: opt(rng, |r| gen_cidr(r, 0)),
        ipv4_dst: opt(rng, |r| {
            let third = 1 + r.gen_range(2) as u8;
            gen_cidr(r, third)
        }),
        l4_dst: opt(rng, |r| 50 + r.gen_range(6) as u16),
        ..FlowMatch::ANY
    }
}

fn gen_actions(rng: &mut Lcg) -> Vec<Action> {
    let pool = [
        Action::Output(1 + rng.gen_range(4) as u32),
        Action::Flood,
        Action::DecTtl,
        Action::SetEthDst(EthernetAddress::from_id(7)),
        Action::ToController { max_len: 48 },
        Action::Meter(1),
        Action::Group(7),
        Action::Output(1 + rng.gen_range(4) as u32),
    ];
    (0..1 + rng.gen_index(3))
        .map(|_| *rng.choose(&pool).unwrap())
        .collect()
}

fn gen_spec(rng: &mut Lcg) -> FlowSpec {
    let mut spec = FlowSpec::new(rng.gen_range(4) as u16, gen_match(rng), gen_actions(rng))
        .with_cookie(rng.gen_range(3))
        .with_timeouts(
            *rng.choose(&[0u64, 40, 90]).unwrap(),
            *rng.choose(&[0u64, 120, 400]).unwrap(),
        );
    if rng.gen_ratio(1, 3) {
        spec = spec.with_goto(1);
    }
    spec
}

fn build_dp(cached: bool) -> Datapath {
    let mut dp = Datapath::new(1, 2, MissPolicy::ToController { max_len: 64 });
    dp.set_flow_cache_enabled(cached);
    for p in 1..=4 {
        dp.add_port(p);
    }
    dp.groups.add(
        7,
        GroupDesc {
            group_type: GroupType::Select,
            buckets: vec![Bucket::output(2), Bucket::output(3), Bucket::output(4)],
        },
    );
    dp.set_meter(1, 80_000, 2_000);
    dp
}

/// (priority, cookie, packets, bytes, last_hit) per installed entry.
type EntrySnap = Vec<(u16, u64, u64, u64, u64)>;
/// (len, hits, misses) per table.
type TableSnap = Vec<(u64, u64, u64)>;
/// Folded rx/tx counters per port.
type PortSnap = Vec<(u64, u64)>;

/// Everything externally observable about a datapath, for equality.
fn snapshot(dp: &Datapath) -> (EntrySnap, TableSnap, PortSnap, u64, u64) {
    let mut entries = Vec::new();
    let mut tables = Vec::new();
    for tid in 0..dp.table_count() as u8 {
        let t = dp.table(tid);
        tables.push((t.len() as u64, t.hits, t.misses));
        for e in t.entries() {
            entries.push((
                e.spec.priority,
                e.spec.cookie,
                e.packets,
                e.bytes,
                e.last_hit,
            ));
        }
    }
    let ports = dp
        .ports()
        .into_iter()
        .map(|p| {
            let s = dp.port_stats(p);
            (
                s.rx_frames + s.tx_frames,
                s.rx_bytes + s.tx_bytes + s.tx_dropped,
            )
        })
        .collect();
    let meter_drops = dp.meter(1).map(|m| m.dropped).unwrap_or(0);
    (entries, tables, ports, dp.pipeline_drops, meter_drops)
}

#[test]
fn cached_and_uncached_datapaths_are_observably_identical() {
    let mut rng = Lcg::new(0xCAC4ED1F);
    let mut total_processes = 0u64;
    for case in 0..CASES {
        let mut cached = build_dp(true);
        let mut uncached = build_dp(false);
        let mut now = 0u64;
        for op in 0..OPS_PER_CASE {
            now += 1 + rng.gen_range(20);
            match rng.gen_index(12) {
                // Mostly traffic, so the cache actually gets exercised.
                0..=6 => {
                    let (in_port, frame) = gen_frame(&mut rng);
                    let a = cached.process(now, in_port, &frame);
                    let b = uncached.process(now, in_port, &frame);
                    assert_eq!(a, b, "effects diverged, case {case} op {op}");
                    total_processes += 1;
                }
                7 => {
                    let table_id = rng.gen_range(2) as u8;
                    let spec = gen_spec(&mut rng);
                    cached.add_flow(table_id, spec.clone(), now);
                    uncached.add_flow(table_id, spec, now);
                }
                8 => {
                    let table_id = rng.gen_range(2) as u8;
                    let priority = rng.gen_range(4) as u16;
                    let matcher = gen_match(&mut rng);
                    let a = cached.delete_flow_strict(table_id, priority, &matcher);
                    let b = uncached.delete_flow_strict(table_id, priority, &matcher);
                    assert_eq!(
                        a.is_some(),
                        b.is_some(),
                        "delete diverged, case {case} op {op}"
                    );
                }
                9 => {
                    let cookie = rng.gen_range(3);
                    let a = cached.delete_flows_by_cookie(cookie);
                    let b = uncached.delete_flows_by_cookie(cookie);
                    assert_eq!(
                        a.len(),
                        b.len(),
                        "cookie delete diverged, case {case} op {op}"
                    );
                }
                10 => {
                    let a = cached.expire(now);
                    let b = uncached.expire(now);
                    assert_eq!(a.len(), b.len(), "expiry diverged, case {case} op {op}");
                }
                _ => {
                    let port = 1 + rng.gen_range(4) as u32;
                    let up = rng.gen_ratio(1, 2);
                    cached.set_port_up(port, up);
                    uncached.set_port_up(port, up);
                }
            }
            assert_eq!(
                snapshot(&cached),
                snapshot(&uncached),
                "state diverged, case {case} op {op}"
            );
        }
        // The two must agree that the cache did (or did not) run.
        assert!(cached.flow_cache_enabled());
        assert!(!uncached.flow_cache_enabled());
        assert_eq!(uncached.cache_stats().hits(), 0);
        assert_eq!(uncached.cache_stats().misses, 0);
    }
    // The interleavings must be long enough to mean something.
    assert!(
        total_processes >= 10_000,
        "only {total_processes} packets processed"
    );
}

#[test]
fn cache_actually_serves_traffic_in_the_differential_mix() {
    // Re-run one shorter mix and confirm the cached datapath answered a
    // healthy share of packets from the cache (the differential test
    // above would pass trivially if the cache never hit).
    let mut rng = Lcg::new(0xCAC4E5EC);
    let mut dp = build_dp(true);
    let mut now = 0u64;
    for _ in 0..2_000 {
        now += 1 + rng.gen_range(20);
        if rng.gen_ratio(1, 40) {
            dp.add_flow(0, gen_spec(&mut rng), now);
        } else {
            let (in_port, frame) = gen_frame(&mut rng);
            dp.process(now, in_port, &frame);
        }
    }
    let stats = dp.cache_stats();
    assert!(stats.hits() > 500, "cache barely used: {stats:?}");
    assert!(stats.inserts > 0);
    assert!(stats.invalidations > 0);
}
