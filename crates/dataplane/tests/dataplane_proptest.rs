//! Property tests for the data plane: flow-table semantics against a
//! naive model, and pipeline totality on arbitrary frames.

use proptest::prelude::*;

use zen_dataplane::{
    Action, Datapath, FlowKey, FlowMatch, FlowSpec, FlowTable, MissPolicy,
};
use zen_wire::builder::PacketBuilder;
use zen_wire::{EthernetAddress, Ipv4Address, Ipv4Cidr};

/// A small universe of keys so matches collide.
fn key_for(seed: u8) -> FlowKey {
    let frame = PacketBuilder::udp(
        EthernetAddress::from_id(u64::from(seed % 4) + 1),
        Ipv4Address::new(10, 0, 0, seed % 8),
        1000 + u16::from(seed % 4),
        EthernetAddress::from_id(u64::from(seed % 3) + 50),
        Ipv4Address::new(10, 0, 1, seed % 8),
        53 + u16::from(seed % 2),
        b"x",
    );
    FlowKey::extract(u32::from(seed % 3) + 1, &frame).unwrap()
}

fn arb_match() -> impl Strategy<Value = FlowMatch> {
    (
        proptest::option::of(1u32..4),
        proptest::option::of(0u8..8),
        proptest::option::of(0u8..8),
        proptest::option::of(50u16..56),
    )
        .prop_map(|(in_port, src_oct, dst_oct, l4)| FlowMatch {
            in_port,
            ipv4_src: src_oct
                .map(|o| Ipv4Cidr::new(Ipv4Address::new(10, 0, 0, o), 32).unwrap()),
            ipv4_dst: dst_oct
                .map(|o| Ipv4Cidr::new(Ipv4Address::new(10, 0, 1, o), 32).unwrap()),
            l4_dst: l4,
            ..FlowMatch::ANY
        })
}

#[derive(Debug, Clone)]
enum Op {
    Add { priority: u16, matcher: FlowMatch, tag: u32 },
    DeleteStrict { priority: u16, matcher: FlowMatch },
    Lookup { seed: u8 },
    Expire { at: u64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u16..4, arb_match(), any::<u32>())
            .prop_map(|(priority, matcher, tag)| Op::Add { priority, matcher, tag }),
        (0u16..4, arb_match()).prop_map(|(priority, matcher)| Op::DeleteStrict { priority, matcher }),
        any::<u8>().prop_map(|seed| Op::Lookup { seed }),
        (0u64..1000).prop_map(|at| Op::Expire { at }),
    ]
}

/// The executable specification of a flow table: a plain list scanned
/// by (priority desc, insertion order asc).
#[derive(Default)]
struct ModelTable {
    entries: Vec<(u16, FlowMatch, u32, u64)>, // priority, match, tag, seq
    next_seq: u64,
}

impl ModelTable {
    fn add(&mut self, priority: u16, matcher: FlowMatch, tag: u32) {
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|(p, m, _, _)| *p == priority && *m == matcher)
        {
            e.2 = tag;
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push((priority, matcher, tag, seq));
    }

    fn delete(&mut self, priority: u16, matcher: &FlowMatch) -> bool {
        let before = self.entries.len();
        self.entries
            .retain(|(p, m, _, _)| !(*p == priority && m == matcher));
        self.entries.len() != before
    }

    fn lookup(&self, key: &FlowKey) -> Option<u32> {
        self.entries
            .iter()
            .filter(|(_, m, _, _)| m.matches(key))
            .max_by(|a, b| a.0.cmp(&b.0).then(b.3.cmp(&a.3)))
            .map(|&(_, _, tag, _)| tag)
    }
}

proptest! {
    #[test]
    fn table_matches_model(ops in proptest::collection::vec(arb_op(), 1..80)) {
        let mut real = FlowTable::new();
        let mut model = ModelTable::default();
        for (i, op) in ops.into_iter().enumerate() {
            match op {
                Op::Add { priority, matcher, tag } => {
                    // Encode the tag in the cookie to compare outcomes.
                    real.add(
                        FlowSpec::new(priority, matcher, vec![Action::Output(1)])
                            .with_cookie(u64::from(tag)),
                        0,
                    );
                    model.add(priority, matcher, tag);
                }
                Op::DeleteStrict { priority, matcher } => {
                    let r = real.delete_strict(priority, &matcher).is_some();
                    let m = model.delete(priority, &matcher);
                    prop_assert_eq!(r, m, "delete mismatch at op {}", i);
                }
                Op::Lookup { seed } => {
                    let key = key_for(seed);
                    let r = real.lookup(&key, 64, 0).map(|e| e.spec.cookie as u32);
                    let m = model.lookup(&key);
                    prop_assert_eq!(r, m, "lookup mismatch at op {}", i);
                }
                Op::Expire { at } => {
                    // No timeouts are configured, so expiry never evicts.
                    prop_assert!(real.expire(at).is_empty());
                }
            }
            prop_assert_eq!(real.len(), model.entries.len(), "len mismatch at op {}", i);
        }
    }

    #[test]
    fn pipeline_total_on_arbitrary_frames(frames in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..200), 1..20)) {
        // A datapath with a few arbitrary rules must process any byte
        // soup without panicking.
        let mut dp = Datapath::new(1, 2, MissPolicy::ToController { max_len: 64 });
        for p in 1..=4 {
            dp.add_port(p);
        }
        dp.add_flow(0, FlowSpec::new(5, FlowMatch::ANY.with_ip_proto(17), vec![Action::Output(2)]), 0);
        dp.add_flow(0, FlowSpec::new(1, FlowMatch::ANY, vec![Action::Flood]).with_goto(1), 0);
        dp.add_flow(1, FlowSpec::new(1, FlowMatch::ANY, vec![Action::DecTtl, Action::Output(3)]), 0);
        for (i, frame) in frames.iter().enumerate() {
            let _ = dp.process(i as u64, 1 + (i as u32 % 4), frame);
        }
    }

    #[test]
    fn idle_and_hard_timeouts_model(idle in 1u64..100, hard in 1u64..100, hits in proptest::collection::vec(1u64..200, 0..10)) {
        let mut table = FlowTable::new();
        table.add(
            FlowSpec::new(1, FlowMatch::ANY, vec![]).with_timeouts(idle, hard),
            0,
        );
        let mut sorted = hits.clone();
        sorted.sort_unstable();
        let mut last_hit = 0u64;
        let mut evicted_at: Option<u64> = None;
        for &t in &sorted {
            // Model: evict when t >= last_hit + idle or t >= hard.
            if evicted_at.is_none() && (t >= last_hit + idle || t >= hard) {
                evicted_at = Some(t);
            }
            let removed = table.expire(t);
            match evicted_at {
                Some(at) if at == t && removed.len() == 1 => {
                    // Evicted exactly now; stop.
                    return Ok(());
                }
                Some(_) => {
                    prop_assert!(removed.len() <= 1);
                    return Ok(());
                }
                None => {
                    prop_assert!(removed.is_empty(), "premature eviction at {}", t);
                    let key = key_for(0);
                    table.lookup(&key, 1, t);
                    last_hit = t;
                }
            }
        }
    }
}
