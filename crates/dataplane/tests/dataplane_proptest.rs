//! Randomized tests for the data plane: flow-table semantics against a
//! naive model, and pipeline totality on arbitrary frames.
//!
//! Driven by the in-tree deterministic [`Lcg`] generator with fixed
//! seeds, so every run exercises the same reproducible inputs.

use zen_dataplane::{Action, Datapath, FlowKey, FlowMatch, FlowSpec, FlowTable, MissPolicy};
use zen_wire::builder::PacketBuilder;
use zen_wire::lcg::Lcg;
use zen_wire::{EthernetAddress, Ipv4Address, Ipv4Cidr};

/// A small universe of keys so matches collide.
fn key_for(seed: u8) -> FlowKey {
    let frame = PacketBuilder::udp(
        EthernetAddress::from_id(u64::from(seed % 4) + 1),
        Ipv4Address::new(10, 0, 0, seed % 8),
        1000 + u16::from(seed % 4),
        EthernetAddress::from_id(u64::from(seed % 3) + 50),
        Ipv4Address::new(10, 0, 1, seed % 8),
        53 + u16::from(seed % 2),
        b"x",
    );
    FlowKey::extract(u32::from(seed % 3) + 1, &frame).unwrap()
}

fn opt<T>(rng: &mut Lcg, f: impl FnOnce(&mut Lcg) -> T) -> Option<T> {
    if rng.gen_ratio(1, 2) {
        Some(f(rng))
    } else {
        None
    }
}

fn gen_match(rng: &mut Lcg) -> FlowMatch {
    FlowMatch {
        in_port: opt(rng, |r| 1 + r.gen_range(3) as u32),
        ipv4_src: opt(rng, |r| {
            Ipv4Cidr::new(Ipv4Address::new(10, 0, 0, r.gen_range(8) as u8), 32).unwrap()
        }),
        ipv4_dst: opt(rng, |r| {
            Ipv4Cidr::new(Ipv4Address::new(10, 0, 1, r.gen_range(8) as u8), 32).unwrap()
        }),
        l4_dst: opt(rng, |r| 50 + r.gen_range(6) as u16),
        ..FlowMatch::ANY
    }
}

#[derive(Debug, Clone)]
enum Op {
    Add {
        priority: u16,
        matcher: FlowMatch,
        tag: u32,
    },
    DeleteStrict {
        priority: u16,
        matcher: FlowMatch,
    },
    Lookup {
        seed: u8,
    },
    Expire {
        at: u64,
    },
}

fn gen_op(rng: &mut Lcg) -> Op {
    match rng.gen_index(4) {
        0 => Op::Add {
            priority: rng.gen_range(4) as u16,
            matcher: gen_match(rng),
            tag: rng.next_u32(),
        },
        1 => Op::DeleteStrict {
            priority: rng.gen_range(4) as u16,
            matcher: gen_match(rng),
        },
        2 => Op::Lookup {
            seed: rng.next_u32() as u8,
        },
        _ => Op::Expire {
            at: rng.gen_range(1000),
        },
    }
}

/// The executable specification of a flow table: a plain list scanned
/// by (priority desc, insertion order asc).
#[derive(Default)]
struct ModelTable {
    entries: Vec<(u16, FlowMatch, u32, u64)>, // priority, match, tag, seq
    next_seq: u64,
}

impl ModelTable {
    fn add(&mut self, priority: u16, matcher: FlowMatch, tag: u32) {
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|(p, m, _, _)| *p == priority && *m == matcher)
        {
            e.2 = tag;
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push((priority, matcher, tag, seq));
    }

    fn delete(&mut self, priority: u16, matcher: &FlowMatch) -> bool {
        let before = self.entries.len();
        self.entries
            .retain(|(p, m, _, _)| !(*p == priority && m == matcher));
        self.entries.len() != before
    }

    fn lookup(&self, key: &FlowKey) -> Option<u32> {
        self.entries
            .iter()
            .filter(|(_, m, _, _)| m.matches(key))
            .max_by(|a, b| a.0.cmp(&b.0).then(b.3.cmp(&a.3)))
            .map(|&(_, _, tag, _)| tag)
    }
}

#[test]
fn table_matches_model() {
    let mut rng = Lcg::new(0xDA7A01);
    for _ in 0..200 {
        let mut real = FlowTable::new();
        let mut model = ModelTable::default();
        let n_ops = 1 + rng.gen_index(79);
        for i in 0..n_ops {
            match gen_op(&mut rng) {
                Op::Add {
                    priority,
                    matcher,
                    tag,
                } => {
                    // Encode the tag in the cookie to compare outcomes.
                    real.add(
                        FlowSpec::new(priority, matcher, vec![Action::Output(1)])
                            .with_cookie(u64::from(tag)),
                        0,
                    );
                    model.add(priority, matcher, tag);
                }
                Op::DeleteStrict { priority, matcher } => {
                    let r = real.delete_strict(priority, &matcher).is_some();
                    let m = model.delete(priority, &matcher);
                    assert_eq!(r, m, "delete mismatch at op {i}");
                }
                Op::Lookup { seed } => {
                    let key = key_for(seed);
                    let r = real.lookup(&key, 64, 0).map(|e| e.spec.cookie as u32);
                    let m = model.lookup(&key);
                    assert_eq!(r, m, "lookup mismatch at op {i}");
                }
                Op::Expire { at } => {
                    // No timeouts are configured, so expiry never evicts.
                    assert!(real.expire(at).is_empty());
                }
            }
            assert_eq!(real.len(), model.entries.len(), "len mismatch at op {i}");
        }
    }
}

#[test]
fn pipeline_total_on_arbitrary_frames() {
    let mut rng = Lcg::new(0xDA7A02);
    for _ in 0..100 {
        // A datapath with a few arbitrary rules must process any byte
        // soup without panicking.
        let mut dp = Datapath::new(1, 2, MissPolicy::ToController { max_len: 64 });
        for p in 1..=4 {
            dp.add_port(p);
        }
        dp.add_flow(
            0,
            FlowSpec::new(5, FlowMatch::ANY.with_ip_proto(17), vec![Action::Output(2)]),
            0,
        );
        dp.add_flow(
            0,
            FlowSpec::new(1, FlowMatch::ANY, vec![Action::Flood]).with_goto(1),
            0,
        );
        dp.add_flow(
            1,
            FlowSpec::new(1, FlowMatch::ANY, vec![Action::DecTtl, Action::Output(3)]),
            0,
        );
        let n_frames = 1 + rng.gen_index(19);
        for i in 0..n_frames {
            let n = rng.gen_index(200);
            let frame = rng.gen_bytes(n);
            let _ = dp.process(i as u64, 1 + (i as u32 % 4), &frame);
        }
    }
}

#[test]
fn idle_and_hard_timeouts_model() {
    let mut rng = Lcg::new(0xDA7A03);
    'case: for _ in 0..500 {
        let idle = 1 + rng.gen_range(99);
        let hard = 1 + rng.gen_range(99);
        let mut hits: Vec<u64> = (0..rng.gen_index(10))
            .map(|_| 1 + rng.gen_range(199))
            .collect();
        hits.sort_unstable();

        let mut table = FlowTable::new();
        table.add(
            FlowSpec::new(1, FlowMatch::ANY, vec![]).with_timeouts(idle, hard),
            0,
        );
        let mut last_hit = 0u64;
        let mut evicted_at: Option<u64> = None;
        for &t in &hits {
            // Model: evict when t >= last_hit + idle or t >= hard.
            if evicted_at.is_none() && (t >= last_hit + idle || t >= hard) {
                evicted_at = Some(t);
            }
            let removed = table.expire(t);
            match evicted_at {
                Some(at) if at == t && removed.len() == 1 => {
                    // Evicted exactly now; next case.
                    continue 'case;
                }
                Some(_) => {
                    assert!(removed.len() <= 1);
                    continue 'case;
                }
                None => {
                    assert!(removed.is_empty(), "premature eviction at {t}");
                    let key = key_for(0);
                    table.lookup(&key, 1, t);
                    last_hit = t;
                }
            }
        }
    }
}
