//! Differential test for the batched pipeline: a datapath driven
//! through `process_batch` and one driven frame-by-frame through the
//! scalar `process` shim see identical randomized traffic/flow-mod
//! interleavings and must stay observably identical — same effect
//! sequences, same entry/table/port counters, same drops, same meter
//! state.
//!
//! This is the batch path's soundness proof in executable form: probe
//! memoization and buffer reuse may only amortize costs, never change
//! what the pipeline does. Cache probe counters are deliberately NOT
//! compared — one probe per microflow group per batch (instead of one
//! per packet) is the amortization being tested.

use zen_dataplane::{
    Action, Bucket, Datapath, Effect, FlowMatch, FlowSpec, GroupDesc, GroupType, MissPolicy,
};
use zen_wire::builder::PacketBuilder;
use zen_wire::lcg::Lcg;
use zen_wire::{EthernetAddress, Ipv4Address, Ipv4Cidr};

const CASES: usize = 60;
const OPS_PER_CASE: usize = 120;
const MAX_BATCH: u64 = 16;

/// A small universe of frames so batches revisit microflow groups.
fn gen_frame(rng: &mut Lcg) -> (u32, Vec<u8>) {
    let in_port = 1 + rng.gen_range(4) as u32;
    let src_ip = Ipv4Address::new(10, 0, rng.gen_range(2) as u8, rng.gen_range(8) as u8);
    let dst_ip = Ipv4Address::new(10, 0, 1 + rng.gen_range(2) as u8, rng.gen_range(8) as u8);
    let sport = 1000 + rng.gen_range(4) as u16;
    let dport = 50 + rng.gen_range(6) as u16;
    let frame = PacketBuilder::udp(
        EthernetAddress::from_id(u64::from(in_port)),
        src_ip,
        sport,
        EthernetAddress::from_id(99),
        dst_ip,
        dport,
        b"batch-differential",
    );
    (in_port, frame)
}

fn gen_cidr(rng: &mut Lcg, third_octet: u8) -> Ipv4Cidr {
    let plen = *rng.choose(&[0u8, 8, 16, 24, 32]).unwrap();
    Ipv4Cidr::new(
        Ipv4Address::new(10, 0, third_octet, rng.gen_range(8) as u8),
        plen,
    )
    .unwrap()
}

fn opt<T>(rng: &mut Lcg, f: impl FnOnce(&mut Lcg) -> T) -> Option<T> {
    if rng.gen_ratio(1, 2) {
        Some(f(rng))
    } else {
        None
    }
}

fn gen_match(rng: &mut Lcg) -> FlowMatch {
    FlowMatch {
        in_port: opt(rng, |r| 1 + r.gen_range(4) as u32),
        ipv4_src: opt(rng, |r| gen_cidr(r, 0)),
        ipv4_dst: opt(rng, |r| {
            let third = 1 + r.gen_range(2) as u8;
            gen_cidr(r, third)
        }),
        l4_dst: opt(rng, |r| 50 + r.gen_range(6) as u16),
        ..FlowMatch::ANY
    }
}

fn gen_actions(rng: &mut Lcg) -> Vec<Action> {
    let pool = [
        Action::Output(1 + rng.gen_range(4) as u32),
        Action::Flood,
        Action::DecTtl,
        Action::SetEthDst(EthernetAddress::from_id(7)),
        Action::ToController { max_len: 48 },
        Action::Meter(1),
        Action::Group(7),
        Action::Output(1 + rng.gen_range(4) as u32),
    ];
    (0..1 + rng.gen_index(3))
        .map(|_| *rng.choose(&pool).unwrap())
        .collect()
}

fn gen_spec(rng: &mut Lcg) -> FlowSpec {
    let mut spec = FlowSpec::new(rng.gen_range(4) as u16, gen_match(rng), gen_actions(rng))
        .with_cookie(rng.gen_range(3))
        .with_timeouts(
            *rng.choose(&[0u64, 40, 90]).unwrap(),
            *rng.choose(&[0u64, 120, 400]).unwrap(),
        );
    if rng.gen_ratio(1, 3) {
        spec = spec.with_goto(1);
    }
    spec
}

fn build_dp(cached: bool) -> Datapath {
    let mut dp = Datapath::new(1, 2, MissPolicy::ToController { max_len: 64 });
    dp.set_flow_cache_enabled(cached);
    for p in 1..=4 {
        dp.add_port(p);
    }
    dp.groups.add(
        7,
        GroupDesc {
            group_type: GroupType::Select,
            buckets: vec![Bucket::output(2), Bucket::output(3), Bucket::output(4)],
        },
    );
    dp.set_meter(1, 80_000, 2_000);
    dp
}

/// (priority, cookie, packets, bytes, last_hit) per installed entry.
type EntrySnap = Vec<(u16, u64, u64, u64, u64)>;
/// (len, hits, misses) per table.
type TableSnap = Vec<(u64, u64, u64)>;
/// Per-port counters, every field separately.
type PortSnap = Vec<(u64, u64, u64, u64, u64)>;

/// Everything externally observable about a datapath, for equality.
/// Cache probe counters are excluded by design (see module docs).
fn snapshot(dp: &Datapath) -> (EntrySnap, TableSnap, PortSnap, u64, u64, usize) {
    let mut entries = Vec::new();
    let mut tables = Vec::new();
    for tid in 0..dp.table_count() as u8 {
        let t = dp.table(tid);
        tables.push((t.len() as u64, t.hits, t.misses));
        for e in t.entries() {
            entries.push((
                e.spec.priority,
                e.spec.cookie,
                e.packets,
                e.bytes,
                e.last_hit,
            ));
        }
    }
    let ports = dp
        .ports()
        .into_iter()
        .map(|p| {
            let s = dp.port_stats(p);
            (
                s.rx_frames,
                s.rx_bytes,
                s.tx_frames,
                s.tx_bytes,
                s.tx_dropped,
            )
        })
        .collect();
    let meter_drops = dp.meter(1).map(|m| m.dropped).unwrap_or(0);
    (
        entries,
        tables,
        ports,
        dp.pipeline_drops,
        meter_drops,
        dp.flow_count(),
    )
}

fn run_differential(seed: u64, cache_enabled: bool) -> u64 {
    let mut rng = Lcg::new(seed);
    let mut total_frames = 0u64;
    for case in 0..CASES {
        let mut batched = build_dp(cache_enabled);
        let mut scalar = build_dp(cache_enabled);
        let mut now = 0u64;
        for op in 0..OPS_PER_CASE {
            now += 1 + rng.gen_range(20);
            match rng.gen_index(12) {
                // Mostly traffic, so batches actually form groups.
                0..=6 => {
                    let n = 1 + rng.gen_range(MAX_BATCH) as usize;
                    let frames: Vec<(u32, Vec<u8>)> = (0..n).map(|_| gen_frame(&mut rng)).collect();
                    let batch: Vec<(u32, &[u8])> =
                        frames.iter().map(|(p, f)| (*p, f.as_slice())).collect();
                    let mut batch_effects = Vec::new();
                    batched.process_batch(now, &batch, &mut batch_effects);
                    let scalar_effects: Vec<Effect> = frames
                        .iter()
                        .flat_map(|(p, f)| scalar.process(now, *p, f))
                        .collect();
                    assert_eq!(
                        batch_effects, scalar_effects,
                        "effects diverged, case {case} op {op}"
                    );
                    total_frames += n as u64;
                }
                7 => {
                    let table_id = rng.gen_range(2) as u8;
                    let spec = gen_spec(&mut rng);
                    batched.add_flow(table_id, spec.clone(), now);
                    scalar.add_flow(table_id, spec, now);
                }
                8 => {
                    let table_id = rng.gen_range(2) as u8;
                    let priority = rng.gen_range(4) as u16;
                    let matcher = gen_match(&mut rng);
                    let a = batched.delete_flow_strict(table_id, priority, &matcher);
                    let b = scalar.delete_flow_strict(table_id, priority, &matcher);
                    assert_eq!(
                        a.is_some(),
                        b.is_some(),
                        "delete diverged, case {case} op {op}"
                    );
                }
                9 => {
                    let cookie = rng.gen_range(3);
                    let a = batched.delete_flows_by_cookie(cookie);
                    let b = scalar.delete_flows_by_cookie(cookie);
                    assert_eq!(
                        a.len(),
                        b.len(),
                        "cookie delete diverged, case {case} op {op}"
                    );
                }
                10 => {
                    let a = batched.expire(now);
                    let b = scalar.expire(now);
                    assert_eq!(a.len(), b.len(), "expiry diverged, case {case} op {op}");
                }
                _ => {
                    let port = 1 + rng.gen_range(4) as u32;
                    let up = rng.gen_ratio(1, 2);
                    batched.set_port_up(port, up);
                    scalar.set_port_up(port, up);
                }
            }
            assert_eq!(
                snapshot(&batched),
                snapshot(&scalar),
                "state diverged, case {case} op {op}"
            );
        }
    }
    total_frames
}

#[test]
fn batched_and_scalar_pipelines_are_observably_identical() {
    let total = run_differential(0xBA7C4ED1, true);
    // The interleavings must be long enough to mean something.
    assert!(total >= 10_000, "only {total} frames processed");
}

#[test]
fn batched_and_scalar_agree_with_cache_disabled() {
    // Without the cache every frame takes the slow path; batching must
    // still only amortize, never reorder or merge.
    let total = run_differential(0xBA7C4ED2, false);
    assert!(total >= 10_000, "only {total} frames processed");
}

#[test]
fn batch_probes_are_amortized_across_groups() {
    // A homogeneous batch must cost one cache probe, not one per frame.
    let mut dp = build_dp(true);
    dp.add_flow(
        0,
        FlowSpec::new(1, FlowMatch::ANY, vec![Action::Output(2)]),
        0,
    );
    let frame = PacketBuilder::udp(
        EthernetAddress::from_id(1),
        Ipv4Address::new(10, 0, 0, 1),
        1000,
        EthernetAddress::from_id(99),
        Ipv4Address::new(10, 0, 1, 1),
        50,
        b"warm",
    );
    // Warm the cache with one scalar call (one miss, one insert).
    dp.process(1, 1, &frame);
    let warm = dp.cache_stats();
    let batch: Vec<(u32, &[u8])> = (0..64).map(|_| (1u32, frame.as_slice())).collect();
    let mut effects = Vec::new();
    dp.process_batch(2, &batch, &mut effects);
    assert_eq!(effects.len(), 64, "every frame still produced its output");
    let after = dp.cache_stats();
    assert_eq!(
        after.hits() - warm.hits(),
        1,
        "one probe for the whole 64-frame group"
    );
    assert_eq!(after.misses, warm.misses);
}

#[test]
fn empty_batch_is_a_no_op() {
    let mut dp = build_dp(true);
    let before = snapshot(&dp);
    let mut effects = Vec::new();
    dp.process_batch(5, &[], &mut effects);
    assert!(effects.is_empty());
    assert_eq!(snapshot(&dp), before);
}
