//! Edge-case tests for flow-cache invalidation: timeouts firing
//! mid-burst, cookie deletes wiping megaflows that cover live traffic,
//! and port state changing while an output effect is cached. Each case
//! asserts both the cached datapath's observable behaviour and that the
//! invalidation counters moved.

use zen_dataplane::{Action, Datapath, Effect, FlowKey, FlowMatch, FlowSpec, MissPolicy};
use zen_wire::builder::PacketBuilder;
use zen_wire::{EthernetAddress, Ipv4Address, Ipv4Cidr};

const M1: EthernetAddress = EthernetAddress([2, 0, 0, 0, 0, 1]);
const M2: EthernetAddress = EthernetAddress([2, 0, 0, 0, 0, 2]);
const IP1: Ipv4Address = Ipv4Address::new(10, 0, 0, 1);
const IP2: Ipv4Address = Ipv4Address::new(10, 0, 1, 1);

fn udp(dst_port: u16) -> Vec<u8> {
    PacketBuilder::udp(M1, IP1, 999, M2, IP2, dst_port, b"burst")
}

fn dp() -> Datapath {
    let mut dp = Datapath::new(1, 1, MissPolicy::Drop);
    for p in 1..=3 {
        dp.add_port(p);
    }
    dp
}

fn out_ports(effects: &[Effect]) -> Vec<u32> {
    effects
        .iter()
        .filter_map(|e| match e {
            Effect::Output { port, .. } => Some(*port),
            _ => None,
        })
        .collect()
}

#[test]
fn idle_timeout_expiry_mid_burst_invalidates() {
    let mut dp = dp();
    dp.add_flow(
        0,
        FlowSpec::new(10, FlowMatch::ANY.with_l4_dst(53), vec![Action::Output(2)])
            .with_timeouts(100, 0),
        0,
    );
    // Burst: first packet takes the slow path, the rest hit the cache
    // and — critically — keep refreshing the entry's idle timer.
    for t in 0..5 {
        assert_eq!(out_ports(&dp.process(t * 10, 1, &udp(53))), vec![2]);
    }
    assert!(dp.cache_stats().hits() >= 4);
    // Replays bumped last_hit, so expiry at last_hit + idle - 1 is a
    // no-op: cached hits must count as activity exactly like slow-path
    // hits, or idle timeouts would fire under live traffic.
    assert!(dp.expire(40 + 99).is_empty());
    // Past the idle horizon the entry goes, and the cache goes with it.
    let gen_before = dp.cache_generation();
    let removed = dp.expire(40 + 100);
    assert_eq!(removed.len(), 1);
    assert_eq!(dp.cache_generation(), gen_before + 1);
    // The stale trajectory must not serve the next packet.
    assert!(dp.process(500, 1, &udp(53)).is_empty());
    assert_eq!(dp.pipeline_drops, 1);
}

#[test]
fn hard_timeout_expiry_mid_burst_invalidates() {
    let mut dp = dp();
    dp.add_flow(
        0,
        FlowSpec::new(10, FlowMatch::ANY, vec![Action::Output(2)]).with_timeouts(0, 50),
        0,
    );
    // Traffic right up to the hard deadline keeps hitting the cache but
    // cannot extend the entry's life.
    for t in 0..5 {
        assert_eq!(out_ports(&dp.process(t * 10, 1, &udp(1))), vec![2]);
    }
    let invalidations_before = dp.cache_stats().invalidations;
    assert_eq!(dp.expire(50).len(), 1);
    assert!(dp.process(51, 1, &udp(1)).is_empty());
    assert_eq!(dp.cache_stats().invalidations, invalidations_before + 1);
}

#[test]
fn delete_by_cookie_wipes_megaflow_covering_live_traffic() {
    let mut dp = dp();
    // A wildcard rule: the megaflow mask covers only l4_dst, so packets
    // to many different source ports share one megaflow entry.
    dp.add_flow(
        0,
        FlowSpec::new(10, FlowMatch::ANY.with_l4_dst(80), vec![Action::Output(2)])
            .with_cookie(0xfeed),
        0,
    );
    // Distinct flow keys (different dst ports on the builder vary the
    // key), same megaflow. Warm the cache with live traffic.
    for t in 0..20 {
        dp.process(t, 1, &udp(80));
    }
    assert!(dp.cache_stats().hits() >= 19);
    assert!(dp.cache_len() > 0);
    // Delete the rule by cookie while its megaflow is hot.
    assert_eq!(dp.delete_flows_by_cookie(0xfeed).len(), 1);
    assert_eq!(dp.cache_len(), 0, "live megaflow survived the delete");
    // The very next packet must see the post-delete tables.
    assert!(dp.process(100, 1, &udp(80)).is_empty());
    assert_eq!(dp.pipeline_drops, 1);
    // A cookie delete that removes nothing must not thrash the cache.
    dp.process(101, 1, &udp(80)); // re-warm (miss path)
    let gen = dp.cache_generation();
    assert!(dp.delete_flows_by_cookie(0xbeef).is_empty());
    assert_eq!(dp.cache_generation(), gen);
}

#[test]
fn port_down_with_cached_output_effect() {
    let mut dp = dp();
    dp.add_flow(
        0,
        FlowSpec::new(10, FlowMatch::ANY, vec![Action::Output(2)]),
        0,
    );
    assert_eq!(out_ports(&dp.process(0, 1, &udp(1))), vec![2]);
    assert_eq!(out_ports(&dp.process(1, 1, &udp(1))), vec![2]);
    assert_eq!(dp.cache_stats().micro_hits, 1);
    // Take the cached egress port down. The cache is invalidated and
    // the replayed/slow path both account the drop at egress.
    let gen = dp.cache_generation();
    dp.set_port_up(2, false);
    assert_eq!(dp.cache_generation(), gen + 1);
    let effects = dp.process(2, 1, &udp(1));
    assert_eq!(out_ports(&effects), vec![2], "intent is still reported");
    assert!(dp.filter_live_outputs(effects).is_empty());
    assert_eq!(dp.port_stats(2).tx_dropped, 1);
    // Setting the same state again is a no-op, not an invalidation.
    let gen = dp.cache_generation();
    dp.set_port_up(2, false);
    assert_eq!(dp.cache_generation(), gen);
    // Port back up: invalidate again, traffic flows, counters resume.
    dp.set_port_up(2, true);
    let effects = dp.process(3, 1, &udp(1));
    assert_eq!(dp.filter_live_outputs(effects).len(), 1);
}

#[test]
fn flood_membership_tracks_port_changes_through_the_cache() {
    let mut dp = dp();
    dp.add_flow(0, FlowSpec::new(1, FlowMatch::ANY, vec![Action::Flood]), 0);
    assert_eq!(out_ports(&dp.process(0, 1, &udp(1))), vec![2, 3]);
    assert_eq!(out_ports(&dp.process(1, 1, &udp(1))), vec![2, 3]);
    dp.set_port_up(3, false);
    assert_eq!(out_ports(&dp.process(2, 1, &udp(1))), vec![2]);
    // A new port joins the flood set immediately, cached or not.
    dp.add_port(4);
    assert_eq!(out_ports(&dp.process(3, 1, &udp(1))), vec![2, 4]);
}

#[test]
fn add_flow_shadowing_a_cached_trajectory_takes_effect_immediately() {
    let mut dp = dp();
    dp.add_flow(
        0,
        FlowSpec::new(1, FlowMatch::ANY, vec![Action::Output(2)]),
        0,
    );
    for t in 0..3 {
        assert_eq!(out_ports(&dp.process(t, 1, &udp(53))), vec![2]);
    }
    // Higher-priority rule for the same traffic: the cached trajectory
    // for this exact key is now wrong and must not be served.
    dp.add_flow(
        0,
        FlowSpec::new(
            9,
            FlowMatch::ANY.with_ip_proto(17).with_l4_dst(53),
            vec![Action::Output(3)],
        ),
        0,
    );
    assert_eq!(out_ports(&dp.process(10, 1, &udp(53))), vec![3]);
}

#[test]
fn meter_state_is_shared_between_cached_and_slow_path() {
    let mut dp = dp();
    dp.set_meter(1, 8_000, 50); // one ~43-byte frame per burst
    dp.add_flow(
        0,
        FlowSpec::new(1, FlowMatch::ANY, vec![Action::Meter(1), Action::Output(2)]),
        0,
    );
    let small = PacketBuilder::udp(M1, IP1, 1, M2, IP2, 2, b"x");
    // First packet: slow path, passes the meter, gets cached.
    assert!(!dp.process(0, 1, &small).is_empty());
    // Second at the same instant: replay hits the same token bucket and
    // is dropped mid-replay — cached and uncached agree on metering.
    assert!(dp.process(0, 1, &small).is_empty());
    assert_eq!(dp.cache_stats().micro_hits, 1);
    assert_eq!(dp.meter(1).unwrap().dropped, 1);
    // Reconfiguring the meter invalidates cached trajectories.
    let gen = dp.cache_generation();
    dp.set_meter(1, 1_000_000, 10_000);
    assert_eq!(dp.cache_generation(), gen + 1);
    assert!(!dp.process(1_000_000_000, 1, &small).is_empty());
}

#[test]
fn megaflow_mask_does_not_overgeneralize_across_rules() {
    let mut dp = dp();
    // Rule consults l4_dst: the megaflow mask must include it, so a
    // packet to another port must NOT reuse the cached trajectory.
    dp.add_flow(
        0,
        FlowSpec::new(10, FlowMatch::ANY.with_l4_dst(53), vec![Action::Output(2)]),
        0,
    );
    dp.add_flow(
        0,
        FlowSpec::new(5, FlowMatch::ANY, vec![Action::Output(3)]),
        0,
    );
    assert_eq!(out_ports(&dp.process(0, 1, &udp(53))), vec![2]);
    assert_eq!(out_ports(&dp.process(1, 1, &udp(80))), vec![3]);
    assert_eq!(out_ports(&dp.process(2, 1, &udp(53))), vec![2]);
    assert_eq!(out_ports(&dp.process(3, 1, &udp(80))), vec![3]);
}

#[test]
fn extract_key_helper_reaches_cache_consistently() {
    // Sanity: the microflow key really is per-flow (src port varies the
    // key), while a pure-wildcard rule yields one megaflow for all.
    let mut dp = dp();
    dp.add_flow(
        0,
        FlowSpec::new(1, FlowMatch::ANY, vec![Action::Output(2)]),
        0,
    );
    let f1 = PacketBuilder::udp(M1, IP1, 1000, M2, IP2, 80, b"a");
    let f2 = PacketBuilder::udp(M1, IP1, 2000, M2, IP2, 80, b"a");
    assert_ne!(
        FlowKey::extract(1, &f1).unwrap(),
        FlowKey::extract(1, &f2).unwrap()
    );
    dp.process(0, 1, &f1);
    dp.process(1, 1, &f2); // distinct key, same megaflow
    assert_eq!(dp.cache_stats().mega_hits, 1);
    dp.process(2, 1, &f2); // now promoted to microflow
    assert_eq!(dp.cache_stats().micro_hits, 1);
    // And a prefix rule widens the mask only to the consulted bits.
    let mut dp2 = dp_with_prefix();
    let inside = PacketBuilder::udp(M1, Ipv4Address::new(10, 0, 0, 9), 1, M2, IP2, 2, b"a");
    let outside = PacketBuilder::udp(M1, Ipv4Address::new(10, 9, 0, 9), 1, M2, IP2, 2, b"a");
    assert_eq!(out_ports(&dp2.process(0, 1, &inside)), vec![2]);
    assert!(dp2.process(1, 1, &outside).is_empty());
    assert_eq!(out_ports(&dp2.process(2, 1, &inside)), vec![2]);
}

fn dp_with_prefix() -> Datapath {
    let mut dp = Datapath::new(2, 1, MissPolicy::Drop);
    for p in 1..=2 {
        dp.add_port(p);
    }
    dp.add_flow(
        0,
        FlowSpec::new(
            10,
            FlowMatch {
                ipv4_src: Some(Ipv4Cidr::new(Ipv4Address::new(10, 0, 0, 0), 16).unwrap()),
                ..FlowMatch::ANY
            },
            vec![Action::Output(2)],
        ),
        0,
    );
    dp
}
