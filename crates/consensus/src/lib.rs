//! Consensus substrate for the zen cluster.
//!
//! Two layers, both deterministic and wall-clock free so the simulator
//! can replay them byte-identically:
//!
//! 1. **Chain-hash digests** ([`fnv1a_fold`], [`chain_ew`],
//!    [`CHAIN_SEED`]) — rolling FNV-1a hashes over canonical wire
//!    bytes. The east-west store summarises each per-origin log as a
//!    `(head, hash)` pair; two replicas with equal pairs hold
//!    byte-identical logs and exchange nothing, while a lagging peer
//!    fetches exactly the missing range instead of receiving blind
//!    suffix resends.
//!
//! 2. **A Raft-style replicated intent log** ([`IntentReplica`]) for
//!    the few control-plane writes that need linearizability — ACL
//!    policy and mastership pins. Leader election is deterministic
//!    (the minimum live replica index leads) and split-brain safe
//!    because the effective term ([`vterm`]) encodes the leader index:
//!    two rival leaders always carry distinct terms, and the higher
//!    one wins. A new leader first *syncs* — it fetches log suffixes
//!    from peers until a majority of the full cluster has reported,
//!    adopting any log more up-to-date than its own — then activates
//!    by appending a no-op barrier at its term, which lets earlier-term
//!    entries commit under the current-term-only commit rule. Followers
//!    that fall behind the compaction floor are re-seeded from a
//!    checksummed snapshot of the materialized committed state.
//!
//! The replica is a pure state machine: handlers consume decoded frame
//! fields and return [`Outbound`] messages for the controller to ship
//! over its east-west channels. Nothing here performs I/O.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet};

use zen_proto::{
    ew_entry_bytes, intent_entry_bytes, match_bytes, EwEntry, Intent, IntentEntry, Message,
};

/// FNV-1a 64-bit offset basis; the seed of every chain hash.
pub const CHAIN_SEED: u64 = 0xcbf2_9ce4_8422_2325;

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Uncommitted tail kept in the log after compaction, so peers lagging
/// by a few entries are served deltas instead of full snapshots.
pub const KEEP_TAIL: u64 = 32;

/// Fold `bytes` into an FNV-1a state `h` and return the new state.
pub fn fnv1a_fold(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a hash of `bytes` from the standard offset basis.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_fold(CHAIN_SEED, bytes)
}

/// Advance an east-west chain hash by one log entry: the new state is
/// the old state folded with the entry's canonical wire bytes.
pub fn chain_ew(h: u64, entry: &EwEntry) -> u64 {
    fnv1a_fold(h, &ew_entry_bytes(entry))
}

/// Checksum pinning a catchup payload: a chain hash over the snapshot
/// token set, the snapshot state, and the trailing entries, in
/// transmission order.
pub fn catchup_checksum(
    tokens: &[(u32, u64)],
    snap: &[IntentEntry],
    entries: &[IntentEntry],
) -> u64 {
    let mut h = CHAIN_SEED;
    for &(origin, token) in tokens {
        h = fnv1a_fold(h, &origin.to_be_bytes());
        h = fnv1a_fold(h, &token.to_be_bytes());
    }
    for e in snap.iter().chain(entries.iter()) {
        h = fnv1a_fold(h, &intent_entry_bytes(e));
    }
    h
}

/// The effective consensus term for `leader` at membership term
/// `mterm` in a cluster of `n` replicas. Encoding the leader index
/// guarantees two rival leaders (possible under the deterministic
/// min-live-index election when views diverge) never share a term, and
/// one membership-term bump dominates every rival of the prior term.
pub fn vterm(mterm: u64, n: u32, leader: u32) -> u64 {
    mterm
        .wrapping_mul(n.max(1) as u64)
        .wrapping_add(leader as u64)
}

/// Quorum size for a cluster of `n` replicas (strict majority).
pub fn majority(n: u32) -> usize {
    n as usize / 2 + 1
}

/// The leader index an effective term encodes (see [`vterm`]): the
/// receiver of a frame can verify the sender is the term's leader
/// without any out-of-band leader table.
pub fn term_leader(term: u64, n: u32) -> u32 {
    (term % n.max(1) as u64) as u32
}

/// Stable key identifying the piece of state an intent mutates; the
/// materialized snapshot holds the latest committed entry per key.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum IntentKey {
    /// An ACL deny rule, keyed by priority and canonical match bytes.
    Acl {
        /// Rule priority.
        priority: u16,
        /// Canonical wire bytes of the flow match.
        matcher: Vec<u8>,
    },
    /// A mastership pin, keyed by switch.
    Pin {
        /// The pinned switch.
        dpid: u64,
    },
}

/// The state key an intent mutates and whether it asserts (`true`) or
/// retracts (`false`) that state. `None` for no-op barriers.
pub fn intent_key(i: &Intent) -> Option<(IntentKey, bool)> {
    match i {
        Intent::Noop => None,
        Intent::AclDeny {
            priority,
            matcher,
            install,
        } => Some((
            IntentKey::Acl {
                priority: *priority,
                matcher: match_bytes(matcher),
            },
            *install,
        )),
        Intent::MastershipPin { dpid, pinned, .. } => {
            Some((IntentKey::Pin { dpid: *dpid }, *pinned))
        }
    }
}

/// A frame the replica wants delivered to one peer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outbound {
    /// Destination replica index.
    pub to: u32,
    /// The frame to send.
    pub msg: Message,
}

/// What the replica's role in the cluster currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Accepting appends from the current leader.
    Follower,
    /// Elected but catching up: fetching peer logs until a majority of
    /// the full cluster has reported, so no committed entry is lost.
    Syncing,
    /// Active leader: appending, replicating, and committing.
    Leader,
}

/// A committed mutation surfaced to the embedding controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Applied {
    /// One intent committed in log order (no-op barriers are elided).
    Entry(IntentEntry),
    /// The committed state was replaced wholesale by a snapshot
    /// install; the entries are the minimal replayable set. Derived
    /// state must be rebuilt from them, not patched.
    Snapshot(Vec<IntentEntry>),
}

/// One replica of the replicated intent log.
///
/// Drive it with [`tick`](Self::tick) once per control-plane round and
/// feed decoded `Intent*` frames to the `on_*` handlers; ship every
/// returned [`Outbound`]. Committed intents are collected with
/// [`take_applied`](Self::take_applied).
#[derive(Debug)]
pub struct IntentReplica {
    me: u32,
    n: u32,
    phase: Phase,
    term: u64,
    /// Log entries above the compaction floor, by index (contiguous).
    log: BTreeMap<u64, IntentEntry>,
    /// Entries at or below this index have been compacted away.
    floor: u64,
    floor_term: u64,
    commit: u64,
    applied: u64,
    /// Latest committed entry per state key — the snapshot base.
    active: BTreeMap<IntentKey, IntentEntry>,
    /// Committed (origin, token) pairs, for at-most-once apply.
    applied_tokens: BTreeSet<(u32, u64)>,
    /// Leader bookkeeping, valid only while `phase == Leader`.
    next_idx: BTreeMap<u32, u64>,
    match_idx: BTreeMap<u32, u64>,
    /// Peers heard from while `phase == Syncing` (includes self).
    sync_heard: BTreeSet<u32>,
    /// Our own proposals, resent every tick until observed committed.
    pending_local: Vec<(u64, Intent)>,
    applied_out: Vec<Applied>,
}

impl IntentReplica {
    /// A fresh replica `me` in a cluster of fixed size `n`.
    pub fn new(me: u32, n: u32) -> Self {
        IntentReplica {
            me,
            n: n.max(1),
            phase: Phase::Follower,
            term: 0,
            log: BTreeMap::new(),
            floor: 0,
            floor_term: 0,
            commit: 0,
            applied: 0,
            active: BTreeMap::new(),
            applied_tokens: BTreeSet::new(),
            next_idx: BTreeMap::new(),
            match_idx: BTreeMap::new(),
            sync_heard: BTreeSet::new(),
            pending_local: Vec::new(),
            applied_out: Vec::new(),
        }
    }

    /// This replica's index.
    pub fn me(&self) -> u32 {
        self.me
    }

    /// Highest term seen or adopted.
    pub fn term(&self) -> u64 {
        self.term
    }

    /// Highest committed log index.
    pub fn commit(&self) -> u64 {
        self.commit
    }

    /// Index of the last log entry (the floor if the log is empty).
    pub fn last_index(&self) -> u64 {
        self.last_tuple().1
    }

    /// Number of entries currently held above the compaction floor.
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// The compaction floor: entries at or below it are snapshot-only.
    pub fn floor(&self) -> u64 {
        self.floor
    }

    /// Current role.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Whether this replica is the active leader.
    pub fn is_leader(&self) -> bool {
        matches!(self.phase, Phase::Leader)
    }

    /// Proposals of our own not yet observed committed.
    pub fn pending_len(&self) -> usize {
        self.pending_local.len()
    }

    /// The materialized committed state, one entry per live key.
    pub fn active(&self) -> &BTreeMap<IntentKey, IntentEntry> {
        &self.active
    }

    /// Drain mutations committed since the last call, in commit order.
    pub fn take_applied(&mut self) -> Vec<Applied> {
        std::mem::take(&mut self.applied_out)
    }

    /// Propose an intent from this replica. `token` must be a nonzero
    /// proposer-unique id (hash the intent payload); the proposal is
    /// retried across leader changes until `(me, token)` commits, then
    /// surfaced through [`take_applied`](Self::take_applied).
    pub fn propose_local(&mut self, token: u64, intent: Intent) {
        assert!(token != 0, "token 0 is reserved for leader no-ops");
        if self.applied_tokens.contains(&(self.me, token)) {
            return;
        }
        if self.pending_local.iter().any(|(t, _)| *t == token) {
            return;
        }
        self.pending_local.push((token, intent.clone()));
        if self.is_leader() {
            self.leader_append(self.me, token, intent);
        }
    }

    /// One control round. `mterm` is the Membership term, `live` the
    /// ascending live set (self included). Returns frames to ship.
    pub fn tick(&mut self, mterm: u64, live: &[u32]) -> Vec<Outbound> {
        let mut out = Vec::new();
        let leader = live.iter().copied().min().unwrap_or(self.me);
        if leader == self.me {
            let vt = vterm(mterm, self.n, self.me);
            // A sitting leader keeps its term across membership bumps;
            // otherwise (re)start the sync round under the new term.
            // `vt <= term` means a rival's term still dominates — wait
            // for the membership term to advance past it.
            if !matches!(self.phase, Phase::Leader) && vt > self.term {
                self.begin_sync(vt);
            }
            if matches!(self.phase, Phase::Syncing) {
                if self.sync_heard.len() >= majority(self.n) {
                    self.activate();
                } else {
                    for &p in live {
                        if p != self.me && !self.sync_heard.contains(&p) {
                            out.push(Outbound {
                                to: p,
                                msg: Message::IntentFetch {
                                    replica: self.me,
                                    term: self.term,
                                    from_index: self.commit,
                                },
                            });
                        }
                    }
                }
            }
            if self.is_leader() {
                let pending: Vec<(u64, Intent)> = self.pending_local.clone();
                for (token, intent) in pending {
                    self.leader_append(self.me, token, intent);
                }
                self.leader_advance_commit();
                let (_, last) = self.last_tuple();
                for &p in live {
                    if p == self.me {
                        continue;
                    }
                    let ni = *self.next_idx.get(&p).unwrap_or(&(last + 1));
                    if ni <= self.floor {
                        out.push(self.make_catchup(p, ni.saturating_sub(1)));
                    } else {
                        let prev = ni - 1;
                        let entries: Vec<IntentEntry> =
                            self.log.range(ni..).map(|(_, e)| e.clone()).collect();
                        out.push(Outbound {
                            to: p,
                            msg: Message::IntentAppend {
                                leader: self.me,
                                term: self.term,
                                prev_index: prev,
                                prev_term: self.term_at(prev),
                                commit: self.commit,
                                entries,
                            },
                        });
                    }
                }
            }
        } else {
            if !matches!(self.phase, Phase::Follower) {
                self.step_down();
            }
            for (token, intent) in &self.pending_local {
                out.push(Outbound {
                    to: leader,
                    msg: Message::IntentPropose {
                        replica: self.me,
                        token: *token,
                        intent: intent.clone(),
                    },
                });
            }
        }
        self.compact(KEEP_TAIL);
        out
    }

    /// A proposal forwarded by a peer. Leaders append (deduplicated by
    /// `(origin, token)`); everyone else drops it — the proposer
    /// resends to the current leader every tick.
    pub fn on_propose(&mut self, from: u32, token: u64, intent: Intent) {
        if self.is_leader() && token != 0 {
            self.leader_append(from, token, intent);
        }
    }

    /// An `IntentAppend` from `leader`. Returns the ack.
    pub fn on_append(
        &mut self,
        leader: u32,
        term: u64,
        prev_index: u64,
        prev_term: u64,
        leader_commit: u64,
        entries: Vec<IntentEntry>,
    ) -> Vec<Outbound> {
        if term < self.term {
            return vec![self.ack(leader, self.commit, false)];
        }
        self.term = term;
        if !matches!(self.phase, Phase::Follower) {
            self.step_down();
        }
        if !self.has_prev(prev_index, prev_term) {
            // The nack carries our commit index so the leader resumes
            // from the committed prefix in one round trip.
            return vec![self.ack(leader, self.commit, false)];
        }
        let confirmed = prev_index + entries.len() as u64;
        self.splice(entries);
        if leader_commit > self.commit {
            self.commit = leader_commit.min(self.last_tuple().1);
            self.advance_applied();
        }
        // Only indexes verified against the leader's log count as
        // matched; stale local entries beyond them do not.
        vec![self.ack(leader, confirmed.max(self.commit), true)]
    }

    /// An `IntentAck` from a follower.
    pub fn on_ack(
        &mut self,
        from: u32,
        term: u64,
        match_index: u64,
        success: bool,
    ) -> Vec<Outbound> {
        if term > self.term {
            self.term = term;
            self.step_down();
            return Vec::new();
        }
        if term < self.term || !self.is_leader() {
            return Vec::new();
        }
        if success {
            let m = self.match_idx.entry(from).or_insert(0);
            if match_index > *m {
                *m = match_index;
            }
            self.next_idx.insert(from, match_index + 1);
            self.leader_advance_commit();
        } else {
            self.next_idx.insert(from, match_index + 1);
        }
        Vec::new()
    }

    /// An `IntentFetch` from a syncing would-be leader: report our log
    /// from its commit point (with a snapshot if it is below our
    /// floor), adopting its term.
    pub fn on_fetch(&mut self, from: u32, term: u64, from_index: u64) -> Vec<Outbound> {
        if term > self.term {
            self.term = term;
            self.step_down();
        }
        vec![self.make_catchup(from, from_index)]
    }

    /// An `IntentCatchup`: either a peer's reply to our sync fetch, or
    /// a snapshot install from the leader for a follower that fell
    /// behind the compaction floor.
    #[allow(clippy::too_many_arguments)]
    pub fn on_catchup(
        &mut self,
        from: u32,
        term: u64,
        snap_index: u64,
        snap_term: u64,
        snap_state: Vec<IntentEntry>,
        snap_tokens: Vec<(u32, u64)>,
        entries: Vec<IntentEntry>,
        peer_commit: u64,
        checksum: u64,
    ) -> Vec<Outbound> {
        if catchup_checksum(&snap_tokens, &snap_state, &entries) != checksum {
            return Vec::new();
        }
        if term > self.term {
            self.term = term;
            self.step_down();
        }
        match self.phase {
            Phase::Syncing => {
                if term == self.term {
                    // Adopt the peer's log only if it is at least as
                    // up-to-date as ours (last term, then last index) —
                    // the Raft election restriction, enforced at merge
                    // time instead of vote time.
                    let incoming_last =
                        entries
                            .last()
                            .map(|e| (e.term, e.index))
                            .or(if snap_index > 0 {
                                Some((snap_term, snap_index))
                            } else {
                                None
                            });
                    if let Some(inc) = incoming_last {
                        if inc >= self.last_tuple() {
                            if snap_index > self.commit {
                                self.install_snapshot(
                                    snap_index,
                                    snap_term,
                                    snap_state,
                                    snap_tokens,
                                );
                            }
                            self.splice(entries);
                        }
                    }
                    if peer_commit > self.commit {
                        self.commit = peer_commit.min(self.last_tuple().1);
                        self.advance_applied();
                    }
                    self.sync_heard.insert(from);
                    if self.sync_heard.len() >= majority(self.n) {
                        self.activate();
                    }
                }
                Vec::new()
            }
            Phase::Follower => {
                if term < self.term {
                    // Nack so a stale-term leader learns it is
                    // superseded — it may have no append in flight to
                    // us (our next_idx below its floor routes every
                    // retry through this catchup path), and a silent
                    // drop would leave it sitting on the old term
                    // forever.
                    return vec![self.ack(from, self.commit, false)];
                }
                // Only the current term's leader installs state into a
                // follower. Stale replies to fetches we sent while
                // Syncing (from arbitrary peers) land here too, and
                // would otherwise splice unverified suffixes.
                if from != term_leader(term, self.n) {
                    return Vec::new();
                }
                if snap_index > self.commit {
                    self.install_snapshot(snap_index, snap_term, snap_state, snap_tokens);
                }
                // Splice only entries anchored to a verified prefix —
                // the snapshot just installed, or the committed prefix
                // itself — mirroring the prev_index/prev_term gate of
                // on_append; and ack only indexes so verified, never a
                // stale local suffix beyond them.
                let mut confirmed = self.commit;
                if entries.first().is_none_or(|f| f.index <= self.commit + 1) {
                    if let Some(e) = entries.last() {
                        confirmed = confirmed.max(e.index);
                    }
                    self.splice(entries);
                }
                if peer_commit > self.commit {
                    self.commit = peer_commit.min(self.last_tuple().1);
                    self.advance_applied();
                }
                vec![self.ack(from, confirmed.max(self.commit), true)]
            }
            // A sitting leader's log is append-only; stale catchup
            // replies (term already adopted above) carry nothing new.
            Phase::Leader => Vec::new(),
        }
    }

    /// Drop log entries at or below `applied - keep`, moving the
    /// compaction floor. Peers further behind are served snapshots.
    pub fn compact(&mut self, keep: u64) {
        let new_floor = self.applied.saturating_sub(keep);
        if new_floor <= self.floor {
            return;
        }
        self.floor_term = self.term_at(new_floor);
        let drop: Vec<u64> = self.log.range(..=new_floor).map(|(k, _)| *k).collect();
        for k in drop {
            self.log.remove(&k);
        }
        self.floor = new_floor;
    }

    fn ack(&self, to: u32, match_index: u64, success: bool) -> Outbound {
        Outbound {
            to,
            msg: Message::IntentAck {
                replica: self.me,
                term: self.term,
                match_index,
                success,
            },
        }
    }

    /// Last `(term, index)` of the log, falling back to the floor.
    fn last_tuple(&self) -> (u64, u64) {
        match self.log.iter().next_back() {
            Some((i, e)) => (e.term, *i),
            None => (self.floor_term, self.floor),
        }
    }

    fn term_at(&self, index: u64) -> u64 {
        if index == self.floor {
            self.floor_term
        } else {
            self.log.get(&index).map(|e| e.term).unwrap_or(0)
        }
    }

    fn has_prev(&self, prev_index: u64, prev_term: u64) -> bool {
        if prev_index == 0 || prev_index <= self.commit {
            // Committed prefixes agree across replicas by commit safety.
            return true;
        }
        if prev_index == self.floor {
            return prev_term == self.floor_term;
        }
        match self.log.get(&prev_index) {
            Some(e) => e.term == prev_term,
            None => false,
        }
    }

    /// Merge replicated entries: skip what is already settled, and on
    /// the first term conflict truncate our suffix from there.
    fn splice(&mut self, entries: Vec<IntentEntry>) {
        for e in entries {
            if e.index <= self.commit || e.index <= self.floor {
                continue;
            }
            if let Some(existing) = self.log.get(&e.index) {
                if existing.term == e.term {
                    continue;
                }
                let drop: Vec<u64> = self.log.range(e.index..).map(|(k, _)| *k).collect();
                for k in drop {
                    self.log.remove(&k);
                }
            }
            self.log.insert(e.index, e);
        }
    }

    fn step_down(&mut self) {
        self.phase = Phase::Follower;
        self.next_idx.clear();
        self.match_idx.clear();
        self.sync_heard.clear();
    }

    fn begin_sync(&mut self, term: u64) {
        self.phase = Phase::Syncing;
        self.term = term;
        self.next_idx.clear();
        self.match_idx.clear();
        self.sync_heard.clear();
        self.sync_heard.insert(self.me);
    }

    fn activate(&mut self) {
        self.phase = Phase::Leader;
        self.sync_heard.clear();
        self.next_idx.clear();
        self.match_idx.clear();
        // The no-op barrier: committing it commits every adopted
        // earlier-term entry beneath it.
        self.leader_append(self.me, 0, Intent::Noop);
        self.leader_advance_commit();
    }

    fn leader_append(&mut self, origin: u32, token: u64, intent: Intent) {
        let is_noop = matches!(intent, Intent::Noop);
        if !is_noop {
            if self.applied_tokens.contains(&(origin, token)) {
                return;
            }
            if self
                .log
                .values()
                .any(|e| e.origin == origin && e.token == token)
            {
                return;
            }
        }
        let (_, last) = self.last_tuple();
        let e = IntentEntry {
            index: last + 1,
            term: self.term,
            origin,
            token,
            intent,
        };
        self.log.insert(e.index, e);
    }

    fn leader_advance_commit(&mut self) {
        let (_, last) = self.last_tuple();
        let mut new_commit = self.commit;
        let mut cand = self.commit + 1;
        while cand <= last {
            if let Some(e) = self.log.get(&cand) {
                // Only current-term entries commit by counting; older
                // entries commit transitively beneath them.
                if e.term == self.term {
                    let votes = 1 + self.match_idx.values().filter(|&&m| m >= cand).count();
                    if votes >= majority(self.n) {
                        new_commit = cand;
                    }
                }
            }
            cand += 1;
        }
        if new_commit > self.commit {
            self.commit = new_commit;
            self.advance_applied();
        }
    }

    fn advance_applied(&mut self) {
        while self.applied < self.commit {
            let next = self.applied + 1;
            let e = self
                .log
                .get(&next)
                .expect("committed entry above the floor")
                .clone();
            self.applied = next;
            if matches!(e.intent, Intent::Noop) {
                continue;
            }
            self.applied_tokens.insert((e.origin, e.token));
            if e.origin == self.me {
                self.pending_local.retain(|(t, _)| *t != e.token);
            }
            match intent_key(&e.intent) {
                Some((key, true)) => {
                    self.active.insert(key, e.clone());
                }
                Some((key, false)) => {
                    self.active.remove(&key);
                }
                None => {}
            }
            self.applied_out.push(Applied::Entry(e));
        }
    }

    fn applied_term(&self) -> u64 {
        self.term_at(self.applied)
    }

    fn make_catchup(&self, to: u32, from_index: u64) -> Outbound {
        let (snap_index, snap_term, snap_state, snap_tokens) = if from_index < self.floor {
            (
                self.applied,
                self.applied_term(),
                self.active.values().cloned().collect::<Vec<_>>(),
                self.applied_tokens.iter().copied().collect::<Vec<_>>(),
            )
        } else {
            (0, 0, Vec::new(), Vec::new())
        };
        let start = if snap_index > 0 {
            self.applied
        } else {
            from_index
        };
        let entries: Vec<IntentEntry> = self
            .log
            .range(start + 1..)
            .map(|(_, e)| e.clone())
            .collect();
        let checksum = catchup_checksum(&snap_tokens, &snap_state, &entries);
        Outbound {
            to,
            msg: Message::IntentCatchup {
                replica: self.me,
                term: self.term,
                snap_index,
                snap_term,
                snap_state,
                snap_tokens,
                entries,
                commit: self.commit,
                checksum,
            },
        }
    }

    fn install_snapshot(
        &mut self,
        snap_index: u64,
        snap_term: u64,
        snap_state: Vec<IntentEntry>,
        snap_tokens: Vec<(u32, u64)>,
    ) {
        self.log.clear();
        self.floor = snap_index;
        self.floor_term = snap_term;
        self.commit = snap_index;
        self.applied = snap_index;
        self.active.clear();
        for e in &snap_state {
            if let Some((key, _)) = intent_key(&e.intent) {
                self.active.insert(key, e.clone());
            }
            self.applied_tokens.insert((e.origin, e.token));
        }
        // The carried token set covers committed-but-superseded intents
        // that `snap_state` (latest entry per key) cannot reconstruct —
        // without it, a proposer that never observed its commit would
        // re-propose past the snapshot and commit a second time. Union
        // with what we already hold: tokens only ever enter this set on
        // commit, so nothing stale can survive the merge.
        self.applied_tokens.extend(snap_tokens);
        let toks = &self.applied_tokens;
        let me = self.me;
        self.pending_local
            .retain(|(t, _)| !toks.contains(&(me, *t)));
        self.applied_out.push(Applied::Snapshot(snap_state));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;
    use zen_dataplane::FlowMatch;

    /// Route one decoded frame into the receiving replica's handler.
    fn deliver(rep: &mut IntentReplica, msg: Message) -> Vec<Outbound> {
        match msg {
            Message::IntentPropose {
                replica,
                token,
                intent,
            } => {
                rep.on_propose(replica, token, intent);
                Vec::new()
            }
            Message::IntentAppend {
                leader,
                term,
                prev_index,
                prev_term,
                commit,
                entries,
            } => rep.on_append(leader, term, prev_index, prev_term, commit, entries),
            Message::IntentAck {
                replica,
                term,
                match_index,
                success,
            } => rep.on_ack(replica, term, match_index, success),
            Message::IntentFetch {
                replica,
                term,
                from_index,
            } => rep.on_fetch(replica, term, from_index),
            Message::IntentCatchup {
                replica,
                term,
                snap_index,
                snap_term,
                snap_state,
                snap_tokens,
                entries,
                commit,
                checksum,
            } => rep.on_catchup(
                replica,
                term,
                snap_index,
                snap_term,
                snap_state,
                snap_tokens,
                entries,
                commit,
                checksum,
            ),
            _ => Vec::new(),
        }
    }

    /// A tiny deterministic cluster: synchronous delivery within a
    /// tick, liveness and partition groups controlled by the test, a
    /// single membership term bumped at every topology event (as the
    /// real Membership does on liveness flips).
    struct Net {
        reps: Vec<IntentReplica>,
        up: Vec<bool>,
        /// Partition groups; replicas talk only within their group.
        groups: Vec<Vec<u32>>,
        mterm: u64,
        /// Replicas whose outbound acks are dropped (for mid-commit
        /// scenarios).
        drop_acks: BTreeSet<u32>,
        /// Replicas that receive nothing at all, while their own
        /// outbound frames still flow (a one-way partition: the
        /// proposer never observes its commit).
        drop_to: BTreeSet<u32>,
    }

    impl Net {
        fn new(n: u32) -> Net {
            Net {
                reps: (0..n).map(|i| IntentReplica::new(i, n)).collect(),
                up: vec![true; n as usize],
                groups: vec![(0..n).collect()],
                mterm: 1,
                drop_acks: BTreeSet::new(),
                drop_to: BTreeSet::new(),
            }
        }

        fn partition(&mut self, groups: Vec<Vec<u32>>) {
            self.groups = groups;
            self.mterm += 1;
        }

        fn kill(&mut self, i: u32) {
            self.up[i as usize] = false;
            self.mterm += 1;
        }

        fn revive(&mut self, i: u32) {
            self.up[i as usize] = true;
            self.mterm += 1;
        }

        fn can_talk(&self, a: u32, b: u32) -> bool {
            if !self.up[a as usize] || !self.up[b as usize] {
                return false;
            }
            self.groups.iter().any(|g| g.contains(&a) && g.contains(&b))
        }

        fn live_view(&self, i: u32) -> Vec<u32> {
            let mut v: Vec<u32> = (0..self.reps.len() as u32)
                .filter(|&j| j == i || self.can_talk(i, j))
                .collect();
            v.sort_unstable();
            v
        }

        fn tick(&mut self) {
            let mut queue: VecDeque<(u32, Outbound)> = VecDeque::new();
            for i in 0..self.reps.len() as u32 {
                if !self.up[i as usize] {
                    continue;
                }
                let live = self.live_view(i);
                for o in self.reps[i as usize].tick(self.mterm, &live) {
                    queue.push_back((i, o));
                }
            }
            let mut budget = 100_000usize;
            while let Some((from, o)) = queue.pop_front() {
                budget = budget.checked_sub(1).expect("delivery loop diverged");
                if !self.can_talk(from, o.to) {
                    continue;
                }
                if self.drop_acks.contains(&from) && matches!(o.msg, Message::IntentAck { .. }) {
                    continue;
                }
                if self.drop_to.contains(&o.to) {
                    continue;
                }
                for r in deliver(&mut self.reps[o.to as usize], o.msg) {
                    queue.push_back((o.to, r));
                }
            }
        }

        fn run(&mut self, ticks: usize) {
            for _ in 0..ticks {
                self.tick();
            }
        }
    }

    fn deny(id: u8) -> Intent {
        Intent::AclDeny {
            priority: 900,
            matcher: FlowMatch {
                in_port: Some(id as u32),
                ..FlowMatch::ANY
            },
            install: true,
        }
    }

    fn applied_tokens_of(applied: &[Applied]) -> Vec<(u32, u64)> {
        let mut out = Vec::new();
        for a in applied {
            match a {
                Applied::Entry(e) => out.push((e.origin, e.token)),
                Applied::Snapshot(es) => out.extend(es.iter().map(|e| (e.origin, e.token))),
            }
        }
        out
    }

    #[test]
    fn fnv1a_known_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn vterm_orders_rivals_and_membership_bumps() {
        // Two rivals at one membership term never tie, and one
        // membership bump dominates every rival of the prior term.
        assert!(vterm(7, 5, 4) > vterm(7, 5, 0));
        assert!(vterm(8, 5, 0) > vterm(7, 5, 4));
    }

    #[test]
    fn happy_path_commits_on_every_replica() {
        let mut net = Net::new(3);
        net.run(3);
        assert!(net.reps[0].is_leader());
        net.reps[0].propose_local(fnv1a(b"r0"), deny(1));
        net.run(3);
        for r in &net.reps {
            assert_eq!(r.commit(), net.reps[0].commit(), "replica {}", r.me());
            assert_eq!(r.active().len(), 1, "replica {}", r.me());
        }
        let applied = net.reps[2].take_applied();
        assert_eq!(applied_tokens_of(&applied), vec![(0, fnv1a(b"r0"))]);
        assert_eq!(net.reps[0].pending_len(), 0);
    }

    #[test]
    fn duplicate_proposals_commit_once() {
        let mut net = Net::new(3);
        net.run(3);
        let tok = fnv1a(b"dup");
        net.reps[1].propose_local(tok, deny(2));
        net.run(2);
        net.reps[1].propose_local(tok, deny(2));
        // A stale direct re-send to the leader must also dedup.
        net.reps[0].on_propose(1, tok, deny(2));
        net.run(3);
        let applied = net.reps[0].take_applied();
        assert_eq!(applied_tokens_of(&applied), vec![(1, tok)]);
    }

    #[test]
    fn leader_kill_mid_commit_loses_nothing() {
        let mut net = Net::new(5);
        net.run(3);
        assert!(net.reps[0].is_leader());
        // Replicate to a majority but drop every ack, so the entry is
        // in-flight: on disk at 3 replicas, committed nowhere.
        net.drop_acks = (1..5).collect();
        let tok = fnv1a(b"mid");
        net.reps[0].propose_local(tok, deny(3));
        net.run(2);
        assert_eq!(net.reps[0].commit(), net.reps[1].commit());
        assert!(net.reps[1].last_index() > net.reps[1].commit());
        // Kill the leader; the survivors elect replica 1, which must
        // preserve the majority-replicated entry and commit it under
        // its no-op barrier.
        net.drop_acks.clear();
        net.kill(0);
        net.run(6);
        assert!(net.reps[1].is_leader());
        for i in 1..5u32 {
            let applied = net.reps[i as usize].take_applied();
            assert_eq!(
                applied_tokens_of(&applied),
                vec![(0, tok)],
                "replica {i} lost the mid-commit entry"
            );
        }
    }

    #[test]
    fn minority_partition_cannot_commit_and_heals_clean() {
        let mut net = Net::new(5);
        net.run(3);
        net.partition(vec![vec![0, 1], vec![2, 3, 4]]);
        let tok_min = fnv1a(b"minority");
        let tok_maj = fnv1a(b"majority");
        net.reps[0].propose_local(tok_min, deny(4));
        net.reps[3].propose_local(tok_maj, deny(5));
        net.run(6);
        // The stranded leader replicates but cannot commit; the
        // majority side elects replica 2 at a higher term and commits.
        assert_eq!(net.reps[0].take_applied(), Vec::new());
        assert!(net.reps[2].is_leader());
        assert!(applied_tokens_of(&net.reps[2].take_applied()).contains(&(3, tok_maj)));
        net.partition(vec![vec![0, 1, 2, 3, 4]]);
        net.run(8);
        // Replica 0 retakes the lead at a fresh term, adopts the
        // majority log, and its stranded proposal finally commits.
        assert!(net.reps[0].is_leader());
        for r in &net.reps {
            assert_eq!(r.commit(), net.reps[0].commit(), "replica {}", r.me());
            assert_eq!(r.active().len(), 2, "replica {}", r.me());
        }
        let mut all = applied_tokens_of(&net.reps[4].take_applied());
        all.sort_unstable();
        let mut want = vec![(0, tok_min), (3, tok_maj)];
        want.sort_unstable();
        assert_eq!(all, want);
    }

    #[test]
    fn lagging_replica_bootstraps_from_snapshot() {
        let mut net = Net::new(3);
        net.run(3);
        net.kill(2);
        // Commit enough entries to push the compaction floor well past
        // the dead replica's position.
        for i in 0..(3 * KEEP_TAIL as usize) {
            let tok = fnv1a(format!("bulk{i}").as_bytes());
            net.reps[0].propose_local(tok, deny((i % 200) as u8));
            net.run(1);
        }
        assert!(net.reps[0].floor() > 0);
        net.revive(2);
        net.run(4);
        assert_eq!(net.reps[2].commit(), net.reps[0].commit());
        assert_eq!(net.reps[2].active(), net.reps[0].active());
        let got_snapshot = net.reps[2]
            .take_applied()
            .iter()
            .any(|a| matches!(a, Applied::Snapshot(_)));
        assert!(
            got_snapshot,
            "rejoin below the floor must install a snapshot"
        );
    }

    #[test]
    fn snapshot_carries_superseded_tokens_for_dedup() {
        // Regression: the snapshot used to rebuild `applied_tokens`
        // from the active entries only, forgetting tokens of
        // committed-but-superseded intents. A proposer that never
        // observed its commit then re-proposed past the snapshot and
        // the intent committed twice — resurrecting a withdrawn deny.
        let mut net = Net::new(3);
        net.run(3);
        assert!(net.reps[0].is_leader());
        // Replica 1 proposes an install but hears nothing back (its
        // own frames still flow out).
        net.drop_to.insert(1);
        let tok_in = fnv1a(b"install");
        net.reps[1].propose_local(tok_in, deny(1));
        net.run(3);
        assert_eq!(net.reps[1].pending_len(), 1);
        // The deny is withdrawn, then bulk commits push the leader's
        // compaction floor past both entries.
        let withdraw = match deny(1) {
            Intent::AclDeny {
                priority, matcher, ..
            } => Intent::AclDeny {
                priority,
                matcher,
                install: false,
            },
            _ => unreachable!(),
        };
        net.reps[0].propose_local(fnv1a(b"withdraw"), withdraw);
        net.run(2);
        for i in 0..(3 * KEEP_TAIL as usize) {
            let tok = fnv1a(format!("bulk{i}").as_bytes());
            net.reps[0].propose_local(tok, deny((10 + i % 200) as u8));
            net.run(1);
        }
        assert!(net.reps[0].floor() > 2);
        // Heal: replica 1 bootstraps from a snapshot whose active set
        // contains neither the install nor the withdraw, but whose
        // token set must still cover the proposal — dropping it from
        // the pending queue.
        net.drop_to.clear();
        net.run(4);
        assert_eq!(net.reps[1].commit(), net.reps[0].commit());
        assert_eq!(
            net.reps[1].pending_len(),
            0,
            "snapshot token set must absorb the unobserved proposal"
        );
        // Failover to the replica that installed the snapshot: it must
        // not re-append its old proposal.
        net.kill(0);
        net.run(6);
        assert!(net.reps[1].is_leader());
        let key = intent_key(&deny(1)).expect("acl key").0;
        for i in 1..3u32 {
            assert!(
                !net.reps[i as usize].active().contains_key(&key),
                "replica {i} resurrected the withdrawn deny"
            );
        }
        let count = applied_tokens_of(&net.reps[2].take_applied())
            .iter()
            .filter(|&&t| t == (1, tok_in))
            .count();
        assert_eq!(count, 1, "intent must commit exactly once");
    }

    #[test]
    fn follower_ignores_catchup_from_non_leader() {
        let mut net = Net::new(3);
        net.run(3);
        net.reps[0].propose_local(fnv1a(b"base"), deny(1));
        net.run(3);
        // A stale reply from replica 2 (not the term's leader) carrying
        // a fabricated uncommitted suffix must not splice into replica
        // 1's log, checksum notwithstanding.
        let term = net.reps[1].term();
        let commit = net.reps[1].commit();
        let bogus = vec![IntentEntry {
            index: net.reps[1].last_index() + 1,
            term,
            origin: 2,
            token: 99,
            intent: deny(9),
        }];
        let checksum = catchup_checksum(&[], &[], &bogus);
        let outs = net.reps[1].on_catchup(2, term, 0, 0, vec![], vec![], bogus, commit, checksum);
        assert!(outs.is_empty());
        assert_eq!(net.reps[1].last_index(), commit);
    }

    #[test]
    fn withdraw_removes_active_state() {
        let mut net = Net::new(3);
        net.run(3);
        net.reps[0].propose_local(fnv1a(b"in"), deny(6));
        net.run(3);
        assert_eq!(net.reps[1].active().len(), 1);
        let withdraw = match deny(6) {
            Intent::AclDeny {
                priority, matcher, ..
            } => Intent::AclDeny {
                priority,
                matcher,
                install: false,
            },
            _ => unreachable!(),
        };
        net.reps[0].propose_local(fnv1a(b"out"), withdraw);
        net.run(3);
        for r in &net.reps {
            assert_eq!(r.active().len(), 0, "replica {}", r.me());
        }
    }

    #[test]
    fn pin_intents_round_trip_through_active() {
        let mut net = Net::new(3);
        net.run(3);
        net.reps[1].propose_local(
            fnv1a(b"pin"),
            Intent::MastershipPin {
                dpid: 9,
                replica: 2,
                pinned: true,
            },
        );
        net.run(4);
        let key = IntentKey::Pin { dpid: 9 };
        for r in &net.reps {
            let e = r.active().get(&key).expect("pin present");
            assert_eq!(
                e.intent,
                Intent::MastershipPin {
                    dpid: 9,
                    replica: 2,
                    pinned: true
                }
            );
        }
    }
}
