//! E3 — control-protocol codec throughput.
//!
//! Encode/decode cost of the hot control-channel messages: FLOW_MOD
//! (the programming path) and PACKET_IN at small and MTU frame sizes
//! (the reactive path). Controller throughput (E6) is bounded by this.

use std::hint::black_box;
use std::time::Duration;

use zen_bench::harness::{Bench, Throughput};
use zen_dataplane::{Action, FlowMatch, FlowSpec};
use zen_proto::{decode, encode, FlowModCmd, Message};
use zen_wire::EthernetAddress;

fn flow_mod() -> Message {
    Message::FlowMod {
        table_id: 0,
        cmd: FlowModCmd::Add(
            FlowSpec::new(
                100,
                FlowMatch::ipv4_to("10.1.0.0/16".parse().unwrap()).with_in_port(3),
                vec![
                    Action::SetEthDst(EthernetAddress::from_id(7)),
                    Action::DecTtl,
                    Action::Output(4),
                ],
            )
            .with_timeouts(1_000_000_000, 0)
            .with_cookie(0xbeef),
        ),
    }
}

fn packet_in(frame_len: usize) -> Message {
    Message::PacketIn {
        in_port: 3,
        table_id: 0,
        is_miss: true,
        frame: vec![0xa5; frame_len],
    }
}

fn main() {
    let mut group = Bench::group("E3/proto_codec")
        .samples(20)
        .warm_up(Duration::from_millis(300))
        .measurement(Duration::from_secs(1));

    let messages: Vec<(&str, Message)> = vec![
        ("flow_mod", flow_mod()),
        ("packet_in_64", packet_in(64)),
        ("packet_in_1500", packet_in(1500)),
        ("barrier", Message::BarrierRequest { xids: vec![] }),
    ];

    for (name, msg) in &messages {
        let bytes = encode(msg, 1);
        group.throughput(Throughput::Bytes(bytes.len() as u64));
        group.run(&format!("encode/{name}"), || {
            black_box(encode(black_box(msg), 1))
        });
        group.run(&format!("decode/{name}"), || {
            black_box(decode(black_box(&bytes)).unwrap())
        });
    }
}
