//! E4 — path computation scalability.
//!
//! The controller's route computation cost on the standard evaluation
//! topologies: Dijkstra (single SPF), full ECMP next-hop computation,
//! and Yen's k-shortest paths (the TE candidate generator), across
//! fat-tree sizes and WAN graphs.

use std::hint::black_box;
use std::time::Duration;

use zen_bench::harness::Bench;
use zen_graph::{dijkstra, dists_to, ecmp_next_hops, k_shortest_paths, Graph};
use zen_sim::{LinkParams, Topology};

fn graph_of(topo: &Topology) -> Graph {
    let mut g = Graph::with_nodes(topo.switches);
    for l in &topo.links {
        g.add_undirected(l.a as u32, l.b as u32, 1, 1_000);
    }
    g
}

fn bench_dijkstra() {
    let mut group = Bench::group("E4/dijkstra")
        .samples(20)
        .warm_up(Duration::from_millis(300))
        .measurement(Duration::from_secs(1));
    for k in [4usize, 8, 16] {
        let topo = Topology::fat_tree(k, LinkParams::default());
        let graph = graph_of(&topo);
        group.run(&format!("fat_tree/k{k}_{}sw", topo.switches), || {
            black_box(dijkstra(&graph, 0))
        });
    }
    let b4 = graph_of(&Topology::b4(1_000_000_000));
    group.run("b4_wan", || black_box(dijkstra(&b4, 0)));
    for n in [50usize, 200] {
        let topo = Topology::random_connected(n, n, LinkParams::default(), 3);
        let graph = graph_of(&topo);
        group.run(&format!("random/{n}"), || black_box(dijkstra(&graph, 0)));
    }
}

fn bench_all_pairs_ecmp() {
    let mut group = Bench::group("E4/full_ecmp_program")
        .samples(10)
        .warm_up(Duration::from_millis(300))
        .measurement(Duration::from_secs(2));
    // The proactive fabric's whole computation: for every destination,
    // distances + ECMP next hops at every switch.
    for k in [4usize, 8] {
        let topo = Topology::fat_tree(k, LinkParams::default());
        let g = graph_of(&topo);
        group.run(&format!("fat_tree/{k}"), || {
            let mut total_hops = 0usize;
            for dst in 0..g.node_count() as u32 {
                let dist = dists_to(&g, dst);
                for sw in 0..g.node_count() as u32 {
                    if sw != dst {
                        total_hops += ecmp_next_hops(&g, sw, &dist).len();
                    }
                }
            }
            black_box(total_hops)
        });
    }
}

fn bench_yen() {
    let mut group = Bench::group("E4/yen_k_shortest")
        .samples(10)
        .warm_up(Duration::from_millis(300))
        .measurement(Duration::from_secs(2));
    let b4 = graph_of(&Topology::b4(1_000_000_000));
    for k in [2usize, 4, 8] {
        group.run(&format!("b4_0_to_11/{k}"), || {
            black_box(k_shortest_paths(&b4, 0, 11, k))
        });
    }
    let ft8 = graph_of(&Topology::fat_tree(8, LinkParams::default()));
    group.run("fat_tree8_edge_to_edge_k4", || {
        black_box(k_shortest_paths(&ft8, 0, 31, 4))
    });
}

fn main() {
    bench_dijkstra();
    bench_all_pairs_ecmp();
    bench_yen();
}
