//! E16 — flow-table pressure: eviction vs. refusal under Zipf churn.
//!
//! A capacity-bounded flow table is the scarce resource of the Zen
//! argument: when the reactive working set outgrows TCAM, the switch
//! must either shed state (evict by `(importance, last_hit)`) or bounce
//! installs (TABLE_FULL), and either choice taxes the control channel.
//! This harness drives a Zipf-like flow population through tables sized
//! 256/1k/4k under both overflow policies and reports the data-plane
//! miss rate, the eviction/refusal churn, and the resulting controller
//! message amplification (messages per data-plane packet).
//!
//! The control loop is modeled at zero RTT: a miss costs a PACKET_IN +
//! FLOW_MOD + PACKET_OUT, an eviction or idle expiry a FLOW_REMOVED,
//! a bounced install an ERROR, after which the app suppresses installs
//! toward the switch for a 200 us backoff (mirroring
//! `ReactiveForwarding`'s pressure handling).

use zen_dataplane::{Action, FlowKey, FlowMatch, FlowSpec, FlowTable, OverflowPolicy};
use zen_wire::builder::PacketBuilder;
use zen_wire::lcg::Lcg;
use zen_wire::{EthernetAddress, Ipv4Address};

/// Distinct flows in the population (the reactive working set).
const FLOWS: usize = 8192;
/// Data-plane packets driven per configuration.
const PACKETS: usize = 150_000;
/// Simulated inter-packet gap: 2 us (a 500 kpps switch).
const PKT_GAP_NS: u64 = 2_000;
/// Idle timeout installed on every reactive flow.
const IDLE_NS: u64 = 50_000_000;
/// Install suppression after a TABLE_FULL bounce.
const BACKOFF_NS: u64 = 200_000;
/// Hot flows marked important (standing infrastructure in the tail).
const IMPORTANT_HEAD: usize = 16;

/// Zipf-like flow popularity without floats: the candidate range keeps
/// shrinking toward rank 0 on coin flips, so a handful of flows carry
/// most of the traffic over a long uniform tail.
fn zipfish_index(rng: &mut Lcg, n: usize) -> usize {
    let mut hi = n;
    while hi > 1 && rng.gen_ratio(1, 2) {
        hi = hi.div_ceil(8);
    }
    rng.gen_index(hi)
}

/// One UDP frame per flow; the L4 destination port is the flow identity
/// the table matches on.
fn build_flows() -> Vec<(FlowKey, FlowSpec)> {
    (0..FLOWS)
        .map(|i| {
            let frame = PacketBuilder::udp(
                EthernetAddress::from_id(i as u64 + 1),
                Ipv4Address::from_u32(0x0a00_0000 | (i as u32)),
                4000,
                EthernetAddress::from_id(99),
                Ipv4Address::from_u32(0x0b00_0000 | (i as u32)),
                1000 + i as u16,
                b"pressure",
            );
            let key = FlowKey::extract(1, &frame).expect("valid frame");
            let mut spec = FlowSpec::new(
                10,
                FlowMatch::ANY
                    .with_ip_proto(17)
                    .with_l4_dst(1000 + i as u16),
                vec![Action::Output(2)],
            )
            .with_timeouts(IDLE_NS, 0);
            if i < IMPORTANT_HEAD {
                spec = spec.with_importance(100);
            }
            (key, spec)
        })
        .collect()
}

#[derive(Debug, Default)]
struct Outcome {
    misses: u64,
    evictions: u64,
    refusals: u64,
    expiries: u64,
    ctl_messages: u64,
    final_len: usize,
    important_evicted: u64,
}

impl Outcome {
    fn miss_rate(&self) -> f64 {
        100.0 * self.misses as f64 / PACKETS as f64
    }

    fn evictions_per_sec(&self) -> f64 {
        self.evictions as f64 / (PACKETS as f64 * PKT_GAP_NS as f64 / 1e9)
    }

    fn amplification(&self) -> f64 {
        self.ctl_messages as f64 / PACKETS as f64
    }
}

fn run(size: usize, policy: OverflowPolicy) -> Outcome {
    let flows = build_flows();
    let mut rng = Lcg::new(0xE16_7AB1E);
    let mut table = FlowTable::new();
    table.set_limit(size, policy);
    let mut out = Outcome::default();
    let mut backoff_until: u64 = 0;

    for pkt in 0..PACKETS {
        let now = pkt as u64 * PKT_GAP_NS;
        // Idle expiries notify the controller like any removal.
        if pkt % 4096 == 0 {
            let expired = table.expire(now);
            out.expiries += expired.len() as u64;
            out.ctl_messages += expired.len() as u64;
        }
        let i = zipfish_index(&mut rng, FLOWS);
        let (key, spec) = &flows[i];
        if table.lookup(key, 64, now).is_some() {
            continue; // data-plane hit: the controller never hears of it
        }
        // Miss: punt, install, release (PACKET_IN + FLOW_MOD + PACKET_OUT).
        out.misses += 1;
        out.ctl_messages += 2; // PACKET_IN + PACKET_OUT always happen
        if now < backoff_until {
            continue; // app is backing off: forward controller-mediated
        }
        out.ctl_messages += 1; // FLOW_MOD
        match table.add(spec.clone(), now) {
            zen_dataplane::AddOutcome::Added => {}
            zen_dataplane::AddOutcome::Evicted(victims) => {
                out.evictions += victims.len() as u64;
                out.ctl_messages += victims.len() as u64; // FLOW_REMOVED
                out.important_evicted +=
                    victims.iter().filter(|v| v.spec.importance > 0).count() as u64;
            }
            zen_dataplane::AddOutcome::Refused => {
                out.refusals += 1;
                out.ctl_messages += 1; // ERROR { TABLE_FULL }
                backoff_until = now + BACKOFF_NS;
            }
        }
    }
    out.final_len = table.len();
    assert!(
        out.final_len <= size,
        "occupancy {} exceeded bound {size}",
        out.final_len
    );
    out
}

fn main() {
    println!("# E16 — flow-table pressure: Zipf churn vs. bounded tables");
    println!(
        "# {FLOWS} distinct flows, {PACKETS} packets at 500 kpps, idle {} ms, backoff {} us",
        IDLE_NS / 1_000_000,
        BACKOFF_NS / 1_000
    );
    println!();
    println!(
        "{:>6} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "size", "policy", "miss%", "evict", "evict/s", "refused", "expired", "msgs/pkt"
    );
    for &size in &[256usize, 1024, 4096] {
        for policy in [OverflowPolicy::Evict, OverflowPolicy::Refuse] {
            let out = run(size, policy);
            let label = match policy {
                OverflowPolicy::Evict => "evict",
                OverflowPolicy::Refuse => "refuse",
            };
            println!(
                "{:>6} {:>8} {:>10.2} {:>10} {:>10.0} {:>10} {:>10} {:>10.3}",
                size,
                label,
                out.miss_rate(),
                out.evictions,
                out.evictions_per_sec(),
                out.refusals,
                out.expiries,
                out.amplification()
            );
            // Importance held: the hot head marked important never got
            // shed in favour of tail churn.
            assert_eq!(
                out.important_evicted, 0,
                "important flows evicted at size {size}"
            );
            match policy {
                OverflowPolicy::Evict => assert_eq!(out.refusals, 0),
                OverflowPolicy::Refuse => assert_eq!(out.evictions, 0),
            }
        }
    }
    println!();
    println!("# Shape check: pressure (evictions/refusals, msgs/pkt) falls as the");
    println!("# table grows; at 4k the working set fits and both policies converge.");
}
