//! E1 — Flow-table lookup cost vs. table size and rule shape.
//!
//! The OVS-style question: how does match cost scale with rule count,
//! and what do wildcards cost relative to exact rules? The linear
//! priority scan is the reference data-plane implementation; the bench
//! establishes its scaling so the pipeline experiments can be
//! interpreted.

use std::hint::black_box;
use std::time::Duration;

use zen_bench::harness::{Bench, Throughput};
use zen_dataplane::{Action, FlowKey, FlowMatch, FlowSpec, FlowTable};
use zen_wire::builder::PacketBuilder;
use zen_wire::{EthernetAddress, Ipv4Address, Ipv4Cidr};

fn frame_for(i: u32) -> Vec<u8> {
    PacketBuilder::udp(
        EthernetAddress::from_id(u64::from(i) + 1),
        Ipv4Address::from_u32(0x0a00_0000 | (i & 0xffff)),
        1000 + (i % 1000) as u16,
        EthernetAddress::from_id(u64::from(i) + 100_000),
        Ipv4Address::from_u32(0x0b00_0000 | (i & 0xffff)),
        53,
        b"payload",
    )
}

fn exact_table(n: u32) -> (FlowTable, Vec<FlowKey>) {
    let mut table = FlowTable::new();
    let mut keys = Vec::new();
    for i in 0..n {
        let frame = frame_for(i);
        let key = FlowKey::extract(1, &frame).unwrap();
        table.add(
            FlowSpec::new(100, FlowMatch::exact(&key), vec![Action::Output(2)]),
            0,
        );
        keys.push(key);
    }
    (table, keys)
}

fn prefix_table(n: u32) -> (FlowTable, Vec<FlowKey>) {
    let mut table = FlowTable::new();
    let mut keys = Vec::new();
    for i in 0..n {
        let dst = Ipv4Address::from_u32(0x0b00_0000 | (i & 0xffff));
        let cidr = Ipv4Cidr::new(dst, 32).unwrap();
        table.add(
            FlowSpec::new(
                (i % 100) as u16 + 1,
                FlowMatch::ipv4_to(cidr),
                vec![Action::Output(2)],
            ),
            0,
        );
        let frame = frame_for(i);
        keys.push(FlowKey::extract(1, &frame).unwrap());
    }
    (table, keys)
}

fn bench_lookup() {
    let mut group = Bench::group("E1/flow_table_lookup")
        .samples(20)
        .warm_up(Duration::from_millis(300))
        .measurement(Duration::from_secs(1));
    for &n in &[100u32, 1_000, 10_000] {
        group.throughput(Throughput::Elements(1));
        let (mut table, keys) = exact_table(n);
        let mut i = 0usize;
        group.run(&format!("exact/{n}"), || {
            let key = &keys[i % keys.len()];
            i += 1;
            black_box(table.lookup(key, 64, 1).is_some())
        });
        let (mut table, keys) = prefix_table(n);
        let mut i = 0usize;
        group.run(&format!("prefix/{n}"), || {
            let key = &keys[i % keys.len()];
            i += 1;
            black_box(table.lookup(key, 64, 1).is_some())
        });
        // Worst case: a key that matches nothing scans the whole table.
        let (mut table, _) = exact_table(n);
        let miss_frame = frame_for(u32::MAX - 1);
        let miss_key = FlowKey::extract(9, &miss_frame).unwrap();
        group.run(&format!("miss/{n}"), || {
            black_box(table.lookup(&miss_key, 64, 1).is_some())
        });
    }
}

fn bench_key_extract() {
    let mut group = Bench::group("E1/flow_key_extract")
        .samples(20)
        .warm_up(Duration::from_millis(300))
        .measurement(Duration::from_secs(1));
    let frame = frame_for(7);
    group.run("udp_frame", || {
        black_box(FlowKey::extract(1, black_box(&frame)))
    });
    let arp = PacketBuilder::arp_request(
        EthernetAddress::from_id(1),
        Ipv4Address::new(10, 0, 0, 1),
        Ipv4Address::new(10, 0, 0, 2),
    );
    group.run("arp_frame", || {
        black_box(FlowKey::extract(1, black_box(&arp)))
    });
}

fn main() {
    bench_lookup();
    bench_key_extract();
}
