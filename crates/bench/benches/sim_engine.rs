//! Simulator engine throughput: events per second of wall-clock time.
//!
//! Not a paper experiment, but the number that bounds how large a
//! topology the experiment suite can afford: raw event dispatch, link
//! queueing arithmetic, and timer churn.

use std::hint::black_box;
use std::time::Duration as WallDuration;

use std::any::Any;
use zen_bench::harness::{Bench, Throughput};
use zen_sim::{Context, Duration, LinkParams, Node, PortNo, World};

/// A node that forwards every frame to its other port, forever.
struct Relay;

impl Node for Relay {
    fn on_packet(&mut self, ctx: &mut Context<'_>, port: PortNo, frame: &[u8]) {
        let out = if port == 1 { 2 } else { 1 };
        ctx.transmit(out, frame.to_vec());
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Kicks off `n` frames at start.
struct Kicker {
    n: usize,
}

impl Node for Kicker {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        for _ in 0..self.n {
            ctx.transmit(1, vec![0u8; 200]);
        }
    }
    fn on_packet(&mut self, ctx: &mut Context<'_>, _port: PortNo, frame: &[u8]) {
        ctx.transmit(1, frame.to_vec());
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A ring of relays with `inflight` frames circulating; run until
/// `budget` events are processed.
fn run_ring(relays: usize, inflight: usize, budget: u64) -> u64 {
    let mut world = World::new(1);
    let kicker = world.add_node(Box::new(Kicker { n: inflight }));
    let mut prev = kicker;
    let mut nodes = vec![kicker];
    for _ in 0..relays {
        let node = world.add_node(Box::new(Relay));
        world.connect(prev, node, LinkParams::default());
        nodes.push(node);
        prev = node;
    }
    // Close the ring.
    world.connect(prev, kicker, LinkParams::default());
    world.run_to_quiescence(budget);
    world.events_processed()
}

/// Timer-heavy workload: a node that reschedules many timers.
struct TimerStorm {
    fanout: u64,
}

impl Node for TimerStorm {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        for t in 0..self.fanout {
            ctx.set_timer(Duration::from_micros(t + 1), t);
        }
    }
    fn on_packet(&mut self, _: &mut Context<'_>, _: PortNo, _: &[u8]) {}
    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        ctx.set_timer(Duration::from_micros(self.fanout), token);
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn main() {
    let mut group = Bench::group("sim/engine")
        .samples(10)
        .warm_up(WallDuration::from_millis(500))
        .measurement(WallDuration::from_secs(3));

    let budget = 200_000u64;
    group.throughput(Throughput::Elements(budget));
    group.run("packet_ring_10relays_100inflight", || {
        black_box(run_ring(10, 100, budget))
    });

    group.run("timer_storm_1000", || {
        let mut world = World::new(1);
        world.add_node(Box::new(TimerStorm { fanout: 1000 }));
        world.run_to_quiescence(budget);
        black_box(world.events_processed())
    });
}
