//! E6 — controller flow-request throughput (the Maple-style headline).
//!
//! How fast does the whole control loop — punt, decode, host lookup,
//! shortest path, flow installation, packet release — grind through a
//! storm of new flows? Each iteration simulates an all-pairs burst of
//! first packets on a leaf–spine fabric; throughput is reported in
//! flow setups per second of *wall-clock* time (the simulator itself is
//! part of the measured controller machinery, as in real controller
//! benchmarks the I/O stack is).

use std::hint::black_box;
use std::time::Duration as WallDuration;

use zen_bench::harness::{Bench, Throughput};
use zen_core::apps::ReactiveForwarding;
use zen_core::harness::{build_fabric_with_hosts, default_host_ip, FabricOptions};
use zen_core::Controller;
use zen_sim::{Duration, Host, Instant, LinkParams, Topology, Workload, World};

fn run_burst(hosts_per_leaf: usize) -> u64 {
    let topo = Topology::leaf_spine(4, 2, hosts_per_leaf, LinkParams::default());
    let n = topo.host_count();
    let mut world = World::new(1);
    let fabric = build_fabric_with_hosts(
        &mut world,
        &topo,
        vec![Box::new(ReactiveForwarding::new())],
        FabricOptions::default(),
        |i, mac, ip| {
            let mut host = Host::new(mac, ip).with_gratuitous_arp();
            // Every host sends one datagram to every other host; each
            // pair is a distinct flow needing controller service.
            for d in 0..n {
                if d != i {
                    host = host.with_workload(Workload::Udp {
                        dst: default_host_ip(d),
                        dst_port: 9,
                        size: 64,
                        count: 1,
                        interval: Duration::from_millis(1),
                        start: Instant::from_millis(500 + (i as u64 * 7 + d as u64) % 50),
                    });
                }
            }
            host
        },
    );
    world.run_until(Instant::from_secs(2));
    let controller = world.node_as::<Controller>(fabric.controller);
    controller.stats.packet_ins
}

fn main() {
    let mut group = Bench::group("E6/controller_throughput")
        .samples(10)
        .warm_up(WallDuration::from_millis(500))
        .measurement(WallDuration::from_secs(5));
    for hosts_per_leaf in [2usize, 4] {
        let n = 4 * hosts_per_leaf;
        let pairs = (n * (n - 1)) as u64;
        group.throughput(Throughput::Elements(pairs));
        group.run(&format!("all_pairs_{n}_hosts"), || {
            black_box(run_burst(hosts_per_leaf))
        });
    }
}
