//! E12 — Flow-cache effectiveness on the datapath hot path.
//!
//! The OVS argument in miniature: a multi-table pipeline with a few
//! hundred rules makes every packet pay two linear priority scans,
//! while the microflow/megaflow cache answers repeat flows with one
//! hash lookup. Zipf-like traffic (a few hot flows, a long tail) is
//! the regime caches are built for; the bench reports cached vs.
//! uncached cost per packet and the resulting speedup.

use std::hint::black_box;
use std::time::Duration;

use zen_bench::harness::{Bench, Throughput};
use zen_dataplane::{Action, Datapath, FlowMatch, FlowSpec, MissPolicy};
use zen_wire::builder::PacketBuilder;
use zen_wire::lcg::Lcg;
use zen_wire::{EthernetAddress, Ipv4Address, Ipv4Cidr};

const ACL_RULES: u32 = 128;
const FORWARD_RULES: u16 = 512;
const FLOWS: usize = 1024;
const WORKLOAD: usize = 65_536;

/// Decorrelate flow popularity from rule position: without this, hot
/// Zipf flows would land on early table entries and make the uncached
/// scan look artificially cheap.
fn port_for_flow(i: usize) -> u16 {
    1000 + ((i as u16).wrapping_mul(193) % FORWARD_RULES)
}

/// A two-table pipeline: an ACL table of mostly-miss /32 source rules
/// falling through to a forwarding table of per-destination-port rules.
fn build_dp(cached: bool) -> Datapath {
    let mut dp = Datapath::new(1, 2, MissPolicy::Drop);
    dp.set_flow_cache_enabled(cached);
    for p in 1..=4 {
        dp.add_port(p);
    }
    for i in 0..ACL_RULES {
        // Blocked sources no generated packet uses (10.9.x.x).
        let src = Ipv4Address::from_u32(0x0a09_0000 | i);
        dp.add_flow(
            0,
            FlowSpec::new(
                1000 + i as u16,
                FlowMatch {
                    ipv4_src: Some(Ipv4Cidr::new(src, 32).unwrap()),
                    ..FlowMatch::ANY
                },
                vec![],
            ),
            0,
        );
    }
    dp.add_flow(0, FlowSpec::new(1, FlowMatch::ANY, vec![]).with_goto(1), 0);
    for d in 0..FORWARD_RULES {
        dp.add_flow(
            1,
            FlowSpec::new(
                10,
                FlowMatch::ANY.with_ip_proto(17).with_l4_dst(1000 + d),
                vec![Action::Output(2 + u32::from(d % 3))],
            ),
            0,
        );
    }
    dp.add_flow(1, FlowSpec::new(1, FlowMatch::ANY, vec![Action::Flood]), 0);
    dp
}

/// Zipf-like flow popularity without floats: the candidate range keeps
/// shrinking toward rank 0 on coin flips, so a handful of flows carry
/// most of the traffic over a long uniform tail.
fn zipfish_index(rng: &mut Lcg, n: usize) -> usize {
    let mut hi = n;
    while hi > 1 && rng.gen_ratio(1, 2) {
        hi = hi.div_ceil(8);
    }
    rng.gen_index(hi)
}

fn build_workload() -> Vec<(u32, Vec<u8>)> {
    let mut rng = Lcg::new(0x21BFCAC4E);
    let flows: Vec<(u32, Vec<u8>)> = (0..FLOWS)
        .map(|i| {
            let in_port = 1 + (i as u32 % 4);
            let frame = PacketBuilder::udp(
                EthernetAddress::from_id(i as u64 + 1),
                Ipv4Address::from_u32(0x0a00_0000 | (i as u32)),
                2000 + (i % 512) as u16,
                EthernetAddress::from_id(99),
                Ipv4Address::from_u32(0x0b00_0000 | (i as u32)),
                port_for_flow(i),
                b"zipf traffic",
            );
            (in_port, frame)
        })
        .collect();
    (0..WORKLOAD)
        .map(|_| flows[zipfish_index(&mut rng, FLOWS)].clone())
        .collect()
}

fn main() {
    let workload = build_workload();
    let mut group = Bench::group("E12/flow_cache")
        .samples(15)
        .warm_up(Duration::from_millis(300))
        .measurement(Duration::from_secs(1));
    group.throughput(Throughput::Elements(1));

    let mut uncached = build_dp(false);
    let mut i = 0usize;
    let slow_ns = group.run("uncached_process", || {
        let (in_port, frame) = &workload[i % workload.len()];
        i += 1;
        black_box(uncached.process(i as u64, *in_port, frame).len())
    });

    let mut cached = build_dp(true);
    let mut i = 0usize;
    let fast_ns = group.run("cached_process", || {
        let (in_port, frame) = &workload[i % workload.len()];
        i += 1;
        black_box(cached.process(i as u64, *in_port, frame).len())
    });

    let stats = cached.cache_stats();
    let total = stats.hits() + stats.misses;
    println!(
        "E12/flow_cache/hit_rate          {:.2}% ({} micro, {} mega, {} misses)",
        100.0 * stats.hits() as f64 / total.max(1) as f64,
        stats.micro_hits,
        stats.mega_hits,
        stats.misses
    );
    println!(
        "E12/flow_cache/speedup           {:.1}x (uncached {slow_ns:.0} ns/pkt → cached {fast_ns:.0} ns/pkt)",
        slow_ns / fast_ns
    );
    assert!(
        slow_ns / fast_ns >= 5.0,
        "flow cache speedup below 5x: {:.2}x",
        slow_ns / fast_ns
    );
}
