//! E21 — sharded event loop: scaling a ~1k-switch fat-tree across cores.
//!
//! The conservative-window sharded engine ([`zen_sim::ShardedWorld`])
//! promises two things at once: the run is **byte-identical at every
//! shard count**, and wall-clock throughput scales with shards. This
//! driver measures both on the Datapath-backed fat-tree fabric from
//! [`zen_core::shard_fabric`]:
//!
//! * Full mode builds a k=28 fat-tree — 980 switches, 5 488 bursting
//!   hosts — and runs the identical seeded workload at 1, 2, 4 and 8
//!   shards. Quick mode (CI) shrinks to k=8 (80 switches, 128 hosts).
//! * Every configuration reports aggregate forwarded packets per
//!   wall-second and wall-seconds per simulated second; the run's
//!   merged counters must be identical across all shard counts (the
//!   determinism contract, asserted here on every run).
//! * In full mode the best multi-shard run must beat the single-shard
//!   run — the scaling claim the subsystem exists for.
//!
//! Machine-readable output: one JSON line per configuration to
//! `BENCH_E21_OUT` (default `target/BENCH_E21.json`). If
//! `BENCH_E21_BASELINE` names a committed baseline
//! (`ci/BENCH_E21.baseline.json` in CI), the run fails when peak
//! packets/sec regresses more than the configured percentage below it.
//! `BENCH_E21_QUICK=1` selects the small topology for CI smoke lanes.

use zen_core::shard_fabric::{build_shard_fat_tree, ShardTrafficHost};
use zen_sim::{Duration, Instant, LinkParams, ShardedWorld};
use zen_telemetry::json::Line;

/// Fixed seed: the simulated side of every run is a pure function of it.
const SEED: u64 = 0xE21_0001;

/// Fat-tree arity (switch count is k² + k²/4).
fn arity(quick: bool) -> usize {
    if quick {
        8
    } else {
        28
    }
}

/// Simulated span per configuration.
fn sim_span(quick: bool) -> Duration {
    if quick {
        Duration::from_millis(10)
    } else {
        Duration::from_millis(20)
    }
}

/// Shard counts to sweep.
fn shard_counts(quick: bool) -> &'static [usize] {
    if quick {
        &[1, 2, 4]
    } else {
        &[1, 2, 4, 8]
    }
}

/// One measured configuration.
struct Outcome {
    shards: usize,
    switches: usize,
    hosts: usize,
    /// Link-layer frame transmissions (every hop counts once).
    frames: u64,
    /// Frames delivered to a destination host.
    delivered: u64,
    events: u64,
    wall_secs: f64,
    sim_secs: f64,
    /// The full merged counter set, for the determinism check.
    counters: Vec<(String, u64)>,
}

impl Outcome {
    fn pkts_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.frames as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    fn wall_per_sim_sec(&self) -> f64 {
        if self.sim_secs > 0.0 {
            self.wall_secs / self.sim_secs
        } else {
            0.0
        }
    }

    fn json(&self, out: &mut String) {
        Line::new("bench")
            .str("id", "E21")
            .u64("shards", self.shards as u64)
            .u64("switches", self.switches as u64)
            .u64("hosts", self.hosts as u64)
            .u64("frames", self.frames)
            .u64("delivered", self.delivered)
            .u64("events", self.events)
            .f64("wall_ms", self.wall_secs * 1e3)
            .f64("sim_ms", self.sim_secs * 1e3)
            .f64("pkts_per_sec", self.pkts_per_sec())
            .f64("wall_per_sim_sec", self.wall_per_sim_sec())
            .finish(out);
    }
}

/// Build the fabric and run the fixed workload at `shards` shards.
fn run(quick: bool, shards: usize) -> Outcome {
    let k = arity(quick);
    let mut world = ShardedWorld::new(SEED);
    let fabric = build_shard_fat_tree(
        &mut world,
        k,
        LinkParams::instant(Duration::from_micros(5)),
        LinkParams::instant(Duration::from_micros(2)),
        Duration::from_micros(100),
        4,
    );
    let span = sim_span(quick);
    let deadline = Instant::ZERO + span;

    let start = std::time::Instant::now();
    world.run_until(deadline, shards);
    let wall_secs = start.elapsed().as_secs_f64();

    let counters: Vec<(String, u64)> = world
        .metrics()
        .counters()
        .map(|(name, v)| (name.to_string(), v))
        .collect();
    let get = |name: &str| {
        counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    };
    let delivered: u64 = fabric
        .hosts
        .iter()
        .map(|&id| world.node_as::<ShardTrafficHost>(id).rx)
        .sum();
    Outcome {
        shards,
        switches: fabric.switches.len(),
        hosts: fabric.hosts.len(),
        frames: get("sim.tx_frames"),
        delivered,
        events: world.events_processed(),
        wall_secs,
        sim_secs: span.as_nanos() as f64 / 1e9,
        counters,
    }
}

/// Pull `"peak_pkts_per_sec":<num>` out of a baseline JSON-lines file
/// by hand (the workspace is serde-free on principle).
fn baseline_peak(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let line = text
        .lines()
        .find(|l| l.contains("\"type\":\"bench_summary\"") && l.contains("\"id\":\"E21\""))?;
    let key = "\"peak_pkts_per_sec\":";
    let at = line.find(key)? + key.len();
    let rest = &line[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn main() {
    let quick = std::env::var("BENCH_E21_QUICK").is_ok_and(|v| v == "1");
    let pct: f64 = std::env::var("BENCH_E21_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20.0);
    let k = arity(quick);
    let mut json = String::new();

    println!("# E21 — sharded event loop on a k={k} fat-tree");
    println!(
        "# identical seeded workload per shard count; merged counters must match exactly{}",
        if quick { " [quick]" } else { "" }
    );
    println!();
    println!(
        "{:>6} {:>9} {:>7} {:>12} {:>11} {:>11} {:>12} {:>13}",
        "shards", "switches", "hosts", "frames", "delivered", "wall_ms", "Mpkts/s", "wall/sim_sec"
    );

    let mut outcomes: Vec<Outcome> = Vec::new();
    let mut peak = 0.0f64;
    for &shards in shard_counts(quick) {
        let out = run(quick, shards);
        println!(
            "{:>6} {:>9} {:>7} {:>12} {:>11} {:>11.1} {:>12.3} {:>13.2}",
            out.shards,
            out.switches,
            out.hosts,
            out.frames,
            out.delivered,
            out.wall_secs * 1e3,
            out.pkts_per_sec() / 1e6,
            out.wall_per_sim_sec(),
        );
        assert!(out.frames > 0, "no traffic at {shards} shards");
        assert!(out.delivered > 0, "nothing delivered at {shards} shards");
        peak = peak.max(out.pkts_per_sec());
        out.json(&mut json);
        outcomes.push(out);
    }

    // Determinism contract: the merged counter set — every drop, every
    // hop, every host delivery — is identical at every shard count.
    let first = &outcomes[0];
    for out in &outcomes[1..] {
        assert_eq!(
            first.counters, out.counters,
            "counters diverge between {} and {} shards",
            first.shards, out.shards
        );
        assert_eq!(
            first.events, out.events,
            "event totals diverge between {} and {} shards",
            first.shards, out.shards
        );
        assert_eq!(first.delivered, out.delivered, "deliveries diverge");
    }
    println!();
    println!(
        "# determinism: {} counters identical across shard counts",
        first.counters.len()
    );

    Line::new("bench_summary")
        .str("id", "E21")
        .bool("quick", quick)
        .u64("switches", first.switches as u64)
        .f64("peak_pkts_per_sec", peak)
        .finish(&mut json);

    // cargo runs bench binaries with CWD = the package dir; anchor the
    // default output at the workspace target dir so CI finds it.
    let out_path = std::env::var("BENCH_E21_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/BENCH_E21.json").to_string()
    });
    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(&out_path, &json).expect("write BENCH_E21.json");
    println!("# wrote {out_path}");

    // Perf-regression gate against the committed baseline, if set.
    match std::env::var("BENCH_E21_BASELINE") {
        Ok(path) => match baseline_peak(&path) {
            Some(base) => {
                let floor = base * (1.0 - pct / 100.0);
                println!(
                    "# baseline peak {base:.0} pkts/s ({path}); floor {floor:.0}, measured {peak:.0}"
                );
                if peak < floor {
                    eprintln!(
                        "E21 REGRESSION: peak {peak:.0} pkts/s is more than {pct}% below \
                         baseline {base:.0} ({path})"
                    );
                    std::process::exit(1);
                }
            }
            None => {
                eprintln!("E21: baseline {path} missing or unparsable; failing the gate");
                std::process::exit(1);
            }
        },
        Err(_) => println!("# no BENCH_E21_BASELINE set; regression gate skipped"),
    }

    // Shape: on the big fabric, sharding must actually pay — the best
    // multi-shard run beats single-shard. The quick topology is too
    // small for the parallelism to beat barrier overhead, so CI only
    // checks determinism.
    if !quick {
        let single = outcomes
            .iter()
            .find(|o| o.shards == 1)
            .expect("single-shard run");
        let best_multi = outcomes
            .iter()
            .filter(|o| o.shards > 1)
            .map(|o| o.pkts_per_sec())
            .fold(0.0f64, f64::max);
        assert!(
            best_multi > single.pkts_per_sec(),
            "sharding never beat single-shard: best multi {best_multi:.0} vs single {:.0}",
            single.pkts_per_sec()
        );
    }
}
