//! E9 — fat-tree load balance: ECMP groups vs. single shortest path.
//!
//! Random-permutation traffic on a k=4 fat-tree, forwarded by the
//! proactive fabric app in two configurations: SELECT groups hashing
//! flows across all equal-cost next hops (ECMP), and the same rules
//! pinned to a single next hop (by keeping only one group bucket).
//! Reported: delivered traffic, p99 one-way latency, number of loaded
//! core links, and the max/mean load imbalance across core links.

use zen_core::apps::proactive::FABRIC_MAC;
use zen_core::apps::ProactiveFabric;
use zen_core::harness::{build_fabric, build_fabric_with_hosts, default_host_ip, FabricOptions};
use zen_core::Dpid;
use zen_dataplane::PortNo;
use zen_sim::{Duration, FatTreeIndex, Host, Instant, LinkParams, Rng, Topology, Workload, World};

/// A fabric app variant that keeps only the first bucket of every ECMP
/// group — the "single path" ablation.
struct SinglePathFabric {
    inner: ProactiveFabric,
}

impl zen_core::App for SinglePathFabric {
    fn name(&self) -> &'static str {
        "single-path-fabric"
    }
    fn tick(&mut self, ctl: &mut zen_core::Ctl<'_, '_>) {
        self.inner.tick(ctl);
    }
    fn on_port_status(
        &mut self,
        ctl: &mut zen_core::Ctl<'_, '_>,
        dpid: Dpid,
        port: PortNo,
        up: bool,
    ) {
        self.inner.on_port_status(ctl, dpid, port, up);
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

struct RunResult {
    delivered: u64,
    expected: u64,
    p99_us: f64,
    loaded_core_links: usize,
    imbalance: f64,
    drops: u64,
}

fn run(ecmp: bool, seed: u64) -> RunResult {
    let topo = Topology::fat_tree(
        4,
        LinkParams::new(Duration::from_micros(10), 1_000_000_000, 256 * 1024),
    );
    let n = topo.host_count();
    let expected_links = 2 * topo.links.len();
    let inventory = {
        let mut scratch = World::new(seed);
        build_fabric(&mut scratch, &topo, vec![], FabricOptions::default()).static_hosts()
    };

    // Random permutation with no fixed points.
    let mut perm: Vec<usize> = (0..n).collect();
    let mut rng = Rng::new(seed);
    loop {
        rng.shuffle(&mut perm);
        if perm.iter().enumerate().all(|(i, &p)| i != p) {
            break;
        }
    }

    let mut world = World::new(seed);
    let fabric_app = ProactiveFabric::new(inventory, topo.switches, expected_links);
    let app: Box<dyn zen_core::App> = if ecmp {
        Box::new(fabric_app)
    } else {
        Box::new(SinglePathFabric { inner: fabric_app })
    };
    let count = 2000u64;
    let fabric = build_fabric_with_hosts(
        &mut world,
        &topo,
        vec![app],
        FabricOptions::default(),
        |i, mac, ip| {
            let dst = default_host_ip(perm[i]);
            Host::new(mac, ip)
                .with_static_arp(dst, FABRIC_MAC)
                .with_workload(Workload::Udp {
                    dst,
                    dst_port: 9,
                    size: 1500,
                    count,
                    interval: Duration::from_micros(30), // ~400 Mb/s per host
                    start: Instant::from_secs(1),
                })
        },
    );

    // The ablation: after programming, strip groups down to one bucket.
    if !ecmp {
        world.run_until(Instant::from_millis(900));
        for (si, &sw) in fabric.switches.iter().enumerate() {
            let agent = world.node_as_mut::<zen_core::SwitchAgent>(sw);
            let _ = si;
            let gids: Vec<u32> = (0..topo.switches as u64)
                .map(zen_core::apps::proactive::group_id_for)
                .collect();
            for gid in gids {
                if let Some(desc) = agent.dp.groups.get(gid).cloned() {
                    if desc.buckets.len() > 1 {
                        let mut single = desc;
                        single.buckets.truncate(1);
                        agent.dp.groups.add(gid, single);
                    }
                }
            }
        }
    }
    world.run_until(Instant::from_secs(3));

    let mut delivered = 0u64;
    let mut p99 = 0f64;
    for &h in &fabric.hosts {
        let host = world.node_as_mut::<Host>(h);
        delivered += host.stats.udp_rx;
        if let Some(v) = host.stats.udp_latency.p99() {
            p99 = p99.max(v);
        }
    }
    // Core-link load distribution: the upper 16 switch links in a k=4
    // fat-tree are agg<->core (indices 16..32 in construction order).
    let idx = FatTreeIndex::new(4);
    let mut core_loads = Vec::new();
    for (li, &l) in fabric.switch_links.iter().enumerate() {
        let tl = &topo.links[li];
        if idx.is_core(tl.a) || idx.is_core(tl.b) {
            let link = world.link(l);
            core_loads.push((link.ab.tx_bytes + link.ba.tx_bytes) as f64);
        }
    }
    let loaded = core_loads.iter().filter(|&&b| b > 1e6).count();
    let mean = core_loads.iter().sum::<f64>() / core_loads.len() as f64;
    let max = core_loads.iter().copied().fold(0.0, f64::max);
    let drops = world.metrics().counter("sim.drops_queue");
    RunResult {
        delivered,
        expected: count * topo.host_count() as u64,
        p99_us: p99 * 1e6,
        loaded_core_links: loaded,
        imbalance: if mean > 0.0 { max / mean } else { 0.0 },
        drops,
    }
}

fn main() {
    println!("# E9 — fat-tree (k=4) permutation traffic: ECMP vs single path");
    println!("# 16 hosts at ~400 Mb/s each over 1 Gb/s links");
    println!();
    println!(
        "{:>14} {:>6} {:>14} {:>10} {:>12} {:>12} {:>10}",
        "forwarding", "seed", "delivered", "p99(us)", "core-links", "imbalance", "drops"
    );
    for seed in [1u64, 2, 3] {
        for ecmp in [true, false] {
            let r = run(ecmp, seed);
            println!(
                "{:>14} {:>6} {:>9}/{:<6} {:>8.0} {:>9}/16 {:>12.2} {:>10}",
                if ecmp { "ecmp-select" } else { "single-path" },
                seed,
                r.delivered,
                r.expected,
                r.p99_us,
                r.loaded_core_links,
                r.imbalance,
                r.drops
            );
        }
    }
    println!();
    println!("# Shape check: ECMP spreads load across more core links with lower");
    println!("# imbalance, fewer queue drops and lower p99 latency than pinning");
    println!("# each destination to one uplink.");
}
