//! E18 — storm survival: hostile workloads vs control-plane self-defense.
//!
//! Two experiments, both runnable calm/under-attack and with the
//! defenses (agent punt meter + controller admission + push-back) on
//! or off:
//!
//! * **Fabric black-hole** — the `zen-sim` hostile engine floods
//!   unknown-destination frames from one rogue edge port at 10x the
//!   innocent aggregate while two innocent hosts exchange probes over
//!   narrow access links. Measures innocent probe loss (each lost
//!   probe is one probe interval of black-hole time), controller
//!   message load, and which defense layers engaged. Fully simulated
//!   and deterministic.
//! * **cbench storm** — four innocent open-loop [`CbenchSwitch`]es
//!   punt at 2k pps each while one rogue switch blasts 80k pps (10x
//!   the innocent aggregate) at the same controller. Measures the
//!   innocents' wall-clock setup latency and throughput: with
//!   admission on, rogue punts over budget are shed before app
//!   dispatch, so innocent p99 stays near calm; off, every rogue punt
//!   takes the full decode-dispatch-install path ahead of innocent
//!   work.
//!
//! Machine-readable output: one JSON line per configuration to
//! `BENCH_E18_OUT` (default `target/BENCH_E18.json`). If
//! `BENCH_E18_BASELINE` names a committed baseline (CI points it at
//! `ci/BENCH_E18.baseline.json`), the run fails when the attack-mode
//! defended innocent setups/sec regresses more than 20% below it.
//! `BENCH_E18_QUICK=1` shrinks the cbench span for CI smoke lanes.

use zen_core::apps::L2Learning;
use zen_core::harness::{default_host_ip, default_host_mac};
use zen_core::{
    build_fabric_with_hosts, AdmissionConfig, CbenchConfig, CbenchMode, CbenchSwitch, Controller,
    FabricOptions, PuntMeterConfig, SwitchAgent,
};
use zen_sim::{
    Attack, Duration, Histogram, Host, HostileConfig, HostileHost, Instant, LinkParams, NodeId,
    Topology, Workload, World,
};
use zen_telemetry::json::Line;

/// Fixed seed: the simulated side of every run is a pure function of it.
const SEED: u64 = 0xE18_0001;

// ---------------------------------------------------------------------------
// Part A: fabric black-hole scenario (fully simulated, deterministic).
// ---------------------------------------------------------------------------

/// Innocent probe interval per host (1000 pps aggregate over 2 hosts).
const PROBE_INTERVAL: Duration = Duration::from_millis(2);
/// Probes per innocent host; the last leaves at 3.898 s of a 4 s run.
const PROBE_COUNT: u64 = 1_900;
/// Rogue flood gap: 10_000 pps, 10x the innocent aggregate.
const FLOOD_INTERVAL: Duration = Duration::from_micros(100);
const ATTACK_START: Instant = Instant::from_millis(1_000);
const ATTACK_STOP: Instant = Instant::from_millis(3_000);
const FABRIC_RUN: Instant = Instant::from_millis(4_000);

struct FabricOutcome {
    attack: bool,
    defended: bool,
    /// Probes lost per innocent host (tx minus deliveries at its peer).
    lost: Vec<u64>,
    ctl_msgs: u64,
    pushbacks: u64,
    punts_metered: u64,
    punts_shed_ctl: u64,
    floods: u64,
    mods_failed: u64,
}

impl FabricOutcome {
    fn worst_lost(&self) -> u64 {
        self.lost.iter().copied().max().unwrap_or(0)
    }

    /// Worst per-pair black-hole time: lost probes x probe interval.
    fn blackhole_ms(&self) -> f64 {
        self.worst_lost() as f64 * PROBE_INTERVAL.as_nanos() as f64 / 1e6
    }

    fn json(&self, out: &mut String) {
        Line::new("bench")
            .str("id", "E18")
            .str("mode", "fabric")
            .bool("attack", self.attack)
            .bool("defended", self.defended)
            .u64("probes_per_host", PROBE_COUNT)
            .u64("lost_worst", self.worst_lost())
            .f64("blackhole_ms", self.blackhole_ms())
            .u64("ctl_msgs", self.ctl_msgs)
            .u64("pushbacks", self.pushbacks)
            .u64("punts_metered", self.punts_metered)
            .u64("punts_shed_ctl", self.punts_shed_ctl)
            .u64("floods", self.floods)
            .finish(out);
    }
}

/// The defense soak fabric (mirrors `crates/core/tests/defense.rs`):
/// two switches, two innocent hosts on narrow links, one rogue on a
/// fat link flooding unknown destinations.
fn run_fabric(attack: bool, defended: bool) -> FabricOutcome {
    let mut world = World::new(SEED);
    let host_link = LinkParams {
        latency: Duration::from_micros(10),
        bandwidth_bps: 10_000_000,
        queue_bytes: 32 * 1024,
    };
    let rogue_link = LinkParams {
        latency: Duration::from_micros(10),
        bandwidth_bps: 100_000_000,
        queue_bytes: 64 * 1024,
    };
    let topo = Topology::line(2, LinkParams::default())
        .with_hosts_at(0, 1)
        .with_hosts_at(1, 1);
    let mut opts = FabricOptions {
        host_link,
        ..FabricOptions::default()
    };
    if defended {
        opts.agent_cfg.punt_meter = Some(PuntMeterConfig {
            rate_pps: 2_000,
            burst: 64,
        });
        opts.controller_cfg.admission = Some(AdmissionConfig {
            rate_pps: 500,
            burst: 128,
            queue_cap: 256,
            pushback_threshold: 100,
            pushback_window: Duration::from_millis(500),
            pushback_hold: Duration::from_millis(2_000),
            ..AdmissionConfig::default()
        });
    }
    let fabric = build_fabric_with_hosts(
        &mut world,
        &topo,
        vec![Box::new(L2Learning::new())],
        opts,
        |i, mac, ip| {
            Host::new(mac, ip)
                .with_gratuitous_arp()
                .with_static_arp(default_host_ip(1 - i), default_host_mac(1 - i))
                .with_workload(Workload::Udp {
                    dst: default_host_ip(1 - i),
                    dst_port: 9,
                    // Flood-sized probes: byte-granular drop-tail would
                    // otherwise favor small frames and mask starvation.
                    size: 600,
                    count: PROBE_COUNT,
                    interval: PROBE_INTERVAL,
                    start: Instant::from_millis(100),
                })
        },
    );
    let mut rogue_cfg = HostileConfig::new(
        zen_wire::EthernetAddress([0x66, 0x66, 0x66, 0, 0, 1]),
        zen_wire::Ipv4Address::new(10, 0, 9, 9),
    );
    if attack {
        rogue_cfg.attack = Attack::PacketInFlood {
            interval: FLOOD_INTERVAL,
            rotate_src: false,
            payload_len: 600,
        };
        rogue_cfg.attack_start = ATTACK_START;
        rogue_cfg.attack_stop = Some(ATTACK_STOP);
    }
    let rogue = world.add_node(Box::new(HostileHost::new(rogue_cfg)));
    world.connect(rogue, fabric.switches[0], rogue_link);

    world.run_until(FABRIC_RUN);

    let cs = world.node_as::<Controller>(fabric.controller).stats;
    let floods = world
        .node_as::<Controller>(fabric.controller)
        .find_app::<L2Learning>()
        .expect("L2 app installed")
        .floods;
    let mut lost = Vec::new();
    for i in 0..fabric.hosts.len() {
        let tx = world.node_as::<Host>(fabric.hosts[i]).stats.udp_tx;
        let delivered = world
            .node_as::<Host>(fabric.hosts[1 - i])
            .stats
            .udp_rx_per_src
            .get(&fabric.host_ips[i])
            .copied()
            .unwrap_or(0);
        lost.push(tx - delivered.min(tx));
    }
    FabricOutcome {
        attack,
        defended,
        lost,
        ctl_msgs: cs.msgs_received,
        pushbacks: cs.pushbacks_installed,
        punts_metered: world
            .node_as::<SwitchAgent>(fabric.switches[0])
            .stats
            .punts_metered,
        punts_shed_ctl: cs.punts_shed,
        floods,
        mods_failed: cs.mods_failed,
    }
}

// ---------------------------------------------------------------------------
// Part B: cbench storm (wall-clock controller throughput under flood).
// ---------------------------------------------------------------------------

/// Innocent open-loop switches and their punt gap (2k pps each).
const INNOCENT_SWITCHES: usize = 4;
const INNOCENT_INTERVAL: Duration = Duration::from_micros(500);
/// Rogue punt gap: 80k pps — 10x the innocent aggregate.
const ROGUE_INTERVAL: Duration = Duration::from_nanos(12_500);

struct StormOutcome {
    attack: bool,
    defended: bool,
    innocent_setups: u64,
    innocent_lost: u64,
    rogue_punts: u64,
    ctl_msgs: u64,
    punts_shed_ctl: u64,
    wall_secs: f64,
    p50_us: f64,
    p99_us: f64,
    decode_errors: u64,
}

impl StormOutcome {
    fn innocent_setups_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.innocent_setups as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    fn json(&self, out: &mut String) {
        Line::new("bench")
            .str("id", "E18")
            .str("mode", "cbench_storm")
            .bool("attack", self.attack)
            .bool("defended", self.defended)
            .u64("innocent_switches", INNOCENT_SWITCHES as u64)
            .u64("innocent_setups", self.innocent_setups)
            .u64("innocent_lost", self.innocent_lost)
            .u64("rogue_punts", self.rogue_punts)
            .u64("ctl_msgs", self.ctl_msgs)
            .u64("punts_shed_ctl", self.punts_shed_ctl)
            .f64("wall_ms", self.wall_secs * 1e3)
            .f64("innocent_setups_per_sec", self.innocent_setups_per_sec())
            .f64("p50_us", self.p50_us)
            .f64("p99_us", self.p99_us)
            .u64("decode_errors", self.decode_errors)
            .finish(out);
    }
}

/// Run the storm: innocents punt open-loop for `span` of fabric time;
/// the rogue (when attacking) floods at 10x their aggregate.
fn run_storm(attack: bool, defended: bool, span: Duration) -> StormOutcome {
    let mut world = World::new(SEED ^ 0xB);
    let mut ctl_cfg = zen_core::ControllerConfig::default();
    if defended {
        ctl_cfg.admission = Some(AdmissionConfig {
            rate_pps: 4_000,
            burst: 512,
            queue_cap: 512,
            drain_interval: Duration::from_millis(1),
            drain_batch: 8,
            // Rotating cbench sources make per-MAC push-back moot here;
            // the meters are the defense under test.
            pushback_threshold: 0,
            ..AdmissionConfig::default()
        });
    }
    let controller = world.add_node(Box::new(Controller::with_config(
        vec![Box::new(L2Learning::new())],
        ctl_cfg,
    )));
    let innocent_cfg = CbenchConfig {
        mode: CbenchMode::Open {
            interval: INNOCENT_INTERVAL,
        },
        sources: 64,
        payload_len: 64,
        ..CbenchConfig::default()
    };
    let innocents: Vec<NodeId> = (0..INNOCENT_SWITCHES)
        .map(|dpid| {
            world.add_node(Box::new(CbenchSwitch::new(
                dpid as u64,
                controller,
                innocent_cfg,
            )))
        })
        .collect();
    let rogue = attack.then(|| {
        let cfg = CbenchConfig {
            mode: CbenchMode::Open {
                interval: ROGUE_INTERVAL,
            },
            sources: 64,
            payload_len: 64,
            ..CbenchConfig::default()
        };
        world.add_node(Box::new(CbenchSwitch::new(99, controller, cfg)))
    });

    // Warmup: handshakes and the first punt waves settle.
    world.run_until(Instant::from_millis(5));
    let base_setups: Vec<u64> = innocents
        .iter()
        .map(|&id| world.node_as::<CbenchSwitch>(id).stats.flow_mods)
        .collect();
    let skip: Vec<usize> = innocents
        .iter()
        .map(|&id| world.node_as::<CbenchSwitch>(id).wall_setup_ns.len())
        .collect();

    let start = std::time::Instant::now();
    world.run_for(span);
    let wall_secs = start.elapsed().as_secs_f64();

    let mut wall = Histogram::new();
    let mut innocent_setups = 0;
    let mut innocent_lost = 0;
    let mut decode_errors = 0;
    for (i, &id) in innocents.iter().enumerate() {
        let sw = world.node_as::<CbenchSwitch>(id);
        innocent_setups += sw.stats.flow_mods - base_setups[i];
        innocent_lost += sw.stats.setups_lost;
        decode_errors += sw.stats.decode_errors;
        for &ns in sw.wall_setup_ns.iter().skip(skip[i]) {
            wall.record(ns as f64 / 1e3);
        }
    }
    let rogue_punts = rogue
        .map(|id| world.node_as::<CbenchSwitch>(id).stats.punts_sent)
        .unwrap_or(0);
    let cs = world.node_as::<Controller>(controller).stats;
    StormOutcome {
        attack,
        defended,
        innocent_setups,
        innocent_lost,
        rogue_punts,
        ctl_msgs: cs.msgs_received,
        punts_shed_ctl: cs.punts_shed,
        wall_secs,
        p50_us: wall.quantile(0.50).unwrap_or(0.0),
        p99_us: wall.quantile(0.99).unwrap_or(0.0),
        decode_errors,
    }
}

/// Pull `"attack_defended_setups_per_sec":<num>` out of a baseline
/// JSON-lines file by hand (the workspace is serde-free on principle).
fn baseline_rate(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let line = text
        .lines()
        .find(|l| l.contains("\"type\":\"bench_summary\"") && l.contains("\"id\":\"E18\""))?;
    let key = "\"attack_defended_setups_per_sec\":";
    let at = line.find(key)? + key.len();
    let rest = &line[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn main() {
    let quick = std::env::var("BENCH_E18_QUICK").is_ok_and(|v| v == "1");
    let pct: f64 = std::env::var("BENCH_E18_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20.0);
    let mut json = String::new();

    println!("# E18 — storm survival (hostile workloads vs control-plane self-defense)");
    println!();
    println!("## fabric black-hole: 10x PACKET_IN flood from one rogue edge port");
    println!(
        "{:>7} {:>9} {:>10} {:>13} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "attack",
        "defended",
        "lost",
        "blackhole_ms",
        "ctl_msgs",
        "pushback",
        "metered",
        "shed",
        "floods"
    );
    let mut fabric = Vec::new();
    for (attack, defended) in [(false, true), (false, false), (true, true), (true, false)] {
        let out = run_fabric(attack, defended);
        println!(
            "{:>7} {:>9} {:>10?} {:>13.0} {:>9} {:>9} {:>9} {:>9} {:>9}",
            out.attack,
            out.defended,
            out.lost,
            out.blackhole_ms(),
            out.ctl_msgs,
            out.pushbacks,
            out.punts_metered,
            out.punts_shed_ctl,
            out.floods,
        );
        assert_eq!(out.mods_failed, 0, "lost acks in fabric run");
        out.json(&mut json);
        fabric.push(out);
    }
    let calm_def = &fabric[0];
    let atk_def = &fabric[2];
    let atk_undef = &fabric[3];
    // Calm fabric delivers essentially everything.
    assert!(calm_def.worst_lost() <= 5, "calm fabric lost probes");
    // Defenses bound the black-hole and engage every layer.
    assert!(
        atk_def.blackhole_ms() <= 500.0,
        "defended black-hole too long: {:.0} ms",
        atk_def.blackhole_ms()
    );
    assert!(atk_def.pushbacks >= 1, "push-back never engaged");
    assert!(atk_def.punts_metered >= 100, "agent meter never engaged");
    // Defenses-off demonstrably starves innocents.
    assert!(
        atk_undef.worst_lost() >= 2 * atk_def.worst_lost().max(1) && atk_undef.worst_lost() >= 300,
        "undefended attack did not starve innocents ({} lost)",
        atk_undef.worst_lost()
    );
    // Controller load stays bounded with defenses on.
    assert!(
        atk_def.ctl_msgs < 3 * calm_def.ctl_msgs,
        "defended controller load unbounded: {} vs calm {}",
        atk_def.ctl_msgs,
        calm_def.ctl_msgs
    );
    assert!(
        atk_undef.ctl_msgs > 10 * calm_def.ctl_msgs,
        "undefended attack did not load the controller"
    );

    println!();
    println!(
        "## cbench storm: {INNOCENT_SWITCHES} innocent switches @ 2k pps, rogue @ 80k pps{}",
        if quick { " [quick]" } else { "" }
    );
    println!(
        "{:>7} {:>9} {:>9} {:>9} {:>11} {:>9} {:>9} {:>11} {:>9} {:>9}",
        "attack",
        "defended",
        "setups",
        "lost",
        "rogue_punt",
        "ctl_msgs",
        "shed",
        "ksetups/s",
        "p50_us",
        "p99_us"
    );
    let span = Duration::from_millis(if quick { 100 } else { 250 });
    let mut storm = Vec::new();
    for (attack, defended) in [(false, true), (false, false), (true, true), (true, false)] {
        let out = run_storm(attack, defended, span);
        println!(
            "{:>7} {:>9} {:>9} {:>9} {:>11} {:>9} {:>9} {:>11.1} {:>9.1} {:>9.1}",
            out.attack,
            out.defended,
            out.innocent_setups,
            out.innocent_lost,
            out.rogue_punts,
            out.ctl_msgs,
            out.punts_shed_ctl,
            out.innocent_setups_per_sec() / 1e3,
            out.p50_us,
            out.p99_us,
        );
        assert_eq!(out.decode_errors, 0, "decode errors in storm run");
        assert_eq!(out.innocent_lost, 0, "innocent setups lost");
        assert!(out.innocent_setups > 0, "no innocent setups");
        out.json(&mut json);
        storm.push(out);
    }
    let calm = &storm[0];
    let atk_def = &storm[2];
    let atk_undef = &storm[3];
    // Admission keeps the controller's processed-message volume bounded
    // under attack (the shed path never reaches app dispatch).
    assert!(
        atk_def.punts_shed_ctl > 0,
        "admission never shed the rogue's flood"
    );
    // The headline claim: with defenses on, a 10x flood degrades
    // innocent setup p99 by less than 2x calm. Wall-clock latency is
    // noisy, so the calm reference takes a small floor to keep slow
    // runners from tripping on microsecond jitter.
    let p99_ref = calm.p99_us.max(20.0);
    assert!(
        atk_def.p99_us < 2.0 * p99_ref,
        "defended innocent p99 degraded >2x: {:.1} us vs calm {:.1} us",
        atk_def.p99_us,
        calm.p99_us
    );
    println!();
    println!(
        "# innocent p99: calm {:.1} us | attack defended {:.1} us | attack undefended {:.1} us",
        calm.p99_us, atk_def.p99_us, atk_undef.p99_us
    );

    let rate = atk_def.innocent_setups_per_sec();
    Line::new("bench_summary")
        .str("id", "E18")
        .bool("quick", quick)
        .f64("attack_defended_setups_per_sec", rate)
        .f64("attack_defended_p99_us", atk_def.p99_us)
        .f64("blackhole_ms_defended", fabric[2].blackhole_ms())
        .f64("blackhole_ms_undefended", fabric[3].blackhole_ms())
        .finish(&mut json);

    // cargo runs bench binaries with CWD = the package dir; anchor the
    // default output at the workspace target dir so CI finds it.
    let out_path = std::env::var("BENCH_E18_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/BENCH_E18.json").to_string()
    });
    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(&out_path, &json).expect("write BENCH_E18.json");
    println!();
    println!("# wrote {out_path}");

    // Perf-regression gate: attack-mode defended innocent setups/sec
    // against the committed baseline, if one is configured.
    match std::env::var("BENCH_E18_BASELINE") {
        Ok(path) => match baseline_rate(&path) {
            Some(base) => {
                let floor = base * (1.0 - pct / 100.0);
                println!(
                    "# baseline {base:.0} setups/s ({path}); floor {floor:.0}, measured {rate:.0}"
                );
                if rate < floor {
                    eprintln!(
                        "E18 REGRESSION: attack-mode defended innocent rate {rate:.0} setups/s \
                         is more than {pct}% below baseline {base:.0} ({path})"
                    );
                    std::process::exit(1);
                }
            }
            None => {
                eprintln!("E18: baseline {path} missing or unparsable; failing the gate");
                std::process::exit(1);
            }
        },
        Err(_) => println!("# no BENCH_E18_BASELINE set; regression gate skipped"),
    }
}
