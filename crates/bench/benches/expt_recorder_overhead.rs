//! E14 — Flight-recorder overhead on the datapath hot path.
//!
//! The recorder's contract is that observability is free until asked
//! for: a disabled recorder must cost within noise of no recorder at
//! all (one shared-flag load per packet), and even a fully enabled
//! recorder tracing every probe must stay within the same order of
//! magnitude. This bench reuses the E12 cached-pipeline Zipf workload
//! — the regime where per-packet cost is smallest and any added
//! bookkeeping is most visible — with probe-formatted payloads so the
//! enabled run actually records cache-tier match events.

use std::hint::black_box;
use std::time::Duration;

use zen_bench::harness::{Bench, Throughput};
use zen_dataplane::{Action, Datapath, FlowMatch, FlowSpec, MissPolicy};
use zen_telemetry::Recorder;
use zen_wire::builder::PacketBuilder;
use zen_wire::lcg::Lcg;
use zen_wire::{EthernetAddress, Ipv4Address, Ipv4Cidr};

const ACL_RULES: u32 = 128;
const FORWARD_RULES: u16 = 512;
const FLOWS: usize = 1024;
const WORKLOAD: usize = 65_536;

/// Decorrelate flow popularity from rule position (see E12).
fn port_for_flow(i: usize) -> u16 {
    1000 + ((i as u16).wrapping_mul(193) % FORWARD_RULES)
}

/// The E12 two-table pipeline with the flow cache on.
fn build_dp() -> Datapath {
    let mut dp = Datapath::new(1, 2, MissPolicy::Drop);
    dp.set_flow_cache_enabled(true);
    for p in 1..=4 {
        dp.add_port(p);
    }
    for i in 0..ACL_RULES {
        let src = Ipv4Address::from_u32(0x0a09_0000 | i);
        dp.add_flow(
            0,
            FlowSpec::new(
                1000 + i as u16,
                FlowMatch {
                    ipv4_src: Some(Ipv4Cidr::new(src, 32).unwrap()),
                    ..FlowMatch::ANY
                },
                vec![],
            ),
            0,
        );
    }
    dp.add_flow(0, FlowSpec::new(1, FlowMatch::ANY, vec![]).with_goto(1), 0);
    for d in 0..FORWARD_RULES {
        dp.add_flow(
            1,
            FlowSpec::new(
                10,
                FlowMatch::ANY.with_ip_proto(17).with_l4_dst(1000 + d),
                vec![Action::Output(2 + u32::from(d % 3))],
            ),
            0,
        );
    }
    dp.add_flow(1, FlowSpec::new(1, FlowMatch::ANY, vec![Action::Flood]), 0);
    dp
}

fn zipfish_index(rng: &mut Lcg, n: usize) -> usize {
    let mut hi = n;
    while hi > 1 && rng.gen_ratio(1, 2) {
        hi = hi.div_ceil(8);
    }
    rng.gen_index(hi)
}

/// The E12 Zipf workload, but every frame is a telemetry probe
/// (magic + seq + timestamp payload) so the enabled recorder assigns
/// a trace id and records a dp_match per packet.
fn build_workload() -> Vec<(u32, Vec<u8>)> {
    let mut rng = Lcg::new(0x21BFCAC4E);
    let flows: Vec<(u32, Vec<u8>)> = (0..FLOWS)
        .map(|i| {
            let mut payload = Vec::with_capacity(20);
            payload.extend_from_slice(&zen_telemetry::PROBE_MAGIC.to_be_bytes());
            payload.extend_from_slice(&(i as u64).to_be_bytes());
            payload.extend_from_slice(&0u64.to_be_bytes());
            let in_port = 1 + (i as u32 % 4);
            let frame = PacketBuilder::udp(
                EthernetAddress::from_id(i as u64 + 1),
                Ipv4Address::from_u32(0x0a00_0000 | (i as u32)),
                2000 + (i % 512) as u16,
                EthernetAddress::from_id(99),
                Ipv4Address::from_u32(0x0b00_0000 | (i as u32)),
                port_for_flow(i),
                &payload,
            );
            (in_port, frame)
        })
        .collect();
    (0..WORKLOAD)
        .map(|_| flows[zipfish_index(&mut rng, FLOWS)].clone())
        .collect()
}

fn main() {
    let workload = build_workload();
    let mut group = Bench::group("E14/recorder_overhead")
        .samples(15)
        .warm_up(Duration::from_millis(300))
        .measurement(Duration::from_secs(1));
    group.throughput(Throughput::Elements(1));

    // Baseline: the datapath's own default recorder handle, never
    // shared and never enabled — what every run before this PR paid.
    let mut baseline_dp = build_dp();
    let mut i = 0usize;
    let baseline_ns = group.run("no_recorder", || {
        let (in_port, frame) = &workload[i % workload.len()];
        i += 1;
        black_box(baseline_dp.process(i as u64, *in_port, frame).len())
    });

    // Disabled: a shared recorder is installed (as the harness does for
    // every switch) but left off. This is the configuration the ≤3%
    // acceptance bound applies to.
    let mut disabled_dp = build_dp();
    disabled_dp.set_recorder(Recorder::new());
    let mut i = 0usize;
    let disabled_ns = group.run("recorder_disabled", || {
        let (in_port, frame) = &workload[i % workload.len()];
        i += 1;
        black_box(disabled_dp.process(i as u64, *in_port, frame).len())
    });

    // Enabled: every packet is a probe, so each one parses a trace id
    // and appends a dp_match record to the bounded ring.
    let mut enabled_dp = build_dp();
    let recorder = Recorder::new();
    recorder.set_enabled(true);
    enabled_dp.set_recorder(recorder.clone());
    let mut i = 0usize;
    let enabled_ns = group.run("recorder_enabled", || {
        let (in_port, frame) = &workload[i % workload.len()];
        i += 1;
        black_box(enabled_dp.process(i as u64, *in_port, frame).len())
    });

    let overhead = (disabled_ns / baseline_ns - 1.0) * 100.0;
    println!(
        "E14/recorder_overhead/disabled   {overhead:+.2}% \
         (baseline {baseline_ns:.1} ns/pkt → disabled {disabled_ns:.1} ns/pkt)"
    );
    println!(
        "E14/recorder_overhead/enabled    {:+.1}% (enabled {enabled_ns:.1} ns/pkt, {} events, {} dropped)",
        (enabled_ns / baseline_ns - 1.0) * 100.0,
        recorder.records().len() as u64 + recorder.dropped(),
        recorder.dropped()
    );
    assert!(
        overhead <= 3.0,
        "disabled recorder costs more than 3%: {overhead:.2}%"
    );
}
