//! E20 — consensus convergence: digest anti-entropy vs suffix resend,
//! and leader failover with intents in flight.
//!
//! Part A runs the same seeded churn scenario — an 8-switch ring whose
//! links flap while one replica is partitioned away — at 5, 7, and 9
//! controller replicas, once per gossip mode. Suffix mode rebroadcasts
//! every unacked east-west entry each tick until the ack round-trips,
//! so its volume grows with the log length times the partition span.
//! Digest mode exchanges per-origin head summaries and fetches only
//! the missing ranges, so the healed replica pulls each missed entry
//! once. Reported per configuration: east-west entries sent, digest and
//! fetch frames, snapshots, and post-heal convergence time (all
//! replicas agree on the 16-link view and the committed ACL).
//!
//! Part B staggers 20 ACL deny intents around the instant the
//! consensus leader is isolated, then checks the invariant the intent
//! log exists to provide: zero committed intents lost, every proposal
//! confirmed exactly once, and every switch carrying exactly the
//! committed rule set.
//!
//! Machine-readable output: one JSON line per configuration to
//! `BENCH_E20_OUT` (default `target/BENCH_E20.json`). If
//! `BENCH_E20_BASELINE` names a committed baseline (CI points it at
//! `ci/BENCH_E20.baseline.json`), the run fails when digest-mode
//! east-west entries at 5 replicas regress more than `BENCH_E20_PCT`%
//! (default 20) above it — lower is better, so the gate is a ceiling.
//! `BENCH_E20_QUICK=1` shrinks the replica matrix for CI smoke lanes.

use std::any::Any;

use zen_cluster::GossipMode;
use zen_core::apps::{Acl, ProactiveFabric};
use zen_core::harness::{build_cluster_fabric, build_fabric, Fabric, FabricOptions};
use zen_core::{App, Controller, Ctl, SwitchAgent};
use zen_dataplane::FlowMatch;
use zen_proto::Intent;
use zen_sim::{Duration, FaultPlan, Instant, LinkParams, Topology, Window, World};
use zen_telemetry::json::Line;

/// Fixed seed: every simulated quantity below is a pure function of it.
const SEED: u64 = 0xE20_0001;

/// Directed links in the 8-switch ring (what a converged view holds).
const RING_LINKS: usize = 16;

/// Churn window: a ring link flaps every 100 ms between these bounds
/// (20 flips, ending up), feeding the east-west log while replica 1 is
/// partitioned away.
const FLAP_FROM_MS: u64 = 1_500;
const FLAP_EVERY_MS: u64 = 100;
const FLAPS: u64 = 20;

/// Partition window for the observer replica (Part A) and the
/// consensus leader (Part B).
const CUT_AT: Instant = Instant::from_secs(2);
const HEAL_AT: Instant = Instant::from_millis(3_500);

fn deny_udp(port: u16) -> FlowMatch {
    FlowMatch::ANY.with_ip_proto(17).with_l4_dst(port)
}

/// Part B's proposer: fires `total` deny intents 30 ms apart starting
/// at t=1.8s, so the burst straddles the leader kill at t=2s.
struct BurstProposer {
    total: u64,
    fired: u64,
    confirmed: u64,
}

impl BurstProposer {
    fn new(total: u64) -> BurstProposer {
        BurstProposer {
            total,
            fired: 0,
            confirmed: 0,
        }
    }
}

impl App for BurstProposer {
    fn name(&self) -> &'static str {
        "burst"
    }

    fn tick(&mut self, ctl: &mut Ctl<'_, '_>) {
        while self.fired < self.total && ctl.now() >= Instant::from_millis(1_800 + 30 * self.fired)
        {
            let port = 9_000 + self.fired as u16;
            ctl.propose_intent(
                "burst",
                Intent::AclDeny {
                    priority: 900,
                    matcher: deny_udp(port),
                    install: true,
                },
            );
            self.fired += 1;
        }
    }

    fn on_update_committed(&mut self, _ctl: &mut Ctl<'_, '_>, owner: &'static str, _token: u64) {
        if owner == "burst" {
            self.confirmed += 1;
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

fn topo() -> Topology {
    let mut t = Topology::ring(8, LinkParams::default());
    t.hosts = vec![0, 4];
    t
}

/// Build the ring fabric with `n` replicas. Replica 0 seeds one ACL
/// deny; replica 2 runs the burst proposer when `burst > 0`.
fn fabric(world: &mut World, n: usize, gossip: GossipMode, burst: u64) -> Fabric {
    let topo = topo();
    let inventory = {
        let mut scratch = World::new(SEED);
        build_fabric(&mut scratch, &topo, vec![], FabricOptions::default()).static_hosts()
    };
    let opts = FabricOptions {
        n_controllers: n,
        cluster_gossip: gossip,
        ..FabricOptions::default()
    };
    let expected_switches = topo.switches;
    let expected_links = 2 * topo.links.len();
    build_cluster_fabric(
        world,
        &topo,
        |i| {
            let denies = if i == 0 { vec![deny_udp(9)] } else { vec![] };
            let mut apps: Vec<Box<dyn App>> = vec![
                Box::new(Acl::new(denies)),
                Box::new(ProactiveFabric::new(
                    inventory.clone(),
                    expected_switches,
                    expected_links,
                )),
            ];
            if burst > 0 && i == 2 {
                apps.push(Box::new(BurstProposer::new(burst)));
            }
            apps
        },
        opts,
    )
}

fn committed_acl(world: &World, fabric: &Fabric, r: usize) -> Vec<FlowMatch> {
    world
        .node_as::<Controller>(fabric.controllers[r])
        .find_app::<Acl>()
        .expect("acl app present")
        .committed()
        .to_vec()
}

fn converged(world: &World, fabric: &Fabric) -> bool {
    let reference = committed_acl(world, fabric, 0);
    fabric.controllers.iter().enumerate().all(|(r, &c)| {
        world.node_as::<Controller>(c).view.links.len() == RING_LINKS
            && committed_acl(world, fabric, r) == reference
    })
}

struct ChurnOutcome {
    entries_sent: u64,
    digests_sent: u64,
    fetches_sent: u64,
    snapshots_sent: u64,
    intent_msgs: u64,
    converge_ms: Option<u64>,
}

/// Part A: flapping-ring churn with replica 1 partitioned from 2s to
/// 3.5s; convergence is timed from the heal.
fn run_churn(n: usize, gossip: GossipMode) -> ChurnOutcome {
    let mut world = World::new(SEED);
    let fabric = fabric(&mut world, n, gossip, 0);

    // Flap one ring link (PORT_STATUS both ways each flip) to feed the
    // east-west log; an even flip count leaves it up.
    let flapped = fabric.switch_links[6];
    for k in 0..FLAPS {
        world.schedule_link_state(
            flapped,
            k % 2 == 1,
            Instant::from_millis(FLAP_FROM_MS + k * FLAP_EVERY_MS),
        );
    }
    // Replica 1 misses the middle of the churn and must catch up.
    world.set_fault_plan(
        FaultPlan::default().isolate(fabric.controllers[1], Window::new(CUT_AT, HEAL_AT)),
    );

    world.run_until(HEAL_AT);
    let mut converge_ms = None;
    let mut t = HEAL_AT;
    let deadline = Instant::from_secs(8);
    while t < deadline {
        t += Duration::from_millis(5);
        world.run_until(t);
        if converged(&world, &fabric) {
            converge_ms = Some(t.duration_since(HEAL_AT).as_nanos() / 1_000_000);
            break;
        }
    }
    world.run_until(deadline);
    if !converged(&world, &fabric) {
        for (r, &c) in fabric.controllers.iter().enumerate() {
            let ctl = world.node_as::<Controller>(c);
            eprintln!(
                "replica {r}: links={} acl={} term={:?}",
                ctl.view.links.len(),
                committed_acl(&world, &fabric, r).len(),
                ctl.cluster_term(),
            );
        }
        panic!("{gossip:?} at n={n} never converged after the heal");
    }

    let sum = |f: fn(&zen_core::CtlStats) -> u64| -> u64 {
        fabric
            .controllers
            .iter()
            .map(|&c| f(&world.node_as::<Controller>(c).stats))
            .sum()
    };
    ChurnOutcome {
        entries_sent: sum(|s| s.ew_entries_sent),
        digests_sent: sum(|s| s.ew_digests_sent),
        fetches_sent: sum(|s| s.ew_fetches_sent),
        snapshots_sent: sum(|s| s.ew_snapshots_sent),
        intent_msgs: sum(|s| s.intent_msgs_sent),
        converge_ms,
    }
}

struct KillOutcome {
    proposed: u64,
    committed: Vec<usize>,
    confirmed: u64,
    rules_per_switch: Vec<usize>,
}

/// Part B: 20 intents staggered across the leader kill at n replicas.
fn run_leader_kill(n: usize, burst: u64) -> KillOutcome {
    let mut world = World::new(SEED);
    let fabric = fabric(&mut world, n, GossipMode::Digest, burst);
    // The consensus leader is the minimum live replica index: 0.
    world.set_fault_plan(
        FaultPlan::default().isolate(fabric.controllers[0], Window::new(CUT_AT, HEAL_AT)),
    );
    world.run_until(Instant::from_secs(6));

    let committed: Vec<usize> = (0..n)
        .map(|r| committed_acl(&world, &fabric, r).len())
        .collect();
    let burst_app = world
        .node_as::<Controller>(fabric.controllers[2])
        .find_app::<BurstProposer>()
        .expect("burst proposer present");
    let rules_per_switch: Vec<usize> = fabric
        .switches
        .iter()
        .map(|&sw| {
            world
                .node_as::<SwitchAgent>(sw)
                .dp
                .table(0)
                .entries()
                .filter(|e| e.spec.cookie == zen_core::apps::acl::ACL_COOKIE)
                .count()
        })
        .collect();
    KillOutcome {
        proposed: burst_app.fired,
        committed,
        confirmed: burst_app.confirmed,
        rules_per_switch,
    }
}

/// Pull `"digest_entries_sent_n5":<num>` out of the committed baseline
/// by hand (the workspace is serde-free on principle).
fn baseline_entries(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let line = text
        .lines()
        .find(|l| l.contains("\"type\":\"bench_summary\"") && l.contains("\"id\":\"E20\""))?;
    let key = "\"digest_entries_sent_n5\":";
    let at = line.find(key)? + key.len();
    let rest = &line[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn main() {
    let quick = std::env::var("BENCH_E20_QUICK").is_ok_and(|v| v == "1");
    let pct: f64 = std::env::var("BENCH_E20_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20.0);
    let replica_counts: &[usize] = if quick { &[5] } else { &[5, 7, 9] };
    let mut json = String::new();

    println!("# E20 — consensus convergence: digest anti-entropy vs suffix resend");
    println!(
        "# 8-switch ring, link flapping 1.5–3.4s, replica 1 partitioned 2–3.5s{}",
        if quick { " [quick]" } else { "" }
    );
    println!();
    println!(
        "{:>3} {:>8} {:>9} {:>9} {:>8} {:>6} {:>12} {:>13}",
        "n", "mode", "entries", "digests", "fetches", "snaps", "intent msgs", "converge (ms)"
    );
    let mut gate_metric = 0.0f64;
    for &n in replica_counts {
        let mut digest_entries = 0;
        let mut suffix_entries = 0;
        for mode in [GossipMode::Suffix, GossipMode::Digest] {
            let o = run_churn(n, mode);
            let mode_name = match mode {
                GossipMode::Suffix => "suffix",
                GossipMode::Digest => "digest",
            };
            let converge = o
                .converge_ms
                .map_or("never".to_string(), |ms| ms.to_string());
            println!(
                "{:>3} {:>8} {:>9} {:>9} {:>8} {:>6} {:>12} {:>13}",
                n,
                mode_name,
                o.entries_sent,
                o.digests_sent,
                o.fetches_sent,
                o.snapshots_sent,
                o.intent_msgs,
                converge
            );
            Line::new("bench")
                .str("id", "E20")
                .str("mode", mode_name)
                .u64("replicas", n as u64)
                .u64("ew_entries_sent", o.entries_sent)
                .u64("ew_digests_sent", o.digests_sent)
                .u64("ew_fetches_sent", o.fetches_sent)
                .u64("ew_snapshots_sent", o.snapshots_sent)
                .u64("intent_msgs_sent", o.intent_msgs)
                .u64("converge_ms", o.converge_ms.unwrap_or(u64::MAX))
                .finish(&mut json);
            match mode {
                GossipMode::Suffix => suffix_entries = o.entries_sent,
                GossipMode::Digest => digest_entries = o.entries_sent,
            }
        }
        // The point of the digest exchange: each entry crosses the
        // wire once per peer that needs it, instead of once per tick
        // of the unacked window.
        assert!(
            digest_entries < suffix_entries,
            "digest gossip sent {digest_entries} entries at n={n}, suffix {suffix_entries}"
        );
        if n == 5 {
            gate_metric = digest_entries as f64;
        }
    }

    println!();
    println!("# leader killed mid-burst: 20 deny intents straddle the kill at t=2s");
    let kill = run_leader_kill(5, 20);
    let all_committed = kill
        .committed
        .iter()
        .all(|&c| c as u64 == kill.proposed + 1);
    println!(
        "# proposed={} committed per replica={:?} confirmed={} rules per switch={:?}",
        kill.proposed, kill.committed, kill.confirmed, kill.rules_per_switch
    );
    // Zero committed intents lost, exactly-once confirmation, and the
    // data plane materialized exactly the committed set (+1 for the
    // seeded deny on replica 0).
    assert!(
        all_committed,
        "intents lost across failover: {:?}",
        kill.committed
    );
    assert_eq!(
        kill.confirmed, kill.proposed,
        "confirmations not exactly-once"
    );
    assert!(
        kill.rules_per_switch
            .iter()
            .all(|&r| r as u64 == kill.proposed + 1),
        "switch rule counts diverge from the committed set: {:?}",
        kill.rules_per_switch
    );
    Line::new("bench")
        .str("id", "E20")
        .str("mode", "leader_kill")
        .u64("replicas", 5)
        .u64("proposed", kill.proposed)
        .u64("confirmed", kill.confirmed)
        .u64("lost", 0)
        .finish(&mut json);

    Line::new("bench_summary")
        .str("id", "E20")
        .bool("quick", quick)
        .f64("digest_entries_sent_n5", gate_metric)
        .finish(&mut json);

    // cargo runs bench binaries with CWD = the package dir; anchor the
    // default output at the workspace target dir so CI finds it.
    let out_path = std::env::var("BENCH_E20_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/BENCH_E20.json").to_string()
    });
    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(&out_path, &json).expect("write BENCH_E20.json");
    println!();
    println!("# wrote {out_path}");

    // Perf-regression gate: east-west volume is a cost, so the gate is
    // a ceiling over the committed baseline.
    match std::env::var("BENCH_E20_BASELINE") {
        Ok(path) => match baseline_entries(&path) {
            Some(base) => {
                let ceiling = base * (1.0 + pct / 100.0);
                println!(
                    "# baseline digest entries {base:.0} ({path}); ceiling {ceiling:.0}, \
                     measured {gate_metric:.0}"
                );
                if gate_metric > ceiling {
                    eprintln!(
                        "E20 REGRESSION: digest-mode east-west volume {gate_metric:.0} is more \
                         than {pct}% above baseline {base:.0} ({path})"
                    );
                    std::process::exit(1);
                }
            }
            None => {
                eprintln!("E20: baseline {path} missing or unparsable; failing the gate");
                std::process::exit(1);
            }
        },
        Err(_) => println!("# no BENCH_E20_BASELINE set; regression gate skipped"),
    }

    println!();
    println!("# Shape check: suffix resend volume scales with log length × unacked");
    println!("# window × peers, so it grows sharply with replica count; digest mode");
    println!("# pushes each entry once per peer and heals the partition with ranged");
    println!("# fetches, keeping volume near the log length itself. Both modes reach");
    println!("# the same converged view and committed ACL; digest just pays less.");
}
