//! E7 — failure convergence: centralized vs. distributed control.
//!
//! A square topology with two disjoint paths carries a 1 kHz probe
//! stream while the link actually carrying the traffic is cut, in two
//! fault models:
//!
//! * **detected** — both endpoints see carrier loss immediately
//!   (port-down events);
//! * **silent** — frames blackhole with no notification; only protocol
//!   liveness (controller LLDP aging, link-state dead interval,
//!   distance-vector route timeout) notices.
//!
//! Reported: lost probes (≈ black-hole milliseconds at 1 kHz) and
//! control messages exchanged in the 2 s window around the failure.
//!
//! E13 — the same failure under a *lossy control channel*: every
//! control frame is dropped with probability p while the link is cut
//! and the fabric reconverges. Reliable (barrier-acknowledged) flow-mod
//! delivery retransmits what the channel eats; reported are the lost
//! probes, control messages, and retransmissions for proactive vs
//! reactive programming at each loss rate.

use zen_core::apps::proactive::FABRIC_MAC;
use zen_core::apps::{ProactiveFabric, ReactiveForwarding};
use zen_core::harness::{build_fabric, build_fabric_with_hosts, default_host_ip, FabricOptions};
use zen_core::Controller;
use zen_routing::{DistanceVectorRouter, LinkStateRouter};
use zen_sim::{
    Duration, FaultPlan, Host, Instant, LinkId, LinkParams, NodeId, Topology, Window, Workload,
    World,
};
use zen_wire::{EthernetAddress, Ipv4Address};

const PROBES: u64 = 4000;
const GAP: Duration = Duration::from_millis(1);
const CUT_AT: Instant = Instant::from_secs(2);
const END: Instant = Instant::from_secs(7);

fn topo() -> Topology {
    let mut t = Topology::ring(4, LinkParams::default());
    t.hosts = vec![0, 2];
    t
}

fn probe(dst: Ipv4Address) -> Workload {
    Workload::Udp {
        dst,
        dst_port: 9,
        size: 100,
        count: PROBES,
        interval: GAP,
        start: Instant::from_secs(1),
    }
}

/// Pick the ring link carrying the most bytes (the probe path).
fn loaded_link(world: &World, candidates: &[LinkId]) -> LinkId {
    candidates
        .iter()
        .copied()
        .max_by_key(|&l| {
            let link = world.link(l);
            link.ab.tx_bytes + link.ba.tx_bytes
        })
        .expect("links exist")
}

fn run_sdn(silent: bool) -> (u64, u64) {
    let topo = topo();
    let inventory = {
        let mut scratch = World::new(3);
        build_fabric(&mut scratch, &topo, vec![], FabricOptions::default()).static_hosts()
    };
    let mut world = World::new(3);
    let fabric = build_fabric_with_hosts(
        &mut world,
        &topo,
        vec![Box::new(ProactiveFabric::new(
            inventory,
            topo.switches,
            2 * topo.links.len(),
        ))],
        FabricOptions::default(),
        |i, mac, ip| {
            let host = Host::new(mac, ip).with_static_arp(default_host_ip(1 - i), FABRIC_MAC);
            if i == 0 {
                host.with_workload(probe(default_host_ip(1)))
            } else {
                host
            }
        },
    );
    // Warm up to 1.5s so probes flow, then cut the loaded link.
    world.run_until(Instant::from_millis(1500));
    let victim = loaded_link(&world, &fabric.switch_links);
    let msgs_before = world.metrics().counter("sim.control_msgs");
    if silent {
        world.schedule_link_state_silent(victim, false, CUT_AT);
    } else {
        world.schedule_link_state(victim, false, CUT_AT);
    }
    world.run_until(END);
    let msgs = world.metrics().counter("sim.control_msgs") - msgs_before;
    let lost = PROBES - world.node_as::<Host>(fabric.hosts[1]).stats.udp_rx;
    (lost, msgs)
}

/// E13: detected link cut while every control frame is lost with
/// probability `loss`. Returns (lost probes, control msgs, mod
/// retransmissions).
fn run_sdn_lossy(loss: f64, reactive: bool) -> (u64, u64, u64) {
    let topo = topo();
    let inventory = {
        let mut scratch = World::new(3);
        build_fabric(&mut scratch, &topo, vec![], FabricOptions::default()).static_hosts()
    };
    let mut world = World::new(3);
    let apps: Vec<Box<dyn zen_core::App>> = if reactive {
        vec![Box::new(ReactiveForwarding::new())]
    } else {
        vec![Box::new(ProactiveFabric::new(
            inventory,
            topo.switches,
            2 * topo.links.len(),
        ))]
    };
    let fabric = build_fabric_with_hosts(
        &mut world,
        &topo,
        apps,
        FabricOptions::default(),
        move |i, mac, ip| {
            // The proactive fabric routes to its anycast gateway MAC;
            // reactive forwarding learns real MACs from ARP.
            let host = if reactive {
                Host::new(mac, ip).with_gratuitous_arp()
            } else {
                Host::new(mac, ip).with_static_arp(default_host_ip(1 - i), FABRIC_MAC)
            };
            if i == 0 {
                host.with_workload(probe(default_host_ip(1)))
            } else {
                host
            }
        },
    );
    // Loss starts only after initial programming is done, so every run
    // measures reconvergence (not bring-up) under the faulty channel.
    world.set_fault_plan(
        FaultPlan::default().control_loss(loss, Window::new(Instant::from_millis(1500), END)),
    );
    world.run_until(Instant::from_millis(1500));
    let victim = loaded_link(&world, &fabric.switch_links);
    let msgs_before = world.metrics().counter("sim.control_msgs");
    world.schedule_link_state(victim, false, CUT_AT);
    world.run_until(END);
    let msgs = world.metrics().counter("sim.control_msgs") - msgs_before;
    let lost = PROBES - world.node_as::<Host>(fabric.hosts[1]).stats.udp_rx;
    let retx = world
        .node_as::<Controller>(fabric.controller)
        .stats
        .mods_retransmitted;
    (lost, msgs, retx)
}

enum Kind {
    Ls,
    Dv,
}

fn run_routers(kind: Kind, silent: bool) -> (u64, u64) {
    let topo = topo();
    let mut world = World::new(3);
    let routers: Vec<NodeId> = (0..topo.switches)
        .map(|i| match kind {
            Kind::Ls => world.add_node(Box::new(LinkStateRouter::new(i as u64))),
            Kind::Dv => world.add_node(Box::new(DistanceVectorRouter::new(i as u64))),
        })
        .collect();
    let links: Vec<LinkId> = topo
        .links
        .iter()
        .map(|l| world.connect(routers[l.a], routers[l.b], l.params).0)
        .collect();
    let mut hosts = Vec::new();
    for (i, &sw) in topo.hosts.iter().enumerate() {
        let ip = Ipv4Address::new(10, 0, 0, (i + 1) as u8);
        let mut host =
            Host::new(EthernetAddress::from_id(0x50_0000 + i as u64), ip).with_gratuitous_arp();
        if i == 0 {
            host = host.with_workload(probe(Ipv4Address::new(10, 0, 0, 2)));
        }
        let id = world.add_node(Box::new(host));
        world.connect(id, routers[sw], LinkParams::default());
        hosts.push(id);
    }
    world.run_until(Instant::from_millis(1500));
    let victim = loaded_link(&world, &links);
    let msgs_before = world.metrics().counter("routing.msgs");
    if silent {
        world.schedule_link_state_silent(victim, false, CUT_AT);
    } else {
        world.schedule_link_state(victim, false, CUT_AT);
    }
    world.run_until(END);
    let msgs = world.metrics().counter("routing.msgs") - msgs_before;
    let lost = PROBES - world.node_as::<Host>(hosts[1]).stats.udp_rx;
    (lost, msgs)
}

fn main() {
    println!("# E7 — failure convergence: black-hole window and control overhead");
    println!("# square topology, 1 kHz probes, loaded link cut at t=2s");
    println!();
    println!(
        "{:>34} {:>12} {:>16} {:>14}",
        "control plane", "fault", "lost (≈ms hole)", "ctl msgs"
    );
    for silent in [false, true] {
        let fault = if silent { "silent" } else { "detected" };
        let (lost, msgs) = run_sdn(silent);
        println!(
            "{:>34} {:>12} {:>16} {:>14}",
            "SDN proactive+failover", fault, lost, msgs
        );
        let (lost, msgs) = run_routers(Kind::Ls, silent);
        println!(
            "{:>34} {:>12} {:>16} {:>14}",
            "link-state (OSPF-style)", fault, lost, msgs
        );
        let (lost, msgs) = run_routers(Kind::Dv, silent);
        println!(
            "{:>34} {:>12} {:>16} {:>14}",
            "distance-vector (RIP-style)", fault, lost, msgs
        );
    }
    println!();
    println!("# Shape check: detected faults heal in ~0 for all planes (local repair");
    println!("# / immediate flooding); silent faults rank SDN-LLDP < LS dead-interval");
    println!("# < DV route timeout.");

    println!();
    println!("# E13 — reconvergence under a lossy control channel");
    println!("# detected link cut at t=2s; every control frame dropped with prob p");
    println!();
    println!(
        "{:>24} {:>8} {:>16} {:>12} {:>10}",
        "programming", "loss", "lost (≈ms hole)", "ctl msgs", "mod retx"
    );
    for loss in [0.0, 0.01, 0.05, 0.10] {
        for reactive in [false, true] {
            let (lost, msgs, retx) = run_sdn_lossy(loss, reactive);
            println!(
                "{:>24} {:>7.0}% {:>16} {:>12} {:>10}",
                if reactive {
                    "SDN reactive"
                } else {
                    "SDN proactive"
                },
                loss * 100.0,
                lost,
                msgs,
                retx
            );
        }
    }
    println!();
    println!("# Shape check: reliable delivery keeps the hole small at moderate loss");
    println!("# while retransmissions rise with p. Proactive reprograms the whole");
    println!("# fabric on a topology change — a large mod burst exposed to the lossy");
    println!("# channel — whereas the reactive stream only needs its one path");
    println!("# reinstalled, so high loss rates hurt the proactive reprogram more.");
}
