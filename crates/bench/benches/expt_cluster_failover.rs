//! E15 — cluster failover: time-to-reroute and black-hole window when
//! the master controller of the traffic's ingress switch dies *at the
//! same instant* a loaded link is silently cut, for 1, 3, and 5
//! controller replicas.
//!
//! The square topology carries a 1 kHz probe stream. At t=2s the link
//! the probes ride is silently cut (no PORT_STATUS — only LLDP aging
//! can reveal it) and the replica mastering the ingress switch is
//! isolated (crash-equivalent for a node with no data ports). With one
//! controller there is nobody left to reprogram around the cut: the
//! stream black-holes until the end of the run. With replicas, the
//! survivors detect the lapsed mastership lease, adopt the orphaned
//! switches, age the dead link out of the replicated view, and
//! reprogram — the reroute time is the lease plus the (cross-master)
//! link max-age plus one reprogramming round.
//!
//! Reported per replica count: lost probes (≈ black-hole milliseconds
//! at 1 kHz), time until probes flow again, control messages from the
//! cut to the end of the run, and mastership handovers performed.

use zen_core::apps::proactive::FABRIC_MAC;
use zen_core::apps::ProactiveFabric;
use zen_core::harness::{
    build_cluster_fabric_with_hosts, build_fabric, default_host_ip, FabricOptions,
};
use zen_core::Controller;
use zen_sim::Workload;
use zen_sim::{Duration, FaultPlan, Host, Instant, LinkId, LinkParams, Topology, Window, World};

const PROBES: u64 = 4000;
const GAP: Duration = Duration::from_millis(1);
const CUT_AT: Instant = Instant::from_secs(2);
const END: Instant = Instant::from_secs(7);

fn topo() -> Topology {
    let mut t = Topology::ring(4, LinkParams::default());
    t.hosts = vec![0, 2];
    t
}

/// Pick the ring link carrying the most bytes (the probe path).
fn loaded_link(world: &World, candidates: &[LinkId]) -> LinkId {
    candidates
        .iter()
        .copied()
        .max_by_key(|&l| {
            let link = world.link(l);
            link.ab.tx_bytes + link.ba.tx_bytes
        })
        .expect("links exist")
}

struct Outcome {
    lost: u64,
    reroute_ms: Option<u64>,
    ctl_msgs: u64,
    handovers: u64,
}

fn run_cluster(n_controllers: usize) -> Outcome {
    let topo = topo();
    let inventory = {
        let mut scratch = World::new(3);
        build_fabric(&mut scratch, &topo, vec![], FabricOptions::default()).static_hosts()
    };
    let mut world = World::new(3);
    let opts = FabricOptions {
        n_controllers,
        ..FabricOptions::default()
    };
    let expected_switches = topo.switches;
    let expected_links = 2 * topo.links.len();
    let fabric = build_cluster_fabric_with_hosts(
        &mut world,
        &topo,
        |_i| {
            vec![Box::new(ProactiveFabric::new(
                inventory.clone(),
                expected_switches,
                expected_links,
            ))]
        },
        opts,
        |i, mac, ip| {
            let host = Host::new(mac, ip).with_static_arp(default_host_ip(1 - i), FABRIC_MAC);
            if i == 0 {
                host.with_workload(Workload::Udp {
                    dst: default_host_ip(1),
                    dst_port: 9,
                    size: 100,
                    count: PROBES,
                    interval: GAP,
                    start: Instant::from_secs(1),
                })
            } else {
                host
            }
        },
    );

    // Warm up so probes flow and mastership settles, then stage the
    // compound failure: silent cut of the loaded link plus a crash of
    // the replica mastering the ingress switch (dpid 0).
    world.run_until(Instant::from_millis(1500));
    let victim_link = loaded_link(&world, &fabric.switch_links);
    let victim_replica = fabric
        .controllers
        .iter()
        .position(|&c| world.node_as::<Controller>(c).mastered().contains(&0))
        .expect("someone masters the ingress switch");
    world.schedule_link_state_silent(victim_link, false, CUT_AT);
    world.set_fault_plan(FaultPlan::default().isolate(
        fabric.controllers[victim_replica],
        Window::new(CUT_AT, Instant::from_nanos(u64::MAX)),
    ));
    let msgs_before = world.metrics().counter("sim.control_msgs");
    let gained_before: u64 = fabric
        .controllers
        .iter()
        .map(|&c| world.node_as::<Controller>(c).stats.masterships_gained)
        .sum();

    world.run_until(CUT_AT);
    let rx_at_cut = world.node_as::<Host>(fabric.hosts[1]).stats.udp_rx;

    // Step in 5 ms increments to timestamp the first probes that make
    // it through after the cut.
    let mut reroute_ms = None;
    let mut t = CUT_AT;
    while t < END {
        t += Duration::from_millis(5);
        world.run_until(t);
        if reroute_ms.is_none() {
            let rx = world.node_as::<Host>(fabric.hosts[1]).stats.udp_rx;
            if rx > rx_at_cut + 5 {
                reroute_ms = Some(t.duration_since(CUT_AT).as_nanos() / 1_000_000);
            }
        }
    }

    let ctl_msgs = world.metrics().counter("sim.control_msgs") - msgs_before;
    let handovers = fabric
        .controllers
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != victim_replica)
        .map(|(_, &c)| world.node_as::<Controller>(c).stats.masterships_gained)
        .sum::<u64>()
        .saturating_sub(gained_before);
    let lost = PROBES - world.node_as::<Host>(fabric.hosts[1]).stats.udp_rx;
    Outcome {
        lost,
        reroute_ms,
        ctl_msgs,
        handovers,
    }
}

fn main() {
    println!("# E15 — cluster failover: master killed as a loaded link is silently cut");
    println!("# square topology, 1 kHz probes; cut + controller crash at t=2s");
    println!();
    println!(
        "{:>10} {:>16} {:>14} {:>12} {:>11}",
        "replicas", "lost (≈ms hole)", "reroute (ms)", "ctl msgs", "handovers"
    );
    for n in [1, 3, 5] {
        let o = run_cluster(n);
        let reroute = match o.reroute_ms {
            Some(ms) => format!("{ms}"),
            None => "never".to_string(),
        };
        println!(
            "{:>10} {:>16} {:>14} {:>12} {:>11}",
            n, o.lost, reroute, o.ctl_msgs, o.handovers
        );
    }
    println!();
    println!("# Shape check: one replica never reroutes (the only controller died");
    println!("# with the link), so the hole spans the rest of the stream. With 3 or");
    println!("# 5 replicas the survivors take over the dead master's switches after");
    println!("# the 300 ms lease and reprogram once the dead link ages out of the");
    println!("# replicated view: the hole is the lease + cross-master link max-age");
    println!("# + one reprogram, and more replicas spread the same handover count");
    println!("# over more east-west chatter (higher ctl msgs), not a faster reroute.");
}
