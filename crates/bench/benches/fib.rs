//! E2 — FIB longest-prefix match: the lookup/update trade-off space.
//!
//! Reproduces the shape of the FIB-data-structure comparisons (linear
//! scan vs. unibit trie vs. path-compressed trie vs. DIR-24-8 direct
//! indexing) on synthetic tables with a realistic prefix-length mix.
//! Expected shape: DIR-24-8 fastest lookups but slowest updates; tries
//! in between; linear scan collapses with table size.

use std::hint::black_box;
use std::time::Duration;

use zen_bench::harness::{Bench, Throughput};
use zen_fib::{BinaryTrieFib, Dir24Fib, Fib, LinearFib, RadixTrieFib, SyntheticTable};

fn bench_lookup() {
    let mut group = Bench::group("E2/fib_lookup")
        .samples(20)
        .warm_up(Duration::from_millis(300))
        .measurement(Duration::from_secs(1));
    for &n in &[1_000usize, 10_000, 100_000] {
        let table = SyntheticTable::generate(n, 42);
        let keys = table.lookup_keys(4096, 7);
        group.throughput(Throughput::Elements(1));

        // The linear oracle is O(n); skip its largest size to keep bench
        // time sane but keep enough points to see the collapse.
        if n <= 10_000 {
            let mut fib = LinearFib::new();
            table.load(&mut fib);
            let mut i = 0;
            group.run(&format!("linear/{n}"), || {
                i += 1;
                black_box(fib.lookup(keys[i % keys.len()]))
            });
        }

        let mut fib = BinaryTrieFib::new();
        table.load(&mut fib);
        let mut i = 0;
        group.run(&format!("binary_trie/{n}"), || {
            i += 1;
            black_box(fib.lookup(keys[i % keys.len()]))
        });

        let mut fib = RadixTrieFib::new();
        table.load(&mut fib);
        let mut i = 0;
        group.run(&format!("radix_trie/{n}"), || {
            i += 1;
            black_box(fib.lookup(keys[i % keys.len()]))
        });

        let mut fib = Dir24Fib::new();
        table.load(&mut fib);
        let mut i = 0;
        group.run(&format!("dir24_8/{n}"), || {
            i += 1;
            black_box(fib.lookup(keys[i % keys.len()]))
        });
    }
}

fn bench_update() {
    let mut group = Bench::group("E2/fib_update")
        .samples(10)
        .warm_up(Duration::from_millis(300))
        .measurement(Duration::from_secs(2));
    let n = 50_000;
    let table = SyntheticTable::generate(n, 42);
    // Churn set: a disjoint batch of prefixes inserted and removed.
    let churn = SyntheticTable::generate(256, 999);

    group.throughput(Throughput::Elements(churn.entries.len() as u64));

    let mut fib = BinaryTrieFib::new();
    table.load(&mut fib);
    group.run("binary_trie_churn", || {
        for &(p, nh) in &churn.entries {
            fib.insert(p, nh);
        }
        for &(p, _) in &churn.entries {
            fib.remove(p);
        }
    });

    let mut fib = RadixTrieFib::new();
    table.load(&mut fib);
    group.run("radix_trie_churn", || {
        for &(p, nh) in &churn.entries {
            fib.insert(p, nh);
        }
        for &(p, _) in &churn.entries {
            fib.remove(p);
        }
    });

    let mut fib = Dir24Fib::new();
    table.load(&mut fib);
    group.run("dir24_8_churn", || {
        for &(p, nh) in &churn.entries {
            fib.insert(p, nh);
        }
        for &(p, _) in &churn.entries {
            fib.remove(p);
        }
    });
}

fn bench_build() {
    let mut group = Bench::group("E2/fib_build_100k")
        .samples(10)
        .warm_up(Duration::from_millis(300))
        .measurement(Duration::from_secs(2));
    let table = SyntheticTable::generate(100_000, 42);
    group.run("binary_trie", || {
        let mut fib = BinaryTrieFib::new();
        table.load(&mut fib);
        black_box(fib.len())
    });
    group.run("radix_trie", || {
        let mut fib = RadixTrieFib::new();
        table.load(&mut fib);
        black_box(fib.len())
    });
}

fn main() {
    bench_lookup();
    bench_update();
    bench_build();
}
