//! E2 — FIB longest-prefix match: the lookup/update trade-off space.
//!
//! Reproduces the shape of the FIB-data-structure comparisons (linear
//! scan vs. unibit trie vs. path-compressed trie vs. DIR-24-8 direct
//! indexing) on synthetic tables with a realistic prefix-length mix.
//! Expected shape: DIR-24-8 fastest lookups but slowest updates; tries
//! in between; linear scan collapses with table size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use zen_fib::{BinaryTrieFib, Dir24Fib, Fib, LinearFib, RadixTrieFib, SyntheticTable};

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("E2/fib_lookup");
    group
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    for &n in &[1_000usize, 10_000, 100_000] {
        let table = SyntheticTable::generate(n, 42);
        let keys = table.lookup_keys(4096, 7);
        group.throughput(Throughput::Elements(1));

        // The linear oracle is O(n); skip its largest size to keep bench
        // time sane but keep enough points to see the collapse.
        if n <= 10_000 {
            let mut fib = LinearFib::new();
            table.load(&mut fib);
            group.bench_with_input(BenchmarkId::new("linear", n), &n, |b, _| {
                let mut i = 0;
                b.iter(|| {
                    i += 1;
                    black_box(fib.lookup(keys[i % keys.len()]))
                });
            });
        }

        let mut fib = BinaryTrieFib::new();
        table.load(&mut fib);
        group.bench_with_input(BenchmarkId::new("binary_trie", n), &n, |b, _| {
            let mut i = 0;
            b.iter(|| {
                i += 1;
                black_box(fib.lookup(keys[i % keys.len()]))
            });
        });

        let mut fib = RadixTrieFib::new();
        table.load(&mut fib);
        group.bench_with_input(BenchmarkId::new("radix_trie", n), &n, |b, _| {
            let mut i = 0;
            b.iter(|| {
                i += 1;
                black_box(fib.lookup(keys[i % keys.len()]))
            });
        });

        let mut fib = Dir24Fib::new();
        table.load(&mut fib);
        group.bench_with_input(BenchmarkId::new("dir24_8", n), &n, |b, _| {
            let mut i = 0;
            b.iter(|| {
                i += 1;
                black_box(fib.lookup(keys[i % keys.len()]))
            });
        });
    }
    group.finish();
}

fn bench_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("E2/fib_update");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    let n = 50_000;
    let table = SyntheticTable::generate(n, 42);
    // Churn set: a disjoint batch of prefixes inserted and removed.
    let churn = SyntheticTable::generate(256, 999);

    group.throughput(Throughput::Elements(churn.entries.len() as u64));

    let mut fib = BinaryTrieFib::new();
    table.load(&mut fib);
    group.bench_function("binary_trie_churn", |b| {
        b.iter(|| {
            for &(p, nh) in &churn.entries {
                fib.insert(p, nh);
            }
            for &(p, _) in &churn.entries {
                fib.remove(p);
            }
        });
    });

    let mut fib = RadixTrieFib::new();
    table.load(&mut fib);
    group.bench_function("radix_trie_churn", |b| {
        b.iter(|| {
            for &(p, nh) in &churn.entries {
                fib.insert(p, nh);
            }
            for &(p, _) in &churn.entries {
                fib.remove(p);
            }
        });
    });

    let mut fib = Dir24Fib::new();
    table.load(&mut fib);
    group.bench_function("dir24_8_churn", |b| {
        b.iter(|| {
            for &(p, nh) in &churn.entries {
                fib.insert(p, nh);
            }
            for &(p, _) in &churn.entries {
                fib.remove(p);
            }
        });
    });

    group.finish();
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("E2/fib_build_100k");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    let table = SyntheticTable::generate(100_000, 42);
    group.bench_function("binary_trie", |b| {
        b.iter(|| {
            let mut fib = BinaryTrieFib::new();
            table.load(&mut fib);
            black_box(fib.len())
        });
    });
    group.bench_function("radix_trie", |b| {
        b.iter(|| {
            let mut fib = RadixTrieFib::new();
            table.load(&mut fib);
            black_box(fib.len())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_lookup, bench_update, bench_build);
criterion_main!(benches);
