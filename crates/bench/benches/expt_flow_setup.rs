//! E5 — reactive flow-setup latency.
//!
//! The first packet of a flow pays the punt → compute → install →
//! release round trip; subsequent packets ride the data plane. This
//! harness measures both, sweeping path length (line topologies) and
//! control-channel latency — reproducing the canonical ONOS/Maple
//! flow-setup-latency experiment shape: setup cost grows with control
//! RTT (and path length, since every hop needs a FLOW_MOD), while
//! steady-state latency depends only on the data path.

use zen_core::apps::ReactiveForwarding;
use zen_core::harness::{build_fabric_with_hosts, default_host_ip, FabricOptions};
use zen_sim::{Duration, Host, Instant, LinkParams, Topology, Workload, World};

fn run(hops: usize, control_latency: Duration) -> (f64, f64) {
    let mut topo = Topology::line(hops, LinkParams::default());
    topo.hosts = vec![0, hops - 1];
    let mut world = World::new(17);
    let opts = FabricOptions {
        control_latency,
        ..FabricOptions::default()
    };
    let fabric = build_fabric_with_hosts(
        &mut world,
        &topo,
        vec![Box::new(ReactiveForwarding::new())],
        opts,
        |i, mac, ip| {
            let host = Host::new(mac, ip).with_gratuitous_arp();
            if i == 0 {
                host.with_workload(Workload::Udp {
                    dst: default_host_ip(1),
                    dst_port: 9,
                    size: 100,
                    count: 50,
                    interval: Duration::from_millis(5),
                    start: Instant::from_millis(600),
                })
            } else {
                host
            }
        },
    );
    world.run_until(Instant::from_secs(3));
    let h = world.node_as::<Host>(fabric.hosts[1]);
    let samples = h.stats.udp_latency.samples();
    assert!(
        samples.len() >= 45,
        "delivery failed: {}/50 at {hops} hops",
        samples.len()
    );
    let first = samples[0] * 1e6;
    let steady = samples[10..].iter().copied().fold(f64::MAX, f64::min) * 1e6;
    (first, steady)
}

fn main() {
    println!("# E5 — reactive flow-setup latency (first packet vs steady state)");
    println!("# line topology, 1 Gb/s links with 10 us propagation per hop");
    println!();
    println!(
        "{:>6} {:>14} {:>16} {:>16} {:>8}",
        "hops", "ctl-lat(us)", "first-pkt(us)", "steady(us)", "ratio"
    );
    for &hops in &[2usize, 4, 8] {
        for &ctl_us in &[10u64, 100, 1000] {
            let (first, steady) = run(hops, Duration::from_micros(ctl_us));
            println!(
                "{:>6} {:>14} {:>16.1} {:>16.1} {:>8.1}",
                hops,
                ctl_us,
                first,
                steady,
                first / steady
            );
        }
    }
    println!();
    println!("# Shape check: first-packet latency grows with control latency;");
    println!("# steady-state latency grows only with hop count.");
}
