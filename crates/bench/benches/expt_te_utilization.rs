//! E8 — WAN traffic engineering: admitted demand and utilization.
//!
//! The B4 headline experiment: on a 12-site WAN, compare single
//! shortest-path routing (k=1, what a distributed IGP computes) with
//! centralized max-min TE over k candidate paths, as offered load
//! scales. Reported per run: admitted demand, satisfaction ratio, mean
//! and max link utilization, and Jain fairness of the satisfaction
//! ratios. The TE allocator is the same code the live `zen-core` TE app
//! installs; this harness drives it directly over demand sweeps.

use zen_graph::Graph;
use zen_sim::Topology;
use zen_te::{allocate, DemandMatrix};

const LINK_BPS: u64 = 1_000_000_000;

fn wan_graph() -> Graph {
    let topo = Topology::b4(LINK_BPS);
    let mut g = Graph::with_nodes(topo.switches);
    for l in &topo.links {
        g.add_undirected(l.a as u32, l.b as u32, 1, LINK_BPS);
    }
    g
}

fn main() {
    println!("# E8 — WAN TE vs shortest-path routing (B4-style 12-site WAN)");
    println!("# 19 bidirectional 1 Gb/s links; random demand matrices, 24 site pairs");
    println!();
    println!(
        "{:>8} {:>4} {:>14} {:>10} {:>11} {:>10} {:>8}",
        "load", "k", "admitted(Gb/s)", "satisfied", "mean-util", "max-util", "Jain"
    );

    let g = wan_graph();
    let sites: Vec<u32> = (0..12).collect();
    for &scale in &[1u64, 2, 4, 8] {
        let demands = DemandMatrix::random(&sites, 24, 50_000_000 * scale, 250_000_000 * scale, 42);
        let requested = demands.total();
        for &k in &[1usize, 3] {
            let alloc = allocate(&g, &demands, k, LINK_BPS / 200);
            println!(
                "{:>7}x {:>4} {:>14.2} {:>9.0}% {:>10.0}% {:>9.0}% {:>8.3}",
                scale,
                k,
                alloc.total() as f64 / 1e9,
                100.0 * alloc.total() as f64 / requested as f64,
                100.0 * alloc.mean_utilization(&g),
                100.0 * alloc.max_utilization(&g),
                alloc.jain_index(&demands.demands),
            );
        }
    }
    println!();
    println!("# Shape check: at low load both admit everything; as load grows,");
    println!("# k=3 TE admits more traffic and drives mean utilization higher");
    println!("# than single-shortest-path routing, at similar fairness.");

    // Ablation: split-quantization granularity. B4 quantizes fractional
    // path splits into hardware ECMP buckets; coarser buckets divert more
    // traffic from the computed allocation. Measured as the worst-case
    // absolute weight error across demands at the 4x load point.
    println!();
    println!("# Ablation — split quantization (k=3, 4x load)");
    println!("{:>10} {:>22}", "buckets", "max split error");
    let demands = DemandMatrix::random(&sites, 24, 200_000_000, 1_000_000_000, 42);
    let alloc = allocate(&g, &demands, 3, LINK_BPS / 200);
    for &buckets in &[2u32, 4, 8, 16, 64] {
        let mut worst = 0f64;
        for paths in &alloc.paths {
            if paths.len() < 2 {
                continue;
            }
            let rates: Vec<u64> = paths.iter().map(|(_, r)| *r).collect();
            let total: u64 = rates.iter().sum();
            let w = zen_te::quantize_splits(&rates, buckets);
            let wsum: u32 = w.iter().sum();
            for (i, &r) in rates.iter().enumerate() {
                let exact = r as f64 / total as f64;
                let got = w[i] as f64 / wsum as f64;
                worst = worst.max((exact - got).abs());
            }
        }
        println!("{:>10} {:>21.1}%", buckets, worst * 100.0);
    }
    println!("# Shape check: error shrinks roughly as 1/buckets.");
    println!();

    // Sanity guard so regressions break `cargo bench`.
    let demands = DemandMatrix::random(&sites, 24, 400_000_000, 2_000_000_000, 42);
    let sp = allocate(&g, &demands, 1, LINK_BPS / 200);
    let te = allocate(&g, &demands, 3, LINK_BPS / 200);
    assert!(
        te.total() > sp.total(),
        "TE must admit more than shortest-path under overload"
    );
    assert!(te.mean_utilization(&g) > sp.mean_utilization(&g));
}
