//! E11 — disruption during live reconfiguration: teardown-first vs.
//! make-before-break.
//!
//! The zUpdate/SWAN question: when the controller reconfigures a
//! network whose switches apply updates at unpredictable relative times
//! (modelled as uniform control-channel jitter), how much traffic is
//! lost? A site streams at 2 kHz while the TE demand matrix changes
//! mid-run; make-before-break installs the new tunnel generation under
//! fresh VLAN tags, swaps the ingress classifier atomically, and
//! garbage-collects one round later.

use zen_core::apps::proactive::FABRIC_MAC;
use zen_core::apps::te::{SiteDemand, UpdateStrategy};
use zen_core::apps::TrafficEngineering;
use zen_core::harness::{build_fabric_with_hosts, site_host_ip, FabricOptions};
use zen_core::Controller;
use zen_sim::{Duration, Host, Instant, LinkParams, Topology, Workload, World};

const PROBES: u64 = 4000;

fn run(strategy: UpdateStrategy, jitter: Duration, seed: u64) -> u64 {
    let topo = {
        let mut t = Topology::ring(3, LinkParams::default());
        t.hosts = vec![0, 1, 2];
        t
    };
    let expected_links = 2 * topo.links.len();
    let site_ip = |site: usize| site_host_ip(site, 0);
    let inventory: Vec<zen_core::apps::proactive::StaticHost> = {
        let mut scratch = World::new(seed);
        let f = build_fabric_with_hosts(
            &mut scratch,
            &topo,
            vec![],
            FabricOptions::default(),
            |i, mac, _| Host::new(mac, site_ip(i)),
        );
        f.static_hosts()
    };
    let prefixes = (0..3u64)
        .map(|s| (s, format!("10.{s}.0.0/16").parse().unwrap()))
        .collect();
    let mut te = TrafficEngineering::new(
        prefixes,
        inventory,
        vec![SiteDemand {
            src: 0,
            dst: 1,
            rate_bps: 50_000_000,
        }],
        1_000_000_000,
        2,
        3,
        expected_links,
    );
    te.strategy = strategy;
    te.scheduled_demands = Some((
        2_000_000_000,
        vec![
            SiteDemand {
                src: 0,
                dst: 1,
                rate_bps: 200_000_000,
            },
            SiteDemand {
                src: 0,
                dst: 2,
                rate_bps: 200_000_000,
            },
        ],
    ));

    let mut world = World::new(seed);
    let fabric = build_fabric_with_hosts(
        &mut world,
        &topo,
        vec![Box::new(te)],
        FabricOptions::default(),
        |i, mac, _| {
            let host = Host::new(mac, site_ip(i))
                .with_static_arp(site_ip(0), FABRIC_MAC)
                .with_static_arp(site_ip(1), FABRIC_MAC)
                .with_static_arp(site_ip(2), FABRIC_MAC);
            if i == 0 {
                host.with_workload(Workload::Udp {
                    dst: site_ip(1),
                    dst_port: 9,
                    size: 200,
                    count: PROBES,
                    interval: Duration::from_micros(500),
                    start: Instant::from_secs(1),
                })
            } else {
                host
            }
        },
    );
    world.set_control_jitter(jitter);
    world.run_until(Instant::from_secs(4));

    let controller = world.node_as::<Controller>(fabric.controller);
    let app = controller
        .app(0)
        .as_any()
        .downcast_ref::<TrafficEngineering>()
        .unwrap();
    assert!(app.installs >= 2, "reconfiguration never happened");
    PROBES - world.node_as::<Host>(fabric.hosts[1]).stats.udp_rx
}

fn main() {
    println!("# E11 — reconfiguration disruption under asynchronous rule application");
    println!("# 2 kHz stream across a live TE reconfiguration; per-message control jitter");
    println!();
    println!(
        "{:>18} {:>12} {:>6} {:>22}",
        "strategy", "jitter(ms)", "seed", "lost probes (of 4000)"
    );
    let mut teardown_total = 0u64;
    let mut mbb_total = 0u64;
    for &jitter_ms in &[0u64, 2, 10, 20] {
        for seed in [1u64, 2] {
            let j = Duration::from_millis(jitter_ms);
            let lost_td = run(UpdateStrategy::TearDownFirst, j, seed);
            let lost_mbb = run(UpdateStrategy::MakeBeforeBreak, j, seed);
            teardown_total += lost_td;
            mbb_total += lost_mbb;
            println!(
                "{:>18} {:>12} {:>6} {:>22}",
                "teardown-first", jitter_ms, seed, lost_td
            );
            println!(
                "{:>18} {:>12} {:>6} {:>22}",
                "make-before-break", jitter_ms, seed, lost_mbb
            );
        }
    }
    println!();
    println!("# Shape check: make-before-break is hitless at every jitter level;");
    println!("# teardown-first loss grows with jitter (the asynchronous-update");
    println!("# window the congestion-free-update literature eliminates).");
    assert_eq!(mbb_total, 0, "make-before-break must be hitless");
    assert!(teardown_total > 0, "teardown-first should show disruption");
}
