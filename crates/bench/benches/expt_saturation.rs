//! E17 — controller saturation: cbench-style PACKET_IN flood.
//!
//! The classic controller benchmark (cbench, as used in the
//! POX/Floodlight/OpenDaylight shootouts) measures how many flow
//! setups per second one controller sustains as emulated switches
//! blast PACKET_INs at it. This driver reproduces that inside the
//! deterministic simulator with [`zen_core::CbenchSwitch`]:
//!
//! * **Closed loop** — each switch keeps K punts in flight and refills
//!   on every FLOW_MOD; N scales 1→32. Setups/sec here is wall-clock
//!   throughput of the whole controller stack (decode, dispatch, L2
//!   app, encode, barrier bookkeeping) on one core.
//! * **Open loop** — 8 switches punt on a fixed timer; offered rate
//!   scales until it passes the closed-loop capacity, showing the
//!   saturation knee.
//! * **Micro** — raw codec decode of a PACKET_IN frame, isolating the
//!   per-message cost the zero-copy rework targets.
//!
//! Simulated latency is deterministic and flat (the sim charges no
//! service time), so the latency percentiles reported here are
//! **wall-clock** per-setup costs — the real CPU spent between punt
//! and FLOW_MOD. They are not deterministic and never fold into
//! replay digests.
//!
//! Machine-readable output: every configuration emits one JSON line to
//! `BENCH_E17_OUT` (default `target/BENCH_E17.json`). If
//! `BENCH_E17_BASELINE` names a committed baseline file (CI points it
//! at `ci/BENCH_E17.baseline.json`), the run fails when peak closed-
//! loop setups/sec regresses more than 20% below it.
//! `BENCH_E17_QUICK=1` shrinks the matrix for CI smoke lanes.

use std::collections::VecDeque;

use zen_core::apps::L2Learning;
use zen_core::{CbenchConfig, CbenchMode, CbenchSwitch, Controller};
use zen_sim::{Duration, Histogram, Instant, NodeId, World};
use zen_telemetry::json::Line;

/// Fixed seed: the simulated side of every run is a pure function of it.
const SEED: u64 = 0xE17_0001;

/// Punts in flight per switch in closed-loop mode (cbench default-ish).
const OUTSTANDING: usize = 8;

/// Distinct source MACs per switch.
const SOURCES: usize = 64;

/// Flow setups measured per closed-loop configuration.
fn target_setups(quick: bool) -> u64 {
    if quick {
        6_000
    } else {
        30_000
    }
}

/// Closed-loop switch counts.
fn switch_counts(quick: bool) -> &'static [usize] {
    if quick {
        &[1, 4, 8]
    } else {
        &[1, 2, 4, 8, 16, 32]
    }
}

/// One measured configuration.
struct Outcome {
    mode: &'static str,
    switches: usize,
    /// Open-loop only: per-switch punt interval (µs).
    interval_us: u64,
    punts: u64,
    setups: u64,
    wall_secs: f64,
    /// Wall-clock per-setup latency percentiles, µs.
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    /// Mean simulated punt→FLOW_MOD latency, µs (deterministic).
    sim_mean_us: f64,
    decode_errors: u64,
}

impl Outcome {
    fn setups_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.setups as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    fn us_per_setup(&self) -> f64 {
        if self.setups > 0 {
            self.wall_secs * 1e6 / self.setups as f64
        } else {
            0.0
        }
    }

    fn json(&self, out: &mut String) {
        Line::new("bench")
            .str("id", "E17")
            .str("mode", self.mode)
            .u64("switches", self.switches as u64)
            .u64("outstanding", OUTSTANDING as u64)
            .u64("interval_us", self.interval_us)
            .u64("punts", self.punts)
            .u64("setups", self.setups)
            .f64("wall_ms", self.wall_secs * 1e3)
            .f64("setups_per_sec", self.setups_per_sec())
            .f64("us_per_setup", self.us_per_setup())
            .f64("p50_us", self.p50_us)
            .f64("p95_us", self.p95_us)
            .f64("p99_us", self.p99_us)
            .f64("sim_mean_us", self.sim_mean_us)
            .u64("decode_errors", self.decode_errors)
            .finish(out);
    }
}

/// Build a controller-plus-N-cbench-switches world. No data links:
/// the control channel is the system under test.
fn build(n_switches: usize, mode: CbenchMode) -> (World, NodeId, Vec<NodeId>) {
    let mut world = World::new(SEED ^ n_switches as u64);
    let controller = world.add_node(Box::new(Controller::new(vec![Box::new(L2Learning::new())])));
    let cfg = CbenchConfig {
        mode,
        sources: SOURCES,
        payload_len: 64,
        ..CbenchConfig::default()
    };
    let switches = (0..n_switches)
        .map(|dpid| world.add_node(Box::new(CbenchSwitch::new(dpid as u64, controller, cfg))))
        .collect();
    (world, controller, switches)
}

/// Sum of completed setups across switches.
fn total_setups(world: &World, switches: &[NodeId]) -> u64 {
    switches
        .iter()
        .map(|&id| world.node_as::<CbenchSwitch>(id).stats.flow_mods)
        .sum()
}

/// Fold per-switch wall latencies (from `skip` onward) into a
/// histogram in µs, and return the matching mean simulated latency.
fn collect_latencies(world: &World, switches: &[NodeId], skip: &[usize]) -> (Histogram, f64) {
    let mut wall = Histogram::new();
    let mut sim_sum = 0u64;
    let mut sim_n = 0u64;
    for (i, &id) in switches.iter().enumerate() {
        let sw = world.node_as::<CbenchSwitch>(id);
        for &ns in sw.wall_setup_ns.iter().skip(skip[i]) {
            wall.record(ns as f64 / 1e3);
        }
        for &ns in sw.sim_setup_ns.iter().skip(skip[i]) {
            sim_sum += ns;
            sim_n += 1;
        }
    }
    let sim_mean_us = if sim_n > 0 {
        sim_sum as f64 / sim_n as f64 / 1e3
    } else {
        0.0
    };
    (wall, sim_mean_us)
}

#[allow(clippy::too_many_arguments)]
fn finish_outcome(
    mode: &'static str,
    switches: usize,
    interval_us: u64,
    world: &World,
    switch_ids: &[NodeId],
    skip: &[usize],
    baseline_punts: u64,
    baseline_setups: u64,
    wall_secs: f64,
) -> Outcome {
    let (mut wall, sim_mean_us) = collect_latencies(world, switch_ids, skip);
    let punts: u64 = switch_ids
        .iter()
        .map(|&id| world.node_as::<CbenchSwitch>(id).stats.punts_sent)
        .sum::<u64>()
        - baseline_punts;
    let decode_errors: u64 = switch_ids
        .iter()
        .map(|&id| world.node_as::<CbenchSwitch>(id).stats.decode_errors)
        .sum();
    Outcome {
        mode,
        switches,
        interval_us,
        punts,
        setups: total_setups(world, switch_ids) - baseline_setups,
        wall_secs,
        p50_us: wall.quantile(0.50).unwrap_or(0.0),
        p95_us: wall.quantile(0.95).unwrap_or(0.0),
        p99_us: wall.quantile(0.99).unwrap_or(0.0),
        sim_mean_us,
        decode_errors,
    }
}

/// Closed loop: run until `target` setups complete past warmup,
/// measuring wall-clock over the measured span.
fn run_closed(n_switches: usize, target: u64) -> Outcome {
    let (mut world, _ctl, switches) = build(
        n_switches,
        CbenchMode::Closed {
            outstanding: OUTSTANDING,
        },
    );
    // Warmup: handshake, primer, and the first punt waves settle.
    world.run_until(Instant::from_millis(5));
    let baseline_setups = total_setups(&world, &switches);
    let baseline_punts: u64 = switches
        .iter()
        .map(|&id| world.node_as::<CbenchSwitch>(id).stats.punts_sent)
        .sum();
    let skip: Vec<usize> = switches
        .iter()
        .map(|&id| world.node_as::<CbenchSwitch>(id).wall_setup_ns.len())
        .collect();

    let start = std::time::Instant::now();
    loop {
        for _ in 0..4096 {
            if world.step().is_none() {
                break;
            }
        }
        if total_setups(&world, &switches) - baseline_setups >= target {
            break;
        }
    }
    let wall_secs = start.elapsed().as_secs_f64();

    finish_outcome(
        "closed",
        n_switches,
        0,
        &world,
        &switches,
        &skip,
        baseline_punts,
        baseline_setups,
        wall_secs,
    )
}

/// Open loop: fixed offered rate for a fixed simulated span.
fn run_open(n_switches: usize, interval: Duration, sim_span: Duration) -> Outcome {
    let (mut world, _ctl, switches) = build(n_switches, CbenchMode::Open { interval });
    world.run_until(Instant::from_millis(5));
    let baseline_setups = total_setups(&world, &switches);
    let baseline_punts: u64 = switches
        .iter()
        .map(|&id| world.node_as::<CbenchSwitch>(id).stats.punts_sent)
        .sum();
    let skip: Vec<usize> = switches
        .iter()
        .map(|&id| world.node_as::<CbenchSwitch>(id).wall_setup_ns.len())
        .collect();

    let start = std::time::Instant::now();
    world.run_for(sim_span);
    let wall_secs = start.elapsed().as_secs_f64();

    finish_outcome(
        "open",
        n_switches,
        interval.as_micros(),
        &world,
        &switches,
        &skip,
        baseline_punts,
        baseline_setups,
        wall_secs,
    )
}

/// Raw codec cost: decode a realistic PACKET_IN over and over.
/// Returns (owned ns/op, borrowed-view ns/op, wire length).
fn micro_decode(iters: u64) -> (f64, f64, usize) {
    let frame = vec![0xa5u8; 256];
    let wire = zen_proto::encode(
        &zen_proto::Message::PacketIn {
            in_port: 1,
            table_id: 0,
            is_miss: true,
            frame,
        },
        7,
    );
    let start = std::time::Instant::now();
    let mut sink = 0u64;
    for _ in 0..iters {
        let (msg, xid, consumed) = zen_proto::decode(&wire).expect("valid frame");
        if let zen_proto::Message::PacketIn { frame, .. } = &msg {
            sink = sink.wrapping_add(frame.len() as u64);
        }
        sink = sink.wrapping_add(xid as u64 + consumed as u64);
    }
    let owned_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    let start = std::time::Instant::now();
    for _ in 0..iters {
        let (view, xid, consumed) = zen_proto::decode_view(&wire).expect("valid frame");
        if let zen_proto::MessageView::PacketIn { frame, .. } = view {
            sink = sink.wrapping_add(frame.len() as u64);
        }
        sink = sink.wrapping_add(xid as u64 + consumed as u64);
    }
    let view_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    assert!(sink > 0);
    (owned_ns, view_ns, wire.len())
}

/// Pull `"peak_setups_per_sec":<num>` out of a baseline JSON-lines
/// file by hand (the workspace is serde-free on principle).
fn baseline_peak(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let line = text
        .lines()
        .find(|l| l.contains("\"type\":\"bench_summary\"") && l.contains("\"id\":\"E17\""))?;
    let key = "\"peak_setups_per_sec\":";
    let at = line.find(key)? + key.len();
    let rest = &line[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn main() {
    let quick = std::env::var("BENCH_E17_QUICK").is_ok_and(|v| v == "1");
    let pct: f64 = std::env::var("BENCH_E17_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20.0);
    let target = target_setups(quick);
    let mut json = String::new();

    println!("# E17 — controller saturation (cbench-style PACKET_IN flood)");
    println!(
        "# closed loop: K={OUTSTANDING} punts in flight per switch, {SOURCES} source MACs, \
         measured over {target} setups{}",
        if quick { " [quick]" } else { "" }
    );
    println!();
    println!(
        "{:>4} {:>9} {:>9} {:>9} {:>11} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "N",
        "punts",
        "setups",
        "wall_ms",
        "ksetups/s",
        "us/setup",
        "p50_us",
        "p95_us",
        "p99_us",
        "sim_us"
    );
    let mut peak = 0.0f64;
    let mut closed: VecDeque<Outcome> = VecDeque::new();
    for &n in switch_counts(quick) {
        let out = run_closed(n, target);
        println!(
            "{:>4} {:>9} {:>9} {:>9.1} {:>11.1} {:>9.2} {:>9.1} {:>9.1} {:>9.1} {:>9.1}",
            out.switches,
            out.punts,
            out.setups,
            out.wall_secs * 1e3,
            out.setups_per_sec() / 1e3,
            out.us_per_setup(),
            out.p50_us,
            out.p95_us,
            out.p99_us,
            out.sim_mean_us,
        );
        assert_eq!(out.decode_errors, 0, "decode errors at N={n}");
        assert!(out.setups >= target, "undershot target at N={n}");
        // Closed loop bounds in-flight punts: punts can lead setups by
        // at most K per switch (plus one refill in the pipe).
        assert!(
            out.punts <= out.setups + (2 * OUTSTANDING as u64 + 2) * n as u64,
            "punt/setup imbalance at N={n}: {} punts vs {} setups",
            out.punts,
            out.setups
        );
        peak = peak.max(out.setups_per_sec());
        out.json(&mut json);
        closed.push_back(out);
    }

    println!();
    println!("# open loop: 8 switches, offered rate scaling past capacity");
    println!(
        "{:>12} {:>11} {:>9} {:>9} {:>11} {:>9} {:>9}",
        "interval_us", "offered/s", "punts", "setups", "ksetups/s", "us/setup", "p99_us"
    );
    let open_intervals: &[u64] = if quick {
        &[200, 50]
    } else {
        &[1000, 200, 50, 20]
    };
    let open_span = Duration::from_millis(if quick { 100 } else { 250 });
    for &us in open_intervals {
        let out = run_open(8, Duration::from_micros(us), open_span);
        let offered = 8.0 * 1e6 / us as f64;
        println!(
            "{:>12} {:>11.0} {:>9} {:>9} {:>11.1} {:>9.2} {:>9.1}",
            us,
            offered,
            out.punts,
            out.setups,
            out.setups_per_sec() / 1e3,
            out.us_per_setup(),
            out.p99_us,
        );
        assert_eq!(out.decode_errors, 0, "decode errors at interval {us}us");
        assert!(out.setups > 0, "no setups at interval {us}us");
        out.json(&mut json);
    }

    let iters = if quick { 200_000 } else { 1_000_000 };
    let (owned_ns, view_ns, wire_len) = micro_decode(iters);
    println!();
    println!("# micro: decode PACKET_IN ({wire_len} wire bytes), {iters} iters");
    println!("#   owned decode: {owned_ns:.1} ns/op");
    println!("#   view decode:  {view_ns:.1} ns/op");
    Line::new("bench")
        .str("id", "E17")
        .str("mode", "micro_decode")
        .u64("wire_bytes", wire_len as u64)
        .f64("owned_ns_per_op", owned_ns)
        .f64("view_ns_per_op", view_ns)
        .finish(&mut json);

    Line::new("bench_summary")
        .str("id", "E17")
        .bool("quick", quick)
        .f64("peak_setups_per_sec", peak)
        .finish(&mut json);

    // cargo runs bench binaries with CWD = the package dir; anchor the
    // default output at the workspace target dir so CI finds it.
    let out_path = std::env::var("BENCH_E17_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/BENCH_E17.json").to_string()
    });
    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(&out_path, &json).expect("write BENCH_E17.json");
    println!();
    println!("# wrote {out_path}");

    // Perf-regression gate: compare peak closed-loop setups/sec
    // against the committed baseline, if one is configured.
    match std::env::var("BENCH_E17_BASELINE") {
        Ok(path) => match baseline_peak(&path) {
            Some(base) => {
                let floor = base * (1.0 - pct / 100.0);
                println!(
                    "# baseline peak {base:.0} setups/s ({path}); floor {floor:.0}, measured {peak:.0}"
                );
                if peak < floor {
                    eprintln!(
                        "E17 REGRESSION: peak {peak:.0} setups/s is more than {pct}% below \
                         baseline {base:.0} ({path})"
                    );
                    std::process::exit(1);
                }
            }
            None => {
                eprintln!("E17: baseline {path} missing or unparsable; failing the gate");
                std::process::exit(1);
            }
        },
        Err(_) => println!("# no BENCH_E17_BASELINE set; regression gate skipped"),
    }

    // Shape: closed-loop capacity should not collapse as N grows —
    // the event loop serializes the work, so wall throughput stays
    // within a band while per-setup latency grows with N.
    let first = closed.front().expect("at least one closed config");
    let last = closed.back().expect("at least one closed config");
    assert!(
        last.p99_us >= first.p99_us * 0.5,
        "latency shrank implausibly as N grew"
    );
}
