//! E19 — consistent updates: epoch-versioned two-phase fabric rewrite
//! vs naive burst.
//!
//! The Reitblatt per-packet-consistency question: a fat-tree fabric is
//! rewritten while 16 hosts stream cross-pod UDP at 200 pps each. The
//! rewrite is triggered by an agg–core link returning to service — an
//! event whose old and new programs are *both* valid, so any disruption
//! is pure update mechanics. Two configurations:
//!
//! * **naive burst** (`Relaxed`) — every switch gets delete-then-
//!   reinstall mods in one burst; 8 ms control jitter makes them apply
//!   at unpredictable relative times, so packets cross mixed old/new
//!   state: up–down loops between aggregation and core (caught by
//!   `DecTtl`) and table-miss black holes inside each switch's
//!   delete/reinstall gap.
//! * **two-phase** (`PerPacket`) — the update planner stages epoch-
//!   tagged internal rules everywhere, flips the edge stamp only after
//!   every staging ack, and retires the old epoch after a drain wave.
//!   Every packet sees one coherent configuration: zero loops, zero
//!   losses.
//!
//! Loops are counted from the flight recorder: a data packet whose
//! trace matches at the same datapath twice has revisited a switch.
//! The regression gate is the two-phase rewrite's staging→commit time
//! in *simulated* milliseconds (deterministic for a fixed seed): CI
//! fails if it grows more than 20% over `ci/BENCH_E19.baseline.json`.
//! `BENCH_E19_QUICK=1` shrinks the stream for smoke lanes; output goes
//! to `BENCH_E19_OUT` (default `target/BENCH_E19.json`).

use std::collections::BTreeMap;

use zen_core::apps::proactive::FABRIC_MAC;
use zen_core::apps::ProactiveFabric;
use zen_core::harness::default_host_ip;
use zen_core::{build_fabric, build_fabric_with_hosts, Controller, FabricOptions};
use zen_sim::{Duration, Host, Instant, LinkParams, Topology, Workload, World};
use zen_telemetry::json::Line;
use zen_telemetry::TraceEvent;

/// Fixed seed: every run is a pure function of it.
const SEED: u64 = 0xE19_0001;

/// Per-host stream rate (200 pps x 16 hosts).
const PROBE_INTERVAL: Duration = Duration::from_millis(5);
/// Control-channel jitter: the window over which a naive burst's mods
/// land out of order across switches.
const JITTER: Duration = Duration::from_millis(8);

struct Outcome {
    two_phase: bool,
    sent: u64,
    delivered: u64,
    /// Packets that revisited a datapath during the rewrite window.
    loop_packets: u64,
    /// Total extra datapath visits across looping packets.
    loop_hops: u64,
    /// Data packets punted to the controller (table-miss black holes).
    data_punts: u64,
    rules_pushed: u64,
    flow_mods: u64,
    group_mods: u64,
    txns_committed: u64,
    txns_aborted: u64,
    config_epoch: u64,
    /// Staging→commit of the rewrite epoch, simulated ms (two-phase
    /// only; 0.0 for naive).
    commit_ms: f64,
}

impl Outcome {
    fn lost(&self) -> u64 {
        self.sent - self.delivered.min(self.sent)
    }

    fn json(&self, out: &mut String) {
        Line::new("bench")
            .str("id", "E19")
            .str("mode", if self.two_phase { "two_phase" } else { "naive" })
            .u64("sent", self.sent)
            .u64("delivered", self.delivered)
            .u64("lost", self.lost())
            .u64("loop_packets", self.loop_packets)
            .u64("loop_hops", self.loop_hops)
            .u64("data_punts", self.data_punts)
            .u64("rules_pushed", self.rules_pushed)
            .u64("flow_mods", self.flow_mods)
            .u64("group_mods", self.group_mods)
            .u64("txns_committed", self.txns_committed)
            .u64("txns_aborted", self.txns_aborted)
            .u64("config_epoch", self.config_epoch)
            .f64("commit_ms", self.commit_ms)
            .finish(out);
    }
}

/// One run: fat-tree under cross-pod load, one agg–core link cut before
/// traffic starts and restored mid-stream, triggering the rewrite under
/// test. The flight recorder is enabled only around the rewrite.
fn run(two_phase: bool, quick: bool) -> Outcome {
    let topo = Topology::fat_tree(4, LinkParams::default());
    let n_hosts = topo.host_count();
    let count: u64 = if quick { 300 } else { 600 };
    let restore_ms: u64 = if quick { 2_000 } else { 2_500 };
    let end = Instant::from_millis(1_000 + 5 * count + 1_000);

    let inventory = {
        let mut scratch = World::new(SEED);
        build_fabric(&mut scratch, &topo, vec![], FabricOptions::default()).static_hosts()
    };
    let mut app = ProactiveFabric::new(inventory, topo.switches, 2 * topo.links.len());
    // TTL so mixed-state forwarding loops terminate (and are countable
    // as losses) instead of circulating until the straggler mod lands.
    app.dec_ttl = true;
    if two_phase {
        app = app.per_packet();
    }

    let mut world = World::new(SEED);
    let fabric = build_fabric_with_hosts(
        &mut world,
        &topo,
        vec![Box::new(app)],
        FabricOptions::default(),
        |i, mac, ip| {
            // Cross-pod pairs: +8 of 16 is always two pods away.
            let dst = default_host_ip((i + n_hosts / 2) % n_hosts);
            Host::new(mac, ip)
                .with_static_arp(dst, FABRIC_MAC)
                .with_workload(Workload::Udp {
                    dst,
                    dst_port: 9,
                    size: 200,
                    count,
                    interval: PROBE_INTERVAL,
                    start: Instant::from_secs(1),
                })
        },
    );
    // Pod 0's agg0–core0 link: out of service before traffic starts,
    // back mid-stream. The restore is the measured rewrite — both the
    // pre- and post-restore programs deliver everything, so any loss or
    // loop is update mechanics, not topology.
    let flap = fabric.switch_links[4];
    world.schedule_link_state(flap, false, Instant::from_millis(500));
    world.schedule_link_state(flap, true, Instant::from_millis(restore_ms));

    // Control jitter only brackets the rewrite: the initial program and
    // the pre-traffic cut apply in order, so both modes enter the
    // measurement with a correct fabric, and the jittered window is
    // exactly the burst under test. The flight recorder covers the same
    // window plus the settling tail.
    world.run_until(Instant::from_millis(restore_ms - 100));
    world.recorder().set_enabled(true);
    world.run_until(Instant::from_millis(restore_ms - 50));
    world.set_control_jitter(JITTER);
    world.run_until(Instant::from_millis(restore_ms + 150));
    world.set_control_jitter(Duration::ZERO);
    world.run_until(Instant::from_millis(restore_ms + 600));
    world.recorder().set_enabled(false);
    world.run_until(end);

    // Loop detection: any trace matching twice at one datapath
    // revisited it. (Valid fat-tree paths never revisit a switch.)
    let mut visits: BTreeMap<u64, BTreeMap<u64, u64>> = BTreeMap::new();
    let mut phases: Vec<(u64, u64, &'static str)> = Vec::new();
    for r in world.recorder().records() {
        match r.event {
            TraceEvent::DpMatch { dpid, .. } => {
                *visits
                    .entry(r.trace.0)
                    .or_default()
                    .entry(dpid)
                    .or_default() += 1;
            }
            TraceEvent::EpochPhase { epoch, phase } => {
                phases.push((r.at_nanos, epoch, phase));
            }
            _ => {}
        }
    }
    let mut loop_packets = 0;
    let mut loop_hops = 0;
    for dpids in visits.values() {
        let extra: u64 = dpids.values().map(|&c| c.saturating_sub(1)).sum();
        if extra > 0 {
            loop_packets += 1;
            loop_hops += extra;
        }
    }
    // Staging→commit of the last epoch that fully committed in-window.
    let mut commit_ms = 0.0;
    for &(done, epoch, phase) in phases.iter().rev() {
        if phase != "committed" {
            continue;
        }
        if let Some(&(start, _, _)) = phases
            .iter()
            .find(|&&(_, e, p)| e == epoch && p == "staging")
        {
            commit_ms = (done - start) as f64 / 1e6;
            break;
        }
    }

    let sent: u64 = fabric
        .hosts
        .iter()
        .map(|&h| world.node_as::<Host>(h).stats.udp_tx)
        .sum();
    let delivered: u64 = fabric
        .hosts
        .iter()
        .map(|&h| world.node_as::<Host>(h).stats.udp_rx)
        .sum();
    let ctl = world.node_as::<Controller>(fabric.controller);
    let app = ctl
        .app(0)
        .as_any()
        .downcast_ref::<ProactiveFabric>()
        .expect("fabric app");
    Outcome {
        two_phase,
        sent,
        delivered,
        loop_packets,
        loop_hops,
        data_punts: ctl.stats.packet_ins.saturating_sub(n_hosts as u64),
        rules_pushed: app.rules_pushed,
        flow_mods: ctl.stats.flow_mods,
        group_mods: ctl.stats.group_mods,
        txns_committed: ctl.stats.txns_committed,
        txns_aborted: ctl.stats.txns_aborted,
        config_epoch: ctl.config_epoch(),
        commit_ms,
    }
}

/// Pull `"twophase_commit_ms":<num>` out of the committed baseline by
/// hand (the workspace is serde-free on principle).
fn baseline_commit_ms(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let line = text
        .lines()
        .find(|l| l.contains("\"type\":\"bench_summary\"") && l.contains("\"id\":\"E19\""))?;
    let key = "\"twophase_commit_ms\":";
    let at = line.find(key)? + key.len();
    let rest = &line[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn main() {
    let quick = std::env::var("BENCH_E19_QUICK").is_ok_and(|v| v == "1");
    let pct: f64 = std::env::var("BENCH_E19_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20.0);
    let mut json = String::new();

    println!("# E19 — consistent updates: two-phase epoch rewrite vs naive burst");
    println!(
        "# fat-tree(4), 16 hosts @ 200 pps cross-pod, agg-core link restored mid-stream{}",
        if quick { " [quick]" } else { "" }
    );
    println!();
    println!(
        "{:>10} {:>7} {:>9} {:>6} {:>7} {:>9} {:>7} {:>7} {:>7} {:>7} {:>10}",
        "mode",
        "sent",
        "delivered",
        "lost",
        "loops",
        "loop_hops",
        "punts",
        "rules",
        "fmods",
        "epoch",
        "commit_ms"
    );
    let mut outcomes = Vec::new();
    for two_phase in [false, true] {
        let out = run(two_phase, quick);
        println!(
            "{:>10} {:>7} {:>9} {:>6} {:>7} {:>9} {:>7} {:>7} {:>7} {:>7} {:>10.2}",
            if out.two_phase { "two-phase" } else { "naive" },
            out.sent,
            out.delivered,
            out.lost(),
            out.loop_packets,
            out.loop_hops,
            out.data_punts,
            out.rules_pushed,
            out.flow_mods,
            out.config_epoch,
            out.commit_ms,
        );
        out.json(&mut json);
        outcomes.push(out);
    }
    let naive = &outcomes[0];
    let tp = &outcomes[1];

    // The headline: two-phase is hitless and loop-free; the naive burst
    // demonstrably is neither, on the same seed.
    assert_eq!(tp.lost(), 0, "two-phase dropped packets: {}", tp.lost());
    assert_eq!(tp.loop_packets, 0, "two-phase looped packets");
    assert_eq!(tp.txns_aborted, 0, "two-phase txn aborted");
    assert!(tp.txns_committed >= 3, "rewrites never committed");
    assert!(tp.commit_ms > 0.0, "rewrite epoch not observed in-window");
    assert!(
        naive.lost() > 0 || naive.loop_packets > 0,
        "naive burst showed no disruption; the comparison is vacuous"
    );
    // Rule overhead of epoch versioning: two rules per destination
    // (internal + edge) instead of one, bounded at ~2.5x.
    assert!(
        tp.rules_pushed <= 3 * naive.rules_pushed,
        "epoch rule overhead blew up: {} vs {}",
        tp.rules_pushed,
        naive.rules_pushed
    );
    println!();
    println!(
        "# naive: {} lost, {} loop packets ({} extra hops), {} black-hole punts",
        naive.lost(),
        naive.loop_packets,
        naive.loop_hops,
        naive.data_punts
    );
    println!(
        "# two-phase: {} lost, {} loop packets; rewrite committed in {:.2} ms (sim), {:.2}x rules",
        tp.lost(),
        tp.loop_packets,
        tp.commit_ms,
        tp.rules_pushed as f64 / naive.rules_pushed.max(1) as f64,
    );

    Line::new("bench_summary")
        .str("id", "E19")
        .bool("quick", quick)
        .f64("twophase_commit_ms", tp.commit_ms)
        .u64("twophase_lost", tp.lost())
        .u64("twophase_loop_packets", tp.loop_packets)
        .u64("naive_lost", naive.lost())
        .u64("naive_loop_packets", naive.loop_packets)
        .f64(
            "rule_overhead",
            tp.rules_pushed as f64 / naive.rules_pushed.max(1) as f64,
        )
        .finish(&mut json);

    // cargo runs bench binaries with CWD = the package dir; anchor the
    // default output at the workspace target dir so CI finds it.
    let out_path = std::env::var("BENCH_E19_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/BENCH_E19.json").to_string()
    });
    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(&out_path, &json).expect("write BENCH_E19.json");
    println!();
    println!("# wrote {out_path}");

    // Perf-regression gate: the two-phase rewrite's simulated commit
    // latency against the committed baseline, if one is configured.
    match std::env::var("BENCH_E19_BASELINE") {
        Ok(path) => match baseline_commit_ms(&path) {
            Some(base) => {
                let ceiling = base * (1.0 + pct / 100.0);
                let measured = tp.commit_ms;
                println!(
                    "# baseline {base:.2} ms ({path}); ceiling {ceiling:.2}, measured {measured:.2}"
                );
                if measured > ceiling {
                    eprintln!(
                        "E19 REGRESSION: two-phase rewrite commit {measured:.2} ms is more than \
                         {pct}% above baseline {base:.2} ms ({path})"
                    );
                    std::process::exit(1);
                }
            }
            None => {
                eprintln!("E19: baseline {path} missing or unparsable; failing the gate");
                std::process::exit(1);
            }
        },
        Err(_) => println!("# no BENCH_E19_BASELINE set; regression gate skipped"),
    }
}
