//! E10 — proactive vs. reactive rule installation.
//!
//! The classic control-plane design trade-off: install everything up
//! front (state scales with hosts × switches, controller idle at
//! runtime) or on demand (state scales with active flows, every new
//! flow pays a controller round trip). Both run the same workload on
//! the same leaf–spine fabric; reported: control messages, flow
//! entries, packet-ins, delivery, and worst first-packet latency.

use zen_core::apps::proactive::FABRIC_MAC;
use zen_core::apps::{ProactiveFabric, ReactiveForwarding};
use zen_core::harness::{build_fabric, build_fabric_with_hosts, default_host_ip, FabricOptions};
use zen_core::{Controller, SwitchAgent};
use zen_sim::{Duration, Host, Instant, LinkParams, Topology, Workload, World};

struct Outcome {
    ctl_msgs_sent: u64,
    packet_ins: u64,
    flow_entries: usize,
    delivered: u64,
    expected: u64,
    worst_first_us: f64,
}

fn workload(i: usize, active_peers: usize, n: usize) -> Vec<Workload> {
    // Each host talks to `active_peers` following hosts.
    (1..=active_peers)
        .map(|d| Workload::Udp {
            dst: default_host_ip((i + d) % n),
            dst_port: 9,
            size: 200,
            count: 30,
            interval: Duration::from_millis(3),
            start: Instant::from_millis(1000 + (d as u64 * 13) % 40),
        })
        .collect()
}

fn run(proactive: bool, active_peers: usize) -> Outcome {
    let topo = Topology::leaf_spine(4, 2, 3, LinkParams::default());
    let n = topo.host_count();
    let expected_links = 2 * topo.links.len();
    let inventory = {
        let mut scratch = World::new(8);
        build_fabric(&mut scratch, &topo, vec![], FabricOptions::default()).static_hosts()
    };
    let mut world = World::new(8);
    let app: Box<dyn zen_core::App> = if proactive {
        Box::new(ProactiveFabric::new(
            inventory,
            topo.switches,
            expected_links,
        ))
    } else {
        Box::new(ReactiveForwarding::new())
    };
    let fabric = build_fabric_with_hosts(
        &mut world,
        &topo,
        vec![app],
        FabricOptions::default(),
        |i, mac, ip| {
            let mut host = Host::new(mac, ip);
            if proactive {
                for d in 0..n {
                    if d != i {
                        host = host.with_static_arp(default_host_ip(d), FABRIC_MAC);
                    }
                }
            } else {
                host = host.with_gratuitous_arp();
            }
            for w in workload(i, active_peers, n) {
                host = host.with_workload(w);
            }
            host
        },
    );
    world.run_until(Instant::from_secs(3));

    let mut delivered = 0u64;
    let mut worst_first = 0f64;
    for &h in &fabric.hosts {
        let host = world.node_as::<Host>(h);
        delivered += host.stats.udp_rx;
        if let Some(&first) = host.stats.udp_latency.samples().first() {
            worst_first = worst_first.max(first);
        }
    }
    let flow_entries: usize = fabric
        .switches
        .iter()
        .map(|&sw| world.node_as::<SwitchAgent>(sw).dp.flow_count())
        .sum();
    let controller = world.node_as::<Controller>(fabric.controller);
    Outcome {
        ctl_msgs_sent: controller.stats.msgs_sent,
        packet_ins: controller.stats.packet_ins,
        flow_entries,
        delivered,
        expected: (n * active_peers * 30) as u64,
        worst_first_us: worst_first * 1e6,
    }
}

fn main() {
    println!("# E10 — proactive vs reactive installation (leaf-spine 4x2, 12 hosts)");
    println!("# each host sends 30 datagrams to each of P peers");
    println!();
    println!(
        "{:>11} {:>3} {:>11} {:>11} {:>8} {:>14} {:>14}",
        "mode", "P", "ctl-msgs", "pkt-ins", "flows", "delivered", "first-pkt(us)"
    );
    for &peers in &[1usize, 3, 6] {
        for &proactive in &[true, false] {
            let o = run(proactive, peers);
            println!(
                "{:>11} {:>3} {:>11} {:>11} {:>8} {:>9}/{:<5} {:>13.0}",
                if proactive { "proactive" } else { "reactive" },
                peers,
                o.ctl_msgs_sent,
                o.packet_ins,
                o.flow_entries,
                o.delivered,
                o.expected,
                o.worst_first_us
            );
        }
    }
    println!();
    println!("# Shape check: proactive state is constant in P with near-zero");
    println!("# packet-ins and flat first-packet latency; reactive state and");
    println!("# control traffic grow with P and first packets pay the RTT.");
}
