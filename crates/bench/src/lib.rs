//! # zen-bench — benchmarks and experiment harnesses
//!
//! Criterion micro-benchmarks (E1–E4, E6) and printed-table experiment
//! harnesses (E5, E7–E10) per the experiment index in `DESIGN.md`.
//! `cargo bench --workspace` regenerates everything; results are
//! recorded in `EXPERIMENTS.md`.

/// Shared helpers for the experiment harnesses.
pub mod util {
    /// Print a table row with fixed-width columns.
    pub fn row(cells: &[String], widths: &[usize]) -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    }
}
