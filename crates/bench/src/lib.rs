//! # zen-bench — benchmarks and experiment harnesses
//!
//! Micro-benchmarks (E1–E4, E6) and printed-table experiment harnesses
//! (E5, E7–E10) per the experiment index in `DESIGN.md`. All benches run
//! on the in-tree [`harness`] — the workspace builds hermetically with
//! no external crates. `cargo bench --workspace` regenerates everything;
//! results are recorded in `EXPERIMENTS.md`.

/// A minimal micro-benchmark harness: calibrated batch timing with
/// median-of-samples reporting, in the spirit of criterion but ~100
/// lines and dependency-free.
pub mod harness {
    use std::time::{Duration, Instant};

    /// How to report a per-iteration rate alongside the raw time.
    #[derive(Debug, Clone, Copy)]
    pub enum Throughput {
        /// Each iteration processes this many logical elements.
        Elements(u64),
        /// Each iteration processes this many bytes.
        Bytes(u64),
    }

    /// A named group of benchmarks sharing sampling parameters.
    ///
    /// ```no_run
    /// use zen_bench::harness::Bench;
    /// let mut g = Bench::group("E1/flow_table_lookup");
    /// g.run("exact/100", || 2 + 2);
    /// ```
    pub struct Bench {
        group: String,
        samples: usize,
        warm_up: Duration,
        measure: Duration,
        throughput: Option<Throughput>,
    }

    impl Bench {
        /// A group named `group` with default sampling (10 samples,
        /// 200 ms warm-up, 1 s measurement).
        pub fn group(group: &str) -> Bench {
            Bench {
                group: group.to_string(),
                samples: 10,
                warm_up: Duration::from_millis(200),
                measure: Duration::from_secs(1),
                throughput: None,
            }
        }

        /// Set the number of timed samples per benchmark.
        pub fn samples(mut self, n: usize) -> Bench {
            self.samples = n.max(1);
            self
        }

        /// Set the warm-up duration before sampling starts.
        pub fn warm_up(mut self, d: Duration) -> Bench {
            self.warm_up = d;
            self
        }

        /// Set the total measurement budget across all samples.
        pub fn measurement(mut self, d: Duration) -> Bench {
            self.measure = d;
            self
        }

        /// Report a derived rate with each result (sticky until changed).
        pub fn throughput(&mut self, t: Throughput) -> &mut Bench {
            self.throughput = Some(t);
            self
        }

        /// Time `f`, print one result line, and return the median
        /// nanoseconds per iteration.
        pub fn run<R>(&mut self, name: &str, mut f: impl FnMut() -> R) -> f64 {
            // Calibrate: double the batch size until one batch costs at
            // least ~1/50 of the measurement budget, so timer overhead
            // is negligible relative to the work.
            let floor = (self.measure.as_nanos() / 50).max(1) as u64;
            let mut batch = 1u64;
            loop {
                let t0 = Instant::now();
                for _ in 0..batch {
                    std::hint::black_box(f());
                }
                let spent = t0.elapsed().as_nanos() as u64;
                if spent >= floor || batch >= 1 << 30 {
                    break;
                }
                // Jump straight to the target once we have a rate estimate.
                batch = match (batch * floor).checked_div(spent) {
                    Some(target) => (target + 1).clamp(batch + 1, batch * 32),
                    None => batch * 2,
                };
            }

            let warm_until = Instant::now() + self.warm_up;
            while Instant::now() < warm_until {
                for _ in 0..batch {
                    std::hint::black_box(f());
                }
            }

            let mut per_iter: Vec<f64> = (0..self.samples)
                .map(|_| {
                    let t0 = Instant::now();
                    for _ in 0..batch {
                        std::hint::black_box(f());
                    }
                    t0.elapsed().as_nanos() as f64 / batch as f64
                })
                .collect();
            per_iter.sort_by(|a, b| a.total_cmp(b));
            let median = per_iter[per_iter.len() / 2];

            let rate = match self.throughput {
                Some(Throughput::Elements(n)) => {
                    format!("  thrpt: {}/s", si(n as f64 / (median * 1e-9)))
                }
                Some(Throughput::Bytes(n)) => {
                    format!("  thrpt: {}B/s", si(n as f64 / (median * 1e-9)))
                }
                None => String::new(),
            };
            println!(
                "{}/{:<32} time: {:>12}/iter{}",
                self.group,
                name,
                format!("{}s", si(median * 1e-9)),
                rate
            );
            median
        }
    }

    /// Format `v` with an SI magnitude prefix (`12.3 M`, `456 n`, …).
    fn si(v: f64) -> String {
        const UNITS: [(f64, &str); 7] = [
            (1e9, " G"),
            (1e6, " M"),
            (1e3, " k"),
            (1.0, " "),
            (1e-3, " m"),
            (1e-6, " µ"),
            (1e-9, " n"),
        ];
        for (scale, unit) in UNITS {
            if v >= scale {
                return format!("{:.2}{}", v / scale, unit);
            }
        }
        format!("{v:.2} ")
    }
}

/// Shared helpers for the experiment harnesses.
pub mod util {
    /// Print a table row with fixed-width columns.
    pub fn row(cells: &[String], widths: &[usize]) -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    }
}
