//! The Address Resolution Protocol (RFC 826), Ethernet/IPv4 flavour.

use crate::address::{EthernetAddress, Ipv4Address};
use crate::{get_u16, set_u16, Error, Result};

/// An ARP operation code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operation {
    /// Who-has request (1).
    Request,
    /// Is-at reply (2).
    Reply,
}

impl TryFrom<u16> for Operation {
    type Error = Error;

    fn try_from(value: u16) -> Result<Operation> {
        match value {
            1 => Ok(Operation::Request),
            2 => Ok(Operation::Reply),
            _ => Err(Error::Unrecognized),
        }
    }
}

impl From<Operation> for u16 {
    fn from(op: Operation) -> u16 {
        match op {
            Operation::Request => 1,
            Operation::Reply => 2,
        }
    }
}

mod field {
    use core::ops::Range;

    pub const HTYPE: Range<usize> = 0..2;
    pub const PTYPE: Range<usize> = 2..4;
    pub const HLEN: usize = 4;
    pub const PLEN: usize = 5;
    pub const OPER: Range<usize> = 6..8;
    pub const SHA: Range<usize> = 8..14;
    pub const SPA: Range<usize> = 14..18;
    pub const THA: Range<usize> = 18..24;
    pub const TPA: Range<usize> = 24..28;
}

/// The length of an Ethernet/IPv4 ARP packet.
pub const PACKET_LEN: usize = field::TPA.end;

/// A read/write view of an ARP packet.
#[derive(Debug, Clone)]
pub struct Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Packet<T> {
    /// Wrap a buffer without checking its length.
    pub const fn new_unchecked(buffer: T) -> Packet<T> {
        Packet { buffer }
    }

    /// Wrap a buffer, ensuring it is long enough.
    pub fn new_checked(buffer: T) -> Result<Packet<T>> {
        let packet = Packet::new_unchecked(buffer);
        packet.check_len()?;
        Ok(packet)
    }

    /// Validate buffer length.
    pub fn check_len(&self) -> Result<()> {
        if self.buffer.as_ref().len() < PACKET_LEN {
            Err(Error::Truncated)
        } else {
            Ok(())
        }
    }

    /// Unwrap the view.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Hardware type (1 = Ethernet).
    pub fn hardware_type(&self) -> u16 {
        get_u16(self.buffer.as_ref(), field::HTYPE.start)
    }

    /// Protocol type (0x0800 = IPv4).
    pub fn protocol_type(&self) -> u16 {
        get_u16(self.buffer.as_ref(), field::PTYPE.start)
    }

    /// Hardware address length.
    pub fn hardware_len(&self) -> u8 {
        self.buffer.as_ref()[field::HLEN]
    }

    /// Protocol address length.
    pub fn protocol_len(&self) -> u8 {
        self.buffer.as_ref()[field::PLEN]
    }

    /// Raw operation code.
    pub fn operation_raw(&self) -> u16 {
        get_u16(self.buffer.as_ref(), field::OPER.start)
    }

    /// Sender hardware address.
    pub fn sender_hardware_addr(&self) -> EthernetAddress {
        EthernetAddress::from_bytes(&self.buffer.as_ref()[field::SHA])
    }

    /// Sender protocol address.
    pub fn sender_protocol_addr(&self) -> Ipv4Address {
        Ipv4Address::from_bytes(&self.buffer.as_ref()[field::SPA])
    }

    /// Target hardware address.
    pub fn target_hardware_addr(&self) -> EthernetAddress {
        EthernetAddress::from_bytes(&self.buffer.as_ref()[field::THA])
    }

    /// Target protocol address.
    pub fn target_protocol_addr(&self) -> Ipv4Address {
        Ipv4Address::from_bytes(&self.buffer.as_ref()[field::TPA])
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Packet<T> {
    /// Set the hardware type.
    pub fn set_hardware_type(&mut self, value: u16) {
        set_u16(self.buffer.as_mut(), field::HTYPE.start, value);
    }

    /// Set the protocol type.
    pub fn set_protocol_type(&mut self, value: u16) {
        set_u16(self.buffer.as_mut(), field::PTYPE.start, value);
    }

    /// Set the hardware address length.
    pub fn set_hardware_len(&mut self, value: u8) {
        self.buffer.as_mut()[field::HLEN] = value;
    }

    /// Set the protocol address length.
    pub fn set_protocol_len(&mut self, value: u8) {
        self.buffer.as_mut()[field::PLEN] = value;
    }

    /// Set the operation code.
    pub fn set_operation(&mut self, value: Operation) {
        set_u16(self.buffer.as_mut(), field::OPER.start, value.into());
    }

    /// Set the sender hardware address.
    pub fn set_sender_hardware_addr(&mut self, value: EthernetAddress) {
        self.buffer.as_mut()[field::SHA].copy_from_slice(value.as_bytes());
    }

    /// Set the sender protocol address.
    pub fn set_sender_protocol_addr(&mut self, value: Ipv4Address) {
        self.buffer.as_mut()[field::SPA].copy_from_slice(value.as_bytes());
    }

    /// Set the target hardware address.
    pub fn set_target_hardware_addr(&mut self, value: EthernetAddress) {
        self.buffer.as_mut()[field::THA].copy_from_slice(value.as_bytes());
    }

    /// Set the target protocol address.
    pub fn set_target_protocol_addr(&mut self, value: Ipv4Address) {
        self.buffer.as_mut()[field::TPA].copy_from_slice(value.as_bytes());
    }
}

/// A high-level representation of an Ethernet/IPv4 ARP packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repr {
    /// Operation: request or reply.
    pub operation: Operation,
    /// Sender MAC address.
    pub sender_hardware_addr: EthernetAddress,
    /// Sender IPv4 address.
    pub sender_protocol_addr: Ipv4Address,
    /// Target MAC address (zero in requests).
    pub target_hardware_addr: EthernetAddress,
    /// Target IPv4 address.
    pub target_protocol_addr: Ipv4Address,
}

impl Repr {
    /// Build a who-has request for `target` from (`sender_mac`, `sender_ip`).
    pub fn request(
        sender_hardware_addr: EthernetAddress,
        sender_protocol_addr: Ipv4Address,
        target_protocol_addr: Ipv4Address,
    ) -> Repr {
        Repr {
            operation: Operation::Request,
            sender_hardware_addr,
            sender_protocol_addr,
            target_hardware_addr: EthernetAddress::ZERO,
            target_protocol_addr,
        }
    }

    /// Build the reply to `request` announcing `our_hardware_addr`.
    pub fn reply_to(&self, our_hardware_addr: EthernetAddress) -> Repr {
        Repr {
            operation: Operation::Reply,
            sender_hardware_addr: our_hardware_addr,
            sender_protocol_addr: self.target_protocol_addr,
            target_hardware_addr: self.sender_hardware_addr,
            target_protocol_addr: self.sender_protocol_addr,
        }
    }

    /// Parse a packet view, validating the fixed Ethernet/IPv4 fields.
    pub fn parse<T: AsRef<[u8]>>(packet: &Packet<T>) -> Result<Repr> {
        packet.check_len()?;
        if packet.hardware_type() != 1
            || packet.protocol_type() != 0x0800
            || packet.hardware_len() != 6
            || packet.protocol_len() != 4
        {
            return Err(Error::Malformed);
        }
        Ok(Repr {
            operation: Operation::try_from(packet.operation_raw())?,
            sender_hardware_addr: packet.sender_hardware_addr(),
            sender_protocol_addr: packet.sender_protocol_addr(),
            target_hardware_addr: packet.target_hardware_addr(),
            target_protocol_addr: packet.target_protocol_addr(),
        })
    }

    /// The emitted packet length.
    pub const fn buffer_len(&self) -> usize {
        PACKET_LEN
    }

    /// Write this packet into `packet`.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, packet: &mut Packet<T>) {
        packet.set_hardware_type(1);
        packet.set_protocol_type(0x0800);
        packet.set_hardware_len(6);
        packet.set_protocol_len(4);
        packet.set_operation(self.operation);
        packet.set_sender_hardware_addr(self.sender_hardware_addr);
        packet.set_sender_protocol_addr(self.sender_protocol_addr);
        packet.set_target_hardware_addr(self.target_hardware_addr);
        packet.set_target_protocol_addr(self.target_protocol_addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Repr {
        Repr::request(
            EthernetAddress::from_id(1),
            Ipv4Address::new(10, 0, 0, 1),
            Ipv4Address::new(10, 0, 0, 2),
        )
    }

    #[test]
    fn emit_parse_roundtrip() {
        let repr = sample();
        let mut buf = vec![0u8; repr.buffer_len()];
        repr.emit(&mut Packet::new_unchecked(&mut buf[..]));
        let parsed = Repr::parse(&Packet::new_checked(&buf[..]).unwrap()).unwrap();
        assert_eq!(parsed, repr);
    }

    #[test]
    fn reply_construction() {
        let req = sample();
        let our_mac = EthernetAddress::from_id(2);
        let reply = req.reply_to(our_mac);
        assert_eq!(reply.operation, Operation::Reply);
        assert_eq!(reply.sender_hardware_addr, our_mac);
        assert_eq!(reply.sender_protocol_addr, req.target_protocol_addr);
        assert_eq!(reply.target_hardware_addr, req.sender_hardware_addr);
        assert_eq!(reply.target_protocol_addr, req.sender_protocol_addr);
    }

    #[test]
    fn reject_truncated() {
        let buf = [0u8; PACKET_LEN - 1];
        assert_eq!(Packet::new_checked(&buf[..]).unwrap_err(), Error::Truncated);
    }

    #[test]
    fn reject_wrong_hardware() {
        let repr = sample();
        let mut buf = vec![0u8; repr.buffer_len()];
        let mut packet = Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut packet);
        packet.set_hardware_type(6);
        assert_eq!(
            Repr::parse(&Packet::new_checked(&buf[..]).unwrap()).unwrap_err(),
            Error::Malformed
        );
    }

    #[test]
    fn reject_unknown_operation() {
        let repr = sample();
        let mut buf = vec![0u8; repr.buffer_len()];
        let mut packet = Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut packet);
        set_u16(packet.buffer, field::OPER.start, 9);
        assert_eq!(
            Repr::parse(&Packet::new_checked(&buf[..]).unwrap()).unwrap_err(),
            Error::Unrecognized
        );
    }
}
