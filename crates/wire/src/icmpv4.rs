//! The Internet Control Message Protocol (RFC 792): echo, unreachable,
//! time-exceeded — the subset a router/host data plane needs.

use crate::{checksum, get_u16, set_u16, Error, Result};

/// An ICMPv4 message kind, as seen by the `zen` data plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Message {
    /// Echo reply (type 0).
    EchoReply {
        /// Echo identifier (matches request).
        ident: u16,
        /// Echo sequence number.
        seq: u16,
    },
    /// Destination unreachable (type 3) with the given code.
    DstUnreachable {
        /// RFC 792 code (0 net, 1 host, 3 port, ...).
        code: u8,
    },
    /// Echo request (type 8).
    EchoRequest {
        /// Echo identifier.
        ident: u16,
        /// Echo sequence number.
        seq: u16,
    },
    /// Time exceeded (type 11) with the given code.
    TimeExceeded {
        /// 0 = TTL exceeded in transit, 1 = reassembly timeout.
        code: u8,
    },
}

impl Message {
    /// The wire (type, code) pair.
    pub fn type_code(&self) -> (u8, u8) {
        match self {
            Message::EchoReply { .. } => (0, 0),
            Message::DstUnreachable { code } => (3, *code),
            Message::EchoRequest { .. } => (8, 0),
            Message::TimeExceeded { code } => (11, *code),
        }
    }
}

mod field {
    use core::ops::{Range, RangeFrom};

    pub const TYPE: usize = 0;
    pub const CODE: usize = 1;
    pub const CHECKSUM: Range<usize> = 2..4;
    pub const REST: Range<usize> = 4..8;
    pub const PAYLOAD: RangeFrom<usize> = 8..;
}

/// The length of an ICMPv4 header (type, code, checksum, rest-of-header).
pub const HEADER_LEN: usize = field::PAYLOAD.start;

/// A read/write view of an ICMPv4 packet.
#[derive(Debug, Clone)]
pub struct Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Packet<T> {
    /// Wrap a buffer without checking its length.
    pub const fn new_unchecked(buffer: T) -> Packet<T> {
        Packet { buffer }
    }

    /// Wrap a buffer, ensuring it is long enough.
    pub fn new_checked(buffer: T) -> Result<Packet<T>> {
        let packet = Packet::new_unchecked(buffer);
        packet.check_len()?;
        Ok(packet)
    }

    /// Validate buffer length.
    pub fn check_len(&self) -> Result<()> {
        if self.buffer.as_ref().len() < HEADER_LEN {
            Err(Error::Truncated)
        } else {
            Ok(())
        }
    }

    /// Unwrap the view.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Message type.
    pub fn msg_type(&self) -> u8 {
        self.buffer.as_ref()[field::TYPE]
    }

    /// Message code.
    pub fn msg_code(&self) -> u8 {
        self.buffer.as_ref()[field::CODE]
    }

    /// Checksum field.
    pub fn checksum(&self) -> u16 {
        get_u16(self.buffer.as_ref(), field::CHECKSUM.start)
    }

    /// First 16 bits of the rest-of-header (echo ident).
    pub fn echo_ident(&self) -> u16 {
        get_u16(self.buffer.as_ref(), field::REST.start)
    }

    /// Second 16 bits of the rest-of-header (echo sequence).
    pub fn echo_seq(&self) -> u16 {
        get_u16(self.buffer.as_ref(), field::REST.start + 2)
    }

    /// Data following the 8-byte header.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[field::PAYLOAD]
    }

    /// Verify the checksum over the whole buffer.
    pub fn verify_checksum(&self) -> bool {
        checksum::verify(self.buffer.as_ref())
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Packet<T> {
    /// Set the message type.
    pub fn set_msg_type(&mut self, value: u8) {
        self.buffer.as_mut()[field::TYPE] = value;
    }

    /// Set the message code.
    pub fn set_msg_code(&mut self, value: u8) {
        self.buffer.as_mut()[field::CODE] = value;
    }

    /// Set the checksum field.
    pub fn set_checksum(&mut self, value: u16) {
        set_u16(self.buffer.as_mut(), field::CHECKSUM.start, value);
    }

    /// Set the echo identifier.
    pub fn set_echo_ident(&mut self, value: u16) {
        set_u16(self.buffer.as_mut(), field::REST.start, value);
    }

    /// Set the echo sequence number.
    pub fn set_echo_seq(&mut self, value: u16) {
        set_u16(self.buffer.as_mut(), field::REST.start + 2, value);
    }

    /// Mutable access to the payload.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[field::PAYLOAD]
    }

    /// Recompute and store the checksum over the whole buffer.
    pub fn fill_checksum(&mut self) {
        self.set_checksum(0);
        let ck = checksum::checksum(self.buffer.as_ref());
        self.set_checksum(ck);
    }
}

/// A high-level representation of an ICMPv4 message with payload length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repr {
    /// The message kind and its parameters.
    pub message: Message,
    /// Length of the data following the 8-byte header.
    pub payload_len: usize,
}

impl Repr {
    /// Parse a packet view, validating the checksum.
    pub fn parse<T: AsRef<[u8]>>(packet: &Packet<T>) -> Result<Repr> {
        packet.check_len()?;
        if !packet.verify_checksum() {
            return Err(Error::Checksum);
        }
        let message = match (packet.msg_type(), packet.msg_code()) {
            (0, 0) => Message::EchoReply {
                ident: packet.echo_ident(),
                seq: packet.echo_seq(),
            },
            (3, code) => Message::DstUnreachable { code },
            (8, 0) => Message::EchoRequest {
                ident: packet.echo_ident(),
                seq: packet.echo_seq(),
            },
            (11, code) => Message::TimeExceeded { code },
            _ => return Err(Error::Unrecognized),
        };
        Ok(Repr {
            message,
            payload_len: packet.payload().len(),
        })
    }

    /// The emitted length.
    pub const fn buffer_len(&self) -> usize {
        HEADER_LEN + self.payload_len
    }

    /// Write the header into `packet` and fill the checksum. Write the
    /// payload first (the checksum covers it).
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, packet: &mut Packet<T>) {
        let (ty, code) = self.message.type_code();
        packet.set_msg_type(ty);
        packet.set_msg_code(code);
        match self.message {
            Message::EchoRequest { ident, seq } | Message::EchoReply { ident, seq } => {
                packet.set_echo_ident(ident);
                packet.set_echo_seq(seq);
            }
            _ => {
                packet.set_echo_ident(0);
                packet.set_echo_seq(0);
            }
        }
        packet.fill_checksum();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_roundtrip() {
        let repr = Repr {
            message: Message::EchoRequest {
                ident: 0x1234,
                seq: 7,
            },
            payload_len: 4,
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        let mut packet = Packet::new_unchecked(&mut buf[..]);
        packet.payload_mut().copy_from_slice(b"ping");
        repr.emit(&mut packet);

        let packet = Packet::new_checked(&buf[..]).unwrap();
        let parsed = Repr::parse(&packet).unwrap();
        assert_eq!(parsed, repr);
        assert_eq!(packet.payload(), b"ping");
    }

    #[test]
    fn corrupt_checksum_rejected() {
        let repr = Repr {
            message: Message::EchoReply { ident: 1, seq: 2 },
            payload_len: 0,
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        repr.emit(&mut Packet::new_unchecked(&mut buf[..]));
        buf[field::REST.start] ^= 0x01;
        assert_eq!(
            Repr::parse(&Packet::new_checked(&buf[..]).unwrap()).unwrap_err(),
            Error::Checksum
        );
    }

    #[test]
    fn unreachable_and_time_exceeded() {
        for message in [
            Message::DstUnreachable { code: 3 },
            Message::TimeExceeded { code: 0 },
        ] {
            let repr = Repr {
                message,
                payload_len: 28,
            };
            let mut buf = vec![0u8; repr.buffer_len()];
            repr.emit(&mut Packet::new_unchecked(&mut buf[..]));
            let parsed = Repr::parse(&Packet::new_checked(&buf[..]).unwrap()).unwrap();
            assert_eq!(parsed, repr);
        }
    }

    #[test]
    fn unknown_type_rejected() {
        let mut buf = [0u8; HEADER_LEN];
        let mut packet = Packet::new_unchecked(&mut buf[..]);
        packet.set_msg_type(42);
        packet.fill_checksum();
        assert_eq!(
            Repr::parse(&Packet::new_checked(&buf[..]).unwrap()).unwrap_err(),
            Error::Unrecognized
        );
    }

    #[test]
    fn reject_truncated() {
        assert!(Packet::new_checked(&[0u8; 7][..]).is_err());
    }
}
