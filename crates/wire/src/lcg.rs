//! A tiny deterministic LCG for randomized tests and benchmarks.
//!
//! The workspace builds with no external crates, so the property-style
//! tests and benchmark traffic generators share this generator instead of
//! `rand`/`proptest`. It is a 64-bit MMIX-constant linear congruential
//! generator with an output-mixing step; fast, seedable, and identical on
//! every platform. Not for cryptography or for the simulator core (which
//! carries its own `zen-sim` xoshiro generator).

/// A seeded linear congruential generator.
#[derive(Debug, Clone)]
pub struct Lcg {
    state: u64,
}

impl Lcg {
    /// A generator seeded with `seed`. Any seed is valid.
    pub fn new(seed: u64) -> Lcg {
        // Avoid the short-lived all-zero prefix by stepping once.
        let mut lcg = Lcg {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        };
        lcg.next_u64();
        lcg
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        // MMIX constants (Knuth), plus a xorshift-multiply output mix so
        // low bits are usable.
        self.state = self
            .state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        let mut z = self.state;
        z = (z ^ (z >> 32)).wrapping_mul(0xd6e8_feb8_6659_fd93);
        z ^ (z >> 32)
    }

    /// The next 32 pseudo-random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform value in `[0, bound)`; 0 when `bound` is 0.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift; bias is < 2^-32 for the small bounds tests use.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A uniform `usize` in `[0, bound)`.
    pub fn gen_index(&mut self, bound: usize) -> usize {
        self.gen_range(bound as u64) as usize
    }

    /// A Bernoulli trial that succeeds with probability `num / den`.
    pub fn gen_ratio(&mut self, num: u64, den: u64) -> bool {
        self.gen_range(den) < num
    }

    /// A uniformly random byte vector of length `len`.
    pub fn gen_bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.next_u64() as u8).collect()
    }

    /// A uniformly random element, or `None` on an empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_index(slice.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: Vec<u64> = (0..8)
            .map({
                let mut r = Lcg::new(1);
                move |_| r.next_u64()
            })
            .collect();
        let b: Vec<u64> = (0..8)
            .map({
                let mut r = Lcg::new(1);
                move |_| r.next_u64()
            })
            .collect();
        let c: Vec<u64> = (0..8)
            .map({
                let mut r = Lcg::new(2);
                move |_| r.next_u64()
            })
            .collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn range_bounds_hold_and_cover() {
        let mut rng = Lcg::new(7);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = rng.gen_index(8);
            assert!(v < 8);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(rng.gen_range(0), 0);
    }

    #[test]
    fn ratio_is_roughly_fair() {
        let mut rng = Lcg::new(3);
        let hits = (0..10_000).filter(|_| rng.gen_ratio(1, 4)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
    }
}
