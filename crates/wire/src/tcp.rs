//! The Transmission Control Protocol (RFC 793) — header view only.
//!
//! `zen` forwards TCP segments and matches on their ports and flags; it
//! does not implement a full TCP state machine (hosts in the simulator use
//! simpler flow generators). This module provides the header view, flags,
//! and checksum handling needed for forwarding, classification and header
//! rewriting.

use core::fmt;

use crate::address::Ipv4Address;
use crate::{checksum, get_u16, get_u32, set_u16, set_u32, Error, Result};

/// TCP header flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Flags {
    /// FIN: no more data from sender.
    pub fin: bool,
    /// SYN: synchronize sequence numbers.
    pub syn: bool,
    /// RST: reset the connection.
    pub rst: bool,
    /// PSH: push function.
    pub psh: bool,
    /// ACK: acknowledgment field significant.
    pub ack: bool,
    /// URG: urgent pointer significant.
    pub urg: bool,
}

impl Flags {
    /// Construct from the low byte of the flags field.
    pub fn from_byte(value: u8) -> Flags {
        Flags {
            fin: value & 0x01 != 0,
            syn: value & 0x02 != 0,
            rst: value & 0x04 != 0,
            psh: value & 0x08 != 0,
            ack: value & 0x10 != 0,
            urg: value & 0x20 != 0,
        }
    }

    /// Encode into the low byte of the flags field.
    pub fn to_byte(self) -> u8 {
        let mut value = 0;
        if self.fin {
            value |= 0x01;
        }
        if self.syn {
            value |= 0x02;
        }
        if self.rst {
            value |= 0x04;
        }
        if self.psh {
            value |= 0x08;
        }
        if self.ack {
            value |= 0x10;
        }
        if self.urg {
            value |= 0x20;
        }
        value
    }

    /// A bare SYN.
    pub const SYN: Flags = Flags {
        fin: false,
        syn: true,
        rst: false,
        psh: false,
        ack: false,
        urg: false,
    };

    /// A bare ACK.
    pub const ACK: Flags = Flags {
        fin: false,
        syn: false,
        rst: false,
        psh: false,
        ack: true,
        urg: false,
    };
}

impl fmt::Display for Flags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (set, ch) in [
            (self.syn, 'S'),
            (self.ack, 'A'),
            (self.fin, 'F'),
            (self.rst, 'R'),
            (self.psh, 'P'),
            (self.urg, 'U'),
        ] {
            if set {
                write!(f, "{ch}")?;
            }
        }
        Ok(())
    }
}

mod field {
    use core::ops::Range;

    pub const SRC_PORT: Range<usize> = 0..2;
    pub const DST_PORT: Range<usize> = 2..4;
    pub const SEQ: Range<usize> = 4..8;
    pub const ACK: Range<usize> = 8..12;
    pub const DATA_OFF: usize = 12;
    pub const FLAGS: usize = 13;
    pub const WINDOW: Range<usize> = 14..16;
    pub const CHECKSUM: Range<usize> = 16..18;
    pub const URGENT: Range<usize> = 18..20;
}

/// The length of a TCP header without options.
pub const HEADER_LEN: usize = 20;

/// A read/write view of a TCP segment.
#[derive(Debug, Clone)]
pub struct Segment<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Segment<T> {
    /// Wrap a buffer without checking its length.
    pub const fn new_unchecked(buffer: T) -> Segment<T> {
        Segment { buffer }
    }

    /// Wrap a buffer, validating the header and data-offset field.
    pub fn new_checked(buffer: T) -> Result<Segment<T>> {
        let segment = Segment::new_unchecked(buffer);
        segment.check_len()?;
        Ok(segment)
    }

    /// Validate the buffer against the data-offset field.
    pub fn check_len(&self) -> Result<()> {
        let data = self.buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        let header_len = usize::from(self.header_len());
        if header_len < HEADER_LEN {
            return Err(Error::Malformed);
        }
        if header_len > data.len() {
            return Err(Error::Truncated);
        }
        Ok(())
    }

    /// Unwrap the view.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        get_u16(self.buffer.as_ref(), field::SRC_PORT.start)
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        get_u16(self.buffer.as_ref(), field::DST_PORT.start)
    }

    /// Sequence number.
    pub fn seq_number(&self) -> u32 {
        get_u32(self.buffer.as_ref(), field::SEQ.start)
    }

    /// Acknowledgment number.
    pub fn ack_number(&self) -> u32 {
        get_u32(self.buffer.as_ref(), field::ACK.start)
    }

    /// Header length in bytes, decoded from the data-offset field.
    pub fn header_len(&self) -> u8 {
        (self.buffer.as_ref()[field::DATA_OFF] >> 4) * 4
    }

    /// Header flags.
    pub fn flags(&self) -> Flags {
        Flags::from_byte(self.buffer.as_ref()[field::FLAGS])
    }

    /// Receive window.
    pub fn window(&self) -> u16 {
        get_u16(self.buffer.as_ref(), field::WINDOW.start)
    }

    /// Checksum field.
    pub fn checksum(&self) -> u16 {
        get_u16(self.buffer.as_ref(), field::CHECKSUM.start)
    }

    /// The payload following the header (and options).
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[usize::from(self.header_len())..]
    }

    /// Verify the checksum with the IPv4 pseudo-header.
    pub fn verify_checksum(&self, src: Ipv4Address, dst: Ipv4Address) -> bool {
        checksum::pseudo_header_verify(src, dst, 6, self.buffer.as_ref())
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Segment<T> {
    /// Set the source port.
    pub fn set_src_port(&mut self, value: u16) {
        set_u16(self.buffer.as_mut(), field::SRC_PORT.start, value);
    }

    /// Set the destination port.
    pub fn set_dst_port(&mut self, value: u16) {
        set_u16(self.buffer.as_mut(), field::DST_PORT.start, value);
    }

    /// Set the sequence number.
    pub fn set_seq_number(&mut self, value: u32) {
        set_u32(self.buffer.as_mut(), field::SEQ.start, value);
    }

    /// Set the acknowledgment number.
    pub fn set_ack_number(&mut self, value: u32) {
        set_u32(self.buffer.as_mut(), field::ACK.start, value);
    }

    /// Set header length in bytes (multiple of 4).
    pub fn set_header_len(&mut self, value: u8) {
        self.buffer.as_mut()[field::DATA_OFF] = (value / 4) << 4;
    }

    /// Set the header flags.
    pub fn set_flags(&mut self, value: Flags) {
        self.buffer.as_mut()[field::FLAGS] = value.to_byte();
    }

    /// Set the receive window.
    pub fn set_window(&mut self, value: u16) {
        set_u16(self.buffer.as_mut(), field::WINDOW.start, value);
    }

    /// Set the checksum field.
    pub fn set_checksum(&mut self, value: u16) {
        set_u16(self.buffer.as_mut(), field::CHECKSUM.start, value);
    }

    /// Set the urgent pointer.
    pub fn set_urgent(&mut self, value: u16) {
        set_u16(self.buffer.as_mut(), field::URGENT.start, value);
    }

    /// Mutable access to the payload.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let header_len = usize::from(self.header_len());
        &mut self.buffer.as_mut()[header_len..]
    }

    /// Recompute and store the checksum with the IPv4 pseudo-header.
    pub fn fill_checksum(&mut self, src: Ipv4Address, dst: Ipv4Address) {
        self.set_checksum(0);
        let ck = checksum::pseudo_header_checksum(src, dst, 6, self.buffer.as_ref());
        self.set_checksum(ck);
    }
}

/// A high-level representation of a TCP header (no options).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq_number: u32,
    /// Acknowledgment number.
    pub ack_number: u32,
    /// Header flags.
    pub flags: Flags,
    /// Receive window.
    pub window: u16,
    /// Payload length in bytes.
    pub payload_len: usize,
}

impl Repr {
    /// Parse a segment view, validating the checksum.
    pub fn parse<T: AsRef<[u8]>>(
        segment: &Segment<T>,
        src: Ipv4Address,
        dst: Ipv4Address,
    ) -> Result<Repr> {
        segment.check_len()?;
        if !segment.verify_checksum(src, dst) {
            return Err(Error::Checksum);
        }
        Ok(Repr {
            src_port: segment.src_port(),
            dst_port: segment.dst_port(),
            seq_number: segment.seq_number(),
            ack_number: segment.ack_number(),
            flags: segment.flags(),
            window: segment.window(),
            payload_len: segment.payload().len(),
        })
    }

    /// The emitted length.
    pub const fn buffer_len(&self) -> usize {
        HEADER_LEN + self.payload_len
    }

    /// Write the header into `segment` and fill the checksum. Write the
    /// payload first (the checksum covers it).
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(
        &self,
        segment: &mut Segment<T>,
        src: Ipv4Address,
        dst: Ipv4Address,
    ) {
        segment.set_src_port(self.src_port);
        segment.set_dst_port(self.dst_port);
        segment.set_seq_number(self.seq_number);
        segment.set_ack_number(self.ack_number);
        segment.set_header_len(HEADER_LEN as u8);
        segment.set_flags(self.flags);
        segment.set_window(self.window);
        segment.set_urgent(0);
        segment.fill_checksum(src, dst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Address = Ipv4Address::new(10, 0, 0, 1);
    const DST: Ipv4Address = Ipv4Address::new(10, 0, 0, 2);

    fn sample() -> Repr {
        Repr {
            src_port: 50000,
            dst_port: 80,
            seq_number: 0x12345678,
            ack_number: 0x9abcdef0,
            flags: Flags::SYN,
            window: 65535,
            payload_len: 3,
        }
    }

    #[test]
    fn emit_parse_roundtrip() {
        let repr = sample();
        let mut buf = vec![0u8; repr.buffer_len()];
        let mut seg = Segment::new_unchecked(&mut buf[..]);
        seg.set_header_len(HEADER_LEN as u8);
        seg.payload_mut().copy_from_slice(b"get");
        repr.emit(&mut seg, SRC, DST);

        let seg = Segment::new_checked(&buf[..]).unwrap();
        assert_eq!(Repr::parse(&seg, SRC, DST).unwrap(), repr);
        assert_eq!(seg.payload(), b"get");
    }

    #[test]
    fn corrupt_payload_rejected() {
        let repr = sample();
        let mut buf = vec![0u8; repr.buffer_len()];
        let mut seg = Segment::new_unchecked(&mut buf[..]);
        seg.set_header_len(HEADER_LEN as u8);
        repr.emit(&mut seg, SRC, DST);
        let last = buf.len() - 1;
        buf[last] ^= 0xff;
        let seg = Segment::new_checked(&buf[..]).unwrap();
        assert_eq!(Repr::parse(&seg, SRC, DST).unwrap_err(), Error::Checksum);
    }

    #[test]
    fn flags_roundtrip() {
        for byte in 0..0x40u8 {
            assert_eq!(Flags::from_byte(byte).to_byte(), byte);
        }
    }

    #[test]
    fn flags_display() {
        let flags = Flags {
            syn: true,
            ack: true,
            ..Flags::default()
        };
        assert_eq!(flags.to_string(), "SA");
    }

    #[test]
    fn reject_bad_data_offset() {
        let mut buf = [0u8; HEADER_LEN];
        let mut seg = Segment::new_unchecked(&mut buf[..]);
        seg.set_header_len(16); // below minimum
        assert_eq!(
            Segment::new_checked(&buf[..]).unwrap_err(),
            Error::Malformed
        );

        let mut buf = [0u8; HEADER_LEN];
        let mut seg = Segment::new_unchecked(&mut buf[..]);
        seg.set_header_len(24); // past buffer
        assert_eq!(
            Segment::new_checked(&buf[..]).unwrap_err(),
            Error::Truncated
        );
    }
}
