//! The User Datagram Protocol (RFC 768).

use crate::address::Ipv4Address;
use crate::{checksum, get_u16, set_u16, Error, Result};

mod field {
    use core::ops::Range;

    pub const SRC_PORT: Range<usize> = 0..2;
    pub const DST_PORT: Range<usize> = 2..4;
    pub const LENGTH: Range<usize> = 4..6;
    pub const CHECKSUM: Range<usize> = 6..8;
}

/// The length of a UDP header.
pub const HEADER_LEN: usize = 8;

/// A read/write view of a UDP datagram.
#[derive(Debug, Clone)]
pub struct Datagram<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Datagram<T> {
    /// Wrap a buffer without checking its length.
    pub const fn new_unchecked(buffer: T) -> Datagram<T> {
        Datagram { buffer }
    }

    /// Wrap a buffer, validating the header and length field.
    pub fn new_checked(buffer: T) -> Result<Datagram<T>> {
        let datagram = Datagram::new_unchecked(buffer);
        datagram.check_len()?;
        Ok(datagram)
    }

    /// Validate the buffer against the length field.
    pub fn check_len(&self) -> Result<()> {
        let data = self.buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        let len = usize::from(self.len_field());
        if len < HEADER_LEN {
            return Err(Error::Malformed);
        }
        if len > data.len() {
            return Err(Error::Truncated);
        }
        Ok(())
    }

    /// Unwrap the view.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        get_u16(self.buffer.as_ref(), field::SRC_PORT.start)
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        get_u16(self.buffer.as_ref(), field::DST_PORT.start)
    }

    /// The length field (header plus payload).
    pub fn len_field(&self) -> u16 {
        get_u16(self.buffer.as_ref(), field::LENGTH.start)
    }

    /// The checksum field.
    pub fn checksum(&self) -> u16 {
        get_u16(self.buffer.as_ref(), field::CHECKSUM.start)
    }

    /// The payload, bounded by the length field.
    pub fn payload(&self) -> &[u8] {
        let len = usize::from(self.len_field());
        &self.buffer.as_ref()[HEADER_LEN..len]
    }

    /// Verify the checksum with the IPv4 pseudo-header. A zero checksum
    /// means "not computed" and is accepted per RFC 768.
    pub fn verify_checksum(&self, src: Ipv4Address, dst: Ipv4Address) -> bool {
        if self.checksum() == 0 {
            return true;
        }
        let len = usize::from(self.len_field());
        checksum::pseudo_header_verify(src, dst, 17, &self.buffer.as_ref()[..len])
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Datagram<T> {
    /// Set the source port.
    pub fn set_src_port(&mut self, value: u16) {
        set_u16(self.buffer.as_mut(), field::SRC_PORT.start, value);
    }

    /// Set the destination port.
    pub fn set_dst_port(&mut self, value: u16) {
        set_u16(self.buffer.as_mut(), field::DST_PORT.start, value);
    }

    /// Set the length field.
    pub fn set_len_field(&mut self, value: u16) {
        set_u16(self.buffer.as_mut(), field::LENGTH.start, value);
    }

    /// Set the checksum field.
    pub fn set_checksum(&mut self, value: u16) {
        set_u16(self.buffer.as_mut(), field::CHECKSUM.start, value);
    }

    /// Mutable access to the payload.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let len = usize::from(self.len_field());
        &mut self.buffer.as_mut()[HEADER_LEN..len]
    }

    /// Recompute and store the checksum with the IPv4 pseudo-header,
    /// mapping an all-zero result to `0xffff` per RFC 768.
    pub fn fill_checksum(&mut self, src: Ipv4Address, dst: Ipv4Address) {
        self.set_checksum(0);
        let len = usize::from(self.len_field());
        let ck = checksum::pseudo_header_checksum(src, dst, 17, &self.buffer.as_ref()[..len]);
        self.set_checksum(if ck == 0 { 0xffff } else { ck });
    }
}

/// A high-level representation of a UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Payload length in bytes.
    pub payload_len: usize,
}

impl Repr {
    /// Parse a datagram view, validating the checksum against the given
    /// pseudo-header addresses.
    pub fn parse<T: AsRef<[u8]>>(
        datagram: &Datagram<T>,
        src: Ipv4Address,
        dst: Ipv4Address,
    ) -> Result<Repr> {
        datagram.check_len()?;
        if !datagram.verify_checksum(src, dst) {
            return Err(Error::Checksum);
        }
        Ok(Repr {
            src_port: datagram.src_port(),
            dst_port: datagram.dst_port(),
            payload_len: datagram.payload().len(),
        })
    }

    /// The emitted length.
    pub const fn buffer_len(&self) -> usize {
        HEADER_LEN + self.payload_len
    }

    /// Write the header into `datagram` and fill the checksum. Write the
    /// payload first (the checksum covers it).
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(
        &self,
        datagram: &mut Datagram<T>,
        src: Ipv4Address,
        dst: Ipv4Address,
    ) {
        datagram.set_src_port(self.src_port);
        datagram.set_dst_port(self.dst_port);
        datagram.set_len_field((HEADER_LEN + self.payload_len) as u16);
        datagram.fill_checksum(src, dst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Address = Ipv4Address::new(10, 0, 0, 1);
    const DST: Ipv4Address = Ipv4Address::new(10, 0, 0, 2);

    #[test]
    fn emit_parse_roundtrip() {
        let repr = Repr {
            src_port: 4242,
            dst_port: 53,
            payload_len: 5,
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        let mut dgram = Datagram::new_unchecked(&mut buf[..]);
        dgram.set_len_field(repr.buffer_len() as u16);
        dgram.payload_mut().copy_from_slice(b"query");
        repr.emit(&mut dgram, SRC, DST);

        let dgram = Datagram::new_checked(&buf[..]).unwrap();
        assert_eq!(Repr::parse(&dgram, SRC, DST).unwrap(), repr);
        assert_eq!(dgram.payload(), b"query");
    }

    #[test]
    fn wrong_pseudo_header_rejected() {
        let repr = Repr {
            src_port: 1,
            dst_port: 2,
            payload_len: 0,
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        repr.emit(&mut Datagram::new_unchecked(&mut buf[..]), SRC, DST);
        let dgram = Datagram::new_checked(&buf[..]).unwrap();
        // Note a src/dst *swap* keeps the (commutative) sum intact, so use
        // a genuinely different address.
        let other = Ipv4Address::new(192, 168, 0, 1);
        assert_eq!(
            Repr::parse(&dgram, SRC, other).unwrap_err(),
            Error::Checksum
        );
    }

    #[test]
    fn zero_checksum_accepted() {
        let mut buf = [0u8; HEADER_LEN];
        let mut dgram = Datagram::new_unchecked(&mut buf[..]);
        dgram.set_src_port(1);
        dgram.set_dst_port(2);
        dgram.set_len_field(HEADER_LEN as u16);
        dgram.set_checksum(0);
        let dgram = Datagram::new_checked(&buf[..]).unwrap();
        assert!(Repr::parse(&dgram, SRC, DST).is_ok());
    }

    #[test]
    fn reject_bad_length_field() {
        let mut buf = [0u8; HEADER_LEN + 2];
        let mut dgram = Datagram::new_unchecked(&mut buf[..]);
        dgram.set_len_field(4); // below header size
        assert_eq!(
            Datagram::new_checked(&buf[..]).unwrap_err(),
            Error::Malformed
        );

        let mut buf = [0u8; HEADER_LEN];
        let mut dgram = Datagram::new_unchecked(&mut buf[..]);
        dgram.set_len_field(100); // past buffer
        assert_eq!(
            Datagram::new_checked(&buf[..]).unwrap_err(),
            Error::Truncated
        );
    }

    #[test]
    fn payload_respects_length_field() {
        let mut buf = [0u8; HEADER_LEN + 10];
        let mut dgram = Datagram::new_unchecked(&mut buf[..]);
        dgram.set_len_field((HEADER_LEN + 4) as u16);
        let dgram = Datagram::new_checked(&buf[..]).unwrap();
        assert_eq!(dgram.payload().len(), 4);
    }
}
