//! # zen-wire — packet parsing and emission
//!
//! Typed, zero-copy views over raw packet buffers for the protocols the
//! `zen` platform speaks on the wire: Ethernet II, ARP, IPv4, ICMPv4, UDP,
//! TCP, and LLDP (used for SDN topology discovery).
//!
//! The design follows the `smoltcp` wire idiom:
//!
//! * A *view* type per protocol (e.g. [`ipv4::Packet`]) wraps any
//!   `AsRef<[u8]>` buffer and exposes field accessors at fixed offsets.
//!   Construction via `new_checked` validates lengths so accessors never
//!   panic on well-formed views; malformed input yields [`Error`].
//! * A *representation* type per protocol (e.g. [`ipv4::Repr`]) is a plain
//!   struct of parsed header values. `Repr::parse` lifts a view into a
//!   representation (validating checksums), and `Repr::emit` writes it back
//!   into a mutable view.
//! * [`builder::PacketBuilder`] composes whole frames (Ethernet → IPv4 →
//!   UDP payload, ARP, LLDP, …) for tests, simulators, and traffic
//!   generators.
//!
//! No allocation is required to parse; emission writes into caller-provided
//! buffers. The crate has no dependencies and never panics on untrusted
//! input.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address;
pub mod arp;
pub mod builder;
pub mod checksum;
pub mod ethernet;
pub mod icmpv4;
pub mod ipv4;
pub mod lcg;
pub mod lldp;
pub mod tcp;
pub mod udp;

pub use address::{EthernetAddress, Ipv4Address, Ipv4Cidr};

/// The error type for wire-format operations.
///
/// Parsing is total: malformed input produces an `Error`, never a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// The buffer is too short to contain the protocol header, or a length
    /// field points past the end of the buffer.
    Truncated,
    /// A checksum (IPv4 header, ICMP, UDP, or TCP) failed verification.
    Checksum,
    /// A field holds a value the protocol does not allow (e.g. IPv4 version
    /// != 4, header length below the minimum).
    Malformed,
    /// The value is not recognized (e.g. an unknown ARP operation).
    Unrecognized,
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Error::Truncated => write!(f, "truncated packet"),
            Error::Checksum => write!(f, "checksum mismatch"),
            Error::Malformed => write!(f, "malformed field"),
            Error::Unrecognized => write!(f, "unrecognized value"),
        }
    }
}

impl std::error::Error for Error {}

/// Specialized `Result` for wire-format operations.
pub type Result<T> = core::result::Result<T, Error>;

/// Read a big-endian `u16` at `offset`. Caller must have checked bounds.
#[inline]
pub(crate) fn get_u16(data: &[u8], offset: usize) -> u16 {
    u16::from_be_bytes([data[offset], data[offset + 1]])
}

/// Read a big-endian `u32` at `offset`. Caller must have checked bounds.
#[inline]
pub(crate) fn get_u32(data: &[u8], offset: usize) -> u32 {
    u32::from_be_bytes([
        data[offset],
        data[offset + 1],
        data[offset + 2],
        data[offset + 3],
    ])
}

/// Write a big-endian `u16` at `offset`.
#[inline]
pub(crate) fn set_u16(data: &mut [u8], offset: usize, value: u16) {
    data[offset..offset + 2].copy_from_slice(&value.to_be_bytes());
}

/// Write a big-endian `u32` at `offset`.
#[inline]
pub(crate) fn set_u32(data: &mut [u8], offset: usize, value: u32) {
    data[offset..offset + 4].copy_from_slice(&value.to_be_bytes());
}
