//! Whole-frame composition helpers.
//!
//! Simulators, traffic generators and tests need complete, checksummed
//! Ethernet frames. [`PacketBuilder`] assembles them from the typed `Repr`s
//! in this crate, producing a `Vec<u8>` ready to inject on a link.

use crate::address::{EthernetAddress, Ipv4Address};
use crate::ethernet::{self, EtherType};
use crate::ipv4::{self, Protocol};
use crate::{arp, icmpv4, lldp, tcp, udp};

/// A builder of complete Ethernet frames.
///
/// ```
/// use zen_wire::builder::PacketBuilder;
/// use zen_wire::{EthernetAddress, Ipv4Address};
///
/// let frame = PacketBuilder::udp(
///     EthernetAddress::from_id(1), Ipv4Address::new(10, 0, 0, 1), 4242,
///     EthernetAddress::from_id(2), Ipv4Address::new(10, 0, 0, 2), 53,
///     b"payload",
/// );
/// assert!(frame.len() > 42);
/// ```
pub struct PacketBuilder;

impl PacketBuilder {
    /// An Ethernet frame carrying an arbitrary payload with the given
    /// EtherType.
    pub fn ethernet(
        src_mac: EthernetAddress,
        dst_mac: EthernetAddress,
        ethertype: EtherType,
        payload: &[u8],
    ) -> Vec<u8> {
        let mut buf = vec![0u8; ethernet::HEADER_LEN + payload.len()];
        let mut frame = ethernet::Frame::new_unchecked(&mut buf[..]);
        ethernet::Repr {
            src_addr: src_mac,
            dst_addr: dst_mac,
            ethertype,
        }
        .emit(&mut frame);
        frame.payload_mut().copy_from_slice(payload);
        buf
    }

    /// An Ethernet+IPv4 frame with an arbitrary L4 payload.
    #[allow(clippy::too_many_arguments)]
    pub fn ipv4(
        src_mac: EthernetAddress,
        src_ip: Ipv4Address,
        dst_mac: EthernetAddress,
        dst_ip: Ipv4Address,
        protocol: Protocol,
        ttl: u8,
        dscp_ecn: u8,
        l4_payload: &[u8],
    ) -> Vec<u8> {
        let ip_repr = ipv4::Repr {
            src_addr: src_ip,
            dst_addr: dst_ip,
            protocol,
            payload_len: l4_payload.len(),
            ttl,
            dscp_ecn,
        };
        let mut ip_buf = vec![0u8; ip_repr.buffer_len()];
        let mut packet = ipv4::Packet::new_unchecked(&mut ip_buf[..]);
        ip_repr.emit(&mut packet);
        packet.payload_mut().copy_from_slice(l4_payload);
        Self::ethernet(src_mac, dst_mac, EtherType::Ipv4, &ip_buf)
    }

    /// A complete UDP-over-IPv4-over-Ethernet frame.
    #[allow(clippy::too_many_arguments)]
    pub fn udp(
        src_mac: EthernetAddress,
        src_ip: Ipv4Address,
        src_port: u16,
        dst_mac: EthernetAddress,
        dst_ip: Ipv4Address,
        dst_port: u16,
        payload: &[u8],
    ) -> Vec<u8> {
        let udp_repr = udp::Repr {
            src_port,
            dst_port,
            payload_len: payload.len(),
        };
        let mut udp_buf = vec![0u8; udp_repr.buffer_len()];
        let mut dgram = udp::Datagram::new_unchecked(&mut udp_buf[..]);
        dgram.set_len_field(udp_repr.buffer_len() as u16);
        dgram.payload_mut().copy_from_slice(payload);
        udp_repr.emit(&mut dgram, src_ip, dst_ip);
        Self::ipv4(
            src_mac,
            src_ip,
            dst_mac,
            dst_ip,
            Protocol::Udp,
            64,
            0,
            &udp_buf,
        )
    }

    /// A complete TCP-over-IPv4-over-Ethernet frame.
    #[allow(clippy::too_many_arguments)]
    pub fn tcp(
        src_mac: EthernetAddress,
        src_ip: Ipv4Address,
        src_port: u16,
        dst_mac: EthernetAddress,
        dst_ip: Ipv4Address,
        dst_port: u16,
        flags: tcp::Flags,
        payload: &[u8],
    ) -> Vec<u8> {
        let tcp_repr = tcp::Repr {
            src_port,
            dst_port,
            seq_number: 0,
            ack_number: 0,
            flags,
            window: 65535,
            payload_len: payload.len(),
        };
        let mut tcp_buf = vec![0u8; tcp_repr.buffer_len()];
        let mut seg = tcp::Segment::new_unchecked(&mut tcp_buf[..]);
        seg.set_header_len(tcp::HEADER_LEN as u8);
        seg.payload_mut().copy_from_slice(payload);
        tcp_repr.emit(&mut seg, src_ip, dst_ip);
        Self::ipv4(
            src_mac,
            src_ip,
            dst_mac,
            dst_ip,
            Protocol::Tcp,
            64,
            0,
            &tcp_buf,
        )
    }

    /// A complete ICMP echo request frame.
    pub fn icmp_echo_request(
        src_mac: EthernetAddress,
        src_ip: Ipv4Address,
        dst_mac: EthernetAddress,
        dst_ip: Ipv4Address,
        ident: u16,
        seq: u16,
    ) -> Vec<u8> {
        Self::icmp_echo(src_mac, src_ip, dst_mac, dst_ip, ident, seq, true)
    }

    /// A complete ICMP echo reply frame.
    pub fn icmp_echo_reply(
        src_mac: EthernetAddress,
        src_ip: Ipv4Address,
        dst_mac: EthernetAddress,
        dst_ip: Ipv4Address,
        ident: u16,
        seq: u16,
    ) -> Vec<u8> {
        Self::icmp_echo(src_mac, src_ip, dst_mac, dst_ip, ident, seq, false)
    }

    #[allow(clippy::too_many_arguments)]
    fn icmp_echo(
        src_mac: EthernetAddress,
        src_ip: Ipv4Address,
        dst_mac: EthernetAddress,
        dst_ip: Ipv4Address,
        ident: u16,
        seq: u16,
        request: bool,
    ) -> Vec<u8> {
        let message = if request {
            icmpv4::Message::EchoRequest { ident, seq }
        } else {
            icmpv4::Message::EchoReply { ident, seq }
        };
        let icmp_repr = icmpv4::Repr {
            message,
            payload_len: 0,
        };
        let mut icmp_buf = vec![0u8; icmp_repr.buffer_len()];
        icmp_repr.emit(&mut icmpv4::Packet::new_unchecked(&mut icmp_buf[..]));
        Self::ipv4(
            src_mac,
            src_ip,
            dst_mac,
            dst_ip,
            Protocol::Icmp,
            64,
            0,
            &icmp_buf,
        )
    }

    /// A broadcast ARP who-has request.
    pub fn arp_request(
        src_mac: EthernetAddress,
        src_ip: Ipv4Address,
        target_ip: Ipv4Address,
    ) -> Vec<u8> {
        let repr = arp::Repr::request(src_mac, src_ip, target_ip);
        let mut arp_buf = vec![0u8; repr.buffer_len()];
        repr.emit(&mut arp::Packet::new_unchecked(&mut arp_buf[..]));
        Self::ethernet(
            src_mac,
            EthernetAddress::BROADCAST,
            EtherType::Arp,
            &arp_buf,
        )
    }

    /// A unicast ARP is-at reply answering `request`.
    pub fn arp_reply(request: &arp::Repr, our_mac: EthernetAddress) -> Vec<u8> {
        let repr = request.reply_to(our_mac);
        let mut arp_buf = vec![0u8; repr.buffer_len()];
        repr.emit(&mut arp::Packet::new_unchecked(&mut arp_buf[..]));
        Self::ethernet(
            our_mac,
            request.sender_hardware_addr,
            EtherType::Arp,
            &arp_buf,
        )
    }

    /// An LLDP discovery frame announcing (chassis, port).
    pub fn lldp(src_mac: EthernetAddress, chassis_id: u64, port_id: u32, ttl_secs: u16) -> Vec<u8> {
        let repr = lldp::Repr {
            chassis_id,
            port_id,
            ttl_secs,
        };
        let mut lldp_buf = vec![0u8; repr.buffer_len()];
        repr.emit(&mut lldp_buf);
        Self::ethernet(
            src_mac,
            EthernetAddress::LLDP_MULTICAST,
            EtherType::Lldp,
            &lldp_buf,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ethernet::Frame;

    const SRC_MAC: EthernetAddress = EthernetAddress([0x02, 0, 0, 0, 0, 1]);
    const DST_MAC: EthernetAddress = EthernetAddress([0x02, 0, 0, 0, 0, 2]);
    const SRC_IP: Ipv4Address = Ipv4Address::new(10, 0, 0, 1);
    const DST_IP: Ipv4Address = Ipv4Address::new(10, 0, 0, 2);

    #[test]
    fn udp_frame_parses_end_to_end() {
        let buf = PacketBuilder::udp(SRC_MAC, SRC_IP, 1111, DST_MAC, DST_IP, 2222, b"hello");
        let frame = Frame::new_checked(&buf[..]).unwrap();
        assert_eq!(frame.ethertype(), EtherType::Ipv4);
        let packet = ipv4::Packet::new_checked(frame.payload()).unwrap();
        let ip = ipv4::Repr::parse(&packet).unwrap();
        assert_eq!(ip.protocol, Protocol::Udp);
        let dgram = udp::Datagram::new_checked(packet.payload()).unwrap();
        let u = udp::Repr::parse(&dgram, SRC_IP, DST_IP).unwrap();
        assert_eq!((u.src_port, u.dst_port), (1111, 2222));
        assert_eq!(dgram.payload(), b"hello");
    }

    #[test]
    fn tcp_frame_parses_end_to_end() {
        let buf = PacketBuilder::tcp(
            SRC_MAC,
            SRC_IP,
            50000,
            DST_MAC,
            DST_IP,
            80,
            tcp::Flags::SYN,
            b"",
        );
        let frame = Frame::new_checked(&buf[..]).unwrap();
        let packet = ipv4::Packet::new_checked(frame.payload()).unwrap();
        let seg = tcp::Segment::new_checked(packet.payload()).unwrap();
        let t = tcp::Repr::parse(&seg, SRC_IP, DST_IP).unwrap();
        assert!(t.flags.syn);
        assert_eq!(t.dst_port, 80);
    }

    #[test]
    fn icmp_echo_parses() {
        let buf = PacketBuilder::icmp_echo_request(SRC_MAC, SRC_IP, DST_MAC, DST_IP, 42, 1);
        let frame = Frame::new_checked(&buf[..]).unwrap();
        let packet = ipv4::Packet::new_checked(frame.payload()).unwrap();
        let icmp = icmpv4::Packet::new_checked(packet.payload()).unwrap();
        let repr = icmpv4::Repr::parse(&icmp).unwrap();
        assert_eq!(
            repr.message,
            icmpv4::Message::EchoRequest { ident: 42, seq: 1 }
        );
    }

    #[test]
    fn arp_request_reply_cycle() {
        let buf = PacketBuilder::arp_request(SRC_MAC, SRC_IP, DST_IP);
        let frame = Frame::new_checked(&buf[..]).unwrap();
        assert_eq!(frame.dst_addr(), EthernetAddress::BROADCAST);
        assert_eq!(frame.ethertype(), EtherType::Arp);
        let req = arp::Repr::parse(&arp::Packet::new_checked(frame.payload()).unwrap()).unwrap();
        assert_eq!(req.operation, arp::Operation::Request);

        let reply_buf = PacketBuilder::arp_reply(&req, DST_MAC);
        let frame = Frame::new_checked(&reply_buf[..]).unwrap();
        assert_eq!(frame.dst_addr(), SRC_MAC);
        let reply = arp::Repr::parse(&arp::Packet::new_checked(frame.payload()).unwrap()).unwrap();
        assert_eq!(reply.operation, arp::Operation::Reply);
        assert_eq!(reply.sender_hardware_addr, DST_MAC);
        assert_eq!(reply.sender_protocol_addr, DST_IP);
    }

    #[test]
    fn lldp_frame_parses() {
        let buf = PacketBuilder::lldp(SRC_MAC, 77, 3, 120);
        let frame = Frame::new_checked(&buf[..]).unwrap();
        assert_eq!(frame.dst_addr(), EthernetAddress::LLDP_MULTICAST);
        assert_eq!(frame.ethertype(), EtherType::Lldp);
        let repr = lldp::Repr::parse(frame.payload()).unwrap();
        assert_eq!((repr.chassis_id, repr.port_id), (77, 3));
    }
}
