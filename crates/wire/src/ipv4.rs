//! The Internet Protocol version 4 (RFC 791).

use core::fmt;

use crate::address::Ipv4Address;
use crate::{checksum, get_u16, set_u16, Error, Result};

/// An IP protocol number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Protocol {
    /// ICMP (1).
    Icmp,
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// Any other value.
    Unknown(u8),
}

impl From<u8> for Protocol {
    fn from(value: u8) -> Protocol {
        match value {
            1 => Protocol::Icmp,
            6 => Protocol::Tcp,
            17 => Protocol::Udp,
            other => Protocol::Unknown(other),
        }
    }
}

impl From<Protocol> for u8 {
    fn from(value: Protocol) -> u8 {
        match value {
            Protocol::Icmp => 1,
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
            Protocol::Unknown(other) => other,
        }
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protocol::Icmp => write!(f, "ICMP"),
            Protocol::Tcp => write!(f, "TCP"),
            Protocol::Udp => write!(f, "UDP"),
            Protocol::Unknown(v) => write!(f, "proto-{v}"),
        }
    }
}

mod field {
    use core::ops::Range;

    pub const VER_IHL: usize = 0;
    pub const DSCP_ECN: usize = 1;
    pub const LENGTH: Range<usize> = 2..4;
    pub const IDENT: Range<usize> = 4..6;
    pub const FLG_OFF: Range<usize> = 6..8;
    pub const TTL: usize = 8;
    pub const PROTOCOL: usize = 9;
    pub const CHECKSUM: Range<usize> = 10..12;
    pub const SRC_ADDR: Range<usize> = 12..16;
    pub const DST_ADDR: Range<usize> = 16..20;
}

/// The length of an IPv4 header without options.
pub const HEADER_LEN: usize = 20;

/// A read/write view of an IPv4 packet.
#[derive(Debug, Clone)]
pub struct Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Packet<T> {
    /// Wrap a buffer without checking its length.
    pub const fn new_unchecked(buffer: T) -> Packet<T> {
        Packet { buffer }
    }

    /// Wrap a buffer, validating lengths (fixed header, header length
    /// field, total length field).
    pub fn new_checked(buffer: T) -> Result<Packet<T>> {
        let packet = Packet::new_unchecked(buffer);
        packet.check_len()?;
        Ok(packet)
    }

    /// Validate the buffer against the header's own length fields.
    pub fn check_len(&self) -> Result<()> {
        let data = self.buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        let header_len = usize::from(self.header_len());
        if header_len < HEADER_LEN || header_len > data.len() {
            return Err(Error::Malformed);
        }
        let total_len = usize::from(self.total_len());
        if total_len < header_len {
            return Err(Error::Malformed);
        }
        if total_len > data.len() {
            return Err(Error::Truncated);
        }
        Ok(())
    }

    /// Unwrap the view.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// The version field (must be 4).
    pub fn version(&self) -> u8 {
        self.buffer.as_ref()[field::VER_IHL] >> 4
    }

    /// Header length in bytes, decoded from the IHL field.
    pub fn header_len(&self) -> u8 {
        (self.buffer.as_ref()[field::VER_IHL] & 0x0f) * 4
    }

    /// The DSCP/ECN byte.
    pub fn dscp_ecn(&self) -> u8 {
        self.buffer.as_ref()[field::DSCP_ECN]
    }

    /// Total packet length (header plus payload) in bytes.
    pub fn total_len(&self) -> u16 {
        get_u16(self.buffer.as_ref(), field::LENGTH.start)
    }

    /// Identification field.
    pub fn ident(&self) -> u16 {
        get_u16(self.buffer.as_ref(), field::IDENT.start)
    }

    /// The don't-fragment flag.
    pub fn dont_frag(&self) -> bool {
        get_u16(self.buffer.as_ref(), field::FLG_OFF.start) & 0x4000 != 0
    }

    /// The more-fragments flag.
    pub fn more_frags(&self) -> bool {
        get_u16(self.buffer.as_ref(), field::FLG_OFF.start) & 0x2000 != 0
    }

    /// Fragment offset in bytes.
    pub fn frag_offset(&self) -> u16 {
        (get_u16(self.buffer.as_ref(), field::FLG_OFF.start) & 0x1fff) * 8
    }

    /// Time to live.
    pub fn ttl(&self) -> u8 {
        self.buffer.as_ref()[field::TTL]
    }

    /// Payload protocol.
    pub fn protocol(&self) -> Protocol {
        Protocol::from(self.buffer.as_ref()[field::PROTOCOL])
    }

    /// Header checksum field.
    pub fn checksum(&self) -> u16 {
        get_u16(self.buffer.as_ref(), field::CHECKSUM.start)
    }

    /// Source address.
    pub fn src_addr(&self) -> Ipv4Address {
        Ipv4Address::from_bytes(&self.buffer.as_ref()[field::SRC_ADDR])
    }

    /// Destination address.
    pub fn dst_addr(&self) -> Ipv4Address {
        Ipv4Address::from_bytes(&self.buffer.as_ref()[field::DST_ADDR])
    }

    /// Verify the header checksum.
    pub fn verify_checksum(&self) -> bool {
        let header = &self.buffer.as_ref()[..usize::from(self.header_len())];
        checksum::verify(header)
    }

    /// The payload, bounded by the total-length field.
    ///
    /// Call only on views that passed [`check_len`].
    ///
    /// [`check_len`]: Packet::check_len
    pub fn payload(&self) -> &[u8] {
        let header_len = usize::from(self.header_len());
        let total_len = usize::from(self.total_len());
        &self.buffer.as_ref()[header_len..total_len]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Packet<T> {
    /// Set version and header length (bytes; must be a multiple of 4).
    pub fn set_version_and_header_len(&mut self, header_len: u8) {
        self.buffer.as_mut()[field::VER_IHL] = 0x40 | (header_len / 4);
    }

    /// Set the DSCP/ECN byte.
    pub fn set_dscp_ecn(&mut self, value: u8) {
        self.buffer.as_mut()[field::DSCP_ECN] = value;
    }

    /// Set the total length field.
    pub fn set_total_len(&mut self, value: u16) {
        set_u16(self.buffer.as_mut(), field::LENGTH.start, value);
    }

    /// Set the identification field.
    pub fn set_ident(&mut self, value: u16) {
        set_u16(self.buffer.as_mut(), field::IDENT.start, value);
    }

    /// Set flags and fragment offset: `dont_frag`, `more_frags`, byte offset.
    pub fn set_flags(&mut self, dont_frag: bool, more_frags: bool, frag_offset: u16) {
        let mut value = (frag_offset / 8) & 0x1fff;
        if dont_frag {
            value |= 0x4000;
        }
        if more_frags {
            value |= 0x2000;
        }
        set_u16(self.buffer.as_mut(), field::FLG_OFF.start, value);
    }

    /// Set the time to live.
    pub fn set_ttl(&mut self, value: u8) {
        self.buffer.as_mut()[field::TTL] = value;
    }

    /// Set the payload protocol.
    pub fn set_protocol(&mut self, value: Protocol) {
        self.buffer.as_mut()[field::PROTOCOL] = value.into();
    }

    /// Set the checksum field directly.
    pub fn set_checksum(&mut self, value: u16) {
        set_u16(self.buffer.as_mut(), field::CHECKSUM.start, value);
    }

    /// Set the source address.
    pub fn set_src_addr(&mut self, value: Ipv4Address) {
        self.buffer.as_mut()[field::SRC_ADDR].copy_from_slice(value.as_bytes());
    }

    /// Set the destination address.
    pub fn set_dst_addr(&mut self, value: Ipv4Address) {
        self.buffer.as_mut()[field::DST_ADDR].copy_from_slice(value.as_bytes());
    }

    /// Recompute and store the header checksum.
    pub fn fill_checksum(&mut self) {
        self.set_checksum(0);
        let header_len = usize::from(self.header_len());
        let ck = checksum::checksum(&self.buffer.as_ref()[..header_len]);
        self.set_checksum(ck);
    }

    /// Mutable access to the payload.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let header_len = usize::from(self.header_len());
        let total_len = usize::from(self.total_len());
        &mut self.buffer.as_mut()[header_len..total_len]
    }

    /// Decrement TTL and refresh the checksum, as a router does on forward.
    ///
    /// Returns `false` (leaving the packet unchanged) if TTL is already
    /// zero or would reach zero, in which case the packet must be dropped.
    pub fn decrement_ttl(&mut self) -> bool {
        let ttl = self.ttl();
        if ttl <= 1 {
            return false;
        }
        self.set_ttl(ttl - 1);
        self.fill_checksum();
        true
    }
}

/// A high-level representation of an IPv4 header (no options, no
/// fragmentation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repr {
    /// Source address.
    pub src_addr: Ipv4Address,
    /// Destination address.
    pub dst_addr: Ipv4Address,
    /// Payload protocol.
    pub protocol: Protocol,
    /// Payload length in bytes.
    pub payload_len: usize,
    /// Time to live.
    pub ttl: u8,
    /// DSCP/ECN byte (traffic class).
    pub dscp_ecn: u8,
}

impl Repr {
    /// Parse a packet view, validating version and checksum.
    pub fn parse<T: AsRef<[u8]>>(packet: &Packet<T>) -> Result<Repr> {
        packet.check_len()?;
        if packet.version() != 4 {
            return Err(Error::Malformed);
        }
        if !packet.verify_checksum() {
            return Err(Error::Checksum);
        }
        Ok(Repr {
            src_addr: packet.src_addr(),
            dst_addr: packet.dst_addr(),
            protocol: packet.protocol(),
            payload_len: packet.payload().len(),
            ttl: packet.ttl(),
            dscp_ecn: packet.dscp_ecn(),
        })
    }

    /// The emitted length: header plus payload.
    pub const fn buffer_len(&self) -> usize {
        HEADER_LEN + self.payload_len
    }

    /// Write this header into `packet` and fill the checksum. The payload
    /// must be written separately (via [`Packet::payload_mut`]).
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, packet: &mut Packet<T>) {
        packet.set_version_and_header_len(HEADER_LEN as u8);
        packet.set_dscp_ecn(self.dscp_ecn);
        packet.set_total_len((HEADER_LEN + self.payload_len) as u16);
        packet.set_ident(0);
        packet.set_flags(true, false, 0);
        packet.set_ttl(self.ttl);
        packet.set_protocol(self.protocol);
        packet.set_src_addr(self.src_addr);
        packet.set_dst_addr(self.dst_addr);
        packet.fill_checksum();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_repr(payload_len: usize) -> Repr {
        Repr {
            src_addr: Ipv4Address::new(10, 0, 0, 1),
            dst_addr: Ipv4Address::new(10, 0, 1, 2),
            protocol: Protocol::Udp,
            payload_len,
            ttl: 64,
            dscp_ecn: 0,
        }
    }

    #[test]
    fn emit_parse_roundtrip() {
        let repr = sample_repr(8);
        let mut buf = vec![0u8; repr.buffer_len()];
        let mut packet = Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut packet);
        packet
            .payload_mut()
            .copy_from_slice(&[1, 2, 3, 4, 5, 6, 7, 8]);

        let packet = Packet::new_checked(&buf[..]).unwrap();
        assert!(packet.verify_checksum());
        let parsed = Repr::parse(&packet).unwrap();
        assert_eq!(parsed, repr);
        assert_eq!(packet.payload(), &[1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn corrupt_checksum_rejected() {
        let repr = sample_repr(0);
        let mut buf = vec![0u8; repr.buffer_len()];
        repr.emit(&mut Packet::new_unchecked(&mut buf[..]));
        buf[field::TTL] ^= 0xff;
        let packet = Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(Repr::parse(&packet).unwrap_err(), Error::Checksum);
    }

    #[test]
    fn reject_bad_version() {
        let repr = sample_repr(0);
        let mut buf = vec![0u8; repr.buffer_len()];
        let mut packet = Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut packet);
        buf[field::VER_IHL] = 0x65; // version 6
                                    // refill checksum so only the version is wrong
        let mut packet = Packet::new_unchecked(&mut buf[..]);
        packet.fill_checksum();
        assert_eq!(
            Repr::parse(&Packet::new_checked(&buf[..]).unwrap()).unwrap_err(),
            Error::Malformed
        );
    }

    #[test]
    fn reject_total_len_past_buffer() {
        let repr = sample_repr(4);
        let mut buf = vec![0u8; repr.buffer_len()];
        let mut packet = Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut packet);
        packet.set_total_len(100);
        assert_eq!(Packet::new_checked(&buf[..]).unwrap_err(), Error::Truncated);
    }

    #[test]
    fn reject_header_len_too_small() {
        let repr = sample_repr(0);
        let mut buf = vec![0u8; repr.buffer_len()];
        repr.emit(&mut Packet::new_unchecked(&mut buf[..]));
        buf[field::VER_IHL] = 0x42; // IHL 2 -> 8 bytes
        assert_eq!(Packet::new_checked(&buf[..]).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn payload_respects_total_len() {
        // Frame padded beyond total_len: payload must stop at total_len.
        let repr = sample_repr(4);
        let mut buf = vec![0u8; repr.buffer_len() + 10];
        let mut packet = Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut packet);
        let packet = Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(packet.payload().len(), 4);
    }

    #[test]
    fn ttl_decrement() {
        let repr = sample_repr(0);
        let mut buf = vec![0u8; repr.buffer_len()];
        let mut packet = Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut packet);
        assert!(packet.decrement_ttl());
        assert_eq!(packet.ttl(), 63);
        assert!(packet.verify_checksum());

        packet.set_ttl(1);
        packet.fill_checksum();
        assert!(!packet.decrement_ttl());
        assert_eq!(packet.ttl(), 1);
    }

    #[test]
    fn flags_and_fragments() {
        let mut buf = [0u8; HEADER_LEN];
        let mut packet = Packet::new_unchecked(&mut buf[..]);
        packet.set_flags(false, true, 1480);
        assert!(!packet.dont_frag());
        assert!(packet.more_frags());
        assert_eq!(packet.frag_offset(), 1480);
    }
}
