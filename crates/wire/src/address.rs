//! Link-layer and network-layer address types.

use core::fmt;
use core::str::FromStr;

use crate::{Error, Result};

/// A six-octet IEEE 802 MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EthernetAddress(pub [u8; 6]);

impl EthernetAddress {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: EthernetAddress = EthernetAddress([0xff; 6]);

    /// The all-zero address, used as a placeholder (e.g. in ARP requests).
    pub const ZERO: EthernetAddress = EthernetAddress([0; 6]);

    /// The 802.1AB LLDP multicast destination `01:80:c2:00:00:0e`.
    pub const LLDP_MULTICAST: EthernetAddress =
        EthernetAddress([0x01, 0x80, 0xc2, 0x00, 0x00, 0x0e]);

    /// Construct from a byte slice.
    ///
    /// # Panics
    /// Panics if `data` is not exactly six bytes long.
    pub fn from_bytes(data: &[u8]) -> EthernetAddress {
        let mut bytes = [0; 6];
        bytes.copy_from_slice(data);
        EthernetAddress(bytes)
    }

    /// Return the raw octets.
    pub const fn as_bytes(&self) -> &[u8; 6] {
        &self.0
    }

    /// Whether this is the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// Whether the group (multicast) bit is set. Broadcast counts as
    /// multicast.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// Whether this address identifies a single station.
    pub fn is_unicast(&self) -> bool {
        !self.is_multicast() && *self != Self::ZERO
    }

    /// Whether the locally-administered bit is set.
    pub fn is_local(&self) -> bool {
        self.0[0] & 0x02 != 0
    }

    /// A deterministic locally-administered unicast address derived from an
    /// integer id. Useful for simulators and tests: distinct ids map to
    /// distinct addresses.
    pub fn from_id(id: u64) -> EthernetAddress {
        let b = id.to_be_bytes();
        // 0x02 sets local-admin, clears multicast.
        EthernetAddress([0x02, b[3], b[4], b[5], b[6], b[7]])
    }

    /// Interpret the low 40 bits as an id assigned by [`from_id`].
    ///
    /// [`from_id`]: EthernetAddress::from_id
    pub fn to_id(&self) -> u64 {
        let mut b = [0u8; 8];
        b[3..8].copy_from_slice(&self.0[1..6]);
        u64::from_be_bytes(b)
    }
}

impl fmt::Display for EthernetAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = &self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

impl FromStr for EthernetAddress {
    type Err = Error;

    fn from_str(s: &str) -> Result<EthernetAddress> {
        let mut bytes = [0u8; 6];
        let mut parts = s.split(':');
        for byte in bytes.iter_mut() {
            let part = parts.next().ok_or(Error::Malformed)?;
            *byte = u8::from_str_radix(part, 16).map_err(|_| Error::Malformed)?;
        }
        if parts.next().is_some() {
            return Err(Error::Malformed);
        }
        Ok(EthernetAddress(bytes))
    }
}

/// An IPv4 address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ipv4Address(pub [u8; 4]);

impl Ipv4Address {
    /// The unspecified address `0.0.0.0`.
    pub const UNSPECIFIED: Ipv4Address = Ipv4Address([0; 4]);

    /// The limited broadcast address `255.255.255.255`.
    pub const BROADCAST: Ipv4Address = Ipv4Address([255; 4]);

    /// Construct from four octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Ipv4Address {
        Ipv4Address([a, b, c, d])
    }

    /// Construct from a byte slice.
    ///
    /// # Panics
    /// Panics if `data` is not exactly four bytes long.
    pub fn from_bytes(data: &[u8]) -> Ipv4Address {
        let mut bytes = [0; 4];
        bytes.copy_from_slice(data);
        Ipv4Address(bytes)
    }

    /// Return the raw octets.
    pub const fn as_bytes(&self) -> &[u8; 4] {
        &self.0
    }

    /// The address as a host-order `u32`.
    pub const fn to_u32(&self) -> u32 {
        u32::from_be_bytes(self.0)
    }

    /// Construct from a host-order `u32`.
    pub const fn from_u32(value: u32) -> Ipv4Address {
        Ipv4Address(value.to_be_bytes())
    }

    /// Whether this is the limited broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// Whether this is a multicast (class D) address.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0xf0 == 0xe0
    }

    /// Whether this is the unspecified address.
    pub fn is_unspecified(&self) -> bool {
        *self == Self::UNSPECIFIED
    }

    /// Whether this address can identify a single host.
    pub fn is_unicast(&self) -> bool {
        !self.is_broadcast() && !self.is_multicast() && !self.is_unspecified()
    }

    /// Whether this is a loopback (`127.0.0.0/8`) address.
    pub fn is_loopback(&self) -> bool {
        self.0[0] == 127
    }
}

impl fmt::Display for Ipv4Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = &self.0;
        write!(f, "{}.{}.{}.{}", b[0], b[1], b[2], b[3])
    }
}

impl FromStr for Ipv4Address {
    type Err = Error;

    fn from_str(s: &str) -> Result<Ipv4Address> {
        let mut bytes = [0u8; 4];
        let mut parts = s.split('.');
        for byte in bytes.iter_mut() {
            let part = parts.next().ok_or(Error::Malformed)?;
            *byte = part.parse().map_err(|_| Error::Malformed)?;
        }
        if parts.next().is_some() {
            return Err(Error::Malformed);
        }
        Ok(Ipv4Address(bytes))
    }
}

impl From<[u8; 4]> for Ipv4Address {
    fn from(bytes: [u8; 4]) -> Ipv4Address {
        Ipv4Address(bytes)
    }
}

/// An IPv4 CIDR block: an address plus a prefix length.
///
/// The host bits of `address` are preserved as given; [`network`] returns
/// the canonical network address with host bits cleared.
///
/// [`network`]: Ipv4Cidr::network
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ipv4Cidr {
    address: Ipv4Address,
    prefix_len: u8,
}

impl Ipv4Cidr {
    /// Construct a CIDR block. Returns `Error::Malformed` if
    /// `prefix_len > 32`.
    pub fn new(address: Ipv4Address, prefix_len: u8) -> Result<Ipv4Cidr> {
        if prefix_len > 32 {
            return Err(Error::Malformed);
        }
        Ok(Ipv4Cidr {
            address,
            prefix_len,
        })
    }

    /// The address as given (host bits preserved).
    pub const fn address(&self) -> Ipv4Address {
        self.address
    }

    /// The prefix length in bits, `0..=32`.
    pub const fn prefix_len(&self) -> u8 {
        self.prefix_len
    }

    /// The network mask as an address.
    pub fn netmask(&self) -> Ipv4Address {
        Ipv4Address::from_u32(self.mask_u32())
    }

    fn mask_u32(&self) -> u32 {
        if self.prefix_len == 0 {
            0
        } else {
            u32::MAX << (32 - self.prefix_len as u32)
        }
    }

    /// The canonical network address (host bits cleared).
    pub fn network(&self) -> Ipv4Address {
        Ipv4Address::from_u32(self.address.to_u32() & self.mask_u32())
    }

    /// Whether `addr` falls inside this block.
    pub fn contains(&self, addr: Ipv4Address) -> bool {
        (addr.to_u32() & self.mask_u32()) == (self.address.to_u32() & self.mask_u32())
    }

    /// Whether `other` is entirely contained in this block.
    pub fn contains_cidr(&self, other: &Ipv4Cidr) -> bool {
        self.prefix_len <= other.prefix_len && self.contains(other.network())
    }
}

impl fmt::Display for Ipv4Cidr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.address, self.prefix_len)
    }
}

impl FromStr for Ipv4Cidr {
    type Err = Error;

    fn from_str(s: &str) -> Result<Ipv4Cidr> {
        let (addr, len) = s.split_once('/').ok_or(Error::Malformed)?;
        let address: Ipv4Address = addr.parse()?;
        let prefix_len: u8 = len.parse().map_err(|_| Error::Malformed)?;
        Ipv4Cidr::new(address, prefix_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ethernet_display_parse_roundtrip() {
        let addr = EthernetAddress([0x02, 0x00, 0x00, 0x00, 0x12, 0x34]);
        let text = addr.to_string();
        assert_eq!(text, "02:00:00:00:12:34");
        assert_eq!(text.parse::<EthernetAddress>().unwrap(), addr);
    }

    #[test]
    fn ethernet_parse_rejects_garbage() {
        assert!("".parse::<EthernetAddress>().is_err());
        assert!("01:02:03:04:05".parse::<EthernetAddress>().is_err());
        assert!("01:02:03:04:05:06:07".parse::<EthernetAddress>().is_err());
        assert!("zz:02:03:04:05:06".parse::<EthernetAddress>().is_err());
    }

    #[test]
    fn ethernet_classification() {
        assert!(EthernetAddress::BROADCAST.is_broadcast());
        assert!(EthernetAddress::BROADCAST.is_multicast());
        assert!(!EthernetAddress::BROADCAST.is_unicast());
        assert!(EthernetAddress::LLDP_MULTICAST.is_multicast());
        let uni = EthernetAddress::from_id(7);
        assert!(uni.is_unicast());
        assert!(uni.is_local());
        assert!(!uni.is_multicast());
    }

    #[test]
    fn ethernet_id_roundtrip() {
        for id in [0u64, 1, 42, 0xff_ffff, 0xff_ffff_ffff] {
            assert_eq!(EthernetAddress::from_id(id).to_id(), id);
        }
    }

    #[test]
    fn ethernet_ids_distinct() {
        let a = EthernetAddress::from_id(1);
        let b = EthernetAddress::from_id(2);
        assert_ne!(a, b);
    }

    #[test]
    fn ipv4_display_parse_roundtrip() {
        let addr = Ipv4Address::new(10, 0, 3, 255);
        assert_eq!(addr.to_string(), "10.0.3.255");
        assert_eq!("10.0.3.255".parse::<Ipv4Address>().unwrap(), addr);
    }

    #[test]
    fn ipv4_parse_rejects_garbage() {
        assert!("10.0.0".parse::<Ipv4Address>().is_err());
        assert!("10.0.0.0.1".parse::<Ipv4Address>().is_err());
        assert!("256.0.0.1".parse::<Ipv4Address>().is_err());
        assert!("a.b.c.d".parse::<Ipv4Address>().is_err());
    }

    #[test]
    fn ipv4_u32_roundtrip() {
        let addr = Ipv4Address::new(192, 168, 1, 2);
        assert_eq!(Ipv4Address::from_u32(addr.to_u32()), addr);
        assert_eq!(addr.to_u32(), 0xc0a80102);
    }

    #[test]
    fn ipv4_classification() {
        assert!(Ipv4Address::BROADCAST.is_broadcast());
        assert!(Ipv4Address::new(224, 0, 0, 1).is_multicast());
        assert!(Ipv4Address::UNSPECIFIED.is_unspecified());
        assert!(Ipv4Address::new(127, 0, 0, 1).is_loopback());
        assert!(Ipv4Address::new(10, 1, 2, 3).is_unicast());
    }

    #[test]
    fn cidr_basics() {
        let cidr: Ipv4Cidr = "10.1.2.3/24".parse().unwrap();
        assert_eq!(cidr.prefix_len(), 24);
        assert_eq!(cidr.network(), Ipv4Address::new(10, 1, 2, 0));
        assert_eq!(cidr.netmask(), Ipv4Address::new(255, 255, 255, 0));
        assert!(cidr.contains(Ipv4Address::new(10, 1, 2, 200)));
        assert!(!cidr.contains(Ipv4Address::new(10, 1, 3, 1)));
    }

    #[test]
    fn cidr_zero_and_full_prefix() {
        let all: Ipv4Cidr = "0.0.0.0/0".parse().unwrap();
        assert!(all.contains(Ipv4Address::new(1, 2, 3, 4)));
        assert_eq!(all.netmask(), Ipv4Address::UNSPECIFIED);

        let host: Ipv4Cidr = "10.0.0.1/32".parse().unwrap();
        assert!(host.contains(Ipv4Address::new(10, 0, 0, 1)));
        assert!(!host.contains(Ipv4Address::new(10, 0, 0, 2)));
    }

    #[test]
    fn cidr_rejects_long_prefix() {
        assert!(Ipv4Cidr::new(Ipv4Address::UNSPECIFIED, 33).is_err());
        assert!("10.0.0.0/33".parse::<Ipv4Cidr>().is_err());
    }

    #[test]
    fn cidr_containment() {
        let outer: Ipv4Cidr = "10.0.0.0/8".parse().unwrap();
        let inner: Ipv4Cidr = "10.2.0.0/16".parse().unwrap();
        assert!(outer.contains_cidr(&inner));
        assert!(!inner.contains_cidr(&outer));
    }
}
