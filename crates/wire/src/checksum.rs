//! The RFC 1071 Internet checksum, used by IPv4, ICMPv4, UDP and TCP.

use crate::address::Ipv4Address;

/// Sum `data` as a sequence of big-endian 16-bit words into a 32-bit
/// accumulator, padding an odd trailing byte with zero.
fn sum_words(mut acc: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(2);
    for chunk in &mut chunks {
        acc += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
    }
    if let [last] = chunks.remainder() {
        acc += u32::from(u16::from_be_bytes([*last, 0]));
    }
    acc
}

/// Fold a 32-bit accumulator to 16 bits with end-around carry.
fn fold(mut acc: u32) -> u16 {
    while acc > 0xffff {
        acc = (acc & 0xffff) + (acc >> 16);
    }
    acc as u16
}

/// Compute the Internet checksum of `data` (one's-complement of the
/// one's-complement sum).
pub fn checksum(data: &[u8]) -> u16 {
    !fold(sum_words(0, data))
}

/// Verify `data` whose checksum field is included in the range: the folded
/// sum of valid data is `0xffff`, so the complement is zero.
pub fn verify(data: &[u8]) -> bool {
    fold(sum_words(0, data)) == 0xffff
}

/// Compute the checksum of a TCP or UDP segment including the IPv4
/// pseudo-header (src, dst, zero, protocol, length).
pub fn pseudo_header_checksum(
    src: Ipv4Address,
    dst: Ipv4Address,
    protocol: u8,
    payload: &[u8],
) -> u16 {
    let mut acc = 0u32;
    acc = sum_words(acc, src.as_bytes());
    acc = sum_words(acc, dst.as_bytes());
    acc += u32::from(protocol);
    acc += payload.len() as u32;
    acc = sum_words(acc, payload);
    !fold(acc)
}

/// Verify a TCP/UDP segment (checksum field included in `payload`).
pub fn pseudo_header_verify(
    src: Ipv4Address,
    dst: Ipv4Address,
    protocol: u8,
    payload: &[u8],
) -> bool {
    pseudo_header_checksum(src, dst, protocol, payload) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // The worked example from RFC 1071 §3: bytes 00 01 f2 03 f4 f5 f6 f7.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        // One's complement sum is 0xddf2, checksum is its complement.
        assert_eq!(checksum(&data), !0xddf2);
    }

    #[test]
    fn empty_checksum() {
        assert_eq!(checksum(&[]), 0xffff);
        assert!(!verify(&[0x12, 0x34]));
    }

    #[test]
    fn odd_length_padding() {
        // Odd byte is padded on the right with zero: [ab] == [ab 00].
        assert_eq!(checksum(&[0xab]), checksum(&[0xab, 0x00]));
    }

    #[test]
    fn verify_accepts_valid() {
        let mut data = vec![
            0x45, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x00, 0x00, 0x40, 0x11, 0, 0,
        ];
        let ck = checksum(&data);
        data[10..12].copy_from_slice(&ck.to_be_bytes());
        assert!(verify(&data));
        data[0] ^= 0x01;
        assert!(!verify(&data));
    }

    #[test]
    fn pseudo_header_roundtrip() {
        let src = Ipv4Address::new(10, 0, 0, 1);
        let dst = Ipv4Address::new(10, 0, 0, 2);
        let mut seg = vec![
            0x04, 0xd2, 0x16, 0x2e, // ports
            0x00, 0x0c, 0x00, 0x00, // length 12, checksum 0
            0xde, 0xad, 0xbe, 0xef, // payload
        ];
        let ck = pseudo_header_checksum(src, dst, 17, &seg);
        seg[6..8].copy_from_slice(&ck.to_be_bytes());
        assert!(pseudo_header_verify(src, dst, 17, &seg));
        // A different address (not a swap: the sum is commutative) fails.
        let other = Ipv4Address::new(10, 0, 0, 9);
        assert!(!pseudo_header_verify(src, other, 17, &seg));
        // A different protocol also fails.
        assert!(!pseudo_header_verify(src, dst, 6, &seg));
    }

    #[test]
    fn carry_folding() {
        // All-0xff data exercises end-around carry.
        let data = [0xff; 64];
        assert_eq!(checksum(&data), 0x0000);
        assert!(verify(&data));
    }
}
