//! Ethernet II framing.

use core::fmt;

use crate::address::EthernetAddress;
use crate::{get_u16, set_u16, Error, Result};

/// The EtherType of a frame's payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EtherType {
    /// IPv4 (`0x0800`).
    Ipv4,
    /// ARP (`0x0806`).
    Arp,
    /// 802.1Q VLAN tag (`0x8100`).
    Vlan,
    /// LLDP (`0x88cc`).
    Lldp,
    /// Any other value.
    Unknown(u16),
}

impl From<u16> for EtherType {
    fn from(value: u16) -> EtherType {
        match value {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            0x8100 => EtherType::Vlan,
            0x88cc => EtherType::Lldp,
            other => EtherType::Unknown(other),
        }
    }
}

impl From<EtherType> for u16 {
    fn from(value: EtherType) -> u16 {
        match value {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Vlan => 0x8100,
            EtherType::Lldp => 0x88cc,
            EtherType::Unknown(other) => other,
        }
    }
}

impl fmt::Display for EtherType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EtherType::Ipv4 => write!(f, "IPv4"),
            EtherType::Arp => write!(f, "ARP"),
            EtherType::Vlan => write!(f, "VLAN"),
            EtherType::Lldp => write!(f, "LLDP"),
            EtherType::Unknown(v) => write!(f, "0x{v:04x}"),
        }
    }
}

mod field {
    use core::ops::{Range, RangeFrom};

    pub const DESTINATION: Range<usize> = 0..6;
    pub const SOURCE: Range<usize> = 6..12;
    pub const ETHERTYPE: Range<usize> = 12..14;
    pub const PAYLOAD: RangeFrom<usize> = 14..;
}

/// The length of an Ethernet II header.
pub const HEADER_LEN: usize = field::PAYLOAD.start;

/// A read/write view of an Ethernet II frame.
#[derive(Debug, Clone)]
pub struct Frame<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Frame<T> {
    /// Wrap a buffer without checking its length.
    ///
    /// Accessors may panic if the buffer is shorter than [`HEADER_LEN`];
    /// prefer [`new_checked`].
    ///
    /// [`new_checked`]: Frame::new_checked
    pub const fn new_unchecked(buffer: T) -> Frame<T> {
        Frame { buffer }
    }

    /// Wrap a buffer, ensuring it is long enough for the header.
    pub fn new_checked(buffer: T) -> Result<Frame<T>> {
        let frame = Frame::new_unchecked(buffer);
        frame.check_len()?;
        Ok(frame)
    }

    /// Validate buffer length.
    pub fn check_len(&self) -> Result<()> {
        if self.buffer.as_ref().len() < HEADER_LEN {
            Err(Error::Truncated)
        } else {
            Ok(())
        }
    }

    /// Unwrap the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// The destination address.
    pub fn dst_addr(&self) -> EthernetAddress {
        EthernetAddress::from_bytes(&self.buffer.as_ref()[field::DESTINATION])
    }

    /// The source address.
    pub fn src_addr(&self) -> EthernetAddress {
        EthernetAddress::from_bytes(&self.buffer.as_ref()[field::SOURCE])
    }

    /// The EtherType field.
    pub fn ethertype(&self) -> EtherType {
        EtherType::from(get_u16(self.buffer.as_ref(), field::ETHERTYPE.start))
    }

    /// The payload following the header.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[field::PAYLOAD]
    }

    /// Total frame length in bytes.
    pub fn total_len(&self) -> usize {
        self.buffer.as_ref().len()
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Frame<T> {
    /// Set the destination address.
    pub fn set_dst_addr(&mut self, addr: EthernetAddress) {
        self.buffer.as_mut()[field::DESTINATION].copy_from_slice(addr.as_bytes());
    }

    /// Set the source address.
    pub fn set_src_addr(&mut self, addr: EthernetAddress) {
        self.buffer.as_mut()[field::SOURCE].copy_from_slice(addr.as_bytes());
    }

    /// Set the EtherType field.
    pub fn set_ethertype(&mut self, value: EtherType) {
        set_u16(self.buffer.as_mut(), field::ETHERTYPE.start, value.into());
    }

    /// Mutable access to the payload.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[field::PAYLOAD]
    }
}

/// A high-level representation of an Ethernet II header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repr {
    /// Destination address.
    pub dst_addr: EthernetAddress,
    /// Source address.
    pub src_addr: EthernetAddress,
    /// Payload EtherType.
    pub ethertype: EtherType,
}

impl Repr {
    /// Parse a frame view into a representation.
    pub fn parse<T: AsRef<[u8]>>(frame: &Frame<T>) -> Result<Repr> {
        frame.check_len()?;
        Ok(Repr {
            dst_addr: frame.dst_addr(),
            src_addr: frame.src_addr(),
            ethertype: frame.ethertype(),
        })
    }

    /// The emitted header length.
    pub const fn buffer_len(&self) -> usize {
        HEADER_LEN
    }

    /// Write this header into `frame`.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, frame: &mut Frame<T>) {
        frame.set_dst_addr(self.dst_addr);
        frame.set_src_addr(self.src_addr);
        frame.set_ethertype(self.ethertype);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static FRAME_BYTES: [u8; 18] = [
        0xff, 0xff, 0xff, 0xff, 0xff, 0xff, // dst
        0x02, 0x00, 0x00, 0x00, 0x00, 0x01, // src
        0x08, 0x00, // IPv4
        0xde, 0xad, 0xbe, 0xef, // payload
    ];

    #[test]
    fn parse_fields() {
        let frame = Frame::new_checked(&FRAME_BYTES[..]).unwrap();
        assert_eq!(frame.dst_addr(), EthernetAddress::BROADCAST);
        assert_eq!(frame.src_addr(), EthernetAddress::from_id(1));
        assert_eq!(frame.ethertype(), EtherType::Ipv4);
        assert_eq!(frame.payload(), &[0xde, 0xad, 0xbe, 0xef]);
    }

    #[test]
    fn reject_truncated() {
        assert_eq!(
            Frame::new_checked(&FRAME_BYTES[..13]).unwrap_err(),
            Error::Truncated
        );
    }

    #[test]
    fn repr_roundtrip() {
        let repr = Repr {
            dst_addr: EthernetAddress::from_id(2),
            src_addr: EthernetAddress::from_id(3),
            ethertype: EtherType::Arp,
        };
        let mut buf = vec![0u8; repr.buffer_len() + 4];
        let mut frame = Frame::new_unchecked(&mut buf[..]);
        repr.emit(&mut frame);
        let parsed = Repr::parse(&Frame::new_checked(&buf[..]).unwrap()).unwrap();
        assert_eq!(parsed, repr);
    }

    #[test]
    fn ethertype_conversions() {
        for et in [
            EtherType::Ipv4,
            EtherType::Arp,
            EtherType::Vlan,
            EtherType::Lldp,
            EtherType::Unknown(0x1234),
        ] {
            assert_eq!(EtherType::from(u16::from(et)), et);
        }
    }

    #[test]
    fn mutate_in_place() {
        let mut buf = FRAME_BYTES.to_vec();
        let mut frame = Frame::new_checked(&mut buf[..]).unwrap();
        frame.set_ethertype(EtherType::Lldp);
        frame.payload_mut()[0] = 0x00;
        let frame = Frame::new_checked(&buf[..]).unwrap();
        assert_eq!(frame.ethertype(), EtherType::Lldp);
        assert_eq!(frame.payload()[0], 0x00);
    }
}
