//! The Link Layer Discovery Protocol (IEEE 802.1AB), as used for SDN
//! topology discovery.
//!
//! SDN controllers (ONOS, OpenDaylight, Ryu) discover switch-to-switch
//! links by instructing each switch to emit an LLDP frame out of every
//! port; when the frame arrives at the neighbouring switch it is punted to
//! the controller, which now knows `(src switch, src port) → (dst switch,
//! dst port)`.
//!
//! This module implements real TLV encoding for the mandatory LLDPDU
//! TLVs — Chassis ID (locally-assigned subtype carrying a 64-bit datapath
//! id), Port ID (locally-assigned subtype carrying a 32-bit port number),
//! TTL, and End — which is exactly the set controllers use.

use crate::{get_u16, Error, Result};

/// TLV type codes.
mod tlv {
    pub const END: u8 = 0;
    pub const CHASSIS_ID: u8 = 1;
    pub const PORT_ID: u8 = 2;
    pub const TTL: u8 = 3;
    /// Locally-assigned subtype for both chassis and port IDs.
    pub const SUBTYPE_LOCAL: u8 = 7;
}

/// A parsed LLDP discovery frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repr {
    /// The 64-bit datapath (switch) identifier carried in the Chassis ID
    /// TLV.
    pub chassis_id: u64,
    /// The 32-bit port number carried in the Port ID TLV.
    pub port_id: u32,
    /// Time-to-live in seconds.
    pub ttl_secs: u16,
}

impl Repr {
    /// The emitted LLDPDU length:
    /// chassis (2+1+8) + port (2+1+4) + ttl (2+2) + end (2).
    pub const BUFFER_LEN: usize = 11 + 7 + 4 + 2;

    /// The emitted length.
    pub const fn buffer_len(&self) -> usize {
        Self::BUFFER_LEN
    }

    /// Write the LLDPDU into `buffer`.
    ///
    /// # Panics
    /// Panics if `buffer` is shorter than [`Self::BUFFER_LEN`].
    pub fn emit(&self, buffer: &mut [u8]) {
        let mut at = 0;
        let mut put_tlv = |buffer: &mut [u8], ty: u8, value: &[u8]| {
            let header = (u16::from(ty) << 9) | (value.len() as u16);
            buffer[at..at + 2].copy_from_slice(&header.to_be_bytes());
            buffer[at + 2..at + 2 + value.len()].copy_from_slice(value);
            at += 2 + value.len();
        };

        let mut chassis = [0u8; 9];
        chassis[0] = tlv::SUBTYPE_LOCAL;
        chassis[1..9].copy_from_slice(&self.chassis_id.to_be_bytes());
        put_tlv(buffer, tlv::CHASSIS_ID, &chassis);

        let mut port = [0u8; 5];
        port[0] = tlv::SUBTYPE_LOCAL;
        port[1..5].copy_from_slice(&self.port_id.to_be_bytes());
        put_tlv(buffer, tlv::PORT_ID, &port);

        put_tlv(buffer, tlv::TTL, &self.ttl_secs.to_be_bytes());
        put_tlv(buffer, tlv::END, &[]);
    }

    /// Parse an LLDPDU, walking its TLV chain.
    ///
    /// The three mandatory TLVs must appear in order (per 802.1AB);
    /// unknown optional TLVs after the TTL are skipped.
    pub fn parse(buffer: &[u8]) -> Result<Repr> {
        let mut walker = TlvWalker { buffer, at: 0 };

        let (ty, value) = walker.next_tlv()?;
        if ty != tlv::CHASSIS_ID || value.len() != 9 || value[0] != tlv::SUBTYPE_LOCAL {
            return Err(Error::Malformed);
        }
        let chassis_id = u64::from_be_bytes(value[1..9].try_into().unwrap());

        let (ty, value) = walker.next_tlv()?;
        if ty != tlv::PORT_ID || value.len() != 5 || value[0] != tlv::SUBTYPE_LOCAL {
            return Err(Error::Malformed);
        }
        let port_id = u32::from_be_bytes(value[1..5].try_into().unwrap());

        let (ty, value) = walker.next_tlv()?;
        if ty != tlv::TTL || value.len() != 2 {
            return Err(Error::Malformed);
        }
        let ttl_secs = u16::from_be_bytes(value.try_into().unwrap());

        // Skip optional TLVs until End.
        loop {
            let (ty, _) = walker.next_tlv()?;
            if ty == tlv::END {
                break;
            }
        }

        Ok(Repr {
            chassis_id,
            port_id,
            ttl_secs,
        })
    }
}

struct TlvWalker<'a> {
    buffer: &'a [u8],
    at: usize,
}

impl<'a> TlvWalker<'a> {
    fn next_tlv(&mut self) -> Result<(u8, &'a [u8])> {
        if self.at + 2 > self.buffer.len() {
            return Err(Error::Truncated);
        }
        let header = get_u16(self.buffer, self.at);
        let ty = (header >> 9) as u8;
        let len = usize::from(header & 0x1ff);
        let start = self.at + 2;
        if start + len > self.buffer.len() {
            return Err(Error::Truncated);
        }
        self.at = start + len;
        Ok((ty, &self.buffer[start..start + len]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_parse_roundtrip() {
        let repr = Repr {
            chassis_id: 0xdead_beef_0042,
            port_id: 17,
            ttl_secs: 120,
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        repr.emit(&mut buf);
        assert_eq!(Repr::parse(&buf).unwrap(), repr);
    }

    #[test]
    fn extremes_roundtrip() {
        for (chassis, port) in [(0u64, 0u32), (u64::MAX, u32::MAX)] {
            let repr = Repr {
                chassis_id: chassis,
                port_id: port,
                ttl_secs: 1,
            };
            let mut buf = vec![0u8; repr.buffer_len()];
            repr.emit(&mut buf);
            assert_eq!(Repr::parse(&buf).unwrap(), repr);
        }
    }

    #[test]
    fn reject_truncated() {
        let repr = Repr {
            chassis_id: 1,
            port_id: 2,
            ttl_secs: 3,
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        repr.emit(&mut buf);
        for cut in [0, 1, 5, 12, buf.len() - 1] {
            assert_eq!(Repr::parse(&buf[..cut]).unwrap_err(), Error::Truncated);
        }
    }

    #[test]
    fn reject_wrong_leading_tlv() {
        let repr = Repr {
            chassis_id: 1,
            port_id: 2,
            ttl_secs: 3,
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        repr.emit(&mut buf);
        // Overwrite the first TLV type (chassis -> port id).
        let header = (u16::from(tlv::PORT_ID) << 9) | 9;
        buf[0..2].copy_from_slice(&header.to_be_bytes());
        assert_eq!(Repr::parse(&buf).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn skips_optional_tlvs() {
        let repr = Repr {
            chassis_id: 9,
            port_id: 3,
            ttl_secs: 60,
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        repr.emit(&mut buf);
        // Splice in an optional TLV (type 5 = system name) before End.
        let end_at = buf.len() - 2;
        let mut spliced = buf[..end_at].to_vec();
        let name = b"sw1";
        let header = (5u16 << 9) | (name.len() as u16);
        spliced.extend_from_slice(&header.to_be_bytes());
        spliced.extend_from_slice(name);
        spliced.extend_from_slice(&buf[end_at..]);
        assert_eq!(Repr::parse(&spliced).unwrap(), repr);
    }
}
