//! Property tests for the wire formats: every `Repr` round-trips
//! through emit/parse, and no parser panics on arbitrary bytes.

use proptest::prelude::*;

use zen_wire::{arp, ethernet, icmpv4, ipv4, lldp, tcp, udp};
use zen_wire::{EthernetAddress, Ipv4Address};

fn arb_mac() -> impl Strategy<Value = EthernetAddress> {
    any::<[u8; 6]>().prop_map(EthernetAddress)
}

fn arb_ip() -> impl Strategy<Value = Ipv4Address> {
    any::<u32>().prop_map(Ipv4Address::from_u32)
}

proptest! {
    #[test]
    fn ethernet_roundtrip(dst in arb_mac(), src in arb_mac(), ty in any::<u16>(),
                          payload in proptest::collection::vec(any::<u8>(), 0..64)) {
        let repr = ethernet::Repr {
            dst_addr: dst,
            src_addr: src,
            ethertype: ty.into(),
        };
        let mut buf = vec![0u8; repr.buffer_len() + payload.len()];
        let mut frame = ethernet::Frame::new_unchecked(&mut buf[..]);
        repr.emit(&mut frame);
        frame.payload_mut().copy_from_slice(&payload);
        let frame = ethernet::Frame::new_checked(&buf[..]).unwrap();
        prop_assert_eq!(ethernet::Repr::parse(&frame).unwrap(), repr);
        prop_assert_eq!(frame.payload(), &payload[..]);
    }

    #[test]
    fn arp_roundtrip(op in prop_oneof![Just(arp::Operation::Request), Just(arp::Operation::Reply)],
                     sha in arb_mac(), spa in arb_ip(), tha in arb_mac(), tpa in arb_ip()) {
        let repr = arp::Repr {
            operation: op,
            sender_hardware_addr: sha,
            sender_protocol_addr: spa,
            target_hardware_addr: tha,
            target_protocol_addr: tpa,
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        repr.emit(&mut arp::Packet::new_unchecked(&mut buf[..]));
        prop_assert_eq!(arp::Repr::parse(&arp::Packet::new_checked(&buf[..]).unwrap()).unwrap(), repr);
    }

    #[test]
    fn ipv4_roundtrip(src in arb_ip(), dst in arb_ip(), proto in any::<u8>(),
                      ttl in 1u8.., dscp in any::<u8>(),
                      payload in proptest::collection::vec(any::<u8>(), 0..128)) {
        let repr = ipv4::Repr {
            src_addr: src,
            dst_addr: dst,
            protocol: proto.into(),
            payload_len: payload.len(),
            ttl,
            dscp_ecn: dscp,
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        let mut packet = ipv4::Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut packet);
        packet.payload_mut().copy_from_slice(&payload);
        // Payload writes after emit invalidate nothing: checksum covers
        // the header only.
        let packet = ipv4::Packet::new_checked(&buf[..]).unwrap();
        prop_assert!(packet.verify_checksum());
        prop_assert_eq!(ipv4::Repr::parse(&packet).unwrap(), repr);
        prop_assert_eq!(packet.payload(), &payload[..]);
    }

    #[test]
    fn udp_roundtrip(src in arb_ip(), dst in arb_ip(), sp in any::<u16>(), dp in any::<u16>(),
                     payload in proptest::collection::vec(any::<u8>(), 0..128)) {
        let repr = udp::Repr { src_port: sp, dst_port: dp, payload_len: payload.len() };
        let mut buf = vec![0u8; repr.buffer_len()];
        let mut dgram = udp::Datagram::new_unchecked(&mut buf[..]);
        dgram.set_len_field(repr.buffer_len() as u16);
        dgram.payload_mut().copy_from_slice(&payload);
        repr.emit(&mut dgram, src, dst);
        let dgram = udp::Datagram::new_checked(&buf[..]).unwrap();
        prop_assert_eq!(udp::Repr::parse(&dgram, src, dst).unwrap(), repr);
    }

    #[test]
    fn tcp_roundtrip(src in arb_ip(), dst in arb_ip(), sp in any::<u16>(), dp in any::<u16>(),
                     seq in any::<u32>(), ack in any::<u32>(), flag_bits in 0u8..0x40,
                     window in any::<u16>(),
                     payload in proptest::collection::vec(any::<u8>(), 0..128)) {
        let repr = tcp::Repr {
            src_port: sp,
            dst_port: dp,
            seq_number: seq,
            ack_number: ack,
            flags: tcp::Flags::from_byte(flag_bits),
            window,
            payload_len: payload.len(),
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        let mut seg = tcp::Segment::new_unchecked(&mut buf[..]);
        seg.set_header_len(tcp::HEADER_LEN as u8);
        seg.payload_mut().copy_from_slice(&payload);
        repr.emit(&mut seg, src, dst);
        let seg = tcp::Segment::new_checked(&buf[..]).unwrap();
        prop_assert_eq!(tcp::Repr::parse(&seg, src, dst).unwrap(), repr);
    }

    #[test]
    fn icmp_echo_roundtrip(ident in any::<u16>(), seq in any::<u16>(), request in any::<bool>(),
                           payload in proptest::collection::vec(any::<u8>(), 0..64)) {
        let message = if request {
            icmpv4::Message::EchoRequest { ident, seq }
        } else {
            icmpv4::Message::EchoReply { ident, seq }
        };
        let repr = icmpv4::Repr { message, payload_len: payload.len() };
        let mut buf = vec![0u8; repr.buffer_len()];
        let mut packet = icmpv4::Packet::new_unchecked(&mut buf[..]);
        packet.payload_mut().copy_from_slice(&payload);
        repr.emit(&mut packet);
        let packet = icmpv4::Packet::new_checked(&buf[..]).unwrap();
        prop_assert_eq!(icmpv4::Repr::parse(&packet).unwrap(), repr);
    }

    #[test]
    fn lldp_roundtrip(chassis in any::<u64>(), port in any::<u32>(), ttl in any::<u16>()) {
        let repr = lldp::Repr { chassis_id: chassis, port_id: port, ttl_secs: ttl };
        let mut buf = vec![0u8; repr.buffer_len()];
        repr.emit(&mut buf);
        prop_assert_eq!(lldp::Repr::parse(&buf).unwrap(), repr);
    }

    #[test]
    fn parsers_never_panic(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Every checked parse is total over arbitrary input.
        if let Ok(frame) = ethernet::Frame::new_checked(&data[..]) {
            let _ = ethernet::Repr::parse(&frame);
        }
        if let Ok(p) = ipv4::Packet::new_checked(&data[..]) {
            let _ = ipv4::Repr::parse(&p);
        }
        if let Ok(p) = arp::Packet::new_checked(&data[..]) {
            let _ = arp::Repr::parse(&p);
        }
        if let Ok(d) = udp::Datagram::new_checked(&data[..]) {
            let _ = udp::Repr::parse(&d, Ipv4Address::UNSPECIFIED, Ipv4Address::UNSPECIFIED);
        }
        if let Ok(s) = tcp::Segment::new_checked(&data[..]) {
            let _ = tcp::Repr::parse(&s, Ipv4Address::UNSPECIFIED, Ipv4Address::UNSPECIFIED);
        }
        if let Ok(p) = icmpv4::Packet::new_checked(&data[..]) {
            let _ = icmpv4::Repr::parse(&p);
        }
        let _ = lldp::Repr::parse(&data);
    }
}
