//! Randomized tests for the wire formats: every `Repr` round-trips
//! through emit/parse, and no parser panics on arbitrary bytes.
//!
//! Driven by the in-tree deterministic [`Lcg`] generator with fixed
//! seeds, so every run exercises the same reproducible inputs.

use zen_wire::lcg::Lcg;
use zen_wire::{arp, ethernet, icmpv4, ipv4, lldp, tcp, udp};
use zen_wire::{EthernetAddress, Ipv4Address};

const ITERS: usize = 1_000;

fn gen_mac(rng: &mut Lcg) -> EthernetAddress {
    EthernetAddress::from_bytes(&rng.gen_bytes(6))
}

fn gen_ip(rng: &mut Lcg) -> Ipv4Address {
    Ipv4Address::from_u32(rng.next_u32())
}

#[test]
fn ethernet_roundtrip() {
    let mut rng = Lcg::new(0xE7E0);
    for _ in 0..ITERS {
        let repr = ethernet::Repr {
            dst_addr: gen_mac(&mut rng),
            src_addr: gen_mac(&mut rng),
            ethertype: (rng.next_u32() as u16).into(),
        };
        let payload = {
            let n = rng.gen_index(64);
            rng.gen_bytes(n)
        };
        let mut buf = vec![0u8; repr.buffer_len() + payload.len()];
        let mut frame = ethernet::Frame::new_unchecked(&mut buf[..]);
        repr.emit(&mut frame);
        frame.payload_mut().copy_from_slice(&payload);
        let frame = ethernet::Frame::new_checked(&buf[..]).unwrap();
        assert_eq!(ethernet::Repr::parse(&frame).unwrap(), repr);
        assert_eq!(frame.payload(), &payload[..]);
    }
}

#[test]
fn arp_roundtrip() {
    let mut rng = Lcg::new(0xA4B0);
    for _ in 0..ITERS {
        let repr = arp::Repr {
            operation: if rng.gen_ratio(1, 2) {
                arp::Operation::Request
            } else {
                arp::Operation::Reply
            },
            sender_hardware_addr: gen_mac(&mut rng),
            sender_protocol_addr: gen_ip(&mut rng),
            target_hardware_addr: gen_mac(&mut rng),
            target_protocol_addr: gen_ip(&mut rng),
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        repr.emit(&mut arp::Packet::new_unchecked(&mut buf[..]));
        assert_eq!(
            arp::Repr::parse(&arp::Packet::new_checked(&buf[..]).unwrap()).unwrap(),
            repr
        );
    }
}

#[test]
fn ipv4_roundtrip() {
    let mut rng = Lcg::new(0x1974);
    for _ in 0..ITERS {
        let payload = {
            let n = rng.gen_index(128);
            rng.gen_bytes(n)
        };
        let repr = ipv4::Repr {
            src_addr: gen_ip(&mut rng),
            dst_addr: gen_ip(&mut rng),
            protocol: (rng.next_u32() as u8).into(),
            payload_len: payload.len(),
            ttl: 1 + rng.gen_range(255) as u8,
            dscp_ecn: rng.next_u32() as u8,
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        let mut packet = ipv4::Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut packet);
        packet.payload_mut().copy_from_slice(&payload);
        // Payload writes after emit invalidate nothing: checksum covers
        // the header only.
        let packet = ipv4::Packet::new_checked(&buf[..]).unwrap();
        assert!(packet.verify_checksum());
        assert_eq!(ipv4::Repr::parse(&packet).unwrap(), repr);
        assert_eq!(packet.payload(), &payload[..]);
    }
}

#[test]
fn udp_roundtrip() {
    let mut rng = Lcg::new(0x0D90);
    for _ in 0..ITERS {
        let src = gen_ip(&mut rng);
        let dst = gen_ip(&mut rng);
        let payload = {
            let n = rng.gen_index(128);
            rng.gen_bytes(n)
        };
        let repr = udp::Repr {
            src_port: rng.next_u32() as u16,
            dst_port: rng.next_u32() as u16,
            payload_len: payload.len(),
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        let mut dgram = udp::Datagram::new_unchecked(&mut buf[..]);
        dgram.set_len_field(repr.buffer_len() as u16);
        dgram.payload_mut().copy_from_slice(&payload);
        repr.emit(&mut dgram, src, dst);
        let dgram = udp::Datagram::new_checked(&buf[..]).unwrap();
        assert_eq!(udp::Repr::parse(&dgram, src, dst).unwrap(), repr);
    }
}

#[test]
fn tcp_roundtrip() {
    let mut rng = Lcg::new(0x7C90);
    for _ in 0..ITERS {
        let src = gen_ip(&mut rng);
        let dst = gen_ip(&mut rng);
        let payload = {
            let n = rng.gen_index(128);
            rng.gen_bytes(n)
        };
        let repr = tcp::Repr {
            src_port: rng.next_u32() as u16,
            dst_port: rng.next_u32() as u16,
            seq_number: rng.next_u32(),
            ack_number: rng.next_u32(),
            flags: tcp::Flags::from_byte(rng.gen_range(0x40) as u8),
            window: rng.next_u32() as u16,
            payload_len: payload.len(),
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        let mut seg = tcp::Segment::new_unchecked(&mut buf[..]);
        seg.set_header_len(tcp::HEADER_LEN as u8);
        seg.payload_mut().copy_from_slice(&payload);
        repr.emit(&mut seg, src, dst);
        let seg = tcp::Segment::new_checked(&buf[..]).unwrap();
        assert_eq!(tcp::Repr::parse(&seg, src, dst).unwrap(), repr);
    }
}

#[test]
fn icmp_echo_roundtrip() {
    let mut rng = Lcg::new(0x1C3B);
    for _ in 0..ITERS {
        let ident = rng.next_u32() as u16;
        let seq = rng.next_u32() as u16;
        let message = if rng.gen_ratio(1, 2) {
            icmpv4::Message::EchoRequest { ident, seq }
        } else {
            icmpv4::Message::EchoReply { ident, seq }
        };
        let payload = {
            let n = rng.gen_index(64);
            rng.gen_bytes(n)
        };
        let repr = icmpv4::Repr {
            message,
            payload_len: payload.len(),
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        let mut packet = icmpv4::Packet::new_unchecked(&mut buf[..]);
        packet.payload_mut().copy_from_slice(&payload);
        repr.emit(&mut packet);
        let packet = icmpv4::Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(icmpv4::Repr::parse(&packet).unwrap(), repr);
    }
}

#[test]
fn lldp_roundtrip() {
    let mut rng = Lcg::new(0x11D9);
    for _ in 0..ITERS {
        let repr = lldp::Repr {
            chassis_id: rng.next_u64(),
            port_id: rng.next_u32(),
            ttl_secs: rng.next_u32() as u16,
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        repr.emit(&mut buf);
        assert_eq!(lldp::Repr::parse(&buf).unwrap(), repr);
    }
}

#[test]
fn parsers_never_panic() {
    let mut rng = Lcg::new(0xF00D);
    for _ in 0..ITERS {
        let data = {
            let n = rng.gen_index(256);
            rng.gen_bytes(n)
        };
        // Every checked parse is total over arbitrary input.
        if let Ok(frame) = ethernet::Frame::new_checked(&data[..]) {
            let _ = ethernet::Repr::parse(&frame);
        }
        if let Ok(p) = ipv4::Packet::new_checked(&data[..]) {
            let _ = ipv4::Repr::parse(&p);
        }
        if let Ok(p) = arp::Packet::new_checked(&data[..]) {
            let _ = arp::Repr::parse(&p);
        }
        if let Ok(d) = udp::Datagram::new_checked(&data[..]) {
            let _ = udp::Repr::parse(&d, Ipv4Address::UNSPECIFIED, Ipv4Address::UNSPECIFIED);
        }
        if let Ok(s) = tcp::Segment::new_checked(&data[..]) {
            let _ = tcp::Repr::parse(&s, Ipv4Address::UNSPECIFIED, Ipv4Address::UNSPECIFIED);
        }
        if let Ok(p) = icmpv4::Packet::new_checked(&data[..]) {
            let _ = icmpv4::Repr::parse(&p);
        }
        let _ = lldp::Repr::parse(&data);
    }
}
