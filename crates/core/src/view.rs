//! The controller's network view: switches, ports, links, and hosts.
//!
//! Everything in the view is *learned* — switches from FEATURES_REPLY,
//! links from LLDP round trips, hosts from the source addresses of
//! punted edge-port traffic — never taken from simulator ground truth.

use std::collections::{BTreeMap, BTreeSet};

use zen_dataplane::PortNo;
use zen_graph::Graph;
use zen_sim::{Duration, Instant};
use zen_wire::{EthernetAddress, Ipv4Address};

/// A datapath id.
pub type Dpid = u64;

/// What the controller knows about one switch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SwitchInfo {
    /// Ports and their operational state.
    pub ports: BTreeMap<PortNo, bool>,
    /// Number of pipeline tables.
    pub n_tables: u8,
}

/// A learned host attachment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostEntry {
    /// Switch the host hangs off.
    pub dpid: Dpid,
    /// Edge port it was seen on.
    pub port: PortNo,
    /// IP address, if any frame revealed one.
    pub ip: Option<Ipv4Address>,
    /// Last sighting.
    pub last_seen: Instant,
}

/// The controller's model of the network.
#[derive(Debug, Default)]
pub struct NetworkView {
    /// Known switches.
    pub switches: BTreeMap<Dpid, SwitchInfo>,
    /// Directed switch links: (src dpid, src port) → (dst dpid, dst port).
    pub links: BTreeMap<(Dpid, PortNo), (Dpid, PortNo)>,
    /// Last LLDP confirmation per directed link.
    pub link_seen: BTreeMap<(Dpid, PortNo), Instant>,
    /// Learned hosts keyed by MAC.
    pub hosts: BTreeMap<EthernetAddress, HostEntry>,
    /// Switches whose control session is presumed dead. They stay in
    /// `switches` (their last-known shape is still useful) but routing
    /// helpers and the graph route around them.
    quarantined: BTreeSet<Dpid>,
    /// Bumped on every structural change; apps compare against it to
    /// know when to recompute.
    pub version: u64,
}

impl NetworkView {
    /// An empty view.
    pub fn new() -> NetworkView {
        NetworkView::default()
    }

    fn bump(&mut self) {
        self.version += 1;
    }

    /// Register or refresh a switch. A refresh that confirms what we
    /// already know is a no-op — no version bump, so apps don't
    /// recompute over an unchanged view.
    pub fn add_switch(&mut self, dpid: Dpid, n_tables: u8, ports: &[(PortNo, bool)]) {
        let info = SwitchInfo {
            ports: ports.iter().copied().collect(),
            n_tables,
        };
        if self.switches.get(&dpid) != Some(&info) {
            self.switches.insert(dpid, info);
            self.bump();
        }
    }

    /// Record a port state change. Downed ports also tear down any link
    /// using them.
    pub fn set_port(&mut self, dpid: Dpid, port: PortNo, up: bool) {
        if let Some(info) = self.switches.get_mut(&dpid) {
            info.ports.insert(port, up);
        }
        if !up {
            if let Some(peer) = self.links.remove(&(dpid, port)) {
                self.links.remove(&peer);
                self.link_seen.remove(&peer);
            }
            self.link_seen.remove(&(dpid, port));
        }
        self.bump();
    }

    /// Record a discovered unidirectional link, confirming it at `now`.
    /// Returns `true` if new.
    pub fn add_link_at(&mut self, from: (Dpid, PortNo), to: (Dpid, PortNo), now: Instant) -> bool {
        self.link_seen.insert(from, now);
        let new = self.links.insert(from, to) != Some(to);
        if new {
            self.bump();
        }
        new
    }

    /// Record a discovered unidirectional link (unaged). Returns `true`
    /// if new.
    pub fn add_link(&mut self, from: (Dpid, PortNo), to: (Dpid, PortNo)) -> bool {
        self.add_link_at(from, to, Instant::ZERO)
    }

    /// Drop links not LLDP-confirmed within `max_age` — how the
    /// controller notices *silent* failures. Returns the removed links.
    #[allow(clippy::type_complexity)]
    pub fn expire_links(
        &mut self,
        now: Instant,
        max_age: Duration,
    ) -> Vec<((Dpid, PortNo), (Dpid, PortNo))> {
        self.expire_links_filtered(now, max_age, |_, _| true)
    }

    /// [`NetworkView::expire_links`] restricted to links accepted by
    /// `pred(from, to)`. A clustered controller only ages links whose
    /// *destination* switch it masters: LLDP confirmations arrive at the
    /// destination's master, so everyone else's staleness clock says
    /// nothing about the link.
    #[allow(clippy::type_complexity)]
    pub fn expire_links_filtered(
        &mut self,
        now: Instant,
        max_age: Duration,
        pred: impl Fn((Dpid, PortNo), (Dpid, PortNo)) -> bool,
    ) -> Vec<((Dpid, PortNo), (Dpid, PortNo))> {
        let stale: Vec<(Dpid, PortNo)> = self
            .links
            .iter()
            .filter(|(&from, &to)| {
                let seen = self.link_seen.get(&from).copied().unwrap_or(Instant::ZERO);
                now.duration_since(seen) >= max_age && pred(from, to)
            })
            .map(|(&from, _)| from)
            .collect();
        let mut removed = Vec::new();
        for key in stale {
            if let Some(peer) = self.links.remove(&key) {
                removed.push((key, peer));
            }
            self.link_seen.remove(&key);
        }
        if !removed.is_empty() {
            self.bump();
        }
        removed
    }

    /// Reset the staleness clock of every link *into* `dpid` to `now`.
    /// Called on gaining mastership of `dpid`: the new master has not
    /// been receiving that switch's LLDP punts, so each link gets one
    /// full discovery round of grace before it can expire.
    pub fn refresh_links_to(&mut self, dpid: Dpid, now: Instant) {
        let into: Vec<(Dpid, PortNo)> = self
            .links
            .iter()
            .filter(|(_, &(to, _))| to == dpid)
            .map(|(&from, _)| from)
            .collect();
        for key in into {
            self.link_seen.insert(key, now);
        }
    }

    /// Remove one directed link (a replicated `LinkDel` observed by a
    /// peer replica). Returns its former destination, if present.
    pub fn remove_link(&mut self, from: (Dpid, PortNo)) -> Option<(Dpid, PortNo)> {
        self.link_seen.remove(&from);
        let to = self.links.remove(&from);
        if to.is_some() {
            self.bump();
        }
        to
    }

    /// Record a host sighting. Returns `true` if the host is new or
    /// moved (location change), which callers propagate to apps.
    ///
    /// A sighting also evicts *stale* entries: other MACs still claiming
    /// the host's IP from an earlier attachment. Left in place they shadow
    /// the fresh entry in [`NetworkView::host_by_ip`] (first match by MAC
    /// order). The eviction runs both when the sighting carries an IP and
    /// when a known host moves without one — an IP-less sighting (plain
    /// L2 traffic after a handoff) must still displace shadowers of the
    /// IP already on record, since a new master re-learns hosts from
    /// resync-era traffic that rarely repeats the ARP exchange.
    pub fn learn_host(
        &mut self,
        mac: EthernetAddress,
        dpid: Dpid,
        port: PortNo,
        ip: Option<Ipv4Address>,
        now: Instant,
    ) -> bool {
        let evict_shadowers =
            |hosts: &mut BTreeMap<EthernetAddress, HostEntry>, addr: Ipv4Address| -> bool {
                let stale: Vec<EthernetAddress> = hosts
                    .iter()
                    .filter(|(&m, e)| m != mac && e.ip == Some(addr))
                    .map(|(&m, _)| m)
                    .collect();
                let any = !stale.is_empty();
                for m in stale {
                    hosts.remove(&m);
                }
                any
            };
        if let Some(addr) = ip {
            if evict_shadowers(&mut self.hosts, addr) {
                self.bump();
            }
        }
        match self.hosts.get_mut(&mac) {
            Some(entry) => {
                let moved = entry.dpid != dpid || entry.port != port;
                entry.dpid = dpid;
                entry.port = port;
                if ip.is_some() {
                    entry.ip = ip;
                }
                entry.last_seen = now;
                let known_ip = entry.ip;
                if moved {
                    // A location change invalidates earlier attachments
                    // wholesale: whatever IP this host is known by must
                    // stop resolving to dead entries, even though this
                    // particular sighting carried no IP.
                    if let Some(addr) = known_ip.filter(|_| ip.is_none()) {
                        evict_shadowers(&mut self.hosts, addr);
                    }
                    self.bump();
                }
                moved
            }
            None => {
                self.hosts.insert(
                    mac,
                    HostEntry {
                        dpid,
                        port,
                        ip,
                        last_seen: now,
                    },
                );
                self.bump();
                true
            }
        }
    }

    /// Mark a switch's control session dead: routing helpers and the
    /// graph skip it until [`NetworkView::unquarantine`]. Returns `true`
    /// if newly quarantined.
    pub fn quarantine(&mut self, dpid: Dpid) -> bool {
        let new = self.quarantined.insert(dpid);
        if new {
            self.bump();
        }
        new
    }

    /// Lift a quarantine (the switch answered again). Returns `true` if
    /// it was quarantined.
    pub fn unquarantine(&mut self, dpid: Dpid) -> bool {
        let was = self.quarantined.remove(&dpid);
        if was {
            self.bump();
        }
        was
    }

    /// The currently quarantined switches.
    pub fn quarantined(&self) -> &BTreeSet<Dpid> {
        &self.quarantined
    }

    /// Whether a switch is quarantined.
    pub fn is_quarantined(&self, dpid: Dpid) -> bool {
        self.quarantined.contains(&dpid)
    }

    /// All discovered directed links from `a` to `b`, as
    /// `((a, a_port), (b, b_port))`. Empty when either endpoint is
    /// quarantined — a dead switch is not a usable hop.
    #[allow(clippy::type_complexity)]
    pub fn links_between(&self, a: Dpid, b: Dpid) -> Vec<((Dpid, PortNo), (Dpid, PortNo))> {
        if self.is_quarantined(a) || self.is_quarantined(b) {
            return Vec::new();
        }
        self.links
            .iter()
            .filter(|(&(src, _), &(dst, _))| src == a && dst == b)
            .map(|(&from, &to)| (from, to))
            .collect()
    }

    /// Whether a port currently has no discovered switch link (i.e. may
    /// face hosts).
    pub fn is_edge_port(&self, dpid: Dpid, port: PortNo) -> bool {
        !self.links.contains_key(&(dpid, port))
    }

    /// Whether a port exists and is up.
    pub fn port_up(&self, dpid: Dpid, port: PortNo) -> bool {
        self.switches
            .get(&dpid)
            .and_then(|s| s.ports.get(&port))
            .copied()
            .unwrap_or(false)
    }

    /// All (dpid, port) edge ports that are up, on live (unquarantined)
    /// switches.
    pub fn edge_ports(&self) -> Vec<(Dpid, PortNo)> {
        let mut out = Vec::new();
        for (&dpid, info) in &self.switches {
            if self.is_quarantined(dpid) {
                continue;
            }
            for (&port, &up) in &info.ports {
                if up && self.is_edge_port(dpid, port) {
                    out.push((dpid, port));
                }
            }
        }
        out
    }

    /// Find a host by IP.
    pub fn host_by_ip(&self, ip: Ipv4Address) -> Option<(EthernetAddress, HostEntry)> {
        self.hosts
            .iter()
            .find(|(_, e)| e.ip == Some(ip))
            .map(|(&mac, &e)| (mac, e))
    }

    /// The egress port on `from` of the first discovered link toward
    /// `to`, considering only up ports on live switches.
    pub fn port_toward(&self, from: Dpid, to: Dpid) -> Option<PortNo> {
        if self.is_quarantined(from) || self.is_quarantined(to) {
            return None;
        }
        self.links
            .iter()
            .find(|(&(src, sp), &(dst, _))| src == from && dst == to && self.port_up(src, sp))
            .map(|(&(_, sp), _)| sp)
    }

    /// All egress ports on `from` leading directly to `to` (parallel
    /// links), up only, on live switches.
    pub fn ports_toward(&self, from: Dpid, to: Dpid) -> Vec<PortNo> {
        if self.is_quarantined(from) || self.is_quarantined(to) {
            return Vec::new();
        }
        self.links
            .iter()
            .filter(|(&(src, sp), &(dst, _))| src == from && dst == to && self.port_up(src, sp))
            .map(|(&(_, sp), _)| sp)
            .collect()
    }

    /// Build a routing graph: one node per switch, one directed edge per
    /// discovered link whose source port is up. Returns the graph, the
    /// index→dpid table, and the dpid→index map. Edge `capacity` is
    /// `default_capacity` (the view does not know line rates; TE apps
    /// supply them).
    pub fn graph(&self, default_capacity: u64) -> (Graph, Vec<Dpid>, BTreeMap<Dpid, u32>) {
        let dpids: Vec<Dpid> = self.switches.keys().copied().collect();
        let index: BTreeMap<Dpid, u32> = dpids
            .iter()
            .enumerate()
            .map(|(i, &d)| (d, i as u32))
            .collect();
        let mut graph = Graph::with_nodes(dpids.len());
        for (&(src, sp), &(dst, _)) in &self.links {
            if !self.port_up(src, sp) || self.is_quarantined(src) || self.is_quarantined(dst) {
                continue;
            }
            if let (Some(&a), Some(&b)) = (index.get(&src), index.get(&dst)) {
                graph.add_edge(a, b, 1, default_capacity);
            }
        }
        (graph, dpids, index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_switch_view() -> NetworkView {
        let mut v = NetworkView::new();
        v.add_switch(1, 1, &[(1, true), (2, true)]);
        v.add_switch(2, 1, &[(1, true), (2, true)]);
        v.add_link((1, 2), (2, 1));
        v.add_link((2, 1), (1, 2));
        v
    }

    #[test]
    fn edge_port_classification() {
        let v = two_switch_view();
        assert!(v.is_edge_port(1, 1));
        assert!(!v.is_edge_port(1, 2));
        assert_eq!(v.edge_ports(), vec![(1, 1), (2, 2)]);
    }

    #[test]
    fn port_down_tears_links() {
        let mut v = two_switch_view();
        v.set_port(1, 2, false);
        assert!(v.links.is_empty(), "both directions removed");
        assert!(!v.port_up(1, 2));
    }

    #[test]
    fn quarantine_hides_switch_from_routing() {
        let mut v = two_switch_view();
        assert_eq!(v.links_between(1, 2), vec![((1, 2), (2, 1))]);
        let before = v.version;
        assert!(v.quarantine(2));
        assert!(v.version > before, "quarantine is a structural change");
        assert!(!v.quarantine(2), "already quarantined");
        assert_eq!(v.quarantined().iter().copied().collect::<Vec<_>>(), [2]);

        // Routing helpers route around the dead switch; the raw link
        // tables are untouched (discovery state is still real).
        assert!(v.links_between(1, 2).is_empty());
        assert_eq!(v.port_toward(1, 2), None);
        assert!(v.ports_toward(1, 2).is_empty());
        assert_eq!(v.edge_ports(), vec![(1, 1)]);
        let (g, _, _) = v.graph(0);
        assert_eq!(g.edge_count(), 0);
        assert!(v.links.len() == 2, "discovery state preserved");

        assert!(v.unquarantine(2));
        assert!(!v.is_quarantined(2));
        assert_eq!(v.links_between(1, 2).len(), 1);
        assert_eq!(v.port_toward(1, 2), Some(2));
    }

    #[test]
    fn host_learning_and_moves() {
        let mut v = two_switch_view();
        let mac = EthernetAddress::from_id(5);
        let t = Instant::from_millis(1);
        assert!(v.learn_host(mac, 1, 1, None, t));
        assert!(!v.learn_host(mac, 1, 1, Some(Ipv4Address::new(10, 0, 0, 1)), t));
        // IP was filled in without a "moved" signal.
        assert_eq!(
            v.host_by_ip(Ipv4Address::new(10, 0, 0, 1)).map(|(m, _)| m),
            Some(mac)
        );
        // Moving ports reports true.
        assert!(v.learn_host(mac, 2, 2, None, t));
        assert_eq!(v.hosts[&mac].dpid, 2);
        // The IP survives the move.
        assert_eq!(v.hosts[&mac].ip, Some(Ipv4Address::new(10, 0, 0, 1)));
    }

    #[test]
    fn ip_sighting_evicts_stale_claimants() {
        let mut v = two_switch_view();
        let old_mac = EthernetAddress::from_id(5);
        let new_mac = EthernetAddress::from_id(6);
        let ip = Ipv4Address::new(10, 0, 0, 1);
        let t = Instant::from_millis(1);
        v.learn_host(old_mac, 1, 1, Some(ip), t);
        // Same IP shows up under a different MAC (NIC swap, resync-era
        // re-learning after handoff): the stale entry must go, or
        // host_by_ip keeps answering with the dead attachment.
        let before = v.version;
        assert!(v.learn_host(new_mac, 2, 2, Some(ip), t));
        assert!(v.version > before);
        assert!(!v.hosts.contains_key(&old_mac), "stale claimant evicted");
        assert_eq!(
            v.host_by_ip(ip).map(|(m, e)| (m, e.dpid)),
            Some((new_mac, 2))
        );
        // An IP-less sighting of an unknown host never evicts (there is
        // no IP on record to arbitrate).
        v.learn_host(old_mac, 1, 1, None, t);
        assert_eq!(v.hosts.len(), 2);
    }

    #[test]
    fn move_without_ip_unshadows_host_by_ip() {
        // Mastership-handoff regression: a new master's view can hold a
        // stale MAC still claiming a live host's IP (resync-era events
        // replay out of order across replicas, and merged state lands in
        // the public `hosts` map directly). The live host then shows up
        // via plain L2 traffic — a sighting that carries no IP — at a
        // new location. The stale claimant must go, or `host_by_ip`
        // keeps resolving to the dead attachment (first match by MAC
        // order) indefinitely.
        let mut v = two_switch_view();
        let stale_mac = EthernetAddress::from_id(3); // sorts before live_mac
        let live_mac = EthernetAddress::from_id(9);
        let ip = Ipv4Address::new(10, 0, 0, 7);
        let t = Instant::from_millis(1);
        v.learn_host(live_mac, 1, 1, Some(ip), t);
        v.hosts.insert(
            stale_mac,
            HostEntry {
                dpid: 1,
                port: 2,
                ip: Some(ip),
                last_seen: t,
            },
        );
        assert_eq!(
            v.host_by_ip(ip).map(|(m, _)| m),
            Some(stale_mac),
            "stale claimant shadows the live host before the move"
        );
        assert!(v.learn_host(live_mac, 2, 2, None, t), "location change");
        assert!(
            !v.hosts.contains_key(&stale_mac),
            "stale claim evicted on IP-less move"
        );
        assert_eq!(
            v.host_by_ip(ip).map(|(m, e)| (m, e.dpid)),
            Some((live_mac, 2))
        );
    }

    #[test]
    fn filtered_expiry_and_refresh() {
        let mut v = two_switch_view();
        let late = Instant::from_millis(500);
        let age = Duration::from_millis(100);
        // Only links *into* dpid 2 may expire: (1,2)->(2,1) goes, the
        // reverse direction stays even though it is just as stale.
        let removed = v.expire_links_filtered(late, age, |_, (to, _)| to == 2);
        assert_eq!(removed, vec![((1, 2), (2, 1))]);
        assert!(v.links.contains_key(&(2, 1)));

        // refresh_links_to resets the staleness clock for inbound links.
        let mut v2 = two_switch_view();
        v2.refresh_links_to(1, late);
        let removed = v2.expire_links(late, age);
        assert_eq!(removed, vec![((1, 2), (2, 1))], "refreshed link survives");
        assert_eq!(v2.link_seen[&(2, 1)], late);
    }

    #[test]
    fn remove_link_is_directional() {
        let mut v = two_switch_view();
        let before = v.version;
        assert_eq!(v.remove_link((1, 2)), Some((2, 1)));
        assert!(v.version > before);
        assert!(v.links.contains_key(&(2, 1)), "reverse direction kept");
        assert_eq!(v.remove_link((1, 2)), None, "idempotent");
    }

    #[test]
    fn graph_reflects_links_and_port_state() {
        let v = two_switch_view();
        let (g, dpids, index) = v.graph(0);
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(dpids.len(), 2);
        assert_eq!(index[&1], 0);

        let mut v2 = two_switch_view();
        v2.set_port(1, 2, false);
        let (g2, _, _) = v2.graph(0);
        assert_eq!(g2.edge_count(), 0);
    }

    #[test]
    fn ports_toward_and_version_bumps() {
        let mut v = two_switch_view();
        assert_eq!(v.port_toward(1, 2), Some(2));
        assert_eq!(v.ports_toward(1, 2), vec![2]);
        assert_eq!(v.port_toward(2, 1), Some(1));
        let before = v.version;
        v.add_link((1, 2), (2, 1)); // duplicate: no bump
        assert_eq!(v.version, before);
        v.set_port(2, 2, false);
        assert!(v.version > before);
    }
}
