//! Reactive global shortest-path forwarding (ONOS `fwd` style).
//!
//! The first packet of a host pair is punted; the app computes the
//! shortest path over the discovered topology, installs an L2 flow on
//! every switch along it, and releases the packet at the punting
//! switch. Broadcast and unknown-destination frames are delivered to
//! every *edge* port in the network (never onto switch-switch links),
//! which is loop-free on any topology without needing a spanning tree.

use std::any::Any;
use std::collections::BTreeMap;

use zen_dataplane::{Action, FlowMatch, FlowSpec, PortNo};
use zen_graph::dijkstra;
use zen_sim::{Duration, Instant};
use zen_wire::ethernet::Frame;

use crate::app::{App, Disposition};
use crate::controller::Ctl;
use crate::view::Dpid;

/// The reactive forwarding application.
pub struct ReactiveForwarding {
    /// Idle timeout for installed path flows, nanoseconds.
    pub idle_timeout: u64,
    /// Priority of installed flows.
    pub priority: u16,
    /// After a TABLE_FULL from a switch, suppress installs toward it
    /// for this long (traffic still moves via PACKET_OUT) — the
    /// backpressure half of the table-full loop.
    pub pressure_backoff: Duration,
    /// After a TABLE_FULL, install with a shortened idle timeout for
    /// this long, so the congested table drains on its own.
    pub pressure_window: Duration,
    /// Divider applied to `idle_timeout` while a switch is inside its
    /// pressure window.
    pub pressure_idle_divisor: u64,
    /// Last TABLE_FULL heard per switch.
    table_full_at: BTreeMap<Dpid, Instant>,
    /// Paths installed (metric).
    pub paths_installed: u64,
    /// Edge floods performed (metric).
    pub edge_floods: u64,
    /// TABLE_FULL bounces heard (metric).
    pub table_full_events: u64,
    /// Per-hop installs skipped while a switch was backing off (metric).
    pub installs_suppressed: u64,
}

impl ReactiveForwarding {
    /// A reactive forwarder with a 5-second idle timeout.
    pub fn new() -> ReactiveForwarding {
        ReactiveForwarding {
            idle_timeout: 5_000_000_000,
            priority: 100,
            pressure_backoff: Duration::from_millis(200),
            pressure_window: Duration::from_secs(2),
            pressure_idle_divisor: 4,
            table_full_at: BTreeMap::new(),
            paths_installed: 0,
            edge_floods: 0,
            table_full_events: 0,
            installs_suppressed: 0,
        }
    }

    /// Whether installs toward `dpid` are currently suppressed.
    fn backing_off(&self, dpid: Dpid, now: Instant) -> bool {
        self.table_full_at
            .get(&dpid)
            .is_some_and(|&at| now.duration_since(at) < self.pressure_backoff)
    }

    /// The idle timeout to install on `dpid` right now: shortened while
    /// the switch is inside its pressure window so the table drains.
    fn idle_for(&self, dpid: Dpid, now: Instant) -> u64 {
        let pressured = self
            .table_full_at
            .get(&dpid)
            .is_some_and(|&at| now.duration_since(at) < self.pressure_window);
        if pressured {
            self.idle_timeout / self.pressure_idle_divisor.max(1)
        } else {
            self.idle_timeout
        }
    }

    /// Deliver a frame to every up edge port except the one it came in
    /// on — the controller-mediated broadcast primitive.
    fn flood_to_edges(&mut self, ctl: &mut Ctl<'_, '_>, ingress: (Dpid, PortNo), frame: &[u8]) {
        self.edge_floods += 1;
        for (dpid, port) in ctl.view.edge_ports() {
            if (dpid, port) != ingress {
                ctl.packet_out(dpid, 0, &[Action::Output(port)], frame);
            }
        }
    }
}

impl Default for ReactiveForwarding {
    fn default() -> ReactiveForwarding {
        ReactiveForwarding::new()
    }
}

impl App for ReactiveForwarding {
    fn name(&self) -> &'static str {
        "reactive-forwarding"
    }

    fn on_packet_in(
        &mut self,
        ctl: &mut Ctl<'_, '_>,
        dpid: Dpid,
        in_port: PortNo,
        frame: &[u8],
    ) -> Disposition {
        let Ok(eth) = Frame::new_checked(frame) else {
            return Disposition::Continue;
        };
        let dst = eth.dst_addr();
        if dst.is_multicast() {
            self.flood_to_edges(ctl, (dpid, in_port), frame);
            return Disposition::Handled;
        }
        let Some(&host) = ctl.view.hosts.get(&dst) else {
            // Unknown unicast: deliver everywhere a host could be.
            self.flood_to_edges(ctl, (dpid, in_port), frame);
            return Disposition::Handled;
        };

        // Shortest path from the punting switch to the host's switch.
        let (graph, dpids, index) = ctl.view.graph(0);
        let (Some(&src_ix), Some(&dst_ix)) = (index.get(&dpid), index.get(&host.dpid)) else {
            return Disposition::Handled;
        };
        let hops: Vec<Dpid> = if src_ix == dst_ix {
            vec![dpid]
        } else {
            let sp = dijkstra(&graph, src_ix);
            let Some(path) = sp.path_to(&graph, dst_ix) else {
                // Partitioned: drop.
                return Disposition::Handled;
            };
            path.nodes.iter().map(|&ix| dpids[ix as usize]).collect()
        };

        // Install (eth_src, eth_dst) flows hop by hop. Switches inside
        // their table-full backoff window are skipped — the packet is
        // still released, so traffic keeps moving controller-mediated,
        // and the skipped hop re-punts once its table has drained.
        self.paths_installed += 1;
        let now = ctl.now();
        let matcher = FlowMatch {
            eth_src: Some(eth.src_addr()),
            eth_dst: Some(dst),
            ..FlowMatch::ANY
        };
        let mut first_out_port = None;
        // One transaction per path: the whole hop-by-hop program is
        // declared (and sent) as a unit.
        let mut txn = ctl.txn();
        for (i, &hop) in hops.iter().enumerate() {
            let out_port = if i + 1 < hops.len() {
                match ctl.view.port_toward(hop, hops[i + 1]) {
                    Some(p) => p,
                    None => return Disposition::Handled, // view changed underneath
                }
            } else {
                host.port
            };
            if i == 0 {
                first_out_port = Some(out_port);
            }
            if self.backing_off(hop, now) {
                self.installs_suppressed += 1;
                continue;
            }
            let spec = FlowSpec::new(self.priority, matcher, vec![Action::Output(out_port)])
                .with_timeouts(self.idle_for(hop, now), 0)
                .with_cookie(REACTIVE_COOKIE);
            txn.flow(hop, 0, spec);
        }
        txn.commit(ctl);
        // Release the trigger packet along the fresh path.
        if let Some(port) = first_out_port {
            ctl.packet_out(dpid, in_port, &[Action::Output(port)], frame);
        }
        Disposition::Handled
    }

    fn on_table_full(&mut self, ctl: &mut Ctl<'_, '_>, dpid: Dpid) {
        self.table_full_events += 1;
        let now = ctl.now();
        self.table_full_at.insert(dpid, now);
    }

    fn on_port_status(&mut self, ctl: &mut Ctl<'_, '_>, _dpid: Dpid, _port: PortNo, _up: bool) {
        // Topology changed: our installed paths may now traverse a dead
        // link. Purge them everywhere; traffic re-punts and re-routes
        // over the updated view (ONOS flow re-computation, simplified).
        let switches: Vec<Dpid> = ctl.view.switches.keys().copied().collect();
        for dpid in switches {
            ctl.delete_flows_by_cookie(dpid, REACTIVE_COOKIE);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

pub use crate::policy::REACTIVE_COOKIE;
