//! Network monitoring: periodic statistics collection.
//!
//! The observability half of a network OS: every N ticks the app sends
//! STATS_REQUESTs (port and table) to every switch and folds the
//! replies into a queryable utilization snapshot — the data source a
//! TE app's demand estimator or an operator dashboard would read.

use std::any::Any;
use std::collections::BTreeMap;

use zen_dataplane::PortNo;
use zen_proto::{CacheStatsRec, Message, StatsBody, StatsKind};
use zen_sim::Instant;

use crate::app::App;
use crate::controller::Ctl;
use crate::view::Dpid;

/// A port-counter snapshot with its arrival time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortSample {
    /// When the sample arrived at the controller.
    pub at_nanos: u64,
    /// Frames received by the port.
    pub rx_frames: u64,
    /// Bytes received.
    pub rx_bytes: u64,
    /// Frames sent.
    pub tx_frames: u64,
    /// Bytes sent.
    pub tx_bytes: u64,
}

/// The statistics-collection application.
pub struct Monitor {
    /// Poll every `period_ticks` controller ticks.
    pub period_ticks: u32,
    tick_count: u32,
    /// Latest sample per (switch, port), plus the previous one for rate
    /// estimation.
    latest: BTreeMap<(Dpid, PortNo), PortSample>,
    previous: BTreeMap<(Dpid, PortNo), PortSample>,
    /// Latest per-table (active entries, hits, misses) per switch.
    pub tables: BTreeMap<(Dpid, u8), (u32, u64, u64)>,
    /// Latest flow-cache counters per switch.
    pub caches: BTreeMap<Dpid, CacheStatsRec>,
    /// Polls issued (metric).
    pub polls: u64,
    /// Replies folded in (metric).
    pub replies: u64,
}

impl Monitor {
    /// A monitor polling every `period_ticks` ticks.
    pub fn new(period_ticks: u32) -> Monitor {
        Monitor {
            period_ticks: period_ticks.max(1),
            tick_count: 0,
            latest: BTreeMap::new(),
            previous: BTreeMap::new(),
            tables: BTreeMap::new(),
            caches: BTreeMap::new(),
            polls: 0,
            replies: 0,
        }
    }

    /// A switch's flow-cache hit rate over all traffic so far, in
    /// `[0, 1]`. `None` before the first sample or any traffic.
    pub fn cache_hit_rate(&self, dpid: Dpid) -> Option<f64> {
        let s = self.caches.get(&dpid)?;
        let hits = s.micro_hits + s.mega_hits;
        let total = hits + s.misses;
        if total == 0 {
            return None;
        }
        Some(hits as f64 / total as f64)
    }

    /// The latest sample for a port.
    pub fn port_sample(&self, dpid: Dpid, port: PortNo) -> Option<PortSample> {
        self.latest.get(&(dpid, port)).copied()
    }

    /// Estimated transmit rate of a port in bits/sec, from the last two
    /// samples. `None` until two samples exist.
    pub fn tx_rate_bps(&self, dpid: Dpid, port: PortNo) -> Option<f64> {
        let new = self.latest.get(&(dpid, port))?;
        let old = self.previous.get(&(dpid, port))?;
        let dt = new.at_nanos.saturating_sub(old.at_nanos);
        if dt == 0 {
            return None;
        }
        Some((new.tx_bytes.saturating_sub(old.tx_bytes)) as f64 * 8.0 * 1e9 / dt as f64)
    }

    /// Total bytes forwarded network-wide (sum of port tx counters).
    pub fn total_tx_bytes(&self) -> u64 {
        self.latest.values().map(|s| s.tx_bytes).sum()
    }

    /// Switch/port pairs sorted by estimated tx rate, busiest first.
    pub fn busiest_ports(&self) -> Vec<((Dpid, PortNo), f64)> {
        let mut rates: Vec<((Dpid, PortNo), f64)> = self
            .latest
            .keys()
            .filter_map(|&key| self.tx_rate_bps(key.0, key.1).map(|r| (key, r)))
            .collect();
        rates.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        rates
    }
}

impl App for Monitor {
    fn name(&self) -> &'static str {
        "monitor"
    }

    fn tick(&mut self, ctl: &mut Ctl<'_, '_>) {
        self.tick_count += 1;
        if !self.tick_count.is_multiple_of(self.period_ticks) {
            return;
        }
        let switches: Vec<Dpid> = ctl.view.switches.keys().copied().collect();
        for dpid in switches {
            self.polls += 1;
            ctl.send(
                dpid,
                &Message::StatsRequest {
                    kind: StatsKind::Port { port_no: 0 },
                },
            );
            ctl.send(
                dpid,
                &Message::StatsRequest {
                    kind: StatsKind::Table,
                },
            );
            ctl.send(
                dpid,
                &Message::StatsRequest {
                    kind: StatsKind::Cache,
                },
            );
        }
    }

    fn on_stats(&mut self, ctl: &mut Ctl<'_, '_>, dpid: Dpid, body: &StatsBody) {
        self.replies += 1;
        let now: Instant = ctl.now();
        match body {
            StatsBody::Port(records) => {
                for r in records {
                    let key = (dpid, r.port_no);
                    let sample = PortSample {
                        at_nanos: now.as_nanos(),
                        rx_frames: r.rx_frames,
                        rx_bytes: r.rx_bytes,
                        tx_frames: r.tx_frames,
                        tx_bytes: r.tx_bytes,
                    };
                    if let Some(old) = self.latest.insert(key, sample) {
                        self.previous.insert(key, old);
                    }
                }
            }
            StatsBody::Table(records) => {
                for r in records {
                    self.tables
                        .insert((dpid, r.table_id), (r.active, r.hits, r.misses));
                }
            }
            StatsBody::Cache(rec) => {
                self.caches.insert(dpid, *rec);
            }
            StatsBody::Flow(_) => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}
