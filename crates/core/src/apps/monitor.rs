//! Network monitoring: periodic statistics collection.
//!
//! The observability half of a network OS: every N ticks the app sends
//! STATS_REQUESTs (port, table, flow, and cache) to every switch and
//! folds the replies into a queryable utilization snapshot — the data
//! source a TE app's demand estimator or an operator dashboard would
//! read.
//!
//! The fold methods are public and take plain record slices so the
//! estimators can be unit-tested without standing up a controller.

use std::any::Any;
use std::collections::BTreeMap;

use zen_dataplane::PortNo;
use zen_proto::{CacheStatsRec, FlowStats, Message, PortStatsRec, StatsKind, TableStats};
use zen_sim::Instant;

use crate::app::App;
use crate::controller::Ctl;
use crate::view::Dpid;

/// A port-counter snapshot with its arrival time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortSample {
    /// When the sample arrived at the controller.
    pub at_nanos: u64,
    /// Frames received by the port.
    pub rx_frames: u64,
    /// Bytes received.
    pub rx_bytes: u64,
    /// Frames sent.
    pub tx_frames: u64,
    /// Bytes sent.
    pub tx_bytes: u64,
}

/// A per-table occupancy/pressure snapshot with its arrival time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableSample {
    /// When the sample arrived at the controller.
    pub at_nanos: u64,
    /// Installed entries.
    pub active: u32,
    /// Configured capacity bound; 0 = unbounded.
    pub max_entries: u32,
    /// Lookup hits.
    pub hits: u64,
    /// Lookup misses.
    pub misses: u64,
    /// Entries displaced by capacity eviction since table creation.
    pub evictions: u64,
    /// Adds bounced with `TABLE_FULL` under the refuse policy.
    pub refusals: u64,
}

/// Cumulative per-cookie traffic, aggregated over every table of one
/// switch from its latest flow-stats reply.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowSample {
    /// Packets matched by entries carrying the cookie.
    pub packets: u64,
    /// Bytes matched by entries carrying the cookie.
    pub bytes: u64,
}

/// The statistics-collection application.
pub struct Monitor {
    /// Poll every `period_ticks` controller ticks.
    pub period_ticks: u32,
    tick_count: u32,
    /// Latest sample per (switch, port), plus the previous one for rate
    /// estimation.
    latest: BTreeMap<(Dpid, PortNo), PortSample>,
    previous: BTreeMap<(Dpid, PortNo), PortSample>,
    /// Latest per-table occupancy/pressure sample per switch, plus the
    /// previous one for eviction-rate estimation.
    pub tables: BTreeMap<(Dpid, u8), TableSample>,
    tables_prev: BTreeMap<(Dpid, u8), TableSample>,
    /// Latest per-cookie counters per switch (all tables aggregated).
    pub flows: BTreeMap<(Dpid, u64), FlowSample>,
    /// Latest flow-cache counters per switch.
    pub caches: BTreeMap<Dpid, CacheStatsRec>,
    /// Polls issued (metric).
    pub polls: u64,
    /// Replies folded in (metric).
    pub replies: u64,
}

impl Monitor {
    /// A monitor polling every `period_ticks` ticks.
    pub fn new(period_ticks: u32) -> Monitor {
        Monitor {
            period_ticks: period_ticks.max(1),
            tick_count: 0,
            latest: BTreeMap::new(),
            previous: BTreeMap::new(),
            tables: BTreeMap::new(),
            tables_prev: BTreeMap::new(),
            flows: BTreeMap::new(),
            caches: BTreeMap::new(),
            polls: 0,
            replies: 0,
        }
    }

    /// A switch's flow-cache hit rate over all traffic so far, in
    /// `[0, 1]`. `None` before the first sample or any traffic.
    pub fn cache_hit_rate(&self, dpid: Dpid) -> Option<f64> {
        let s = self.caches.get(&dpid)?;
        let hits = s.micro_hits + s.mega_hits;
        let total = hits + s.misses;
        if total == 0 {
            return None;
        }
        Some(hits as f64 / total as f64)
    }

    /// The latest sample for a port.
    pub fn port_sample(&self, dpid: Dpid, port: PortNo) -> Option<PortSample> {
        self.latest.get(&(dpid, port)).copied()
    }

    /// The latest sample for a flow table.
    pub fn table_sample(&self, dpid: Dpid, table_id: u8) -> Option<TableSample> {
        self.tables.get(&(dpid, table_id)).copied()
    }

    /// A table's occupancy as a fraction of its capacity bound, in
    /// `[0, 1]`. `None` before the first sample or when unbounded.
    pub fn table_occupancy(&self, dpid: Dpid, table_id: u8) -> Option<f64> {
        let s = self.tables.get(&(dpid, table_id))?;
        if s.max_entries == 0 {
            return None;
        }
        Some(f64::from(s.active) / f64::from(s.max_entries))
    }

    /// Estimated capacity-eviction rate of a table in evictions/sec,
    /// from the last two samples. `None` until two samples exist.
    pub fn eviction_rate(&self, dpid: Dpid, table_id: u8) -> Option<f64> {
        let new = self.tables.get(&(dpid, table_id))?;
        let old = self.tables_prev.get(&(dpid, table_id))?;
        let dt = new.at_nanos.saturating_sub(old.at_nanos);
        if dt == 0 {
            return None;
        }
        Some(new.evictions.saturating_sub(old.evictions) as f64 * 1e9 / dt as f64)
    }

    /// Capacity evictions network-wide (sum over latest table samples).
    pub fn total_evictions(&self) -> u64 {
        self.tables.values().map(|s| s.evictions).sum()
    }

    /// TABLE_FULL refusals network-wide (sum over latest table samples).
    pub fn total_refusals(&self) -> u64 {
        self.tables.values().map(|s| s.refusals).sum()
    }

    /// Estimated transmit rate of a port in bits/sec, from the last two
    /// samples. `None` until two samples exist.
    pub fn tx_rate_bps(&self, dpid: Dpid, port: PortNo) -> Option<f64> {
        let new = self.latest.get(&(dpid, port))?;
        let old = self.previous.get(&(dpid, port))?;
        let dt = new.at_nanos.saturating_sub(old.at_nanos);
        if dt == 0 {
            return None;
        }
        Some((new.tx_bytes.saturating_sub(old.tx_bytes)) as f64 * 8.0 * 1e9 / dt as f64)
    }

    /// Total bytes forwarded network-wide (sum of port tx counters).
    pub fn total_tx_bytes(&self) -> u64 {
        self.latest.values().map(|s| s.tx_bytes).sum()
    }

    /// Switch/port pairs sorted by estimated tx rate, busiest first;
    /// ties broken by ascending (dpid, port).
    pub fn busiest_ports(&self) -> Vec<((Dpid, PortNo), f64)> {
        let mut rates: Vec<((Dpid, PortNo), f64)> = self
            .latest
            .keys()
            .filter_map(|&key| self.tx_rate_bps(key.0, key.1).map(|r| (key, r)))
            .collect();
        rates.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        rates
    }

    /// The `n` heaviest cookies network-wide by cumulative bytes,
    /// heaviest first; ties broken by ascending (dpid, cookie).
    pub fn top_flows(&self, n: usize) -> Vec<((Dpid, u64), FlowSample)> {
        let mut flows: Vec<((Dpid, u64), FlowSample)> =
            self.flows.iter().map(|(&k, &v)| (k, v)).collect();
        flows.sort_by(|a, b| b.1.bytes.cmp(&a.1.bytes).then(a.0.cmp(&b.0)));
        flows.truncate(n);
        flows
    }

    /// Fold a port-stats reply that arrived at `at`.
    pub fn fold_port_stats(&mut self, at: Instant, dpid: Dpid, records: &[PortStatsRec]) {
        self.replies += 1;
        for r in records {
            let key = (dpid, r.port_no);
            let sample = PortSample {
                at_nanos: at.as_nanos(),
                rx_frames: r.rx_frames,
                rx_bytes: r.rx_bytes,
                tx_frames: r.tx_frames,
                tx_bytes: r.tx_bytes,
            };
            if let Some(old) = self.latest.insert(key, sample) {
                self.previous.insert(key, old);
            }
        }
    }

    /// Fold a table-stats reply that arrived at `at`.
    pub fn fold_table_stats(&mut self, at: Instant, dpid: Dpid, records: &[TableStats]) {
        self.replies += 1;
        for r in records {
            let key = (dpid, r.table_id);
            let sample = TableSample {
                at_nanos: at.as_nanos(),
                active: r.active,
                max_entries: r.max_entries,
                hits: r.hits,
                misses: r.misses,
                evictions: r.evictions,
                refusals: r.refusals,
            };
            if let Some(old) = self.tables.insert(key, sample) {
                self.tables_prev.insert(key, old);
            }
        }
    }

    /// Fold an all-tables flow-stats reply: the switch's per-cookie
    /// aggregate is replaced wholesale (counters are cumulative, so the
    /// newest reply subsumes older ones).
    pub fn fold_flow_stats(&mut self, dpid: Dpid, records: &[FlowStats]) {
        self.replies += 1;
        self.flows.retain(|&(d, _), _| d != dpid);
        for r in records {
            let slot = self.flows.entry((dpid, r.cookie)).or_default();
            slot.packets += r.packets;
            slot.bytes += r.bytes;
        }
    }

    /// Fold a cache-stats reply.
    pub fn fold_cache_stats(&mut self, dpid: Dpid, record: &CacheStatsRec) {
        self.replies += 1;
        self.caches.insert(dpid, *record);
    }
}

impl App for Monitor {
    fn name(&self) -> &'static str {
        "monitor"
    }

    fn tick(&mut self, ctl: &mut Ctl<'_, '_>) {
        self.tick_count += 1;
        if !self.tick_count.is_multiple_of(self.period_ticks) {
            return;
        }
        let switches: Vec<Dpid> = ctl.view.switches.keys().copied().collect();
        for dpid in switches {
            self.polls += 1;
            ctl.send(
                dpid,
                &Message::StatsRequest {
                    kind: StatsKind::Port { port_no: 0 },
                },
            );
            ctl.send(
                dpid,
                &Message::StatsRequest {
                    kind: StatsKind::Table,
                },
            );
            ctl.send(
                dpid,
                &Message::StatsRequest {
                    kind: StatsKind::Flow { table_id: 0xff },
                },
            );
            ctl.send(
                dpid,
                &Message::StatsRequest {
                    kind: StatsKind::Cache,
                },
            );
        }
    }

    fn on_port_stats(&mut self, ctl: &mut Ctl<'_, '_>, dpid: Dpid, records: &[PortStatsRec]) {
        let now = ctl.now();
        self.fold_port_stats(now, dpid, records);
    }

    fn on_table_stats(&mut self, ctl: &mut Ctl<'_, '_>, dpid: Dpid, records: &[TableStats]) {
        let now = ctl.now();
        self.fold_table_stats(now, dpid, records);
    }

    fn on_flow_stats(&mut self, _ctl: &mut Ctl<'_, '_>, dpid: Dpid, records: &[FlowStats]) {
        self.fold_flow_stats(dpid, records);
    }

    fn on_cache_stats(&mut self, _ctl: &mut Ctl<'_, '_>, dpid: Dpid, record: &CacheStatsRec) {
        self.fold_cache_stats(dpid, record);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn port_rec(port_no: PortNo, tx_bytes: u64) -> PortStatsRec {
        PortStatsRec {
            port_no,
            rx_frames: 0,
            rx_bytes: 0,
            tx_frames: tx_bytes / 100,
            tx_bytes,
        }
    }

    #[test]
    fn tx_rate_needs_two_samples() {
        let mut m = Monitor::new(1);
        m.fold_port_stats(Instant::from_secs(1), 1, &[port_rec(1, 1000)]);
        assert_eq!(m.tx_rate_bps(1, 1), None);
        assert_eq!(m.port_sample(1, 1).unwrap().tx_bytes, 1000);
    }

    #[test]
    fn tx_rate_from_two_polls() {
        let mut m = Monitor::new(1);
        m.fold_port_stats(Instant::from_secs(1), 1, &[port_rec(1, 1000)]);
        m.fold_port_stats(Instant::from_secs(2), 1, &[port_rec(1, 2000)]);
        // 1000 bytes over 1 s = 8000 bits/s.
        let rate = m.tx_rate_bps(1, 1).unwrap();
        assert!((rate - 8000.0).abs() < 1e-6, "rate = {rate}");
        assert_eq!(m.replies, 2);
    }

    #[test]
    fn tx_rate_zero_dt_is_none() {
        let mut m = Monitor::new(1);
        m.fold_port_stats(Instant::from_secs(1), 1, &[port_rec(1, 1000)]);
        m.fold_port_stats(Instant::from_secs(1), 1, &[port_rec(1, 2000)]);
        assert_eq!(m.tx_rate_bps(1, 1), None);
    }

    #[test]
    fn busiest_ports_orders_by_rate_then_key() {
        let mut m = Monitor::new(1);
        // Two polls; port (1,1) moves 3000 B/s, (1,2) and (2,1) tie at
        // 1000 B/s, port (2,2) has only one sample (no rate).
        m.fold_port_stats(Instant::from_secs(1), 1, &[port_rec(1, 0), port_rec(2, 0)]);
        m.fold_port_stats(Instant::from_secs(1), 2, &[port_rec(1, 0)]);
        m.fold_port_stats(
            Instant::from_secs(2),
            1,
            &[port_rec(1, 3000), port_rec(2, 1000)],
        );
        m.fold_port_stats(
            Instant::from_secs(2),
            2,
            &[port_rec(1, 1000), port_rec(2, 9999)],
        );
        let busiest = m.busiest_ports();
        let keys: Vec<(Dpid, PortNo)> = busiest.iter().map(|&(k, _)| k).collect();
        // Fastest first; the 1000 B/s tie breaks by ascending key; the
        // single-sample port is absent entirely.
        assert_eq!(keys, vec![(1, 1), (1, 2), (2, 1)]);
        assert!(busiest[0].1 > busiest[1].1);
        assert_eq!(busiest[1].1, busiest[2].1);
    }

    #[test]
    fn cache_hit_rate_edge_cases() {
        let mut m = Monitor::new(1);
        // No sample yet.
        assert_eq!(m.cache_hit_rate(1), None);
        // A sample with no traffic: still None, not 0/0.
        let mut rec = CacheStatsRec {
            micro_hits: 0,
            mega_hits: 0,
            misses: 0,
            inserts: 0,
            invalidations: 0,
            micro_evictions: 0,
            mega_evictions: 0,
            generation: 0,
            entries: 0,
        };
        m.fold_cache_stats(1, &rec);
        assert_eq!(m.cache_hit_rate(1), None);
        // 6 hits (both tiers) out of 8 lookups.
        rec.micro_hits = 4;
        rec.mega_hits = 2;
        rec.misses = 2;
        m.fold_cache_stats(1, &rec);
        assert!((m.cache_hit_rate(1).unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn table_occupancy_and_eviction_rate() {
        let mut m = Monitor::new(1);
        let rec = |active, evictions| TableStats {
            table_id: 0,
            active,
            max_entries: 256,
            hits: 0,
            misses: 0,
            evictions,
            refusals: 0,
        };
        // One sample: occupancy known, rate unknown.
        m.fold_table_stats(Instant::from_secs(1), 1, &[rec(64, 0)]);
        assert!((m.table_occupancy(1, 0).unwrap() - 0.25).abs() < 1e-12);
        assert_eq!(m.eviction_rate(1, 0), None);
        // Second sample 1 s later with 10 more evictions: 10/s.
        m.fold_table_stats(Instant::from_secs(2), 1, &[rec(256, 10)]);
        assert!((m.table_occupancy(1, 0).unwrap() - 1.0).abs() < 1e-12);
        assert!((m.eviction_rate(1, 0).unwrap() - 10.0).abs() < 1e-9);
        assert_eq!(m.total_evictions(), 10);
        // An unbounded table (max_entries = 0) has no occupancy.
        m.fold_table_stats(
            Instant::from_secs(2),
            2,
            &[TableStats {
                table_id: 0,
                active: 5,
                max_entries: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
                refusals: 3,
            }],
        );
        assert_eq!(m.table_occupancy(2, 0), None);
        assert_eq!(m.total_refusals(), 3);
    }

    #[test]
    fn flow_stats_aggregate_by_cookie_and_replace_on_repoll() {
        let mut m = Monitor::new(1);
        let recs = [
            FlowStats {
                table_id: 0,
                priority: 10,
                cookie: 7,
                packets: 3,
                bytes: 300,
            },
            FlowStats {
                table_id: 1,
                priority: 10,
                cookie: 7,
                packets: 2,
                bytes: 200,
            },
            FlowStats {
                table_id: 0,
                priority: 5,
                cookie: 9,
                packets: 1,
                bytes: 900,
            },
        ];
        m.fold_flow_stats(1, &recs);
        // Cookie 7 aggregates across tables.
        assert_eq!(
            m.flows[&(1, 7)],
            FlowSample {
                packets: 5,
                bytes: 500
            }
        );
        // Heaviest-first with (dpid, cookie) tie-break and truncation.
        let top = m.top_flows(1);
        assert_eq!(
            top,
            vec![(
                (1, 9),
                FlowSample {
                    packets: 1,
                    bytes: 900
                }
            )]
        );
        // A re-poll replaces the switch's aggregate (cumulative
        // counters), rather than double-counting.
        m.fold_flow_stats(
            1,
            &[FlowStats {
                table_id: 0,
                priority: 10,
                cookie: 7,
                packets: 6,
                bytes: 600,
            }],
        );
        assert_eq!(
            m.top_flows(10),
            vec![(
                (1, 7),
                FlowSample {
                    packets: 6,
                    bytes: 600
                }
            )]
        );
    }

    #[test]
    fn equal_byte_flows_tie_break_by_key() {
        let mut m = Monitor::new(1);
        let rec = |cookie| FlowStats {
            table_id: 0,
            priority: 1,
            cookie,
            packets: 1,
            bytes: 100,
        };
        m.fold_flow_stats(2, &[rec(1)]);
        m.fold_flow_stats(1, &[rec(2), rec(1)]);
        let keys: Vec<(Dpid, u64)> = m.top_flows(10).into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![(1, 1), (1, 2), (2, 1)]);
    }
}
