//! Built-in controller applications.
//!
//! * [`l2::L2Learning`] — per-switch MAC learning, the "hello world" of
//!   SDN controllers (Ryu's `simple_switch`).
//! * [`reactive::ReactiveForwarding`] — global shortest-path forwarding
//!   installed on first packet (ONOS `fwd`).
//! * [`proactive::ProactiveFabric`] — up-front ECMP rules for a fabric
//!   with a known host inventory.
//! * [`acl::Acl`] — drop rules installed on every switch at handshake.
//! * [`monitor::Monitor`] — periodic STATS collection into a queryable
//!   utilization snapshot.
//! * [`te::TrafficEngineering`] — B4-style bandwidth allocation onto
//!   VLAN-labelled tunnels with weighted ECMP groups.

pub mod acl;
pub mod l2;
pub mod monitor;
pub mod proactive;
pub mod reactive;
pub mod te;

pub use acl::Acl;
pub use l2::L2Learning;
pub use monitor::{Monitor, TableSample};
pub use proactive::{ProactiveFabric, StaticHost};
pub use reactive::ReactiveForwarding;
pub use te::TrafficEngineering;
