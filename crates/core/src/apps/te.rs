//! B4-style centralized traffic engineering.
//!
//! Sites are switches; each site owns an IPv4 prefix. Given a demand
//! matrix, the app runs the `zen-te` max-min allocator over the
//! discovered topology, then realizes the allocation with VLAN-labelled
//! tunnels:
//!
//! * Each (demand, path) pair gets a VLAN tag.
//! * The ingress switch classifies traffic by destination site prefix
//!   into a SELECT group whose buckets push a tunnel tag and forward;
//!   bucket multiplicity encodes the quantized split weights.
//! * Transit switches forward on the tag alone.
//! * The egress switch pops the tag and hands off to the local delivery
//!   table (table 1), which rewrites the destination MAC per host.
//!
//! Compare with `k = 1` (single shortest path) to reproduce the
//! "centralized TE drives utilization" experiment.
//!
//! ## Update strategies
//!
//! Reconfiguration (demand or topology change) can be applied two ways
//! ([`UpdateStrategy`]):
//!
//! * **TearDownFirst** — delete the old generation, then install the
//!   new one. Simple, but under asynchronous rule application (control
//!   channel jitter) switches transition at unpredictable relative
//!   times and traffic blackholes transiently.
//! * **MakeBeforeBreak** — the consistency-aware scheme of the
//!   congestion-free-update literature (zUpdate/SWAN): install the new
//!   generation's tunnels under fresh VLAN tags alongside the old,
//!   *then* atomically swap the ingress classifiers, *then* (one more
//!   round later) garbage-collect the old generation. Every packet is
//!   handled entirely by one generation, so reconfiguration is
//!   hitless.

use std::any::Any;
use std::collections::BTreeMap;

use zen_dataplane::{Action, Bucket, FlowMatch, FlowSpec, GroupDesc, GroupType, PortNo};
use zen_te::{allocate, quantize_splits, DemandMatrix};
use zen_wire::Ipv4Cidr;

use crate::app::App;
use crate::apps::proactive::StaticHost;
use crate::controller::Ctl;
use crate::view::Dpid;

pub use crate::policy::{TE_GEN0_COOKIE, TE_GEN1_COOKIE, TE_STATIC_COOKIE};

/// How reconfigurations are rolled out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateStrategy {
    /// Delete the old rules, then install the new ones. Disruptive
    /// under asynchronous application.
    TearDownFirst,
    /// Install new-generation tunnels alongside the old, swap ingress
    /// classifiers one round later, collect garbage the round after —
    /// hitless.
    MakeBeforeBreak,
}

fn gen_cookie(generation: u8) -> u64 {
    if generation == 0 {
        TE_GEN0_COOKIE
    } else {
        TE_GEN1_COOKIE
    }
}

fn gen_tag_base(generation: u8) -> u16 {
    // Disjoint VLAN tag spaces per generation.
    if generation == 0 {
        100
    } else {
        2100
    }
}

fn gen_gid_base(generation: u8) -> u32 {
    if generation == 0 {
        0x2000
    } else {
        0x3000
    }
}

/// The deferred phases of a make-before-break rollout.
struct PendingSwap {
    /// Ingress classifier rules pointing at the new generation.
    ingress: Vec<(Dpid, zen_dataplane::FlowSpec)>,
    /// The previous generation's cookie to purge.
    old_cookie: u64,
    /// The previous generation's groups to delete.
    old_groups: Vec<(Dpid, u32)>,
    /// Whether the ingress swap has been sent (phase 2 of 3).
    swap_sent: bool,
}

/// A traffic demand between sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteDemand {
    /// Source site (switch).
    pub src: Dpid,
    /// Destination site (switch).
    pub dst: Dpid,
    /// Requested rate in bits/sec.
    pub rate_bps: u64,
}

/// The traffic-engineering application.
pub struct TrafficEngineering {
    /// Site prefixes.
    pub site_prefixes: BTreeMap<Dpid, Ipv4Cidr>,
    /// Host inventory for local delivery.
    pub hosts: Vec<StaticHost>,
    /// The demand matrix (aggregated per (src, dst) internally).
    pub demands: Vec<SiteDemand>,
    /// Uniform link capacity assumed by the allocator, bits/sec.
    pub capacity_bps: u64,
    /// Candidate paths per demand (1 = shortest-path baseline).
    pub k: usize,
    /// Allocation quantum, bits/sec.
    pub quantum: u64,
    /// ECMP bucket count used to quantize splits.
    pub buckets: u32,
    /// Expected switch count before programming.
    pub expected_switches: usize,
    /// Expected directed link count before programming.
    pub expected_links: usize,
    /// Rollout strategy for reconfigurations.
    pub strategy: UpdateStrategy,
    /// Swap the demand matrix at a scheduled time (nanoseconds), forcing
    /// a live reconfiguration — the trigger the update-disruption
    /// experiment uses.
    pub scheduled_demands: Option<(u64, Vec<SiteDemand>)>,
    installed_version: Option<u64>,
    stable_ticks: u32,
    installed_groups: Vec<(Dpid, u32)>,
    generation: u8,
    pending: Option<PendingSwap>,
    force_reinstall: bool,
    /// Reprogram passes (metric).
    pub installs: u64,
    /// The most recent allocation's granted rates per aggregated demand.
    pub last_rates: Vec<u64>,
    /// The aggregated demands matching `last_rates`.
    pub last_demands: Vec<SiteDemand>,
}

impl TrafficEngineering {
    /// A TE app. See the struct fields for knob meanings.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        site_prefixes: BTreeMap<Dpid, Ipv4Cidr>,
        hosts: Vec<StaticHost>,
        demands: Vec<SiteDemand>,
        capacity_bps: u64,
        k: usize,
        expected_switches: usize,
        expected_links: usize,
    ) -> TrafficEngineering {
        TrafficEngineering {
            site_prefixes,
            hosts,
            demands,
            capacity_bps,
            k,
            quantum: (capacity_bps / 100).max(1),
            buckets: 8,
            expected_switches,
            expected_links,
            strategy: UpdateStrategy::MakeBeforeBreak,
            scheduled_demands: None,
            installed_version: None,
            stable_ticks: 0,
            installed_groups: Vec::new(),
            generation: 1,
            pending: None,
            force_reinstall: false,
            installs: 0,
            last_rates: Vec::new(),
            last_demands: Vec::new(),
        }
    }

    /// Whether tunnels are currently programmed.
    pub fn programmed(&self) -> bool {
        self.installed_version.is_some()
    }

    fn ready(&self, ctl: &Ctl<'_, '_>) -> bool {
        ctl.view.switches.len() >= self.expected_switches
            && ctl.view.links.len() >= self.expected_links
    }

    fn aggregated_demands(&self) -> Vec<SiteDemand> {
        let mut agg: BTreeMap<(Dpid, Dpid), u64> = BTreeMap::new();
        for d in &self.demands {
            if d.src != d.dst {
                *agg.entry((d.src, d.dst)).or_insert(0) += d.rate_bps;
            }
        }
        agg.into_iter()
            .map(|((src, dst), rate_bps)| SiteDemand { src, dst, rate_bps })
            .collect()
    }

    fn install_all(&mut self, ctl: &mut Ctl<'_, '_>) {
        self.installs += 1;
        let (graph, dpids, index) = ctl.view.graph(self.capacity_bps);
        let switch_list: Vec<Dpid> = ctl.view.switches.keys().copied().collect();

        let new_gen = self.generation ^ 1;
        let cookie = gen_cookie(new_gen);
        let old_cookie = gen_cookie(self.generation);
        let old_groups = std::mem::take(&mut self.installed_groups);

        // The whole generation rollout is declared as one relaxed
        // transaction: operations go out in staging order, exactly as
        // the loose calls used to.
        let mut txn = ctl.txn();
        if self.strategy == UpdateStrategy::TearDownFirst {
            // Tear down the previous generation before building the new.
            for &switch in &switch_list {
                txn.delete_flows_by_cookie(switch, old_cookie);
            }
            for &(switch, gid) in &old_groups {
                txn.delete_group(switch, gid);
            }
        }

        // Allocate.
        let demands = self.aggregated_demands();
        let mut matrix = DemandMatrix::new();
        for d in &demands {
            let (Some(&s), Some(&t)) = (index.get(&d.src), index.get(&d.dst)) else {
                continue;
            };
            matrix.push(s, t, d.rate_bps);
        }
        let alloc = allocate(&graph, &matrix, self.k, self.quantum);
        self.last_rates = alloc.rates.clone();
        self.last_demands = demands.clone();

        // Realize tunnels.
        let mut ingress_rules: Vec<(Dpid, FlowSpec)> = Vec::new();
        let mut next_tag: u16 = gen_tag_base(new_gen);
        for (di, demand) in demands.iter().enumerate() {
            let used_paths = &alloc.paths[di];
            if used_paths.is_empty() {
                continue;
            }
            let rates: Vec<u64> = used_paths.iter().map(|(_, r)| *r).collect();
            let weights = quantize_splits(&rates, self.buckets);

            let mut buckets = Vec::new();
            for ((path, _), &weight) in used_paths.iter().zip(&weights) {
                if weight == 0 || path.nodes.len() < 2 {
                    continue;
                }
                let tag = next_tag;
                next_tag += 1;
                let hops: Vec<Dpid> = path.nodes.iter().map(|&ix| dpids[ix as usize]).collect();
                let Some(first_port) = ctl.view.port_toward(hops[0], hops[1]) else {
                    continue;
                };
                // Transit rules.
                for w in 1..hops.len() {
                    let here = hops[w];
                    let matcher = FlowMatch {
                        vlan: Some(Some(tag)),
                        ..FlowMatch::ANY
                    };
                    if w + 1 < hops.len() {
                        let Some(port) = ctl.view.port_toward(here, hops[w + 1]) else {
                            continue;
                        };
                        let spec = FlowSpec::new(80, matcher, vec![Action::Output(port)])
                            .with_cookie(cookie);
                        txn.flow(here, 0, spec);
                    } else {
                        // Egress: untag and deliver locally.
                        let spec = FlowSpec::new(80, matcher, vec![Action::PopVlan])
                            .with_goto(1)
                            .with_cookie(cookie);
                        txn.flow(here, 0, spec);
                    }
                }
                for _ in 0..weight {
                    buckets.push(Bucket {
                        actions: vec![Action::PushVlan(tag), Action::Output(first_port)],
                        watch_port: Some(first_port),
                    });
                }
            }
            if buckets.is_empty() {
                continue;
            }
            let gid = gen_gid_base(new_gen) + di as u32;
            txn.group(
                demand.src,
                gid,
                GroupDesc {
                    group_type: GroupType::Select,
                    buckets,
                },
            );
            self.installed_groups.push((demand.src, gid));

            // Ingress classification. Replacing the previous generation's
            // classifier is the atomic switchover point: FlowTable ADD
            // replaces an identical (priority, match) entry in place.
            if let Some(&prefix) = self.site_prefixes.get(&demand.dst) {
                let spec = FlowSpec::new(70, FlowMatch::ipv4_to(prefix), vec![Action::Group(gid)])
                    .with_cookie(cookie);
                ingress_rules.push((demand.src, spec));
            }
        }

        // Own-site shortcut and local delivery, on every switch.
        let hosts = self.hosts.clone();
        for &switch in &switch_list {
            if let Some(&prefix) = self.site_prefixes.get(&switch) {
                let spec = FlowSpec::new(75, FlowMatch::ipv4_to(prefix), vec![])
                    .with_goto(1)
                    .with_cookie(TE_STATIC_COOKIE);
                txn.flow(switch, 0, spec);
            }
            for host in hosts.iter().filter(|h| h.dpid == switch) {
                let matcher = FlowMatch::ipv4_to(Ipv4Cidr::new(host.ip, 32).expect("/32 is valid"));
                let spec = FlowSpec::new(
                    10,
                    matcher,
                    vec![Action::SetEthDst(host.mac), Action::Output(host.port)],
                )
                .with_cookie(TE_STATIC_COOKIE);
                txn.flow(switch, 1, spec);
            }
        }

        match self.strategy {
            UpdateStrategy::TearDownFirst => {
                // Swap immediately; old state is already gone.
                for (dpid, spec) in ingress_rules {
                    txn.flow(dpid, 0, spec);
                }
                txn.commit(ctl);
            }
            UpdateStrategy::MakeBeforeBreak => {
                // Fence phase 1, then defer the swap and the garbage
                // collection to the next two ticks, leaving room for
                // jittered installs to land everywhere first.
                txn.commit(ctl);
                for &switch in &switch_list {
                    ctl.barrier(switch);
                }
                self.pending = Some(PendingSwap {
                    ingress: ingress_rules,
                    old_cookie,
                    old_groups,
                    swap_sent: false,
                });
            }
        }
        self.generation = new_gen;
        self.installed_version = Some(ctl.view.version);
    }

    /// Advance a pending make-before-break rollout by one phase.
    fn advance_pending(&mut self, ctl: &mut Ctl<'_, '_>) {
        let Some(pending) = self.pending.as_mut() else {
            return;
        };
        if !pending.swap_sent {
            // Phase 2: atomic ingress swap.
            let ingress = std::mem::take(&mut pending.ingress);
            pending.swap_sent = true;
            let mut txn = ctl.txn();
            for (dpid, spec) in ingress {
                txn.flow(dpid, 0, spec);
            }
            txn.commit(ctl);
            return;
        }
        // Phase 3: garbage-collect the old generation.
        let pending = self.pending.take().expect("checked above");
        let switches: Vec<Dpid> = ctl.view.switches.keys().copied().collect();
        let mut txn = ctl.txn();
        for dpid in switches {
            txn.delete_flows_by_cookie(dpid, pending.old_cookie);
        }
        for (dpid, gid) in pending.old_groups {
            txn.delete_group(dpid, gid);
        }
        txn.commit(ctl);
    }
}

impl App for TrafficEngineering {
    fn name(&self) -> &'static str {
        "traffic-engineering"
    }

    fn tick(&mut self, ctl: &mut Ctl<'_, '_>) {
        // Finish any in-flight rollout before considering new work.
        if self.pending.is_some() {
            self.advance_pending(ctl);
            return;
        }
        // A scheduled demand change forces a live reconfiguration.
        if let Some((at, demands)) = self.scheduled_demands.take() {
            if ctl.now().as_nanos() >= at {
                self.demands = demands;
                self.force_reinstall = true;
            } else {
                self.scheduled_demands = Some((at, demands));
            }
        }
        // `ready` gates only the *initial* programming; once programmed,
        // any topology change (including lost links) must reprogram.
        if self.installed_version.is_none() && !self.ready(ctl) {
            return;
        }
        let version_stale = !matches!(self.installed_version, Some(v) if v == ctl.view.version);
        if version_stale || self.force_reinstall {
            self.stable_ticks += 1;
            if self.stable_ticks >= 2 || self.force_reinstall {
                self.stable_ticks = 0;
                self.force_reinstall = false;
                self.install_all(ctl);
            }
        }
    }

    fn on_port_status(&mut self, _ctl: &mut Ctl<'_, '_>, _dpid: Dpid, _port: PortNo, _up: bool) {
        self.stable_ticks = 1;
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}
