//! Proactive ECMP fabric programming.
//!
//! Given a host inventory (the fabric manager's source of truth, as in
//! a datacenter), this app waits for discovery to stabilize, then
//! pushes *all* forwarding state up front: per-destination /32 rules
//! pointing at SELECT groups whose buckets are the equal-cost next-hop
//! ports. Packets never visit the controller; failures are absorbed by
//! group-bucket liveness and a re-install on topology change.
//!
//! Senders address frames to [`FABRIC_MAC`]; the egress switch rewrites
//! the destination MAC to the real host before delivery (a common
//! fabric-anycast-gateway design).

use std::any::Any;

use zen_dataplane::{Action, Bucket, FlowMatch, FlowSpec, GroupDesc, GroupType, PortNo};
use zen_graph::{dists_to, ecmp_next_hops};
use zen_sim::Instant;
use zen_wire::{EthernetAddress, Ipv4Address, Ipv4Cidr};

use crate::app::App;
use crate::controller::Ctl;
use crate::txn::Consistency;
use crate::view::Dpid;

pub use crate::policy::{FABRIC_COOKIE, FABRIC_EPOCH_COOKIE, FABRIC_IMPORTANCE};

/// The virtual gateway MAC hosts send to.
pub const FABRIC_MAC: EthernetAddress = EthernetAddress([0x02, 0xfa, 0xb0, 0x00, 0x00, 0x01]);

/// One entry of the host inventory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticHost {
    /// Host IP.
    pub ip: Ipv4Address,
    /// Host MAC (written into delivered frames).
    pub mac: EthernetAddress,
    /// Attachment switch.
    pub dpid: Dpid,
    /// Attachment port.
    pub port: PortNo,
}

/// The proactive fabric application.
pub struct ProactiveFabric {
    hosts: Vec<StaticHost>,
    /// Number of switches expected before programming starts.
    pub expected_switches: usize,
    /// Number of directed links expected before programming starts.
    pub expected_links: usize,
    /// Priority of installed rules.
    pub priority: u16,
    /// How reprograms take effect: [`Consistency::Relaxed`] reinstalls
    /// in place (the classic delete-then-add burst), per-packet stages
    /// the whole fabric as one epoch-versioned two-phase update.
    pub consistency: Consistency,
    /// Decrement the IPv4 TTL on every transit hop, so packets caught
    /// in a transient forwarding loop self-terminate instead of
    /// circulating forever.
    pub dec_ttl: bool,
    /// A scheduled inventory change: at the given time, the host with
    /// the given IP moves to a new attachment point and the fabric
    /// reprograms (the update-consistency experiment's trigger).
    rehome: Option<(Instant, Ipv4Address, Dpid, PortNo)>,
    installed_version: Option<u64>,
    stable_ticks: u32,
    /// Parity-namespaced groups installed by the last epoch-mode
    /// reprogram, retired by the next one after its drain wave.
    epoch_groups: Vec<(Dpid, u32)>,
    /// Full reprogram passes performed (metric).
    pub installs: u64,
    /// Rules pushed in total (metric).
    pub rules_pushed: u64,
    /// Two-phase fabric updates committed (metric).
    pub txn_commits: u64,
    /// Two-phase fabric updates aborted (metric); each schedules a
    /// re-stage on the next tick.
    pub txn_aborts: u64,
}

impl ProactiveFabric {
    /// A fabric app for the given inventory and expected topology size.
    pub fn new(
        hosts: Vec<StaticHost>,
        expected_switches: usize,
        expected_links: usize,
    ) -> ProactiveFabric {
        ProactiveFabric {
            hosts,
            expected_switches,
            expected_links,
            priority: 200,
            consistency: Consistency::Relaxed,
            dec_ttl: false,
            rehome: None,
            installed_version: None,
            stable_ticks: 0,
            epoch_groups: Vec::new(),
            installs: 0,
            rules_pushed: 0,
            txn_commits: 0,
            txn_aborts: 0,
        }
    }

    /// Roll reprograms out as epoch-versioned two-phase updates.
    pub fn per_packet(mut self) -> ProactiveFabric {
        self.consistency = Consistency::PerPacket;
        self
    }

    /// Schedule a host re-home: at `at`, the host owning `ip` moves to
    /// `(dpid, port)` and the fabric reprograms.
    pub fn with_rehome(
        mut self,
        at: Instant,
        ip: Ipv4Address,
        dpid: Dpid,
        port: PortNo,
    ) -> ProactiveFabric {
        self.rehome = Some((at, ip, dpid, port));
        self
    }

    /// Whether the fabric has been programmed for the current topology.
    pub fn programmed(&self) -> bool {
        self.installed_version.is_some()
    }

    fn ready(&self, ctl: &Ctl<'_, '_>) -> bool {
        ctl.view.switches.len() >= self.expected_switches
            && ctl.view.links.len() >= self.expected_links
    }

    /// The forwarding program this app wants on `switch` given the
    /// current view: SELECT groups toward every other switch, then the
    /// per-host rules, in deterministic install order.
    fn desired_program(&self, ctl: &Ctl<'_, '_>, switch: Dpid) -> SwitchProgram {
        let (graph, dpids, index) = ctl.view.graph(0);
        let mut program = SwitchProgram {
            groups: Vec::new(),
            flows: Vec::new(),
        };
        if let Some(&my_ix) = index.get(&switch) {
            for (dst_pos, &dst_dpid) in dpids.iter().enumerate() {
                if dst_dpid == switch {
                    continue;
                }
                let dist = dists_to(&graph, dst_pos as u32);
                let hops = ecmp_next_hops(&graph, my_ix, &dist);
                let mut buckets = Vec::new();
                for edge_ix in hops {
                    let next_dpid = dpids[graph.edge(edge_ix).to as usize];
                    for port in ctl.view.ports_toward(switch, next_dpid) {
                        buckets.push(Bucket::output(port));
                    }
                }
                if buckets.is_empty() {
                    continue;
                }
                program.groups.push((
                    group_id_for(dst_dpid),
                    GroupDesc {
                        group_type: GroupType::Select,
                        buckets,
                    },
                ));
            }
        }
        for host in &self.hosts {
            let matcher = FlowMatch::ipv4_to(Ipv4Cidr::new(host.ip, 32).expect("/32 is valid"));
            let actions = if switch == host.dpid {
                vec![Action::SetEthDst(host.mac), Action::Output(host.port)]
            } else {
                let mut fwd = Vec::new();
                if self.dec_ttl {
                    fwd.push(Action::DecTtl);
                }
                fwd.push(Action::Group(group_id_for(host.dpid)));
                fwd
            };
            program.flows.push(
                // Fabric rules are the network's standing program:
                // mark them important so capacity eviction always
                // prefers reactive churn over infrastructure.
                FlowSpec::new(self.priority, matcher, actions)
                    .with_cookie(FABRIC_COOKIE)
                    .with_importance(FABRIC_IMPORTANCE),
            );
        }
        program
    }

    /// Reprogram a single switch from the current view: wipe our cookie,
    /// reinstall its SELECT groups and per-host rules, and stamp the
    /// program hash into the replicated view so peer replicas can tell
    /// whether a takeover needs to reprogram at all.
    fn program_switch(&mut self, ctl: &mut Ctl<'_, '_>, switch: Dpid) {
        let program = self.desired_program(ctl, switch);
        let hash = program_hash(&program);
        // A single-switch transaction: even under per-packet
        // consistency this takes the planner's fast path (one switch
        // applies its mods in order).
        let mut txn = ctl.txn();
        txn.delete_flows_by_cookie(switch, FABRIC_COOKIE);
        for (group_id, desc) in program.groups {
            txn.group(switch, group_id, desc);
        }
        for spec in program.flows {
            self.rules_pushed += 1;
            txn.flow(switch, 0, spec);
        }
        txn.commit(ctl);
        ctl.set_program_stamp(switch, FABRIC_COOKIE, hash);
    }

    fn install_all(&mut self, ctl: &mut Ctl<'_, '_>) {
        self.installs += 1;
        // Quarantined switches are unreachable; they get their state via
        // the resync handshake when they return. Switches mastered by a
        // peer replica are that replica's to program — our mods would be
        // filtered (and rejected by the agent) anyway.
        let switch_list: Vec<Dpid> = ctl
            .view
            .switches
            .keys()
            .copied()
            .filter(|&d| !ctl.view.is_quarantined(d) && ctl.is_master(d))
            .collect();
        if self.consistency == Consistency::PerPacket {
            self.install_all_epoch(ctl, &switch_list);
        } else {
            for switch in switch_list {
                self.program_switch(ctl, switch);
            }
        }
        self.installed_version = Some(ctl.view.version);
    }

    /// Stage the whole fabric as one epoch-versioned two-phase update.
    ///
    /// The program is a single table with two rules per destination on
    /// every switch (the datapath extracts its flow key once at
    /// ingress, so stamping and matching the stamp must happen on
    /// *different* switches — not in different tables of the same one):
    ///
    /// * an **internal** rule matching packets already stamped with
    ///   this epoch (the planner injects the qualifier), forwarding via
    ///   the parity-namespaced ECMP group or delivering locally with
    ///   the tag stripped;
    /// * an **edge** rule matching *unstamped* IPv4 from attached
    ///   hosts, with the same forwarding actions behind a `SetEpoch`
    ///   stamp the planner prepends at flip time. Its (priority, match)
    ///   is epoch-independent, so the flip replaces the previous
    ///   epoch's stamper in place — the per-switch atomic switchover.
    ///
    /// Cookies and group ids alternate by epoch parity, so the lame
    /// configuration stays addressable and is garbage-collected by the
    /// planner's retire wave after packets of its epoch have drained.
    fn install_all_epoch(&mut self, ctl: &mut Ctl<'_, '_>, switch_list: &[Dpid]) {
        let epoch = ctl.staged_epoch();
        let parity = (epoch % 2) as u32;
        let (cookie, old_cookie) = if parity == 0 {
            (FABRIC_COOKIE, FABRIC_EPOCH_COOKIE)
        } else {
            (FABRIC_EPOCH_COOKIE, FABRIC_COOKIE)
        };
        let old_groups = std::mem::take(&mut self.epoch_groups);
        let mut txn = ctl.txn().per_packet().owned_by("proactive-fabric", epoch);
        let (graph, dpids, index) = ctl.view.graph(0);
        for &switch in switch_list {
            txn.retire_flows_by_cookie(switch, old_cookie);
            if let Some(&my_ix) = index.get(&switch) {
                for (dst_pos, &dst_dpid) in dpids.iter().enumerate() {
                    if dst_dpid == switch {
                        continue;
                    }
                    let dist = dists_to(&graph, dst_pos as u32);
                    let hops = ecmp_next_hops(&graph, my_ix, &dist);
                    let mut buckets = Vec::new();
                    for edge_ix in hops {
                        let next_dpid = dpids[graph.edge(edge_ix).to as usize];
                        for port in ctl.view.ports_toward(switch, next_dpid) {
                            buckets.push(Bucket::output(port));
                        }
                    }
                    if buckets.is_empty() {
                        continue;
                    }
                    let gid = group_id_for_epoch(dst_dpid, parity);
                    txn.group(
                        switch,
                        gid,
                        GroupDesc {
                            group_type: GroupType::Select,
                            buckets,
                        },
                    );
                    self.epoch_groups.push((switch, gid));
                }
            }
            for host in &self.hosts {
                let matcher = FlowMatch::ipv4_to(Ipv4Cidr::new(host.ip, 32).expect("/32 is valid"));
                let actions = if switch == host.dpid {
                    vec![
                        Action::PopEpoch,
                        Action::SetEthDst(host.mac),
                        Action::Output(host.port),
                    ]
                } else {
                    let mut fwd = Vec::new();
                    if self.dec_ttl {
                        fwd.push(Action::DecTtl);
                    }
                    fwd.push(Action::Group(group_id_for_epoch(host.dpid, parity)));
                    fwd
                };
                self.rules_pushed += 2;
                txn.internal_flow(
                    switch,
                    0,
                    FlowSpec::new(self.priority, matcher, actions.clone())
                        .with_cookie(cookie)
                        .with_importance(FABRIC_IMPORTANCE),
                );
                // The edge rule matches specifically un-stamped IPv4 —
                // traffic entering from attached hosts.
                let edge_matcher = FlowMatch {
                    epoch: Some(None),
                    ..matcher
                };
                txn.edge_flow(
                    switch,
                    0,
                    FlowSpec::new(self.priority, edge_matcher, actions)
                        .with_cookie(cookie)
                        .with_importance(FABRIC_IMPORTANCE),
                );
            }
        }
        for (dpid, gid) in old_groups {
            txn.retire_group(dpid, gid);
        }
        txn.commit(ctl);
    }
}

/// The desired forwarding program for one switch, in install order.
struct SwitchProgram {
    groups: Vec<(u32, GroupDesc)>,
    flows: Vec<FlowSpec>,
}

/// FNV-1a over the program's Debug rendering: cheap, deterministic
/// across replicas (both derive it from the same replicated view), and
/// sensitive to every field that shapes forwarding behaviour. This is
/// the hash stamped into the replicated view via
/// [`Ctl::set_program_stamp`].
fn program_hash(program: &SwitchProgram) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in format!("{:?}|{:?}", program.groups, program.flows).bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The group id used for routes toward `dst_dpid`.
pub fn group_id_for(dst_dpid: Dpid) -> u32 {
    0x1000 + dst_dpid as u32
}

/// The epoch-mode group id toward `dst_dpid`: namespaced by epoch
/// parity so consecutive configurations' groups coexist during a
/// two-phase update.
pub fn group_id_for_epoch(dst_dpid: Dpid, parity: u32) -> u32 {
    0x1000 + dst_dpid as u32 + parity * 0x4000
}

impl App for ProactiveFabric {
    fn name(&self) -> &'static str {
        "proactive-fabric"
    }

    fn tick(&mut self, ctl: &mut Ctl<'_, '_>) {
        // A scheduled re-home fires exactly once: mutate the inventory
        // and reprogram immediately (deterministically, on this tick).
        if let Some((at, ip, dpid, port)) = self.rehome {
            if ctl.now() >= at {
                self.rehome = None;
                for host in &mut self.hosts {
                    if host.ip == ip {
                        host.dpid = dpid;
                        host.port = port;
                    }
                }
                if self.installed_version.is_some() {
                    self.install_all(ctl);
                    return;
                }
            }
        }
        // `ready` gates only the *initial* programming; once programmed,
        // any topology change (including lost links) must reprogram.
        if self.installed_version.is_none() && !self.ready(ctl) {
            return;
        }
        match self.installed_version {
            Some(v) if v == ctl.view.version => {}
            _ => {
                // Require two quiet ticks so discovery bursts settle.
                self.stable_ticks += 1;
                if self.stable_ticks >= 2 {
                    self.stable_ticks = 0;
                    self.install_all(ctl);
                }
            }
        }
    }

    fn on_port_status(&mut self, _ctl: &mut Ctl<'_, '_>, _dpid: Dpid, _port: PortNo, _up: bool) {
        // The view version bump makes the next tick reprogram; SELECT
        // group liveness already bypasses the dead port in the meantime.
        self.stable_ticks = 1; // accelerate reprogramming
    }

    fn on_switch_resync(&mut self, ctl: &mut Ctl<'_, '_>, dpid: Dpid) {
        // A returning switch's state diverged from ours: rebuild just
        // that switch now instead of waiting out the stability window.
        // Epoch mode has no per-switch program (configurations are
        // network-wide); re-stage the whole fabric on the next tick.
        if self.installed_version.is_some() {
            if self.consistency == Consistency::PerPacket {
                self.installed_version = None;
                self.stable_ticks = 1;
            } else {
                self.program_switch(ctl, dpid);
            }
        }
    }

    fn on_update_committed(&mut self, _ctl: &mut Ctl<'_, '_>, owner: &'static str, _token: u64) {
        if owner == "proactive-fabric" {
            self.txn_commits += 1;
        }
    }

    fn on_update_aborted(&mut self, _ctl: &mut Ctl<'_, '_>, owner: &'static str, _token: u64) {
        if owner != "proactive-fabric" {
            return;
        }
        // The staged epoch was torn down (a touched switch died or
        // never acked). The old configuration still carries traffic;
        // re-stage against the current view on the next tick.
        self.txn_aborts += 1;
        self.installed_version = None;
        self.stable_ticks = 1;
    }

    fn on_mastership_change(&mut self, ctl: &mut Ctl<'_, '_>, dpid: Dpid, is_master: bool) {
        if !is_master {
            return;
        }
        if self.installed_version.is_none() {
            // Not yet programmed anywhere; the regular tick path will
            // pick this switch up once discovery stabilizes.
            return;
        }
        if self.consistency == Consistency::PerPacket {
            // Epoch configurations are network-wide; re-stage fully.
            self.installed_version = None;
            self.stable_ticks = 1;
            return;
        }
        // Adopted an orphaned switch. If the previous master's stamped
        // program (replicated through the east-west store) already
        // matches what we would install, the takeover moves no flow
        // state at all; only a genuine divergence — the old master died
        // mid-convergence, or the topology changed since — reprograms.
        let desired = program_hash(&self.desired_program(ctl, dpid));
        if ctl.program_stamp(dpid, FABRIC_COOKIE) != Some(desired) {
            self.program_switch(ctl, dpid);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}
