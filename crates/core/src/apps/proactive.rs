//! Proactive ECMP fabric programming.
//!
//! Given a host inventory (the fabric manager's source of truth, as in
//! a datacenter), this app waits for discovery to stabilize, then
//! pushes *all* forwarding state up front: per-destination /32 rules
//! pointing at SELECT groups whose buckets are the equal-cost next-hop
//! ports. Packets never visit the controller; failures are absorbed by
//! group-bucket liveness and a re-install on topology change.
//!
//! Senders address frames to [`FABRIC_MAC`]; the egress switch rewrites
//! the destination MAC to the real host before delivery (a common
//! fabric-anycast-gateway design).

use std::any::Any;

use zen_dataplane::{Action, Bucket, FlowMatch, FlowSpec, GroupDesc, GroupType, PortNo};
use zen_graph::{dists_to, ecmp_next_hops};
use zen_wire::{EthernetAddress, Ipv4Address, Ipv4Cidr};

use crate::app::App;
use crate::controller::Ctl;
use crate::view::Dpid;

/// The virtual gateway MAC hosts send to.
pub const FABRIC_MAC: EthernetAddress = EthernetAddress([0x02, 0xfa, 0xb0, 0x00, 0x00, 0x01]);

/// Cookie marking fabric flows.
pub const FABRIC_COOKIE: u64 = 0xfab0_0001;

/// Eviction importance of proactive fabric rules: standing
/// infrastructure outranks reactive churn under capacity pressure.
pub const FABRIC_IMPORTANCE: u16 = 100;

/// One entry of the host inventory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticHost {
    /// Host IP.
    pub ip: Ipv4Address,
    /// Host MAC (written into delivered frames).
    pub mac: EthernetAddress,
    /// Attachment switch.
    pub dpid: Dpid,
    /// Attachment port.
    pub port: PortNo,
}

/// The proactive fabric application.
pub struct ProactiveFabric {
    hosts: Vec<StaticHost>,
    /// Number of switches expected before programming starts.
    pub expected_switches: usize,
    /// Number of directed links expected before programming starts.
    pub expected_links: usize,
    /// Priority of installed rules.
    pub priority: u16,
    installed_version: Option<u64>,
    stable_ticks: u32,
    /// Full reprogram passes performed (metric).
    pub installs: u64,
    /// Rules pushed in total (metric).
    pub rules_pushed: u64,
}

impl ProactiveFabric {
    /// A fabric app for the given inventory and expected topology size.
    pub fn new(
        hosts: Vec<StaticHost>,
        expected_switches: usize,
        expected_links: usize,
    ) -> ProactiveFabric {
        ProactiveFabric {
            hosts,
            expected_switches,
            expected_links,
            priority: 200,
            installed_version: None,
            stable_ticks: 0,
            installs: 0,
            rules_pushed: 0,
        }
    }

    /// Whether the fabric has been programmed for the current topology.
    pub fn programmed(&self) -> bool {
        self.installed_version.is_some()
    }

    fn ready(&self, ctl: &Ctl<'_, '_>) -> bool {
        ctl.view.switches.len() >= self.expected_switches
            && ctl.view.links.len() >= self.expected_links
    }

    /// The forwarding program this app wants on `switch` given the
    /// current view: SELECT groups toward every other switch, then the
    /// per-host rules, in deterministic install order.
    fn desired_program(&self, ctl: &Ctl<'_, '_>, switch: Dpid) -> SwitchProgram {
        let (graph, dpids, index) = ctl.view.graph(0);
        let mut program = SwitchProgram {
            groups: Vec::new(),
            flows: Vec::new(),
        };
        if let Some(&my_ix) = index.get(&switch) {
            for (dst_pos, &dst_dpid) in dpids.iter().enumerate() {
                if dst_dpid == switch {
                    continue;
                }
                let dist = dists_to(&graph, dst_pos as u32);
                let hops = ecmp_next_hops(&graph, my_ix, &dist);
                let mut buckets = Vec::new();
                for edge_ix in hops {
                    let next_dpid = dpids[graph.edge(edge_ix).to as usize];
                    for port in ctl.view.ports_toward(switch, next_dpid) {
                        buckets.push(Bucket::output(port));
                    }
                }
                if buckets.is_empty() {
                    continue;
                }
                program.groups.push((
                    group_id_for(dst_dpid),
                    GroupDesc {
                        group_type: GroupType::Select,
                        buckets,
                    },
                ));
            }
        }
        for host in &self.hosts {
            let matcher = FlowMatch::ipv4_to(Ipv4Cidr::new(host.ip, 32).expect("/32 is valid"));
            let actions = if switch == host.dpid {
                vec![Action::SetEthDst(host.mac), Action::Output(host.port)]
            } else {
                vec![Action::Group(group_id_for(host.dpid))]
            };
            program.flows.push(
                // Fabric rules are the network's standing program:
                // mark them important so capacity eviction always
                // prefers reactive churn over infrastructure.
                FlowSpec::new(self.priority, matcher, actions)
                    .with_cookie(FABRIC_COOKIE)
                    .with_importance(FABRIC_IMPORTANCE),
            );
        }
        program
    }

    /// Reprogram a single switch from the current view: wipe our cookie,
    /// reinstall its SELECT groups and per-host rules, and stamp the
    /// program hash into the replicated view so peer replicas can tell
    /// whether a takeover needs to reprogram at all.
    fn program_switch(&mut self, ctl: &mut Ctl<'_, '_>, switch: Dpid) {
        let program = self.desired_program(ctl, switch);
        let hash = program_hash(&program);
        ctl.delete_flows_by_cookie(switch, FABRIC_COOKIE);
        for (group_id, desc) in program.groups {
            ctl.install_group(switch, group_id, desc);
        }
        for spec in program.flows {
            self.rules_pushed += 1;
            ctl.install_flow(switch, 0, spec);
        }
        ctl.set_program_stamp(switch, FABRIC_COOKIE, hash);
    }

    fn install_all(&mut self, ctl: &mut Ctl<'_, '_>) {
        self.installs += 1;
        // Quarantined switches are unreachable; they get their state via
        // the resync handshake when they return. Switches mastered by a
        // peer replica are that replica's to program — our mods would be
        // filtered (and rejected by the agent) anyway.
        let switch_list: Vec<Dpid> = ctl
            .view
            .switches
            .keys()
            .copied()
            .filter(|&d| !ctl.view.is_quarantined(d) && ctl.is_master(d))
            .collect();
        for switch in switch_list {
            self.program_switch(ctl, switch);
        }
        self.installed_version = Some(ctl.view.version);
    }
}

/// The desired forwarding program for one switch, in install order.
struct SwitchProgram {
    groups: Vec<(u32, GroupDesc)>,
    flows: Vec<FlowSpec>,
}

/// FNV-1a over the program's Debug rendering: cheap, deterministic
/// across replicas (both derive it from the same replicated view), and
/// sensitive to every field that shapes forwarding behaviour. This is
/// the hash stamped into the replicated view via
/// [`Ctl::set_program_stamp`].
fn program_hash(program: &SwitchProgram) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in format!("{:?}|{:?}", program.groups, program.flows).bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The group id used for routes toward `dst_dpid`.
pub fn group_id_for(dst_dpid: Dpid) -> u32 {
    0x1000 + dst_dpid as u32
}

impl App for ProactiveFabric {
    fn name(&self) -> &'static str {
        "proactive-fabric"
    }

    fn tick(&mut self, ctl: &mut Ctl<'_, '_>) {
        // `ready` gates only the *initial* programming; once programmed,
        // any topology change (including lost links) must reprogram.
        if self.installed_version.is_none() && !self.ready(ctl) {
            return;
        }
        match self.installed_version {
            Some(v) if v == ctl.view.version => {}
            _ => {
                // Require two quiet ticks so discovery bursts settle.
                self.stable_ticks += 1;
                if self.stable_ticks >= 2 {
                    self.stable_ticks = 0;
                    self.install_all(ctl);
                }
            }
        }
    }

    fn on_port_status(&mut self, _ctl: &mut Ctl<'_, '_>, _dpid: Dpid, _port: PortNo, _up: bool) {
        // The view version bump makes the next tick reprogram; SELECT
        // group liveness already bypasses the dead port in the meantime.
        self.stable_ticks = 1; // accelerate reprogramming
    }

    fn on_switch_resync(&mut self, ctl: &mut Ctl<'_, '_>, dpid: Dpid) {
        // A returning switch's state diverged from ours: rebuild just
        // that switch now instead of waiting out the stability window.
        if self.installed_version.is_some() {
            self.program_switch(ctl, dpid);
        }
    }

    fn on_mastership_change(&mut self, ctl: &mut Ctl<'_, '_>, dpid: Dpid, is_master: bool) {
        if !is_master {
            return;
        }
        if self.installed_version.is_none() {
            // Not yet programmed anywhere; the regular tick path will
            // pick this switch up once discovery stabilizes.
            return;
        }
        // Adopted an orphaned switch. If the previous master's stamped
        // program (replicated through the east-west store) already
        // matches what we would install, the takeover moves no flow
        // state at all; only a genuine divergence — the old master died
        // mid-convergence, or the topology changed since — reprograms.
        let desired = program_hash(&self.desired_program(ctl, dpid));
        if ctl.program_stamp(dpid, FABRIC_COOKIE) != Some(desired) {
            self.program_switch(ctl, dpid);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}
