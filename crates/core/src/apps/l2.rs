//! Per-switch MAC learning — the canonical first SDN app.
//!
//! Every switch gets its own MAC table at the controller. Frames to
//! unknown destinations are flooded via PACKET_OUT; once both endpoints
//! are learned, an exact L2 flow is installed so subsequent packets
//! never leave the data plane. Correct on loop-free topologies (like a
//! hardware learning switch without STP).

use std::any::Any;
use std::collections::BTreeMap;

use zen_dataplane::{Action, FlowMatch, FlowSpec, PortNo};
use zen_sim::{Duration, Instant};
use zen_wire::ethernet::Frame;
use zen_wire::EthernetAddress;

use crate::app::{App, Disposition};
use crate::controller::Ctl;
use crate::view::Dpid;

/// The learning-switch application.
pub struct L2Learning {
    /// dpid → (MAC → port).
    tables: BTreeMap<Dpid, BTreeMap<EthernetAddress, PortNo>>,
    /// Idle timeout for installed flows, in nanoseconds (0 = none).
    pub idle_timeout: u64,
    /// Priority of installed flows.
    pub priority: u16,
    /// After a TABLE_FULL from a switch, suppress installs there for
    /// this long; frames still move via PACKET_OUT.
    pub pressure_backoff: Duration,
    /// After a TABLE_FULL, install with a shortened idle timeout for
    /// this long, so the congested table drains on its own.
    pub pressure_window: Duration,
    /// Divider applied to `idle_timeout` inside the pressure window.
    pub pressure_idle_divisor: u64,
    /// Last TABLE_FULL heard per switch.
    table_full_at: BTreeMap<Dpid, Instant>,
    /// Flows installed (metric).
    pub flows_installed: u64,
    /// Floods performed (metric).
    pub floods: u64,
    /// TABLE_FULL bounces heard (metric).
    pub table_full_events: u64,
    /// Installs skipped while a switch was backing off (metric).
    pub installs_suppressed: u64,
}

impl L2Learning {
    /// A learning app with a 5-second idle timeout.
    pub fn new() -> L2Learning {
        L2Learning {
            tables: BTreeMap::new(),
            idle_timeout: 5_000_000_000,
            priority: 10,
            pressure_backoff: Duration::from_millis(200),
            pressure_window: Duration::from_secs(2),
            pressure_idle_divisor: 4,
            table_full_at: BTreeMap::new(),
            flows_installed: 0,
            floods: 0,
            table_full_events: 0,
            installs_suppressed: 0,
        }
    }

    /// The learned location of `mac` on `dpid`, if any.
    pub fn location(&self, dpid: Dpid, mac: EthernetAddress) -> Option<PortNo> {
        self.tables.get(&dpid)?.get(&mac).copied()
    }
}

impl Default for L2Learning {
    fn default() -> L2Learning {
        L2Learning::new()
    }
}

impl App for L2Learning {
    fn name(&self) -> &'static str {
        "l2-learning"
    }

    fn on_packet_in(
        &mut self,
        ctl: &mut Ctl<'_, '_>,
        dpid: Dpid,
        in_port: PortNo,
        frame: &[u8],
    ) -> Disposition {
        let Ok(eth) = Frame::new_checked(frame) else {
            return Disposition::Continue;
        };
        let table = self.tables.entry(dpid).or_default();
        if eth.src_addr().is_unicast() {
            table.insert(eth.src_addr(), in_port);
        }
        let dst = eth.dst_addr();
        match table.get(&dst).copied() {
            Some(out_port) if !dst.is_multicast() => {
                // Install the forward flow (unless the switch is inside
                // its table-full backoff), then release the packet.
                let now = ctl.now();
                let backing_off = self
                    .table_full_at
                    .get(&dpid)
                    .is_some_and(|&at| now.duration_since(at) < self.pressure_backoff);
                if backing_off {
                    self.installs_suppressed += 1;
                } else {
                    let pressured = self
                        .table_full_at
                        .get(&dpid)
                        .is_some_and(|&at| now.duration_since(at) < self.pressure_window);
                    let idle = if pressured {
                        self.idle_timeout / self.pressure_idle_divisor.max(1)
                    } else {
                        self.idle_timeout
                    };
                    self.flows_installed += 1;
                    let spec = FlowSpec::new(
                        self.priority,
                        FlowMatch::eth_to(dst),
                        vec![Action::Output(out_port)],
                    )
                    .with_timeouts(idle, 0);
                    ctl.install_flow(dpid, 0, spec);
                }
                ctl.packet_out(dpid, in_port, &[Action::Output(out_port)], frame);
            }
            _ => {
                self.floods += 1;
                ctl.packet_out(dpid, in_port, &[Action::Flood], frame);
            }
        }
        Disposition::Handled
    }

    fn on_table_full(&mut self, ctl: &mut Ctl<'_, '_>, dpid: Dpid) {
        self.table_full_events += 1;
        let now = ctl.now();
        self.table_full_at.insert(dpid, now);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}
