//! Per-switch MAC learning — the canonical first SDN app.
//!
//! Every switch gets its own MAC table at the controller. Frames to
//! unknown destinations are flooded via PACKET_OUT; once both endpoints
//! are learned, an exact L2 flow is installed so subsequent packets
//! never leave the data plane. Correct on loop-free topologies (like a
//! hardware learning switch without STP).

use std::any::Any;
use std::collections::BTreeMap;

use zen_dataplane::{Action, FlowMatch, FlowSpec, PortNo};
use zen_wire::ethernet::Frame;
use zen_wire::EthernetAddress;

use crate::app::{App, Disposition};
use crate::controller::Ctl;
use crate::view::Dpid;

/// The learning-switch application.
pub struct L2Learning {
    /// dpid → (MAC → port).
    tables: BTreeMap<Dpid, BTreeMap<EthernetAddress, PortNo>>,
    /// Idle timeout for installed flows, in nanoseconds (0 = none).
    pub idle_timeout: u64,
    /// Priority of installed flows.
    pub priority: u16,
    /// Flows installed (metric).
    pub flows_installed: u64,
    /// Floods performed (metric).
    pub floods: u64,
}

impl L2Learning {
    /// A learning app with a 5-second idle timeout.
    pub fn new() -> L2Learning {
        L2Learning {
            tables: BTreeMap::new(),
            idle_timeout: 5_000_000_000,
            priority: 10,
            flows_installed: 0,
            floods: 0,
        }
    }

    /// The learned location of `mac` on `dpid`, if any.
    pub fn location(&self, dpid: Dpid, mac: EthernetAddress) -> Option<PortNo> {
        self.tables.get(&dpid)?.get(&mac).copied()
    }
}

impl Default for L2Learning {
    fn default() -> L2Learning {
        L2Learning::new()
    }
}

impl App for L2Learning {
    fn name(&self) -> &'static str {
        "l2-learning"
    }

    fn on_packet_in(
        &mut self,
        ctl: &mut Ctl<'_, '_>,
        dpid: Dpid,
        in_port: PortNo,
        frame: &[u8],
    ) -> Disposition {
        let Ok(eth) = Frame::new_checked(frame) else {
            return Disposition::Continue;
        };
        let table = self.tables.entry(dpid).or_default();
        if eth.src_addr().is_unicast() {
            table.insert(eth.src_addr(), in_port);
        }
        let dst = eth.dst_addr();
        match table.get(&dst).copied() {
            Some(out_port) if !dst.is_multicast() => {
                // Install the forward flow, then release the packet.
                self.flows_installed += 1;
                let spec = FlowSpec::new(
                    self.priority,
                    FlowMatch::eth_to(dst),
                    vec![Action::Output(out_port)],
                )
                .with_timeouts(self.idle_timeout, 0);
                ctl.install_flow(dpid, 0, spec);
                ctl.packet_out(
                    dpid,
                    in_port,
                    vec![Action::Output(out_port)],
                    frame.to_vec(),
                );
            }
            _ => {
                self.floods += 1;
                ctl.packet_out(dpid, in_port, vec![Action::Flood], frame.to_vec());
            }
        }
        Disposition::Handled
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}
