//! Per-switch MAC learning — the canonical first SDN app.
//!
//! Every switch gets its own MAC table at the controller. Frames to
//! unknown destinations are flooded via PACKET_OUT; once both endpoints
//! are learned, an exact L2 flow is installed so subsequent packets
//! never leave the data plane. Correct on loop-free topologies (like a
//! hardware learning switch without STP).
//!
//! Learning carries a **MAC-flap damper**: a rogue host claiming a
//! victim's source MAC from another port would otherwise bounce the
//! learned location on every frame, re-steering installed flows to the
//! attacker. When one MAC moves ports more than `flap_limit` times
//! inside `flap_window` on the same switch, its entry freezes at the
//! last stable port for `flap_hold` — the legitimate host keeps
//! working, the flapper's claims are ignored, and the counters expose
//! the event to telemetry.

use std::any::Any;
use std::collections::BTreeMap;

use zen_dataplane::{Action, FlowMatch, FlowSpec, PortNo};
use zen_sim::{Duration, Instant};
use zen_wire::ethernet::Frame;
use zen_wire::EthernetAddress;

use crate::app::{App, Disposition};
use crate::controller::Ctl;
use crate::view::Dpid;

/// The learning-switch application.
pub struct L2Learning {
    /// dpid → (MAC → port).
    tables: BTreeMap<Dpid, BTreeMap<EthernetAddress, PortNo>>,
    /// Idle timeout for installed flows, in nanoseconds (0 = none).
    pub idle_timeout: u64,
    /// Priority of installed flows.
    pub priority: u16,
    /// After a TABLE_FULL from a switch, suppress installs there for
    /// this long; frames still move via PACKET_OUT.
    pub pressure_backoff: Duration,
    /// After a TABLE_FULL, install with a shortened idle timeout for
    /// this long, so the congested table drains on its own.
    pub pressure_window: Duration,
    /// Divider applied to `idle_timeout` inside the pressure window.
    pub pressure_idle_divisor: u64,
    /// Last TABLE_FULL heard per switch.
    table_full_at: BTreeMap<Dpid, Instant>,
    /// Port moves of one MAC tolerated within `flap_window` before its
    /// entry is damped (frozen). 0 disables the damper.
    pub flap_limit: u32,
    /// Window over which port moves are counted.
    pub flap_window: Duration,
    /// How long a damped MAC's entry stays frozen.
    pub flap_hold: Duration,
    /// Move tracking, created only for MACs that actually change port
    /// (so a rotating-MAC flood cannot balloon this map).
    flaps: BTreeMap<(Dpid, EthernetAddress), FlapState>,
    /// Flows installed (metric).
    pub flows_installed: u64,
    /// Floods performed (metric).
    pub floods: u64,
    /// TABLE_FULL bounces heard (metric).
    pub table_full_events: u64,
    /// Installs skipped while a switch was backing off (metric).
    pub installs_suppressed: u64,
    /// Damper activations: a MAC crossed the flap limit (metric).
    pub flap_events: u64,
    /// Learns ignored while a MAC's entry was frozen (metric).
    pub flaps_damped: u64,
}

/// Per-(switch, MAC) port-move tracking for the flap damper.
#[derive(Debug, Clone, Copy)]
struct FlapState {
    /// Moves counted in the current window.
    moves: u32,
    /// When the current window opened.
    window_start: Instant,
    /// While set, learning for this MAC is frozen.
    held_until: Option<Instant>,
}

/// Cap on tracked flapping MACs per controller; oldest-keyed entries
/// are discarded beyond it so an adversary cannot balloon the map.
const FLAP_TRACK_CAP: usize = 4096;

impl L2Learning {
    /// A learning app with a 5-second idle timeout.
    pub fn new() -> L2Learning {
        L2Learning {
            tables: BTreeMap::new(),
            idle_timeout: 5_000_000_000,
            priority: 10,
            pressure_backoff: Duration::from_millis(200),
            pressure_window: Duration::from_secs(2),
            pressure_idle_divisor: 4,
            table_full_at: BTreeMap::new(),
            flap_limit: 8,
            flap_window: Duration::from_millis(500),
            flap_hold: Duration::from_secs(2),
            flaps: BTreeMap::new(),
            flows_installed: 0,
            floods: 0,
            table_full_events: 0,
            installs_suppressed: 0,
            flap_events: 0,
            flaps_damped: 0,
        }
    }

    /// The learned location of `mac` on `dpid`, if any.
    pub fn location(&self, dpid: Dpid, mac: EthernetAddress) -> Option<PortNo> {
        self.tables.get(&dpid)?.get(&mac).copied()
    }

    /// Whether `mac`'s entry on `dpid` is currently frozen by the flap
    /// damper.
    pub fn is_damped(&self, dpid: Dpid, mac: EthernetAddress) -> bool {
        self.flaps
            .get(&(dpid, mac))
            .and_then(|f| f.held_until)
            .is_some()
    }

    /// Flap-damper gate for learning `mac` at `in_port`: `true` means
    /// the caller may update the table. Only *moves* (a learned entry
    /// changing port) are tracked; first sightings and confirmations
    /// of the current port always pass.
    fn allow_learn(
        &mut self,
        dpid: Dpid,
        mac: EthernetAddress,
        in_port: PortNo,
        now: Instant,
    ) -> bool {
        if self.flap_limit == 0 {
            return true;
        }
        let moved = self
            .tables
            .get(&dpid)
            .and_then(|t| t.get(&mac))
            .is_some_and(|&p| p != in_port);
        let Some(flap) = self.flaps.get_mut(&(dpid, mac)) else {
            if moved {
                if self.flaps.len() >= FLAP_TRACK_CAP {
                    self.flaps.pop_first();
                }
                self.flaps.insert(
                    (dpid, mac),
                    FlapState {
                        moves: 1,
                        window_start: now,
                        held_until: None,
                    },
                );
            }
            return true;
        };
        if let Some(until) = flap.held_until {
            if now < until {
                if moved {
                    // A flapper is still claiming the MAC elsewhere:
                    // refuse the move, keep the stable port.
                    self.flaps_damped += 1;
                    return false;
                }
                return true;
            }
            // Hold expired: forgive and restart the window.
            flap.held_until = None;
            flap.moves = 0;
            flap.window_start = now;
        }
        if !moved {
            return true;
        }
        if now.duration_since(flap.window_start) >= self.flap_window {
            flap.moves = 0;
            flap.window_start = now;
        }
        flap.moves += 1;
        if flap.moves > self.flap_limit {
            flap.held_until = Some(now + self.flap_hold);
            self.flap_events += 1;
            self.flaps_damped += 1;
            return false;
        }
        true
    }
}

impl Default for L2Learning {
    fn default() -> L2Learning {
        L2Learning::new()
    }
}

impl App for L2Learning {
    fn name(&self) -> &'static str {
        "l2-learning"
    }

    fn on_packet_in(
        &mut self,
        ctl: &mut Ctl<'_, '_>,
        dpid: Dpid,
        in_port: PortNo,
        frame: &[u8],
    ) -> Disposition {
        let Ok(eth) = Frame::new_checked(frame) else {
            return Disposition::Continue;
        };
        let src = eth.src_addr();
        if src.is_unicast() && self.allow_learn(dpid, src, in_port, ctl.now()) {
            self.tables.entry(dpid).or_default().insert(src, in_port);
        }
        let dst = eth.dst_addr();
        match self.tables.entry(dpid).or_default().get(&dst).copied() {
            Some(out_port) if !dst.is_multicast() => {
                // Install the forward flow (unless the switch is inside
                // its table-full backoff), then release the packet.
                let now = ctl.now();
                let backing_off = self
                    .table_full_at
                    .get(&dpid)
                    .is_some_and(|&at| now.duration_since(at) < self.pressure_backoff);
                if backing_off {
                    self.installs_suppressed += 1;
                } else {
                    let pressured = self
                        .table_full_at
                        .get(&dpid)
                        .is_some_and(|&at| now.duration_since(at) < self.pressure_window);
                    let idle = if pressured {
                        self.idle_timeout / self.pressure_idle_divisor.max(1)
                    } else {
                        self.idle_timeout
                    };
                    self.flows_installed += 1;
                    let spec = FlowSpec::new(
                        self.priority,
                        FlowMatch::eth_to(dst),
                        vec![Action::Output(out_port)],
                    )
                    .with_timeouts(idle, 0);
                    let mut txn = ctl.txn();
                    txn.flow(dpid, 0, spec);
                    txn.commit(ctl);
                }
                ctl.packet_out(dpid, in_port, &[Action::Output(out_port)], frame);
            }
            _ => {
                self.floods += 1;
                ctl.packet_out(dpid, in_port, &[Action::Flood], frame);
            }
        }
        Disposition::Handled
    }

    fn on_table_full(&mut self, ctl: &mut Ctl<'_, '_>, dpid: Dpid) {
        self.table_full_events += 1;
        let now = ctl.now();
        self.table_full_at.insert(dpid, now);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}
