//! Network-wide access control, committed through the replicated
//! intent log.
//!
//! Deny rules are a security boundary, so they take the linearizable
//! path: a rule queued here is proposed as an [`Intent::AclDeny`] and
//! installed only once the cluster commits it — every replica then
//! materializes the same rule set in the same order, and a failover
//! can never resurrect a withdrawn deny. Standalone controllers commit
//! locally on the next tick, preserving the same observable sequence.
//!
//! Installed denies are plain high-priority flow entries with an empty
//! action list — matching traffic dies in the data plane of the first
//! switch it touches, with zero controller involvement afterwards.

use std::any::Any;

use zen_dataplane::{FlowMatch, FlowSpec};
use zen_proto::Intent;

use crate::app::App;
use crate::controller::Ctl;
use crate::view::Dpid;

pub use crate::policy::{ACL_COOKIE, ACL_IMPORTANCE};

/// The ACL application.
pub struct Acl {
    /// Rules awaiting proposal (drained into the intent log on tick).
    queued: Vec<(FlowMatch, bool)>,
    /// Rules the cluster has committed, in commit order.
    committed: Vec<FlowMatch>,
    /// Priority of deny rules (must beat forwarding apps).
    pub priority: u16,
    /// Rules pushed to switches (metric).
    pub rules_pushed: u64,
    /// Intents proposed (metric).
    pub intents_proposed: u64,
}

impl Acl {
    /// An ACL denying the given matches everywhere.
    pub fn new(denies: Vec<FlowMatch>) -> Acl {
        Acl {
            queued: denies.into_iter().map(|m| (m, true)).collect(),
            committed: Vec::new(),
            priority: 900,
            rules_pushed: 0,
            intents_proposed: 0,
        }
    }

    /// Queue a deny rule for commitment through the intent log. It
    /// takes effect network-wide once committed (next tick standalone,
    /// one consensus round clustered).
    pub fn deny(&mut self, matcher: FlowMatch) {
        self.queued.push((matcher, true));
    }

    /// Queue the withdrawal of a previously committed deny rule.
    pub fn allow(&mut self, matcher: FlowMatch) {
        self.queued.push((matcher, false));
    }

    /// The committed deny set (post-run inspection).
    pub fn committed(&self) -> &[FlowMatch] {
        &self.committed
    }

    /// Push every committed rule to `dpid` in one transaction.
    fn program_switch(&mut self, ctl: &mut Ctl<'_, '_>, dpid: Dpid) {
        if self.committed.is_empty() || !ctl.is_master(dpid) {
            return;
        }
        let mut txn = ctl.txn();
        for &matcher in &self.committed {
            self.rules_pushed += 1;
            // Deny rules are a security boundary: never the first thing
            // a full table sheds.
            let spec = FlowSpec::new(self.priority, matcher, vec![])
                .with_cookie(ACL_COOKIE)
                .with_importance(ACL_IMPORTANCE);
            txn.flow(dpid, 0, spec);
        }
        txn.commit(ctl);
    }
}

impl App for Acl {
    fn name(&self) -> &'static str {
        "acl"
    }

    fn tick(&mut self, ctl: &mut Ctl<'_, '_>) {
        for (matcher, install) in std::mem::take(&mut self.queued) {
            self.intents_proposed += 1;
            ctl.propose_intent(
                "acl",
                Intent::AclDeny {
                    priority: self.priority,
                    matcher,
                    install,
                },
            );
        }
    }

    fn on_intent_committed(&mut self, ctl: &mut Ctl<'_, '_>, intent: &Intent) {
        let Intent::AclDeny {
            priority,
            matcher,
            install,
        } = *intent
        else {
            return;
        };
        if install {
            if self.priority == priority && !self.committed.contains(&matcher) {
                self.committed.push(matcher);
                let dpids: Vec<Dpid> = ctl.view.switches.keys().copied().collect();
                for dpid in dpids {
                    if !ctl.is_master(dpid) {
                        continue;
                    }
                    self.rules_pushed += 1;
                    let spec = FlowSpec::new(self.priority, matcher, vec![])
                        .with_cookie(ACL_COOKIE)
                        .with_importance(ACL_IMPORTANCE);
                    let mut txn = ctl.txn();
                    txn.flow(dpid, 0, spec);
                    txn.commit(ctl);
                }
            }
        } else if let Some(pos) = self.committed.iter().position(|m| *m == matcher) {
            self.committed.remove(pos);
            // Cookie-scoped delete drops every ACL rule; the survivors
            // are re-pushed from the committed set, so the withdrawn
            // matcher is the only observable change.
            let dpids: Vec<Dpid> = ctl.view.switches.keys().copied().collect();
            for dpid in dpids {
                if !ctl.is_master(dpid) {
                    continue;
                }
                ctl.delete_flows_by_cookie(dpid, ACL_COOKIE);
                self.program_switch(ctl, dpid);
            }
        }
    }

    fn on_intent_snapshot(&mut self, ctl: &mut Ctl<'_, '_>, intents: &[Intent]) {
        // Rebuild, never patch: the snapshot's active set is the whole
        // committed rule set. A withdraw compacted out of the log shows
        // up only as absence here, so a rule carried over from before
        // the partition must be dropped, not kept.
        self.committed = intents
            .iter()
            .filter_map(|i| match *i {
                Intent::AclDeny {
                    priority,
                    matcher,
                    install: true,
                } if priority == self.priority => Some(matcher),
                _ => None,
            })
            .collect();
        // Cookie-scoped delete clears whatever the pre-partition rule
        // set left behind on switches we master, then the rebuilt set
        // is pushed whole.
        let dpids: Vec<Dpid> = ctl.view.switches.keys().copied().collect();
        for dpid in dpids {
            if !ctl.is_master(dpid) {
                continue;
            }
            ctl.delete_flows_by_cookie(dpid, ACL_COOKIE);
            self.program_switch(ctl, dpid);
        }
    }

    fn on_switch_up(&mut self, ctl: &mut Ctl<'_, '_>, dpid: Dpid) {
        self.program_switch(ctl, dpid);
    }

    fn on_mastership_change(&mut self, ctl: &mut Ctl<'_, '_>, dpid: Dpid, is_master: bool) {
        // A takeover re-asserts the committed denies; the duplicate
        // adds are idempotent by cookie and spec.
        if is_master {
            self.program_switch(ctl, dpid);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}
