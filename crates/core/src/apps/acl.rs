//! Network-wide access control: drop rules pushed at handshake.
//!
//! Deny rules are plain high-priority flow entries with an empty action
//! list — matching traffic dies in the data plane of the first switch
//! it touches, with zero controller involvement after installation.

use std::any::Any;

use zen_dataplane::{FlowMatch, FlowSpec};

use crate::app::App;
use crate::controller::Ctl;
use crate::view::Dpid;

pub use crate::policy::{ACL_COOKIE, ACL_IMPORTANCE};

/// The ACL application.
pub struct Acl {
    denies: Vec<FlowMatch>,
    /// Priority of deny rules (must beat forwarding apps).
    pub priority: u16,
    /// Rules pushed (metric).
    pub rules_pushed: u64,
}

impl Acl {
    /// An ACL denying the given matches everywhere.
    pub fn new(denies: Vec<FlowMatch>) -> Acl {
        Acl {
            denies,
            priority: 900,
            rules_pushed: 0,
        }
    }

    /// Add a deny rule (applies to switches joining afterwards; call
    /// before the run starts for global coverage).
    pub fn deny(&mut self, matcher: FlowMatch) {
        self.denies.push(matcher);
    }
}

impl App for Acl {
    fn name(&self) -> &'static str {
        "acl"
    }

    fn on_switch_up(&mut self, ctl: &mut Ctl<'_, '_>, dpid: Dpid) {
        let mut txn = ctl.txn();
        for &matcher in &self.denies {
            self.rules_pushed += 1;
            // Deny rules are a security boundary: never the first thing
            // a full table sheds.
            let spec = FlowSpec::new(self.priority, matcher, vec![])
                .with_cookie(ACL_COOKIE)
                .with_importance(ACL_IMPORTANCE);
            txn.flow(dpid, 0, spec);
        }
        txn.commit(ctl);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}
