//! # zen-core — the network operating system
//!
//! The centerpiece of the `zen` platform: a logically centralized
//! controller in the mould of ONOS/Ryu, layered exactly like the systems
//! it models:
//!
//! * **Southbound** — [`agent::SwitchAgent`] runs on each switch,
//!   embedding the `zen-dataplane` pipeline and speaking the `zen-proto`
//!   control protocol over the simulator's out-of-band control channel.
//! * **Core** — [`controller::Controller`] terminates switch sessions,
//!   discovers topology with LLDP round trips, tracks host locations
//!   from punted edge traffic, and maintains the queryable
//!   [`view::NetworkView`].
//! * **Northbound** — applications implement [`app::App`] and compose in
//!   a dispatch chain: [`apps::L2Learning`], [`apps::ReactiveForwarding`],
//!   [`apps::ProactiveFabric`] (ECMP fabrics), [`apps::Acl`], and
//!   [`apps::TrafficEngineering`] (B4-style WAN TE over VLAN tunnels).
//!
//! [`harness`] builds whole fabrics (switches + controller + hosts) from
//! `zen-sim` topologies, so examples, tests and benchmarks construct
//! networks identically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod app;
pub mod apps;
pub mod cbench;
pub mod controller;
pub mod harness;
pub mod policy;
pub mod shard_fabric;
pub mod snapshot;
pub mod txn;
pub mod view;

pub use agent::{AgentConfig, ConnLossPolicy, ConnState, PuntMeterConfig, SwitchAgent};
pub use app::{App, Disposition};
pub use cbench::{CbenchConfig, CbenchMode, CbenchStats, CbenchSwitch};
pub use controller::{
    AdmissionConfig, Controller, ControllerConfig, Ctl, CtlStats, PUSHBACK_COOKIE,
    PUSHBACK_IMPORTANCE, PUSHBACK_PRIORITY,
};
pub use harness::{
    build_cluster_fabric, build_cluster_fabric_with_hosts, build_fabric, build_fabric_with_hosts,
    Fabric, FabricOptions,
};
pub use shard_fabric::{build_shard_fat_tree, ShardFabric, ShardSwitch, ShardTrafficHost};
pub use snapshot::export_jsonl;
pub use txn::{Consistency, NetworkUpdate, UpdatePlanner};
pub use view::{Dpid, HostEntry, NetworkView, SwitchInfo};
