//! The logically centralized controller.
//!
//! The controller is itself a simulator node; switch agents reach it
//! over the out-of-band control channel. It owns the
//! [`view::NetworkView`](crate::view::NetworkView), runs LLDP topology
//! discovery, learns host locations from punted edge traffic, and
//! dispatches everything else to the application chain.

use std::any::Any;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

use zen_cluster::{Admit, ClusterConfig, EwStore, GossipMode, Membership};
use zen_consensus::{fnv1a, fnv1a_fold, Applied, IntentReplica, Outbound, KEEP_TAIL};
use zen_dataplane::{epoch_tag, Action, FlowMatch, FlowSpec, Meter, PortNo};
use zen_proto::{
    decode_view, encode, encode_packet_out, intent_entry_bytes, CookieCount, ErrorCode, FlowModCmd,
    GroupModCmd, Intent, IntentEntry, Message, MessageView, MeterModCmd, Role, ViewEvent,
};
use zen_sim::{Context, Duration, Instant, Node, NodeId};
use zen_telemetry::{control_trace, trace_id_for_frame, TraceEvent, TraceId};
use zen_wire::ethernet::{EtherType, Frame};
use zen_wire::{arp, ipv4, lldp, EthernetAddress};

use crate::app::{App, Disposition};
use crate::txn::{
    ActiveTxn, Consistency, FlowRole, NetworkUpdate, TxnPhase, UpdateOp, UpdatePlanner,
};
use crate::view::{Dpid, NetworkView};

const TIMER_TICK: u64 = 1;
/// Fair-queue drain timer for deferred PACKET_INs (admission control).
const TIMER_ADMIT: u64 = 2;

pub use crate::policy::{PUSHBACK_COOKIE, PUSHBACK_IMPORTANCE, PUSHBACK_PRIORITY};

/// Cap on east-west entries gossiped to one peer per tick; the rest go
/// out on following ticks (the ack-driven suffix resend makes this safe).
const EW_BATCH: usize = 64;

/// Controller configuration.
#[derive(Debug, Clone, Copy)]
pub struct ControllerConfig {
    /// Discovery + app tick period.
    pub tick_interval: Duration,
    /// TTL stamped into discovery LLDPs.
    pub lldp_ttl_secs: u16,
    /// Age after which an unconfirmed link is declared dead (silent
    /// failure detection). Should be several tick intervals.
    pub link_max_age: Duration,
    /// Silence from an agent (no message of any kind, echo replies
    /// included) before it is quarantined in the view. Should be
    /// several echo intervals.
    pub agent_dead_after: Duration,
    /// Age of an unacknowledged flow/group/meter mod before it is
    /// retransmitted.
    pub mod_timeout: Duration,
    /// Retransmission attempts before a mod is counted as failed.
    pub mod_max_retries: u32,
    /// Controller-side PACKET_IN admission control. `None` = every
    /// punt is dispatched immediately (the classic behaviour).
    pub admission: Option<AdmissionConfig>,
    /// Drain wave after a two-phase update flips its edge rules:
    /// packets stamped with the old epoch get this long to exit the
    /// network before its rules are garbage-collected.
    pub txn_drain: Duration,
    /// Give-up budget per two-phase transaction phase. A staging
    /// transaction past its deadline aborts (a touched switch may be
    /// dead and its acks will never come); a flipping one
    /// force-advances and leaves the straggler to the resync
    /// machinery.
    pub txn_deadline: Duration,
}

impl Default for ControllerConfig {
    fn default() -> ControllerConfig {
        ControllerConfig {
            tick_interval: Duration::from_millis(50),
            lldp_ttl_secs: 120,
            link_max_age: Duration::from_millis(175),
            agent_dead_after: Duration::from_millis(300),
            mod_timeout: Duration::from_millis(150),
            mod_max_retries: 8,
            admission: None,
            txn_drain: Duration::from_millis(100),
            txn_deadline: Duration::from_secs(2),
        }
    }
}

/// Controller-side PACKET_IN admission control: per-switch token
/// buckets with fair-queued overflow, so one switch's punt storm can
/// neither starve the other switches nor monopolize the controller.
///
/// Punts within a switch's budget dispatch immediately. Over-budget
/// punts are *deferred* into that switch's bounded queue and released
/// by a round-robin drain timer — every switch gets an equal share of
/// leftover capacity regardless of who is noisiest. When a queue
/// overflows, the excess is *shed*, and each shed or deferred punt is
/// charged to its `(ingress port, source MAC)`; past
/// [`AdmissionConfig::pushback_threshold`] the controller *pushes
/// back*, installing a targeted drop rule (cookie
/// [`PUSHBACK_COOKIE`]) on the offending ingress so the storm dies at
/// the edge instead of in the control plane. LLDP discovery returns
/// bypass the meter entirely: topology must stay alive precisely when
/// the fleet is under attack.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Sustained PACKET_INs per second admitted directly, per switch.
    pub rate_pps: u64,
    /// Burst allowance per switch, in PACKET_INs.
    pub burst: u64,
    /// Per-switch deferred-punt queue capacity; overflow is shed.
    pub queue_cap: usize,
    /// Period of the fair-queue drain timer.
    pub drain_interval: Duration,
    /// Deferred punts released per drain, round-robin across switches.
    pub drain_batch: usize,
    /// Deferred-or-shed punts charged to one `(ingress, source MAC)`
    /// within [`AdmissionConfig::pushback_window`] before a drop rule
    /// is installed there. `0` disables push-back.
    pub pushback_threshold: u64,
    /// Offender accounting window (counts reset at this period).
    pub pushback_window: Duration,
    /// Hard timeout of installed push-back drop rules; a persistent
    /// attacker is re-pinned when the rule lapses and the storm
    /// resumes.
    pub pushback_hold: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            rate_pps: 2_000,
            burst: 256,
            queue_cap: 512,
            drain_interval: Duration::from_millis(1),
            drain_batch: 64,
            pushback_threshold: 200,
            pushback_window: Duration::from_millis(1_000),
            pushback_hold: Duration::from_millis(2_000),
        }
    }
}

/// Controller counters, read by experiments.
#[derive(Debug, Default, Clone, Copy)]
pub struct CtlStats {
    /// PACKET_INs received (excluding LLDP discovery returns).
    pub packet_ins: u64,
    /// LLDP discovery PACKET_INs received.
    pub lldp_ins: u64,
    /// FLOW_MODs sent.
    pub flow_mods: u64,
    /// GROUP_MODs sent.
    pub group_mods: u64,
    /// PACKET_OUTs sent.
    pub packet_outs: u64,
    /// Total control messages sent.
    pub msgs_sent: u64,
    /// Total control messages received.
    pub msgs_received: u64,
    /// Protocol decode errors.
    pub decode_errors: u64,
    /// ECHO_REQUEST liveness probes sent to agents.
    pub echo_probes: u64,
    /// ECHO_REPLYs received from agents.
    pub echo_replies: u64,
    /// Mods confirmed applied by a barrier acknowledgement.
    pub mods_acked: u64,
    /// Mods resent after their barrier ack timed out.
    pub mods_retransmitted: u64,
    /// Mods abandoned after exhausting retransmissions.
    pub mods_failed: u64,
    /// Pending mods discarded because a resync replaced them.
    pub mods_superseded: u64,
    /// Agents quarantined for silence.
    pub quarantines: u64,
    /// Reconnect resyncs where the reported state matched ours.
    pub resyncs_clean: u64,
    /// Reconnect resyncs that diverged and triggered reprogramming.
    pub resyncs_dirty: u64,
    /// East-west heartbeats sent to peer replicas.
    pub ew_heartbeats: u64,
    /// East-west events applied from peer replicas.
    pub ew_events_applied: u64,
    /// East-west events skipped (duplicate, out of order, or losing a
    /// last-writer-wins race).
    pub ew_events_skipped: u64,
    /// Switches this replica took mastership of.
    pub masterships_gained: u64,
    /// Switches this replica relinquished (a peer revived, or a stronger
    /// claim was observed at the switch).
    pub masterships_lost: u64,
    /// NOT_MASTER errors received for mods that crossed a mastership
    /// change in flight.
    pub nonmaster_errors: u64,
    /// TABLE_FULL errors received: flow adds a switch refused for lack
    /// of capacity (refuse overflow policy). Each retires its pending
    /// mod as failed — retransmitting cannot create capacity.
    pub table_full_errors: u64,
    /// FLOW_REMOVED notices with reason Eviction: entries a switch
    /// displaced to make room under the evict overflow policy.
    pub evictions_noted: u64,
    /// PACKET_INs admitted directly by admission control (within the
    /// per-switch budget; stays 0 when admission is disabled).
    pub punts_admitted: u64,
    /// PACKET_INs deferred into the per-switch fair queue.
    pub punts_deferred: u64,
    /// Deferred PACKET_INs later dispatched by the drain timer.
    pub punts_drained: u64,
    /// PACKET_INs shed because the per-switch queue was full.
    pub punts_shed: u64,
    /// Push-back drop rules installed on offending ingress ports.
    pub pushbacks_installed: u64,
    /// Network updates committed (all consistency levels).
    pub txns_committed: u64,
    /// Two-phase updates aborted (staging failure or deadline).
    pub txns_aborted: u64,
    /// Per-packet updates that took the single-switch fast path.
    pub txns_fast: u64,
    /// Edge-flip mods that failed mid-transaction; the transaction
    /// completed and the straggler switch was left to resync repair.
    pub epoch_flip_failures: u64,
    /// East-west log entries pushed or served to peer replicas.
    pub ew_entries_sent: u64,
    /// East-west digest frames sent to peer replicas.
    pub ew_digests_sent: u64,
    /// East-west fetch requests sent after a digest showed us behind.
    pub ew_fetches_sent: u64,
    /// East-west snapshots served to peers too far behind to repair
    /// from retained log ranges.
    pub ew_snapshots_sent: u64,
    /// East-west snapshots installed from a peer (fresh bootstrap or
    /// divergence repair).
    pub ew_snapshots_installed: u64,
    /// Intents proposed by this replica (local applications).
    pub intents_proposed: u64,
    /// Intents observed committed (applied from the replicated log).
    pub intents_committed: u64,
    /// Consensus protocol messages sent (propose/append/ack/fetch/
    /// catchup frames between replicas).
    pub intent_msgs_sent: u64,
}

/// Runtime state of one replica in a controller cluster.
struct ClusterState {
    membership: Membership,
    store: EwStore,
    /// Switches this replica currently exercises mastership over.
    my_masters: BTreeSet<Dpid>,
    /// Claims observed at switches that outrank ours: dpid → the
    /// `(term, replica)` that won. Cleared once our own claim grows
    /// past the recorded one.
    deferred: BTreeMap<Dpid, (u64, u32)>,
    /// Replicated program stamps: (dpid, app cookie) → content hash of
    /// the owning app's desired program. A replica gaining mastership
    /// reprograms only when its own desired hash disagrees.
    program_stamps: BTreeMap<(Dpid, u64), u64>,
    /// Replicated intent log: leader election, append/ack replication,
    /// and snapshot catch-up for linearizable control intents.
    intents: IntentReplica,
    /// Committed mastership pins: dpid → replica index. Overrides the
    /// hash-based assignment while the pinned replica is alive.
    pins: BTreeMap<Dpid, u32>,
    /// Per-peer high-water mark of own-origin entries eagerly pushed
    /// (digest gossip mode): peer → highest own seq already sent.
    pushed_high: BTreeMap<u32, u64>,
}

impl ClusterState {
    /// Whether this replica should exercise mastership over `dpid`:
    /// a live committed pin wins, otherwise the hash assignment.
    fn wants_mastership(&self, dpid: Dpid) -> bool {
        if let Some(&r) = self.pins.get(&dpid) {
            if self.membership.is_alive(r as usize) {
                return r as usize == self.membership.config().index;
            }
        }
        self.membership.assigned_master(dpid)
    }
}

/// Runtime state of PACKET_IN admission control
/// ([`ControllerConfig::admission`]).
struct AdmissionState {
    cfg: AdmissionConfig,
    /// Per-switch punt meters (packet-rate token buckets), keyed by
    /// control-channel peer so unmetered traffic cannot hide behind a
    /// not-yet-registered dpid.
    meters: BTreeMap<NodeId, Meter>,
    /// Per-switch deferred punts: (ingress port, owned frame).
    queues: BTreeMap<NodeId, VecDeque<(PortNo, Vec<u8>)>>,
    /// Round-robin position: the switch served last; the drain resumes
    /// after it.
    cursor: Option<NodeId>,
    /// Deferred-or-shed punt counts per (switch, ingress, source MAC)
    /// in the current push-back window.
    offenders: BTreeMap<(NodeId, PortNo, [u8; 6]), u64>,
    /// When the current offender window opened.
    window_started: Instant,
    /// Push-back rules believed live: (switch, ingress, source MAC) →
    /// install time. An entry lapses with the rule's hard timeout, so
    /// a persistent offender is re-pinned on its next threshold cross.
    active_pushbacks: BTreeMap<(NodeId, PortNo, [u8; 6]), Instant>,
    /// Cached metric handles: [admitted, deferred, drained, shed].
    cids: Option<[zen_sim::CounterId; 4]>,
}

impl AdmissionState {
    fn new(cfg: AdmissionConfig) -> AdmissionState {
        AdmissionState {
            cfg,
            meters: BTreeMap::new(),
            queues: BTreeMap::new(),
            cursor: None,
            offenders: BTreeMap::new(),
            window_started: Instant::ZERO,
            active_pushbacks: BTreeMap::new(),
            cids: None,
        }
    }

    /// The typed counters, registered on first use: [admitted,
    /// deferred, drained, shed].
    fn counters(&mut self, ctx: &mut Context<'_>) -> [zen_sim::CounterId; 4] {
        *self.cids.get_or_insert_with(|| {
            let m = ctx.metrics();
            [
                m.register_counter("defense.ctl_punts_admitted"),
                m.register_counter("defense.ctl_punts_deferred"),
                m.register_counter("defense.ctl_punts_drained"),
                m.register_counter("defense.ctl_punts_shed"),
            ]
        })
    }
}

/// A flow/group/meter mod awaiting barrier acknowledgement.
struct PendingMod {
    node: NodeId,
    dpid: Dpid,
    /// The encoded frame (original xid), resent verbatim on timeout.
    bytes: Vec<u8>,
    /// The decoded form, applied to the cookie shadow once acked.
    msg: Message,
    sent_at: Instant,
    retries: u32,
}

/// The services handle passed to applications: the network view plus
/// typed message-sending helpers.
pub struct Ctl<'a, 'w> {
    /// The simulator context (time, RNG, metrics).
    pub ctx: &'a mut Context<'w>,
    /// The controller's network view.
    pub view: &'a mut NetworkView,
    registry: &'a BTreeMap<Dpid, NodeId>,
    xid: &'a mut u32,
    stats: &'a mut CtlStats,
    pending: &'a mut BTreeMap<u32, PendingMod>,
    dirty: &'a mut BTreeSet<NodeId>,
    cluster: Option<&'a mut ClusterState>,
    planner: &'a mut UpdatePlanner,
    intent_owners: &'a mut BTreeMap<u64, &'static str>,
    local_intents: &'a mut Vec<(u64, Intent)>,
}

impl Ctl<'_, '_> {
    /// Current simulated time.
    pub fn now(&self) -> Instant {
        self.ctx.now()
    }

    /// Whether this controller currently exercises mastership over
    /// `dpid`. A non-clustered controller masters every switch it
    /// knows; a clustered replica masters its deterministic share.
    /// State mods to non-mastered switches are silently filtered (the
    /// agent would reject them anyway), so apps can stay
    /// cluster-oblivious and program the whole view.
    pub fn is_master(&self, dpid: Dpid) -> bool {
        self.cluster
            .as_ref()
            .is_none_or(|cl| cl.my_masters.contains(&dpid))
    }

    /// The replicated program stamp for `(dpid, cookie)`: the content
    /// hash the last master recorded for its installed program. `None`
    /// when never programmed or not clustered.
    pub fn program_stamp(&self, dpid: Dpid, cookie: u64) -> Option<u64> {
        self.cluster
            .as_ref()
            .and_then(|cl| cl.program_stamps.get(&(dpid, cookie)).copied())
    }

    /// Record (and replicate east-west) the content hash of this app's
    /// program on `dpid`. Apps call this right after programming a
    /// switch; a standby that later takes the switch over compares the
    /// stamp against its own desired hash and reprograms only on
    /// mismatch. No-op when not clustered or unchanged.
    pub fn set_program_stamp(&mut self, dpid: Dpid, cookie: u64, hash: u64) {
        if let Some(cl) = self.cluster.as_mut() {
            if cl.program_stamps.get(&(dpid, cookie)) == Some(&hash) {
                return;
            }
            cl.program_stamps.insert((dpid, cookie), hash);
            let term = cl.membership.term();
            cl.store
                .append(term, ViewEvent::ProgramStamp { dpid, cookie, hash });
        }
    }

    /// Send a raw protocol message to a switch. Unknown dpids are
    /// silently dropped (the switch may have disconnected).
    ///
    /// State-programming messages (flow/group/meter mods) are tracked
    /// until a barrier acknowledges them, and retransmitted on timeout —
    /// mods are idempotent by cookie, so a duplicate is harmless while a
    /// loss would silently diverge switch state from the controller's.
    pub fn send(&mut self, dpid: Dpid, msg: &Message) {
        let Some(&node) = self.registry.get(&dpid) else {
            return;
        };
        // Clustered: only the master programs a switch. Packet-outs and
        // stats requests pass (Equal connections may inject and read).
        if matches!(
            msg,
            Message::FlowMod { .. } | Message::GroupMod { .. } | Message::MeterMod { .. }
        ) && !self.is_master(dpid)
        {
            return;
        }
        let xid = *self.xid;
        *self.xid += 1;
        self.stats.msgs_sent += 1;
        match msg {
            Message::FlowMod { .. } => self.stats.flow_mods += 1,
            Message::GroupMod { .. } => self.stats.group_mods += 1,
            Message::PacketOut { .. } => self.stats.packet_outs += 1,
            _ => {}
        }
        let bytes = encode(msg, xid);
        if matches!(
            msg,
            Message::FlowMod { .. } | Message::GroupMod { .. } | Message::MeterMod { .. }
        ) {
            self.pending.insert(
                xid,
                PendingMod {
                    node,
                    dpid,
                    bytes: bytes.clone(),
                    msg: msg.clone(),
                    sent_at: self.ctx.now(),
                    retries: 0,
                },
            );
            self.dirty.insert(node);
        }
        {
            // Flight recorder: attribute control messages sent while an
            // app chain is processing a traced PACKET_IN.
            let rec = self.ctx.recorder();
            if rec.is_enabled() {
                if let Some(trace) = rec.current_trace() {
                    let at = self.ctx.now().as_nanos();
                    match msg {
                        Message::FlowMod { cmd, .. } => {
                            let cookie = match cmd {
                                FlowModCmd::Add(spec) => spec.cookie,
                                FlowModCmd::DeleteByCookie { cookie } => *cookie,
                                FlowModCmd::DeleteStrict { .. } => 0,
                            };
                            rec.record(at, trace, TraceEvent::FlowModSent { dpid, xid, cookie });
                            rec.bind_xid(xid, trace);
                        }
                        Message::GroupMod { .. } | Message::MeterMod { .. } => {
                            rec.bind_xid(xid, trace);
                        }
                        Message::PacketOut { .. } => {
                            rec.record(at, trace, TraceEvent::PacketOutSent { dpid });
                        }
                        _ => {}
                    }
                }
            }
        }
        self.ctx.send_control(node, bytes);
    }

    /// Open a network update transaction. Stage flow/group/meter ops on
    /// the returned [`NetworkUpdate`], then [`NetworkUpdate::commit`] it
    /// back through this handle — the whole batch lands atomically
    /// (immediately for relaxed/single-switch updates, via an
    /// epoch-versioned two-phase commit for multi-switch per-packet
    /// ones).
    pub fn txn(&mut self) -> NetworkUpdate {
        NetworkUpdate::default()
    }

    /// The configuration epoch a transaction staged *now* would commit
    /// as: current epoch + 1 + every transaction already in flight or
    /// queued ahead of it. Apps use the parity to pick alternating
    /// cookies/group ids so the lame epoch stays addressable for GC.
    pub fn staged_epoch(&self) -> u64 {
        self.planner.staged_epoch()
    }

    /// The currently committed configuration epoch.
    pub fn config_epoch(&self) -> u64 {
        self.planner.config_epoch()
    }

    /// The xid the next [`Ctl::send`] would allocate. The planner
    /// brackets sends with this to learn which xids a batch actually
    /// consumed (sends to unknown or non-mastered switches allocate
    /// none).
    pub(crate) fn peek_xid(&self) -> u32 {
        *self.xid
    }

    /// Commit a staged network update (the target of
    /// [`NetworkUpdate::commit`]).
    ///
    /// Relaxed updates — and per-packet updates that touch a single
    /// switch, where the agent's own barrier ordering already gives
    /// per-packet semantics — are sent immediately, in staging order.
    /// Multi-switch per-packet updates are queued for the controller's
    /// epoch planner, which runs them through the two-phase protocol
    /// from its timer.
    pub(crate) fn commit_update(&mut self, update: NetworkUpdate) {
        if update.is_empty() {
            return;
        }
        let two_phase =
            update.consistency == Consistency::PerPacket && update.switches_touched() > 1;
        if !two_phase {
            if update.consistency == Consistency::PerPacket {
                self.stats.txns_fast += 1;
            }
            for op in &update.ops {
                self.send_op(op);
            }
            self.stats.txns_committed += 1;
        } else {
            self.planner.queue.push_back(update);
        }
    }

    /// Translate one staged op into its wire message. Retire ops have
    /// no special meaning outside a two-phase commit: they execute as
    /// plain deletes in staging order.
    fn send_op(&mut self, op: &UpdateOp) {
        match op {
            UpdateOp::Flow {
                dpid,
                table_id,
                spec,
                ..
            } => self.send(
                *dpid,
                &Message::FlowMod {
                    table_id: *table_id,
                    cmd: FlowModCmd::Add(spec.clone()),
                },
            ),
            UpdateOp::DeleteFlowsByCookie { dpid, cookie }
            | UpdateOp::RetireFlowsByCookie { dpid, cookie } => self.send(
                *dpid,
                &Message::FlowMod {
                    table_id: 0,
                    cmd: FlowModCmd::DeleteByCookie { cookie: *cookie },
                },
            ),
            UpdateOp::Group {
                dpid,
                group_id,
                desc,
            } => self.send(
                *dpid,
                &Message::GroupMod {
                    group_id: *group_id,
                    cmd: GroupModCmd::Add(desc.clone()),
                },
            ),
            UpdateOp::DeleteGroup { dpid, group_id } | UpdateOp::RetireGroup { dpid, group_id } => {
                self.send(
                    *dpid,
                    &Message::GroupMod {
                        group_id: *group_id,
                        cmd: GroupModCmd::Delete,
                    },
                )
            }
            UpdateOp::Meter {
                dpid,
                meter_id,
                rate_bps,
                burst_bytes,
            } => self.send(
                *dpid,
                &Message::MeterMod {
                    meter_id: *meter_id,
                    cmd: MeterModCmd::Add {
                        rate_bps: *rate_bps,
                        burst_bytes: *burst_bytes,
                    },
                },
            ),
        }
    }

    /// Delete all flows carrying `cookie` on a switch.
    pub fn delete_flows_by_cookie(&mut self, dpid: Dpid, cookie: u64) {
        self.send(
            dpid,
            &Message::FlowMod {
                table_id: 0,
                cmd: FlowModCmd::DeleteByCookie { cookie },
            },
        );
    }

    /// Inject a frame at a switch with the given actions.
    ///
    /// The frame is borrowed: it is copied exactly once, straight into
    /// the wire buffer. PACKET_OUT is fire-and-forget (never tracked
    /// for retransmission), so no owned [`Message`] is ever built.
    pub fn packet_out(
        &mut self,
        dpid: Dpid,
        in_port: PortNo,
        actions: &[zen_dataplane::Action],
        frame: &[u8],
    ) {
        let Some(&node) = self.registry.get(&dpid) else {
            return;
        };
        let xid = *self.xid;
        *self.xid += 1;
        self.stats.msgs_sent += 1;
        self.stats.packet_outs += 1;
        let rec = self.ctx.recorder();
        if rec.is_enabled() {
            if let Some(trace) = rec.current_trace() {
                let at = self.ctx.now().as_nanos();
                rec.record(at, trace, TraceEvent::PacketOutSent { dpid });
            }
        }
        self.ctx
            .send_control(node, encode_packet_out(in_port, actions, frame, xid));
    }

    /// Fence a switch (answered asynchronously). App-issued fences
    /// cover no mod xids — delivery tracking uses its own barriers.
    pub fn barrier(&mut self, dpid: Dpid) {
        self.send(dpid, &Message::BarrierRequest { xids: Vec::new() });
    }

    /// Propose a cluster-wide intent for linearizable commitment and
    /// return its token.
    ///
    /// Clustered, the intent enters the replicated log: it is forwarded
    /// to the current leader and resent until a quorum commits it.
    /// Standalone, it commits locally on the next timer tick. Either
    /// way every app's [`App::on_intent_committed`] hook fires exactly
    /// once per commit, and the proposing app additionally gets
    /// [`App::on_update_committed`] with the returned token.
    pub fn propose_intent(&mut self, owner: &'static str, intent: Intent) -> u64 {
        // Token: content hash salted with the monotone xid counter, so
        // a withdraw/re-install cycle of identical content still gets a
        // fresh identity (committed tokens deduplicate forever).
        let salt = *self.xid;
        *self.xid += 1;
        let mut h = fnv1a(owner.as_bytes());
        h = fnv1a_fold(h, &salt.to_le_bytes());
        h = fnv1a_fold(
            h,
            &intent_entry_bytes(&IntentEntry {
                index: 0,
                term: 0,
                origin: 0,
                token: 0,
                intent: intent.clone(),
            }),
        );
        let token = h.max(1); // zero is the reserved no-op token
        self.stats.intents_proposed += 1;
        self.intent_owners.insert(token, owner);
        if let Some(cl) = self.cluster.as_mut() {
            cl.intents.propose_local(token, intent);
        } else {
            self.local_intents.push((token, intent));
        }
        token
    }

    /// Whether this replica currently leads the intent log (always true
    /// standalone). Proposals work from any replica; this is for
    /// observability and tests.
    pub fn is_intent_leader(&self) -> bool {
        self.cluster
            .as_ref()
            .is_none_or(|cl| cl.intents.is_leader())
    }

    /// The committed mastership pin for `dpid`, if any.
    pub fn pinned_master(&self, dpid: Dpid) -> Option<u32> {
        self.cluster
            .as_ref()
            .and_then(|cl| cl.pins.get(&dpid).copied())
    }
}

/// The controller node.
pub struct Controller {
    cfg: ControllerConfig,
    apps: Vec<Box<dyn App>>,
    /// The network view (public for post-run inspection).
    pub view: NetworkView,
    registry: BTreeMap<Dpid, NodeId>,
    rev_registry: BTreeMap<NodeId, Dpid>,
    /// Last time anything was heard from each agent.
    liveness: BTreeMap<NodeId, Instant>,
    /// Unacked mods keyed by xid.
    pending: BTreeMap<u32, PendingMod>,
    /// Outstanding barriers: barrier xid → (node, covered mod xids).
    barriers: BTreeMap<u32, (NodeId, Vec<u32>)>,
    /// Nodes with newly pending mods, awaiting a covering barrier.
    dirty: BTreeSet<NodeId>,
    /// What we believe each switch has installed: cookie → entry count,
    /// maintained from barrier-acked mods and FLOW_REMOVED notices, and
    /// diffed against HELLO_RESYNC digests on reconnect.
    shadow: BTreeMap<Dpid, BTreeMap<u64, u32>>,
    /// Throttle: last RESYNC_REQUEST sent per quarantined switch.
    resync_requested: BTreeMap<Dpid, Instant>,
    /// Throttle: last FEATURES_REQUEST re-solicitation per unregistered
    /// node (the handshake itself can be lost on a faulty channel).
    features_requested: BTreeMap<NodeId, Instant>,
    /// Switches whose next FEATURES_REPLY is a port-map refresh (sent
    /// after takeovers and healed partitions), not a new handshake —
    /// the reply updates the view and nothing else.
    port_refresh: BTreeSet<Dpid>,
    /// Latest generation each agent reported in HELLO_RESYNC.
    agent_generations: BTreeMap<Dpid, u64>,
    /// Present when this controller is a replica in a cluster.
    cluster: Option<ClusterState>,
    /// Present when `cfg.admission` is set.
    admission: Option<AdmissionState>,
    /// Epoch-versioned two-phase update planner.
    planner: UpdatePlanner,
    /// Proposed-intent tokens → owning app name, consumed when the
    /// intent commits to route the `on_update_committed` callback.
    intent_owners: BTreeMap<u64, &'static str>,
    /// Standalone-mode intent queue: commits on the next timer tick
    /// without a cluster round.
    local_intents: Vec<(u64, Intent)>,
    xid: u32,
    /// Counters.
    pub stats: CtlStats,
}

impl Controller {
    /// A controller running `apps` (dispatched in order).
    pub fn new(apps: Vec<Box<dyn App>>) -> Controller {
        Controller::with_config(apps, ControllerConfig::default())
    }

    /// A controller with explicit configuration.
    pub fn with_config(apps: Vec<Box<dyn App>>, cfg: ControllerConfig) -> Controller {
        Controller {
            cfg,
            apps,
            view: NetworkView::new(),
            registry: BTreeMap::new(),
            rev_registry: BTreeMap::new(),
            liveness: BTreeMap::new(),
            pending: BTreeMap::new(),
            barriers: BTreeMap::new(),
            dirty: BTreeSet::new(),
            shadow: BTreeMap::new(),
            resync_requested: BTreeMap::new(),
            features_requested: BTreeMap::new(),
            port_refresh: BTreeSet::new(),
            agent_generations: BTreeMap::new(),
            cluster: None,
            admission: cfg.admission.map(AdmissionState::new),
            planner: UpdatePlanner::default(),
            intent_owners: BTreeMap::new(),
            local_intents: Vec::new(),
            xid: 1,
            stats: CtlStats::default(),
        }
    }

    /// The committed configuration epoch (post-run inspection).
    pub fn config_epoch(&self) -> u64 {
        self.planner.config_epoch()
    }

    /// Whether a two-phase network update is active or queued.
    pub fn txn_busy(&self) -> bool {
        self.planner.is_busy()
    }

    /// Turn this controller into replica `cfg.index` of a cluster. Call
    /// before the simulation starts. The xid space is namespaced by
    /// replica index so xid-keyed telemetry (flow-mod trace bindings)
    /// from different replicas cannot collide in the shared recorder.
    pub fn enable_cluster(&mut self, cfg: ClusterConfig) {
        self.xid = ((cfg.index as u32) + 1) << 24;
        self.cluster = Some(ClusterState {
            store: EwStore::new(cfg.index as u32, cfg.len()),
            intents: IntentReplica::new(cfg.index as u32, cfg.len() as u32),
            membership: Membership::new(cfg, Instant::ZERO),
            my_masters: BTreeSet::new(),
            deferred: BTreeMap::new(),
            program_stamps: BTreeMap::new(),
            pins: BTreeMap::new(),
            pushed_high: BTreeMap::new(),
        });
    }

    /// Whether this replica currently exercises mastership over `dpid`.
    /// Non-clustered controllers master everything they know.
    pub fn is_master_of(&self, dpid: Dpid) -> bool {
        self.cluster
            .as_ref()
            .is_none_or(|cl| cl.my_masters.contains(&dpid))
    }

    /// The switches this controller currently masters.
    pub fn mastered(&self) -> Vec<Dpid> {
        match &self.cluster {
            Some(cl) => cl.my_masters.iter().copied().collect(),
            None => self.registry.keys().copied().collect(),
        }
    }

    /// The cluster mastership term, if clustered.
    pub fn cluster_term(&self) -> Option<u64> {
        self.cluster.as_ref().map(|cl| cl.membership.term())
    }

    /// The replicated intent log, if clustered (post-run inspection:
    /// role, term, commit index, compaction floor).
    pub fn intent_replica(&self) -> Option<&IntentReplica> {
        self.cluster.as_ref().map(|cl| &cl.intents)
    }

    /// The replicated program stamp for `(dpid, cookie)` (post-run
    /// inspection; see [`Ctl::program_stamp`]).
    pub fn program_stamp_of(&self, dpid: Dpid, cookie: u64) -> Option<u64> {
        self.cluster
            .as_ref()
            .and_then(|cl| cl.program_stamps.get(&(dpid, cookie)).copied())
    }

    /// Mods sent but not yet barrier-acknowledged.
    pub fn pending_mods(&self) -> usize {
        self.pending.len()
    }

    /// The latest HELLO_RESYNC generation reported by a switch.
    pub fn agent_generation(&self, dpid: Dpid) -> Option<u64> {
        self.agent_generations.get(&dpid).copied()
    }

    /// Access an application by index (post-run inspection).
    pub fn app(&self, index: usize) -> &dyn App {
        self.apps[index].as_ref()
    }

    /// Find the first app of concrete type `T` (post-run inspection,
    /// snapshot export).
    pub fn find_app<T: App>(&self) -> Option<&T> {
        self.apps
            .iter()
            .find_map(|a| a.as_any().downcast_ref::<T>())
    }

    /// Run `f` with the services handle and the app list temporarily
    /// split apart (the standard take/put dance).
    fn with_apps(
        &mut self,
        ctx: &mut Context<'_>,
        f: impl FnOnce(&mut Vec<Box<dyn App>>, &mut Ctl<'_, '_>),
    ) {
        let mut apps = std::mem::take(&mut self.apps);
        {
            let mut ctl = Ctl {
                ctx,
                view: &mut self.view,
                registry: &self.registry,
                xid: &mut self.xid,
                stats: &mut self.stats,
                pending: &mut self.pending,
                dirty: &mut self.dirty,
                cluster: self.cluster.as_mut(),
                planner: &mut self.planner,
                intent_owners: &mut self.intent_owners,
                local_intents: &mut self.local_intents,
            };
            f(&mut apps, &mut ctl);
        }
        self.apps = apps;
    }

    fn send_direct(&mut self, ctx: &mut Context<'_>, dpid: Dpid, msg: &Message) {
        let Some(&node) = self.registry.get(&dpid) else {
            return;
        };
        let xid = self.xid;
        self.xid += 1;
        self.stats.msgs_sent += 1;
        ctx.send_control(node, encode(msg, xid));
    }

    /// Fold an acked mod into the cookie shadow for `dpid`.
    ///
    /// The shadow is an approximation — strict deletes and replacing
    /// adds can drift it — but drift only ever causes a *dirty* resync
    /// verdict, which reprograms the switch: safe, merely less frugal.
    fn apply_to_shadow(&mut self, dpid: Dpid, msg: &Message) {
        if let Message::FlowMod { cmd, .. } = msg {
            let shadow = self.shadow.entry(dpid).or_default();
            match cmd {
                FlowModCmd::Add(spec) => {
                    *shadow.entry(spec.cookie).or_insert(0) += 1;
                }
                FlowModCmd::DeleteByCookie { cookie } => {
                    shadow.remove(cookie);
                }
                FlowModCmd::DeleteStrict { .. } => {}
            }
        }
    }

    /// Log a local view mutation into the east-west store for
    /// replication. No-op when not clustered.
    fn log_event(&mut self, event: ViewEvent) {
        if let Some(cl) = self.cluster.as_mut() {
            let term = cl.membership.term();
            cl.store.append(term, event);
        }
    }

    /// The current cookie shadow of `dpid` in wire form.
    fn shadow_cookies(&self, dpid: Dpid) -> Vec<CookieCount> {
        self.shadow
            .get(&dpid)
            .map(|m| {
                m.iter()
                    .map(|(&cookie, &count)| CookieCount { cookie, count })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Apply a replicated view mutation a peer observed first-hand.
    fn apply_view_event(&mut self, event: ViewEvent, now: Instant) {
        match event {
            ViewEvent::LinkAdd {
                from_dpid,
                from_port,
                to_dpid,
                to_port,
            } => {
                self.view
                    .add_link_at((from_dpid, from_port), (to_dpid, to_port), now);
            }
            ViewEvent::LinkDel {
                from_dpid,
                from_port,
            } => {
                self.view.remove_link((from_dpid, from_port));
            }
            ViewEvent::HostLearned {
                mac,
                dpid,
                port,
                ip,
            } => {
                self.view.learn_host(mac, dpid, port, ip, now);
            }
            ViewEvent::ShadowSet { dpid, cookies } => {
                // Our own barrier acks are authoritative for switches we
                // master; a peer's digest matters for a future takeover.
                if !self.is_master_of(dpid) {
                    self.shadow
                        .insert(dpid, cookies.iter().map(|c| (c.cookie, c.count)).collect());
                }
            }
            ViewEvent::ProgramStamp { dpid, cookie, hash } => {
                if let Some(cl) = self.cluster.as_mut() {
                    cl.program_stamps.insert((dpid, cookie), hash);
                }
            }
        }
    }

    /// East-west traffic from a peer replica (already routed past the
    /// switch-session machinery).
    fn handle_peer_message(&mut self, ctx: &mut Context<'_>, msg: Message) {
        match msg {
            Message::EwHeartbeat {
                replica,
                term,
                acks,
            } => {
                if let Some(cl) = self.cluster.as_mut() {
                    cl.membership.note_heartbeat(replica, term, ctx.now());
                    cl.store.note_peer_acks(replica, &acks);
                }
            }
            Message::EwEvents { entries, .. } => {
                let now = ctx.now();
                for entry in entries {
                    let verdict = match self.cluster.as_mut() {
                        Some(cl) => cl.store.admit(&entry),
                        None => return,
                    };
                    if verdict == Admit::Apply {
                        self.stats.ew_events_applied += 1;
                        self.apply_view_event(entry.event, now);
                    } else {
                        self.stats.ew_events_skipped += 1;
                    }
                }
            }
            Message::EwDigest {
                replica,
                term,
                heads,
            } => {
                let now = ctx.now();
                let Some(cl) = self.cluster.as_mut() else {
                    return;
                };
                cl.membership.note_heartbeat(replica, term, now);
                // A digest head doubles as an applied-mark ack: the
                // chain hash guarantees the peer holds everything up
                // to it contiguously.
                let acks: Vec<(u32, u64)> = heads.iter().map(|h| (h.origin, h.head)).collect();
                cl.store.note_peer_acks(replica, &acks);
                let ranges = cl.store.missing_ranges(&heads);
                if ranges.is_empty() {
                    return;
                }
                let me = cl.membership.index() as u32;
                let Some(&node) = cl.membership.config().replicas.get(replica as usize) else {
                    return;
                };
                self.stats.msgs_sent += 1;
                self.stats.ew_fetches_sent += 1;
                ctx.send_control(
                    node,
                    encode(
                        &Message::EwFetch {
                            replica: me,
                            ranges,
                        },
                        0,
                    ),
                );
            }
            Message::EwFetch { replica, ranges } => {
                let Some(cl) = self.cluster.as_mut() else {
                    return;
                };
                let me = cl.membership.index() as u32;
                let Some(&node) = cl.membership.config().replicas.get(replica as usize) else {
                    return;
                };
                let (entries, want_snapshot) = cl.store.serve_ranges(&ranges);
                if want_snapshot {
                    let (heads, snap_entries, checksum) = cl.store.snapshot();
                    self.stats.msgs_sent += 1;
                    self.stats.ew_snapshots_sent += 1;
                    ctx.send_control(
                        node,
                        encode(
                            &Message::EwSnapshot {
                                replica: me,
                                heads,
                                entries: snap_entries,
                                checksum,
                            },
                            0,
                        ),
                    );
                }
                for chunk in entries.chunks(EW_BATCH) {
                    self.stats.msgs_sent += 1;
                    self.stats.ew_entries_sent += chunk.len() as u64;
                    ctx.send_control(
                        node,
                        encode(
                            &Message::EwEvents {
                                replica: me,
                                entries: chunk.to_vec(),
                            },
                            0,
                        ),
                    );
                }
            }
            Message::EwSnapshot {
                replica,
                heads,
                entries,
                checksum,
            } => {
                let now = ctx.now();
                let carried = entries.len() as u64;
                let installed = match self.cluster.as_mut() {
                    Some(cl) => cl.store.install_snapshot(&heads, entries, checksum),
                    None => return,
                };
                // A checksum mismatch drops the snapshot; the next
                // digest round re-requests it.
                let Some(to_apply) = installed else {
                    return;
                };
                self.stats.ew_snapshots_installed += 1;
                {
                    let rec = ctx.recorder();
                    if rec.is_enabled() {
                        rec.record(
                            now.as_nanos(),
                            control_trace(0),
                            TraceEvent::EwSnapshotInstalled {
                                from_replica: replica,
                                entries: carried,
                            },
                        );
                    }
                }
                for e in to_apply {
                    self.stats.ew_events_applied += 1;
                    self.apply_view_event(e.event, now);
                }
            }
            Message::IntentPropose {
                replica,
                token,
                intent,
            } => {
                if let Some(cl) = self.cluster.as_mut() {
                    cl.intents.on_propose(replica, token, intent);
                }
            }
            Message::IntentAppend {
                leader,
                term,
                prev_index,
                prev_term,
                commit,
                entries,
            } => {
                let outs = match self.cluster.as_mut() {
                    Some(cl) => cl
                        .intents
                        .on_append(leader, term, prev_index, prev_term, commit, entries),
                    None => return,
                };
                self.send_intent_outs(ctx, outs);
                self.dispatch_committed_intents(ctx);
            }
            Message::IntentAck {
                replica,
                term,
                match_index,
                success,
            } => {
                let outs = match self.cluster.as_mut() {
                    Some(cl) => cl.intents.on_ack(replica, term, match_index, success),
                    None => return,
                };
                self.send_intent_outs(ctx, outs);
                self.dispatch_committed_intents(ctx);
            }
            Message::IntentFetch {
                replica,
                term,
                from_index,
            } => {
                let outs = match self.cluster.as_mut() {
                    Some(cl) => cl.intents.on_fetch(replica, term, from_index),
                    None => return,
                };
                self.send_intent_outs(ctx, outs);
            }
            Message::IntentCatchup {
                replica,
                term,
                snap_index,
                snap_term,
                snap_state,
                snap_tokens,
                entries,
                commit,
                checksum,
            } => {
                let outs = match self.cluster.as_mut() {
                    Some(cl) => cl.intents.on_catchup(
                        replica,
                        term,
                        snap_index,
                        snap_term,
                        snap_state,
                        snap_tokens,
                        entries,
                        commit,
                        checksum,
                    ),
                    None => return,
                };
                self.send_intent_outs(ctx, outs);
                self.dispatch_committed_intents(ctx);
            }
            // Peers speak only the east-west subset.
            _ => {}
        }
    }

    /// Encode and route consensus frames to their target replicas.
    fn send_intent_outs(&mut self, ctx: &mut Context<'_>, outs: Vec<Outbound>) {
        let Some(cl) = self.cluster.as_ref() else {
            return;
        };
        let replicas = &cl.membership.config().replicas;
        for out in outs {
            let Some(&node) = replicas.get(out.to as usize) else {
                continue;
            };
            self.stats.msgs_sent += 1;
            self.stats.intent_msgs_sent += 1;
            ctx.send_control(node, encode(&out.msg, 0));
        }
    }

    /// Surface intents committed since the last round: update pinned
    /// mastership, fire every app's [`App::on_intent_committed`] hook,
    /// and complete the proposer's `on_update_committed`.
    fn dispatch_committed_intents(&mut self, ctx: &mut Context<'_>) {
        let me = self.cluster.as_ref().map(|cl| cl.membership.index() as u32);
        let applied: Vec<Applied> = match self.cluster.as_mut() {
            Some(cl) => cl.intents.take_applied(),
            None => {
                if self.local_intents.is_empty() {
                    return;
                }
                // Standalone: commit locally, same observable order.
                std::mem::take(&mut self.local_intents)
                    .into_iter()
                    .map(|(token, intent)| {
                        Applied::Entry(IntentEntry {
                            index: 0,
                            term: 0,
                            origin: 0,
                            token,
                            intent,
                        })
                    })
                    .collect()
            }
        };
        for a in applied {
            match a {
                Applied::Snapshot(entries) => self.apply_intent_snapshot(ctx, entries, me),
                Applied::Entry(e) => self.apply_committed_intent(ctx, e, me),
            }
        }
    }

    /// A snapshot install replaced the committed intent state
    /// wholesale. Derived state is rebuilt from the active set, not
    /// patched: replaying the entries through the incremental
    /// [`App::on_intent_committed`] hook could never retract state
    /// whose withdrawal the snapshot compacted away (a withdrawn ACL
    /// deny would survive forever), and would double-fire the hook for
    /// entries this replica already applied.
    fn apply_intent_snapshot(
        &mut self,
        ctx: &mut Context<'_>,
        entries: Vec<IntentEntry>,
        me: Option<u32>,
    ) {
        if let Some(cl) = self.cluster.as_mut() {
            cl.pins.clear();
            for e in &entries {
                if let Intent::MastershipPin {
                    dpid,
                    replica,
                    pinned: true,
                } = e.intent
                {
                    cl.pins.insert(dpid, replica);
                }
            }
        }
        {
            let rec = ctx.recorder();
            if rec.is_enabled() {
                rec.record(
                    ctx.now().as_nanos(),
                    control_trace(0),
                    TraceEvent::IntentSnapshotInstalled {
                        entries: entries.len() as u64,
                    },
                );
            }
        }
        // Proposals of ours that committed while we were away complete
        // their owner callbacks now.
        let own_tokens: Vec<u64> = entries
            .iter()
            .filter(|e| me.is_none_or(|m| m == e.origin))
            .map(|e| e.token)
            .collect();
        let intents: Vec<Intent> = entries.into_iter().map(|e| e.intent).collect();
        self.with_apps(ctx, |apps, ctl| {
            for app in apps.iter_mut() {
                app.on_intent_snapshot(ctl, &intents);
            }
        });
        for token in own_tokens {
            if let Some(owner) = self.intent_owners.remove(&token) {
                self.with_apps(ctx, |apps, ctl| {
                    for app in apps.iter_mut() {
                        app.on_update_committed(ctl, owner, token);
                    }
                });
            }
        }
    }

    fn apply_committed_intent(&mut self, ctx: &mut Context<'_>, e: IntentEntry, me: Option<u32>) {
        self.stats.intents_committed += 1;
        {
            let rec = ctx.recorder();
            if rec.is_enabled() {
                rec.record(
                    ctx.now().as_nanos(),
                    control_trace(0),
                    TraceEvent::IntentCommitted {
                        index: e.index,
                        term: e.term,
                        origin: e.origin,
                    },
                );
            }
        }
        if let Intent::MastershipPin {
            dpid,
            replica,
            pinned,
        } = e.intent
        {
            if let Some(cl) = self.cluster.as_mut() {
                if pinned {
                    cl.pins.insert(dpid, replica);
                } else {
                    cl.pins.remove(&dpid);
                }
            }
        }
        if matches!(e.intent, Intent::Noop) {
            return; // leader activation barrier, invisible to apps
        }
        let intent = e.intent;
        self.with_apps(ctx, |apps, ctl| {
            for app in apps.iter_mut() {
                app.on_intent_committed(ctl, &intent);
            }
        });
        // The proposing replica also completes the owner's
        // update-committed callback, mirroring the two-phase planner.
        if me.is_none_or(|m| m == e.origin) {
            if let Some(owner) = self.intent_owners.remove(&e.token) {
                self.with_apps(ctx, |apps, ctl| {
                    for app in apps.iter_mut() {
                        app.on_update_committed(ctl, owner, e.token);
                    }
                });
            }
        }
    }

    fn note_mastership_trace(&mut self, ctx: &mut Context<'_>, dpid: Dpid, gained: bool) {
        let Some(cl) = self.cluster.as_ref() else {
            return;
        };
        let replica = cl.membership.index() as u32;
        let rec = ctx.recorder();
        if rec.is_enabled() {
            rec.record(
                ctx.now().as_nanos(),
                control_trace(dpid),
                TraceEvent::MastershipChange {
                    dpid,
                    replica,
                    gained,
                },
            );
        }
    }

    /// Take over `dpid`: claim the Master role at the switch, give its
    /// inbound links one discovery round of grace (we have not been the
    /// one watching their LLDP confirmations), and reconcile installed
    /// state through the resync digest. Apps then compare their desired
    /// program against the replicated stamp and reprogram only on
    /// mismatch — a clean takeover moves zero flow state.
    fn mastership_gained(&mut self, ctx: &mut Context<'_>, dpid: Dpid) {
        let Some(cl) = self.cluster.as_ref() else {
            return;
        };
        let (term, replica) = cl.membership.claim();
        self.stats.masterships_gained += 1;
        self.send_direct(
            ctx,
            dpid,
            &Message::RoleRequest {
                role: Role::Master,
                term,
                replica,
            },
        );
        self.view.refresh_links_to(dpid, ctx.now());
        self.send_direct(ctx, dpid, &Message::ResyncRequest);
        // PORT_STATUS is broadcast, so an isolation window may have
        // left us with stale port state — and discovery never probes a
        // "down" port, so a stale entry would silence the LLDP
        // confirmations for its links and age them out cluster-wide.
        // The features reply replaces the port map wholesale.
        self.port_refresh.insert(dpid);
        self.send_direct(ctx, dpid, &Message::FeaturesRequest);
        self.note_mastership_trace(ctx, dpid, true);
        self.with_apps(ctx, |apps, ctl| {
            for app in apps.iter_mut() {
                app.on_mastership_change(ctl, dpid, true);
            }
        });
    }

    /// Relinquish `dpid`. In-flight mods were issued under the lapsed
    /// mastership — the new master owns the switch's program now, so
    /// they are dropped rather than retransmitted. `announce` steps the
    /// connection down to Equal at the switch (skipped when the switch
    /// itself told us we were outranked).
    fn mastership_lost(&mut self, ctx: &mut Context<'_>, dpid: Dpid, announce: bool) {
        let Some(cl) = self.cluster.as_ref() else {
            return;
        };
        let (term, replica) = cl.membership.claim();
        self.stats.masterships_lost += 1;
        if announce {
            self.send_direct(
                ctx,
                dpid,
                &Message::RoleRequest {
                    role: Role::Equal,
                    term,
                    replica,
                },
            );
        }
        let superseded: Vec<u32> = self
            .pending
            .iter()
            .filter(|(_, p)| p.dpid == dpid)
            .map(|(&x, _)| x)
            .collect();
        for x in superseded {
            self.pending.remove(&x);
            self.stats.mods_superseded += 1;
            self.planner.note_xid(x, false);
        }
        self.note_mastership_trace(ctx, dpid, false);
        self.with_apps(ctx, |apps, ctl| {
            for app in apps.iter_mut() {
                app.on_mastership_change(ctl, dpid, false);
            }
        });
    }

    /// One east-west round: refresh peer liveness, heartbeat + gossip to
    /// every peer, and reconcile this replica's mastership set against
    /// the deterministic assignment.
    fn cluster_tick(&mut self, ctx: &mut Context<'_>) {
        let Some(mut cl) = self.cluster.take() else {
            return;
        };
        let now = ctx.now();
        let live_before = cl.membership.live();
        cl.membership.scan(now);
        // A peer coming back from the dead usually means a partition
        // healed — and if *we* were the isolated side, we missed every
        // PORT_STATUS broadcast in the window (we kept mastering our
        // switches throughout, so the takeover-path refresh never
        // runs). Stale "down" ports silence discovery probes, so
        // refresh the port map of everything we master.
        let peer_revived = cl
            .membership
            .live()
            .iter()
            .any(|i| !live_before.contains(i));
        let me = cl.membership.index();
        let term = cl.membership.term();
        let claim = cl.membership.claim();

        // Heartbeat + anti-entropy to every peer, every tick. The
        // heartbeat carries our per-origin applied marks. Suffix mode
        // then blindly resends the peer's unacknowledged suffix of our
        // own log; digest mode pushes each new own-origin entry once
        // and repairs losses (and remote-origin gaps) through the
        // digest / fetch exchange.
        let acks = cl.store.acks();
        let gossip = cl.membership.config().gossip;
        let me32 = me as u32;
        let replicas = cl.membership.config().replicas.clone();
        for (i, &node) in replicas.iter().enumerate() {
            if i == me {
                continue;
            }
            self.stats.msgs_sent += 1;
            self.stats.ew_heartbeats += 1;
            ctx.send_control(
                node,
                encode(
                    &Message::EwHeartbeat {
                        replica: me32,
                        term,
                        acks: acks.clone(),
                    },
                    0,
                ),
            );
            match gossip {
                GossipMode::Suffix => {
                    if cl.membership.is_alive(i)
                        && cl.store.peer_ack(i as u32) < cl.store.floor_of(me32)
                    {
                        // The peer fell below our retention floor (it
                        // was dead while the live set pruned); no
                        // suffix replay can reach it. Bootstrap it from
                        // a checksummed snapshot, as digest mode would.
                        let (heads, entries, checksum) = cl.store.snapshot();
                        self.stats.msgs_sent += 1;
                        self.stats.ew_snapshots_sent += 1;
                        ctx.send_control(
                            node,
                            encode(
                                &Message::EwSnapshot {
                                    replica: me32,
                                    heads,
                                    entries,
                                    checksum,
                                },
                                0,
                            ),
                        );
                        continue;
                    }
                    let batch = cl.store.pending_for(i as u32, EW_BATCH);
                    if !batch.is_empty() {
                        self.stats.msgs_sent += 1;
                        self.stats.ew_entries_sent += batch.len() as u64;
                        ctx.send_control(
                            node,
                            encode(
                                &Message::EwEvents {
                                    replica: me32,
                                    entries: batch,
                                },
                                0,
                            ),
                        );
                    }
                }
                GossipMode::Digest => {
                    let head = cl.store.applied_high(me32);
                    let pushed = cl.pushed_high.entry(i as u32).or_insert(0);
                    if head > *pushed {
                        let lo = (*pushed + 1).max(cl.store.floor_of(me32) + 1);
                        let hi = head.min(lo + EW_BATCH as u64 - 1);
                        let (batch, _) = cl.store.serve_ranges(&[(me32, lo, hi)]);
                        if !batch.is_empty() {
                            self.stats.msgs_sent += 1;
                            self.stats.ew_entries_sent += batch.len() as u64;
                            ctx.send_control(
                                node,
                                encode(
                                    &Message::EwEvents {
                                        replica: me32,
                                        entries: batch,
                                    },
                                    0,
                                ),
                            );
                        }
                        *pushed = hi;
                    }
                    self.stats.msgs_sent += 1;
                    self.stats.ew_digests_sent += 1;
                    ctx.send_control(
                        node,
                        encode(
                            &Message::EwDigest {
                                replica: me32,
                                term,
                                heads: cl.store.digest(),
                            },
                            0,
                        ),
                    );
                }
            }
        }
        // Retention: prune only what every *live* replica has applied,
        // so one dead replica cannot pin the log forever (a revived one
        // bootstraps from a snapshot instead).
        cl.store.prune_acked(&cl.membership.live());

        // Intent-log round: deterministic leader election over the live
        // set, replication heartbeats, proposal retries, compaction.
        let live: Vec<u32> = cl.membership.live().iter().map(|&i| i as u32).collect();
        let intent_outs = cl.intents.tick(term, &live);
        cl.intents.compact(KEEP_TAIL);

        // Deferred overrides die once our claim outgrows them (a healed
        // partition converges on the merged term, and the canonical
        // assignment reasserts itself).
        cl.deferred.retain(|_, o| *o >= claim);
        let desired: BTreeSet<Dpid> = self
            .registry
            .keys()
            .copied()
            .filter(|&d| cl.wants_mastership(d) && !cl.deferred.contains_key(&d))
            .collect();
        let gained: Vec<Dpid> = desired.difference(&cl.my_masters).copied().collect();
        let lost: Vec<Dpid> = cl.my_masters.difference(&desired).copied().collect();
        let refresh: Vec<Dpid> = if peer_revived {
            // Skip the freshly gained (their takeover path refreshes).
            desired
                .iter()
                .copied()
                .filter(|d| cl.my_masters.contains(d))
                .collect()
        } else {
            Vec::new()
        };
        cl.my_masters = desired;
        self.cluster = Some(cl);

        for &dpid in &refresh {
            self.port_refresh.insert(dpid);
            self.send_direct(ctx, dpid, &Message::FeaturesRequest);
        }
        self.send_intent_outs(ctx, intent_outs);
        self.dispatch_committed_intents(ctx);
        for &dpid in &lost {
            self.mastership_lost(ctx, dpid, true);
        }
        for &dpid in &gained {
            self.mastership_gained(ctx, dpid);
        }
    }

    /// Quarantine agents that have been silent past the deadline. Apps
    /// see the view-version bump and route around them.
    fn quarantine_scan(&mut self, ctx: &mut Context<'_>) {
        let now = ctx.now();
        let stale: Vec<Dpid> = self
            .registry
            .iter()
            .filter(|&(_, node)| {
                let last = self.liveness.get(node).copied().unwrap_or(now);
                now.duration_since(last) >= self.cfg.agent_dead_after
            })
            .map(|(&dpid, _)| dpid)
            .collect();
        for dpid in stale {
            if self.view.quarantine(dpid) {
                self.stats.quarantines += 1;
            }
        }
    }

    /// Resend unacked mods past their timeout; abandon ones out of
    /// retries. Mods to quarantined switches wait (the resync handshake
    /// decides their fate when the switch returns).
    fn retransmit_scan(&mut self, ctx: &mut Context<'_>) {
        let now = ctx.now();
        let mut failed = Vec::new();
        let mut resend = Vec::new();
        for (&xid, p) in &self.pending {
            if now.duration_since(p.sent_at) < self.cfg.mod_timeout
                || self.view.is_quarantined(p.dpid)
            {
                continue;
            }
            if p.retries >= self.cfg.mod_max_retries {
                failed.push(xid);
            } else {
                resend.push(xid);
            }
        }
        for xid in failed {
            self.pending.remove(&xid);
            self.stats.mods_failed += 1;
            self.planner.note_xid(xid, false);
        }
        for xid in resend {
            let p = self.pending.get_mut(&xid).expect("collected above");
            p.retries += 1;
            p.sent_at = now;
            let (node, bytes) = (p.node, p.bytes.clone());
            self.stats.mods_retransmitted += 1;
            self.stats.msgs_sent += 1;
            ctx.send_control(node, bytes);
            self.dirty.insert(node);
        }
        // Drop barriers whose covered mods are all resolved; a reply to
        // one would find nothing to ack anyway.
        let dead: Vec<u32> = self
            .barriers
            .iter()
            .filter(|(_, (_, xids))| !xids.iter().any(|x| self.pending.contains_key(x)))
            .map(|(&b, _)| b)
            .collect();
        for b in dead {
            self.barriers.remove(&b);
        }
    }

    /// Fence every node that acquired pending mods since the last flush:
    /// one BARRIER_REQUEST covering all its currently unacked mods. The
    /// reply proves everything before it was applied.
    fn flush_barriers(&mut self, ctx: &mut Context<'_>) {
        let dirty = std::mem::take(&mut self.dirty);
        for node in dirty {
            let covered: Vec<u32> = self
                .pending
                .iter()
                .filter(|(_, p)| p.node == node)
                .map(|(&x, _)| x)
                .collect();
            if covered.is_empty() {
                continue;
            }
            let xid = self.xid;
            self.xid += 1;
            self.stats.msgs_sent += 1;
            ctx.send_control(
                node,
                encode(
                    &Message::BarrierRequest {
                        xids: covered.clone(),
                    },
                    xid,
                ),
            );
            self.barriers.insert(xid, (node, covered));
        }
    }

    /// Ask a quarantined switch that spoke to us for its state digest,
    /// at most once per tick interval.
    fn maybe_request_resync(&mut self, ctx: &mut Context<'_>, dpid: Dpid) {
        let now = ctx.now();
        if let Some(&last) = self.resync_requested.get(&dpid) {
            if now.duration_since(last) < self.cfg.tick_interval {
                return;
            }
        }
        self.resync_requested.insert(dpid, now);
        self.send_direct(ctx, dpid, &Message::ResyncRequest);
    }

    /// Probe every registered agent's control-channel liveness with an
    /// ECHO_REQUEST (the token encodes the send time, so a reply dates
    /// the probe it answers).
    fn echo_round(&mut self, ctx: &mut Context<'_>) {
        let targets: Vec<Dpid> = self.registry.keys().copied().collect();
        let token = ctx.now().as_nanos();
        for dpid in targets {
            self.stats.echo_probes += 1;
            self.send_direct(ctx, dpid, &Message::EchoRequest { token });
        }
    }

    /// Send one LLDP probe out of every known up port of every switch.
    /// Clustered, each replica probes only the switches it masters —
    /// every switch has exactly one master, so every port is still
    /// probed exactly once per round cluster-wide, and each probe's
    /// punt lands at the *destination* switch's master (which is why
    /// link expiry is filtered to destination-mastered links).
    fn discovery_round(&mut self, ctx: &mut Context<'_>) {
        let targets: Vec<(Dpid, PortNo)> = self
            .view
            .switches
            .iter()
            .filter(|&(&dpid, _)| self.is_master_of(dpid))
            .flat_map(|(&dpid, info)| {
                info.ports
                    .iter()
                    .filter(|&(_, &up)| up)
                    .map(move |(&port, _)| (dpid, port))
            })
            .collect();
        for (dpid, port) in targets {
            let frame = zen_wire::builder::PacketBuilder::lldp(
                zen_wire::EthernetAddress::from_id(0x70_0000 + dpid),
                dpid,
                port,
                self.cfg.lldp_ttl_secs,
            );
            self.stats.packet_outs += 1;
            let msg = Message::PacketOut {
                in_port: 0,
                actions: vec![zen_dataplane::Action::Output(port)],
                frame,
            };
            self.send_direct(ctx, dpid, &msg);
        }
    }

    /// Per-punt observation: LLDP discovery return path and host
    /// learning. Returns whether the frame should go on to the app
    /// chain (discovery probes and unparsable frames stop here).
    fn observe_packet_in(
        &mut self,
        ctx: &mut Context<'_>,
        dpid: Dpid,
        in_port: PortNo,
        frame: &[u8],
    ) -> bool {
        let Ok(eth) = Frame::new_checked(frame) else {
            return false;
        };
        // Discovery return path.
        if eth.ethertype() == EtherType::Lldp {
            self.stats.lldp_ins += 1;
            if let Ok(repr) = lldp::Repr::parse(eth.payload()) {
                let now = ctx.now();
                let new =
                    self.view
                        .add_link_at((repr.chassis_id, repr.port_id), (dpid, in_port), now);
                if new {
                    self.log_event(ViewEvent::LinkAdd {
                        from_dpid: repr.chassis_id,
                        from_port: repr.port_id,
                        to_dpid: dpid,
                        to_port: in_port,
                    });
                }
            }
            return false;
        }
        self.stats.packet_ins += 1;

        // Host learning from edge-port traffic.
        if self.view.is_edge_port(dpid, in_port) && eth.src_addr().is_unicast() {
            let ip = match eth.ethertype() {
                EtherType::Arp => arp::Packet::new_checked(eth.payload())
                    .ok()
                    .and_then(|p| arp::Repr::parse(&p).ok())
                    .map(|r| r.sender_protocol_addr)
                    .filter(|ip| ip.is_unicast()),
                EtherType::Ipv4 => ipv4::Packet::new_checked(eth.payload())
                    .ok()
                    .map(|p| p.src_addr())
                    .filter(|ip| ip.is_unicast()),
                _ => None,
            };
            let now = ctx.now();
            let mac = eth.src_addr();
            let ip_before = self.view.hosts.get(&mac).map(|e| e.ip);
            let changed = self.view.learn_host(mac, dpid, in_port, ip, now);
            let ip_after = self.view.hosts.get(&mac).map(|e| e.ip);
            if changed || ip_before != ip_after {
                self.log_event(ViewEvent::HostLearned {
                    mac,
                    dpid,
                    port: in_port,
                    ip: ip_after.flatten(),
                });
            }
        }
        true
    }

    /// Dispatch a batch of PACKET_INs from one control delivery into
    /// the app chain. Frames are borrowed straight from the receive
    /// buffer; the per-dispatch overhead (session checks, mastership
    /// lookup, app-vector swap) is paid once per batch instead of once
    /// per punt.
    fn handle_packet_in_batch(
        &mut self,
        ctx: &mut Context<'_>,
        from: NodeId,
        punts: &[(PortNo, &[u8])],
    ) {
        // Session preamble, once per batch. Peer replicas never punt;
        // drop rather than re-solicit a handshake from one.
        if self.cluster.as_ref().is_some_and(|cl| {
            cl.membership
                .config()
                .index_of(from)
                .is_some_and(|i| i != cl.membership.index())
        }) {
            return;
        }
        let Some(&dpid) = self.rev_registry.get(&from) else {
            let now = ctx.now();
            let due = self
                .features_requested
                .get(&from)
                .is_none_or(|&last| now.duration_since(last) >= self.cfg.tick_interval);
            if due {
                self.features_requested.insert(from, now);
                self.stats.msgs_sent += 1;
                ctx.send_control(from, encode(&Message::FeaturesRequest, 0));
            }
            return;
        };
        if self.view.is_quarantined(dpid) {
            self.maybe_request_resync(ctx, dpid);
        }
        // Admission control: charge the per-switch punt budget before
        // anything downstream costs a cycle. Over-budget punts are
        // deferred to this switch's fair queue; queue overflow is shed
        // and charged to the offending (ingress, source MAC).
        let mut offenders_over: Vec<(PortNo, [u8; 6])> = Vec::new();
        let admitted: Vec<(PortNo, &[u8])> = if let Some(adm) = self.admission.as_mut() {
            let now = ctx.now();
            let cids = adm.counters(ctx);
            let recording = ctx.recorder().is_enabled();
            let meter = adm
                .meters
                .entry(from)
                .or_insert_with(|| Meter::per_packet(adm.cfg.rate_pps, adm.cfg.burst));
            let mut admitted = Vec::with_capacity(punts.len());
            for &(in_port, frame) in punts {
                // Discovery returns bypass the meter: losing topology
                // under attack would turn one hostile port into a
                // fabric-wide outage.
                let is_lldp = frame.len() >= 14 && frame[12..14] == [0x88, 0xcc];
                if is_lldp {
                    admitted.push((in_port, frame));
                    continue;
                }
                if meter.allow_one(now.as_nanos()) {
                    admitted.push((in_port, frame));
                    self.stats.punts_admitted += 1;
                    ctx.metrics().incr(cids[0]);
                    continue;
                }
                // Over budget: defer or shed, and charge the offender.
                let src_mac: [u8; 6] = frame
                    .get(6..12)
                    .and_then(|b| b.try_into().ok())
                    .unwrap_or([0u8; 6]);
                let queue = adm.queues.entry(from).or_default();
                let deferred = queue.len() < adm.cfg.queue_cap;
                if deferred {
                    queue.push_back((in_port, frame.to_vec()));
                    self.stats.punts_deferred += 1;
                    ctx.metrics().incr(cids[1]);
                } else {
                    self.stats.punts_shed += 1;
                    ctx.metrics().incr(cids[3]);
                }
                if recording {
                    let tid = trace_id_for_frame(frame).unwrap_or_else(|| control_trace(dpid));
                    let event = if deferred {
                        TraceEvent::PuntDeferred { dpid }
                    } else {
                        TraceEvent::PuntShed {
                            dpid,
                            at_agent: false,
                        }
                    };
                    ctx.recorder().record(now.as_nanos(), tid, event);
                }
                if adm.cfg.pushback_threshold > 0 {
                    let count = adm.offenders.entry((from, in_port, src_mac)).or_insert(0);
                    *count += 1;
                    if *count == adm.cfg.pushback_threshold {
                        offenders_over.push((in_port, src_mac));
                    }
                }
            }
            admitted
        } else {
            punts.to_vec()
        };
        if !offenders_over.is_empty() {
            self.install_pushbacks(ctx, from, dpid, offenders_over);
        }
        self.deliver_punts(ctx, dpid, &admitted);
    }

    /// Dispatch already-admitted punts from `dpid`: fold them into the
    /// view (LLDP, host learning) and hand survivors to the app chain.
    fn deliver_punts(&mut self, ctx: &mut Context<'_>, dpid: Dpid, punts: &[(PortNo, &[u8])]) {
        // Stragglers: punts routed here while mastership was in flight
        // are still good observations (learned below), but only the
        // master drives the datapath in response.
        let master = self.is_master_of(dpid);
        let recording = ctx.recorder().is_enabled();
        let mut dispatch: Vec<(PortNo, &[u8], Option<TraceId>)> = Vec::with_capacity(punts.len());
        for &(in_port, frame) in punts {
            if !self.observe_packet_in(ctx, dpid, in_port, frame) {
                continue;
            }
            if !master {
                continue;
            }
            // While the recorder is enabled and the frame is a traced
            // probe, its dispatch runs under that trace: flow-mods and
            // packet-outs the apps issue are attributed to it, and the
            // dispatch itself is recorded with the claiming app.
            let trace = if recording {
                trace_id_for_frame(frame)
            } else {
                None
            };
            dispatch.push((in_port, frame, trace));
        }
        if dispatch.is_empty() {
            return;
        }
        self.with_apps(ctx, |apps, ctl| {
            for &(in_port, frame, trace) in &dispatch {
                if trace.is_some() {
                    ctl.ctx.recorder().begin_trace(trace);
                }
                let mut claimed: Option<&'static str> = None;
                for app in apps.iter_mut() {
                    if app.on_packet_in(ctl, dpid, in_port, frame) == Disposition::Handled {
                        claimed = Some(app.name());
                        break;
                    }
                }
                if let Some(t) = trace {
                    let at = ctl.ctx.now().as_nanos();
                    let rec = ctl.ctx.recorder();
                    rec.record(
                        at,
                        t,
                        TraceEvent::AppDispatch {
                            app: claimed.unwrap_or("none"),
                            claimed: claimed.is_some(),
                        },
                    );
                    rec.end_trace();
                }
            }
        });
    }

    /// Push back: install a targeted drop rule for each offender that
    /// crossed the admission threshold, pinning its (ingress port,
    /// source MAC) at the switch for `pushback_hold`. The rule rides
    /// the normal tracked send path, so it is barrier-acked,
    /// retransmitted on loss, and visible in the cookie shadow.
    fn install_pushbacks(
        &mut self,
        ctx: &mut Context<'_>,
        from: NodeId,
        dpid: Dpid,
        offenders: Vec<(PortNo, [u8; 6])>,
    ) {
        if !self.is_master_of(dpid) {
            return;
        }
        let now = ctx.now();
        let (hold, threshold) = match self.admission.as_ref() {
            Some(adm) => (adm.cfg.pushback_hold, adm.cfg.pushback_threshold),
            None => return,
        };
        if threshold == 0 {
            return;
        }
        for (port, mac) in offenders {
            // Debounce: skip offenders whose drop rule should still be
            // live (the agent hard-expires it at `hold`, and our
            // bookkeeping lapses on the same clock).
            let adm = self.admission.as_mut().expect("checked");
            let live = adm
                .active_pushbacks
                .get(&(from, port, mac))
                .is_some_and(|&at| now.duration_since(at) < hold);
            if live {
                continue;
            }
            adm.active_pushbacks.insert((from, port, mac), now);
            self.stats.pushbacks_installed += 1;
            let cid = ctx
                .metrics()
                .register_counter("defense.pushbacks_installed");
            ctx.metrics().incr(cid);
            if ctx.recorder().is_enabled() {
                ctx.recorder().record(
                    now.as_nanos(),
                    control_trace(dpid),
                    TraceEvent::PushbackInstalled { dpid, port },
                );
            }
            let spec = FlowSpec::new(
                PUSHBACK_PRIORITY,
                FlowMatch {
                    in_port: Some(port),
                    eth_src: Some(EthernetAddress(mac)),
                    ..FlowMatch::ANY
                },
                Vec::new(), // no actions = drop
            )
            .with_timeouts(0, hold.as_nanos())
            .with_cookie(PUSHBACK_COOKIE)
            .with_importance(PUSHBACK_IMPORTANCE);
            self.with_apps(ctx, |_, ctl| {
                let mut txn = ctl.txn();
                txn.flow(dpid, 0, spec);
                txn.commit(ctl);
            });
        }
    }

    /// Drive the epoch-versioned two-phase update planner: activate the
    /// next queued [`NetworkUpdate`] when idle, and advance the active
    /// transaction through staging → flipping → draining as its barrier
    /// acks arrive. Called from the tick timer and after every control
    /// batch (acks resolve there), so phase transitions happen promptly.
    fn planner_pump(&mut self, ctx: &mut Context<'_>) {
        if !self.planner.is_busy() {
            return;
        }
        // The standard take/put dance: the planner must be out of
        // `self` while we call `with_apps` (callbacks get a fresh
        // default planner). Mirror the epoch into the stand-in so
        // callbacks that consult `staged_epoch` pick the right parity.
        let mut planner = std::mem::take(&mut self.planner);
        self.planner.config_epoch = planner.config_epoch;
        loop {
            if planner.active.is_none() {
                let Some(update) = planner.queue.pop_front() else {
                    break;
                };
                planner.active = Some(self.activate_txn(ctx, &planner, update));
                continue;
            }
            let now = ctx.now();
            let txn = planner.active.as_mut().expect("checked above");
            match txn.phase {
                TxnPhase::Staging => {
                    if txn.failed || now >= txn.deadline {
                        // A staged mod failed or a touched switch never
                        // acked: the new epoch is not fully installed
                        // anywhere packets could reach it, so undo the
                        // footprint and report the abort.
                        let txn = planner.active.take().expect("checked above");
                        self.abort_txn(ctx, txn);
                        continue;
                    }
                    if !txn.outstanding.is_empty() {
                        break;
                    }
                    // Every internal rule is acked: flip the edge.
                    txn.phase = TxnPhase::Flipping;
                    txn.deadline = now + self.cfg.txn_deadline;
                    let epoch = txn.epoch;
                    let msgs = std::mem::take(&mut txn.flip_msgs);
                    let mut outstanding = BTreeSet::new();
                    self.record_epoch_phase(ctx, epoch, TxnPhase::Flipping.name());
                    self.send_tracked_batch(ctx, &msgs, &mut outstanding);
                    txn.outstanding = outstanding;
                    if !txn.outstanding.is_empty() {
                        break;
                    }
                }
                TxnPhase::Flipping => {
                    if txn.failed {
                        // A flip mod failed. The new epoch is fully
                        // staged and other edges already stamp it, so
                        // aborting now would be worse than finishing:
                        // count it and leave the straggler edge to the
                        // quarantine/resync machinery.
                        self.stats.epoch_flip_failures += 1;
                        txn.failed = false;
                    }
                    if txn.outstanding.is_empty() || now >= txn.deadline {
                        txn.phase = TxnPhase::Draining;
                        txn.drain_until = now + self.cfg.txn_drain;
                        let epoch = txn.epoch;
                        self.record_epoch_phase(ctx, epoch, TxnPhase::Draining.name());
                    }
                    break;
                }
                TxnPhase::Draining => {
                    if now < txn.drain_until {
                        break;
                    }
                    // Old-epoch packets have drained: the epoch is
                    // committed. Send the old configuration's retire
                    // wave, but keep the transaction open until it is
                    // acked — the next epoch reuses this parity's
                    // cookies and group ids, and a retire retransmitted
                    // after a lost ack must never land on top of them.
                    txn.phase = TxnPhase::Retiring;
                    txn.deadline = now + self.cfg.txn_deadline;
                    let epoch = txn.epoch;
                    let owner = txn.owner;
                    let token = txn.token;
                    let msgs = std::mem::take(&mut txn.retire_msgs);
                    self.record_epoch_phase(ctx, epoch, "committed");
                    let mut retired = BTreeSet::new();
                    self.send_tracked_batch(ctx, &msgs, &mut retired);
                    let txn = planner.active.as_mut().expect("checked above");
                    txn.outstanding = retired;
                    txn.failed = false;
                    planner.config_epoch = epoch;
                    self.planner.config_epoch = epoch;
                    self.stats.txns_committed += 1;
                    self.with_apps(ctx, |apps, ctl| {
                        for app in apps.iter_mut() {
                            app.on_update_committed(ctl, owner, token);
                        }
                    });
                    continue;
                }
                TxnPhase::Retiring => {
                    // Retires are best-effort garbage collection: a
                    // failed one (switch died, resync superseded it)
                    // stops retransmitting and leaves stale rules only
                    // a resync will rebuild anyway — keep waiting for
                    // the rest, they are still on the wire.
                    txn.failed = false;
                    if txn.outstanding.is_empty() || now >= txn.deadline {
                        planner.active = None;
                        continue;
                    }
                    break;
                }
            }
        }
        // Updates committed by callbacks during the pump landed in the
        // stand-in's queue: carry them over.
        planner.queue.extend(self.planner.queue.drain(..));
        self.planner = planner;
    }

    /// Stage a committed update under the next epoch: decorate and send
    /// everything except the edge flips (held back for the flip) and
    /// the retire ops (held back for after the drain).
    fn activate_txn(
        &mut self,
        ctx: &mut Context<'_>,
        planner: &UpdatePlanner,
        update: NetworkUpdate,
    ) -> ActiveTxn {
        let epoch = planner.config_epoch + 1;
        let tag = epoch_tag(epoch);
        let mut stage_msgs: Vec<(Dpid, Message)> = Vec::new();
        let mut flip_msgs: Vec<(Dpid, Message)> = Vec::new();
        let mut retire_msgs: Vec<(Dpid, Message)> = Vec::new();
        let mut staged_cookies = BTreeSet::new();
        let mut staged_groups = BTreeSet::new();
        for op in update.ops {
            match op {
                UpdateOp::Flow {
                    dpid,
                    table_id,
                    mut spec,
                    role,
                } => match role {
                    FlowRole::Edge => {
                        // The flip: the rule starts stamping the new
                        // epoch the moment it replaces its predecessor
                        // (same priority + match).
                        spec.actions.insert(0, Action::SetEpoch(tag));
                        flip_msgs.push((
                            dpid,
                            Message::FlowMod {
                                table_id,
                                cmd: FlowModCmd::Add(spec),
                            },
                        ));
                    }
                    FlowRole::Internal | FlowRole::Plain => {
                        if role == FlowRole::Internal {
                            spec.matcher.epoch = Some(Some(tag));
                        }
                        staged_cookies.insert((dpid, spec.cookie));
                        stage_msgs.push((
                            dpid,
                            Message::FlowMod {
                                table_id,
                                cmd: FlowModCmd::Add(spec),
                            },
                        ));
                    }
                },
                UpdateOp::DeleteFlowsByCookie { dpid, cookie } => stage_msgs.push((
                    dpid,
                    Message::FlowMod {
                        table_id: 0,
                        cmd: FlowModCmd::DeleteByCookie { cookie },
                    },
                )),
                UpdateOp::Group {
                    dpid,
                    group_id,
                    desc,
                } => {
                    staged_groups.insert((dpid, group_id));
                    stage_msgs.push((
                        dpid,
                        Message::GroupMod {
                            group_id,
                            cmd: GroupModCmd::Add(desc),
                        },
                    ));
                }
                UpdateOp::DeleteGroup { dpid, group_id } => stage_msgs.push((
                    dpid,
                    Message::GroupMod {
                        group_id,
                        cmd: GroupModCmd::Delete,
                    },
                )),
                UpdateOp::Meter {
                    dpid,
                    meter_id,
                    rate_bps,
                    burst_bytes,
                } => stage_msgs.push((
                    dpid,
                    Message::MeterMod {
                        meter_id,
                        cmd: MeterModCmd::Add {
                            rate_bps,
                            burst_bytes,
                        },
                    },
                )),
                UpdateOp::RetireFlowsByCookie { dpid, cookie } => retire_msgs.push((
                    dpid,
                    Message::FlowMod {
                        table_id: 0,
                        cmd: FlowModCmd::DeleteByCookie { cookie },
                    },
                )),
                UpdateOp::RetireGroup { dpid, group_id } => retire_msgs.push((
                    dpid,
                    Message::GroupMod {
                        group_id,
                        cmd: GroupModCmd::Delete,
                    },
                )),
            }
        }
        self.record_epoch_phase(ctx, epoch, TxnPhase::Staging.name());
        let mut outstanding = BTreeSet::new();
        self.send_tracked_batch(ctx, &stage_msgs, &mut outstanding);
        ActiveTxn {
            epoch,
            phase: TxnPhase::Staging,
            owner: update.owner,
            token: update.token,
            outstanding,
            failed: false,
            deadline: ctx.now() + self.cfg.txn_deadline,
            drain_until: Instant::ZERO,
            flip_msgs,
            retire_msgs,
            staged_cookies,
            staged_groups,
        }
    }

    /// Send a batch over the tracked path, recording which xids it
    /// actually consumed. Sends to unknown or non-mastered switches
    /// allocate no xid and therefore join no wait set — a dead switch
    /// fails a transaction by deadline, never by wedging it.
    fn send_tracked_batch(
        &mut self,
        ctx: &mut Context<'_>,
        msgs: &[(Dpid, Message)],
        outstanding: &mut BTreeSet<u32>,
    ) {
        self.with_apps(ctx, |_, ctl| {
            for (dpid, msg) in msgs {
                let x = ctl.peek_xid();
                ctl.send(*dpid, msg);
                if ctl.peek_xid() != x {
                    outstanding.insert(x);
                }
            }
        });
    }

    /// Tear down an active transaction that cannot complete: delete the
    /// staged new-epoch footprint (no packet is stamped with that epoch
    /// yet, so this is invisible to traffic) and notify the owner.
    fn abort_txn(&mut self, ctx: &mut Context<'_>, txn: ActiveTxn) {
        self.record_epoch_phase(ctx, txn.epoch, "aborted");
        self.stats.txns_aborted += 1;
        let mut deletes: Vec<(Dpid, Message)> = Vec::new();
        for &(dpid, cookie) in &txn.staged_cookies {
            deletes.push((
                dpid,
                Message::FlowMod {
                    table_id: 0,
                    cmd: FlowModCmd::DeleteByCookie { cookie },
                },
            ));
        }
        for &(dpid, group_id) in &txn.staged_groups {
            deletes.push((
                dpid,
                Message::GroupMod {
                    group_id,
                    cmd: GroupModCmd::Delete,
                },
            ));
        }
        let mut scratch = BTreeSet::new();
        self.send_tracked_batch(ctx, &deletes, &mut scratch);
        self.with_apps(ctx, |apps, ctl| {
            for app in apps.iter_mut() {
                app.on_update_aborted(ctl, txn.owner, txn.token);
            }
        });
    }

    /// Flight-record a two-phase transaction phase transition on the
    /// network-wide control timeline.
    fn record_epoch_phase(&mut self, ctx: &mut Context<'_>, epoch: u64, phase: &'static str) {
        let now = ctx.now();
        let rec = ctx.recorder();
        if rec.is_enabled() {
            rec.record(
                now.as_nanos(),
                control_trace(0),
                TraceEvent::EpochPhase { epoch, phase },
            );
        }
    }

    /// Release deferred punts, one per switch per round (round-robin
    /// from the cursor), up to `drain_batch` per firing — the fair
    /// share of leftover controller capacity. Also rolls the offender
    /// window.
    fn admission_drain(&mut self, ctx: &mut Context<'_>) {
        let now = ctx.now();
        let drained: Vec<(NodeId, PortNo, Vec<u8>)> = {
            let Some(adm) = self.admission.as_mut() else {
                return;
            };
            if now.duration_since(adm.window_started) >= adm.cfg.pushback_window {
                adm.offenders.clear();
                adm.window_started = now;
            }
            let mut budget = adm.cfg.drain_batch;
            let mut drained = Vec::new();
            while budget > 0 {
                let keys: Vec<NodeId> = adm
                    .queues
                    .iter()
                    .filter(|(_, q)| !q.is_empty())
                    .map(|(&k, _)| k)
                    .collect();
                if keys.is_empty() {
                    break;
                }
                let start = match adm.cursor {
                    Some(c) => keys.iter().position(|&k| k > c).unwrap_or(0),
                    None => 0,
                };
                for i in 0..keys.len() {
                    if budget == 0 {
                        break;
                    }
                    let k = keys[(start + i) % keys.len()];
                    if let Some((port, frame)) = adm.queues.get_mut(&k).and_then(|q| q.pop_front())
                    {
                        drained.push((k, port, frame));
                        budget -= 1;
                        adm.cursor = Some(k);
                    }
                }
            }
            adm.queues.retain(|_, q| !q.is_empty());
            drained
        };
        if drained.is_empty() {
            return;
        }
        let cids = match self.admission.as_mut() {
            Some(adm) => adm.counters(ctx),
            None => return,
        };
        for (node, in_port, frame) in drained {
            let Some(&dpid) = self.rev_registry.get(&node) else {
                continue;
            };
            self.stats.punts_drained += 1;
            ctx.metrics().incr(cids[2]);
            self.deliver_punts(ctx, dpid, &[(in_port, &frame[..])]);
        }
    }

    fn handle_message(&mut self, ctx: &mut Context<'_>, from: NodeId, msg: Message, xid: u32) {
        // East-west traffic from a peer replica bypasses the switch-
        // session machinery below (quarantine, handshake re-solicit).
        let is_peer = self.cluster.as_ref().is_some_and(|cl| {
            cl.membership
                .config()
                .index_of(from)
                .is_some_and(|i| i != cl.membership.index())
        });
        if is_peer {
            self.handle_peer_message(ctx, msg);
            return;
        }
        // Any frame from a quarantined switch means the channel is back;
        // ask for its state digest (quarantine lifts only on HelloResync,
        // so routing stays conservative until state is reconciled).
        if let Some(&dpid) = self.rev_registry.get(&from) {
            if self.view.is_quarantined(dpid) && !matches!(msg, Message::HelloResync { .. }) {
                self.maybe_request_resync(ctx, dpid);
            }
        } else if !matches!(msg, Message::Hello { .. } | Message::FeaturesReply { .. }) {
            // A node we never completed the handshake with is talking to
            // us — the Hello exchange was lost in transit. Re-solicit
            // (throttled) so a faulty channel can't orphan a switch.
            let now = ctx.now();
            let due = self
                .features_requested
                .get(&from)
                .is_none_or(|&last| now.duration_since(last) >= self.cfg.tick_interval);
            if due {
                self.features_requested.insert(from, now);
                self.stats.msgs_sent += 1;
                ctx.send_control(from, encode(&Message::FeaturesRequest, 0));
            }
        }
        match msg {
            Message::Hello { .. } => {
                // Learn the session, ask who they are.
                let reply = encode(
                    &Message::Hello {
                        version: zen_proto::VERSION,
                    },
                    0,
                );
                self.stats.msgs_sent += 2;
                ctx.send_control(from, reply);
                ctx.send_control(from, encode(&Message::FeaturesRequest, 0));
            }
            Message::FeaturesReply {
                dpid,
                n_tables,
                ports,
            } => {
                self.registry.insert(dpid, from);
                self.rev_registry.insert(from, dpid);
                self.liveness.insert(from, ctx.now());
                self.features_requested.remove(&from);
                let port_list: Vec<(PortNo, bool)> =
                    ports.iter().map(|p| (p.port_no, p.up)).collect();
                self.view.add_switch(dpid, n_tables, &port_list);
                if self.port_refresh.remove(&dpid) {
                    // A solicited port-map refresh, not a handshake:
                    // the session, role, and app state are all live.
                    // Discovery picks the fresh ports up next tick.
                    return;
                }
                // Clustered: settle the connection's role before any app
                // traffic, so the agent routes punts (and accepts mods)
                // from the first packet. The deterministic assignment
                // needs no negotiation — everyone computes the same one.
                if self.cluster.is_some() {
                    let (claim_master, newly, term, replica) = {
                        let cl = self.cluster.as_mut().expect("checked above");
                        let claim = cl.wants_mastership(dpid) && !cl.deferred.contains_key(&dpid);
                        // A reply can also be a mid-mastership refresh
                        // (the takeover path re-solicits features for
                        // port state); only a first claim is a handover.
                        let newly = claim && cl.my_masters.insert(dpid);
                        let (term, replica) = cl.membership.claim();
                        (claim, newly, term, replica)
                    };
                    let role = if claim_master {
                        if newly {
                            self.stats.masterships_gained += 1;
                        }
                        Role::Master
                    } else {
                        Role::Equal
                    };
                    self.send_direct(
                        ctx,
                        dpid,
                        &Message::RoleRequest {
                            role,
                            term,
                            replica,
                        },
                    );
                    if newly {
                        self.note_mastership_trace(ctx, dpid, true);
                    }
                }
                self.with_apps(ctx, |apps, ctl| {
                    for app in apps.iter_mut() {
                        app.on_switch_up(ctl, dpid);
                    }
                });
                // Probe its links right away.
                self.discovery_round(ctx);
            }
            Message::PacketIn { in_port, frame, .. } => {
                // Normally intercepted as a view in `on_control`; this
                // arm only serves direct owned-message injection.
                self.handle_packet_in_batch(ctx, from, &[(in_port, &frame)]);
            }
            Message::PortStatus { port } => {
                let Some(&dpid) = self.rev_registry.get(&from) else {
                    return;
                };
                self.view.set_port(dpid, port.port_no, port.up);
                self.with_apps(ctx, |apps, ctl| {
                    for app in apps.iter_mut() {
                        app.on_port_status(ctl, dpid, port.port_no, port.up);
                    }
                });
            }
            Message::FlowRemoved {
                table_id,
                priority,
                cookie,
                reason,
                ..
            } => {
                let Some(&dpid) = self.rev_registry.get(&from) else {
                    return;
                };
                if reason == zen_proto::RemovedReason::Eviction {
                    self.stats.evictions_noted += 1;
                }
                // Keep the cookie shadow honest for timeouts; deletions
                // we ordered ourselves are folded in at barrier-ack time.
                if reason != zen_proto::RemovedReason::Delete {
                    let mut shrunk = false;
                    if let Some(shadow) = self.shadow.get_mut(&dpid) {
                        if let Some(count) = shadow.get_mut(&cookie) {
                            *count = count.saturating_sub(1);
                            if *count == 0 {
                                shadow.remove(&cookie);
                            }
                            shrunk = true;
                        }
                    }
                    if shrunk && self.cluster.is_some() && self.is_master_of(dpid) {
                        let cookies = self.shadow_cookies(dpid);
                        self.log_event(ViewEvent::ShadowSet { dpid, cookies });
                    }
                }
                self.with_apps(ctx, |apps, ctl| {
                    for app in apps.iter_mut() {
                        app.on_flow_removed(ctl, dpid, table_id, priority, cookie);
                    }
                });
            }
            Message::EchoRequest { token } => {
                self.stats.msgs_sent += 1;
                ctx.send_control(from, encode(&Message::EchoReply { token }, 0));
            }
            Message::EchoReply { .. } => {
                self.stats.echo_replies += 1;
            }
            Message::StatsReply { body } => {
                let Some(&dpid) = self.rev_registry.get(&from) else {
                    return;
                };
                self.with_apps(ctx, |apps, ctl| {
                    for app in apps.iter_mut() {
                        match &body {
                            zen_proto::StatsBody::Port(records) => {
                                app.on_port_stats(ctl, dpid, records)
                            }
                            zen_proto::StatsBody::Table(records) => {
                                app.on_table_stats(ctl, dpid, records)
                            }
                            zen_proto::StatsBody::Flow(records) => {
                                app.on_flow_stats(ctl, dpid, records)
                            }
                            zen_proto::StatsBody::Cache(record) => {
                                app.on_cache_stats(ctl, dpid, record)
                            }
                        }
                    }
                });
            }
            Message::BarrierReply { applied } => {
                // Retire the covered mods the switch confirmed — but
                // only as an in-order prefix. Mods apply in
                // transmission order, so if an earlier mod is still in
                // flight (say a lost cookie-delete), a later
                // already-applied mod must stay pending: the
                // retransmit path then replays it *after* the missing
                // one. Retiring it here would let the delete land last
                // and silently wipe state the shadow believes
                // installed.
                let mut shadow_touched: BTreeSet<Dpid> = BTreeSet::new();
                if let Some((_, xids)) = self.barriers.remove(&xid) {
                    for mx in xids {
                        if !applied.contains(&mx) {
                            if self.pending.contains_key(&mx) {
                                // Gap: everything after `mx` must be
                                // replayed in order behind it.
                                break;
                            }
                            // Resolved elsewhere (failed, superseded,
                            // bounced): not a gap.
                            continue;
                        }
                        if let Some(p) = self.pending.remove(&mx) {
                            self.stats.mods_acked += 1;
                            self.planner.note_xid(mx, true);
                            let rec = ctx.recorder();
                            if rec.is_enabled() {
                                if let Some(trace) = rec.take_xid(mx) {
                                    rec.record(
                                        ctx.now().as_nanos(),
                                        trace,
                                        TraceEvent::FlowModAcked {
                                            dpid: p.dpid,
                                            xid: mx,
                                        },
                                    );
                                }
                            }
                            self.apply_to_shadow(p.dpid, &p.msg);
                            shadow_touched.insert(p.dpid);
                        }
                    }
                }
                // Replicate the updated digests so a standby that later
                // takes these switches over inherits an accurate shadow
                // (one event per switch per barrier, not per mod).
                if self.cluster.is_some() {
                    for dpid in shadow_touched {
                        let cookies = self.shadow_cookies(dpid);
                        self.log_event(ViewEvent::ShadowSet { dpid, cookies });
                    }
                }
            }
            Message::HelloResync {
                generation,
                cookies,
            } => {
                let Some(&dpid) = self.rev_registry.get(&from) else {
                    return;
                };
                self.agent_generations.insert(dpid, generation);
                let reported: BTreeMap<u64, u32> =
                    cookies.iter().map(|c| (c.cookie, c.count)).collect();
                let expected = self.shadow.get(&dpid).cloned().unwrap_or_default();
                if reported == expected {
                    // The switch kept exactly the state we believe it
                    // has; unacked mods stay pending and retransmit.
                    self.stats.resyncs_clean += 1;
                    self.view.unquarantine(dpid);
                } else {
                    // Diverged: in-flight mods were computed against a
                    // stale world — drop them and let the owning apps
                    // reprogram from the reported truth.
                    self.stats.resyncs_dirty += 1;
                    let superseded: Vec<u32> = self
                        .pending
                        .iter()
                        .filter(|(_, p)| p.dpid == dpid)
                        .map(|(&x, _)| x)
                        .collect();
                    for x in superseded {
                        self.pending.remove(&x);
                        self.stats.mods_superseded += 1;
                        self.planner.note_xid(x, false);
                    }
                    self.shadow.insert(dpid, reported);
                    if self.cluster.is_some() && self.is_master_of(dpid) {
                        let cookies = self.shadow_cookies(dpid);
                        self.log_event(ViewEvent::ShadowSet { dpid, cookies });
                    }
                    // Unquarantine *before* notifying apps so their
                    // reprogramming sees the switch in the graph.
                    self.view.unquarantine(dpid);
                    self.with_apps(ctx, |apps, ctl| {
                        for app in apps.iter_mut() {
                            app.on_switch_resync(ctl, dpid);
                        }
                    });
                }
            }
            Message::RoleReply {
                role,
                term,
                replica,
            } => {
                // Only losing claims need bookkeeping: the switch names
                // the `(term, replica)` that outranked us, and we defer
                // to it until our own claim grows past it.
                let Some(&dpid) = self.rev_registry.get(&from) else {
                    return;
                };
                let stepped_down = {
                    let Some(cl) = self.cluster.as_mut() else {
                        return;
                    };
                    if role == Role::Master || replica == cl.membership.index() as u32 {
                        return;
                    }
                    cl.deferred.insert(dpid, (term, replica));
                    cl.my_masters.remove(&dpid)
                };
                if stepped_down {
                    self.mastership_lost(ctx, dpid, false);
                }
            }
            Message::Error {
                code: ErrorCode::NotMaster,
                data,
            } => {
                // A mod crossed a mastership change in flight. The
                // diagnostic bytes carry the rejected request's xid.
                self.stats.nonmaster_errors += 1;
                let Some(&dpid) = self.rev_registry.get(&from) else {
                    return;
                };
                let mod_xid = (data.len() == 4)
                    .then(|| u32::from_be_bytes([data[0], data[1], data[2], data[3]]));
                if self.cluster.is_some() && self.is_master_of(dpid) {
                    // We still believe we are master: our RoleRequest may
                    // have been lost, or the RoleReply demoting us is in
                    // flight. Re-assert; the mod stays pending and the
                    // retransmit path retries it under the settled role.
                    let (term, replica) = self
                        .cluster
                        .as_ref()
                        .map(|cl| cl.membership.claim())
                        .expect("checked above");
                    self.send_direct(
                        ctx,
                        dpid,
                        &Message::RoleRequest {
                            role: Role::Master,
                            term,
                            replica,
                        },
                    );
                } else if let Some(mx) = mod_xid {
                    // We already stepped down: the mod belongs to the new
                    // master's world now.
                    if self.pending.remove(&mx).is_some() {
                        self.stats.mods_superseded += 1;
                        self.planner.note_xid(mx, false);
                    }
                }
            }
            Message::Error {
                code: ErrorCode::TableFull,
                data,
            } => {
                // A switch bounced a flow add for lack of table capacity
                // (refuse overflow policy). The diagnostic bytes carry
                // the refused mod's xid: retire it from the pending set
                // as failed rather than letting it burn its whole
                // retransmit budget — resending cannot create capacity.
                self.stats.table_full_errors += 1;
                let Some(&dpid) = self.rev_registry.get(&from) else {
                    return;
                };
                if data.len() == 4 {
                    let mx = u32::from_be_bytes([data[0], data[1], data[2], data[3]]);
                    if self.pending.remove(&mx).is_some() {
                        self.stats.mods_failed += 1;
                        self.planner.note_xid(mx, false);
                    }
                }
                self.with_apps(ctx, |apps, ctl| {
                    for app in apps.iter_mut() {
                        app.on_table_full(ctl, dpid);
                    }
                });
            }
            // Other errors, ResyncRequest (agent-bound): informational.
            _ => {}
        }
    }
}

impl Node for Controller {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(self.cfg.tick_interval, TIMER_TICK);
        if let Some(adm) = &self.admission {
            ctx.set_timer(adm.cfg.drain_interval, TIMER_ADMIT);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        if token == TIMER_ADMIT {
            self.admission_drain(ctx);
            self.flush_barriers(ctx);
            if let Some(adm) = &self.admission {
                ctx.set_timer(adm.cfg.drain_interval, TIMER_ADMIT);
            }
        }
        if token == TIMER_TICK {
            // Silent-failure detection: drop links whose LLDP confirmations
            // stopped arriving. Clustered, a replica only ages links whose
            // *destination* it masters — confirmations arrive at the
            // destination's master, so everyone else's staleness clock
            // says nothing (and would false-expire every link the moment
            // a master dies, since the lease outlives link_max_age).
            // Links whose *source* is a peer's switch get a full extra
            // lease of grace: the source's master sends the probes, and
            // if it just died, probing only resumes after its lease
            // lapses and the takeover re-solicits — expiring at the
            // plain max-age would tear down every link out of a dead
            // master's switches before failover can even start.
            let now = ctx.now();
            let removed = if let Some(cl) = &self.cluster {
                let lease = cl.membership.config().lease_timeout;
                let masters = cl.my_masters.clone();
                let mut removed = self.view.expire_links_filtered(
                    now,
                    self.cfg.link_max_age,
                    |(from, _), (to, _)| masters.contains(&to) && masters.contains(&from),
                );
                removed.extend(self.view.expire_links_filtered(
                    now,
                    self.cfg.link_max_age + lease,
                    |(from, _), (to, _)| masters.contains(&to) && !masters.contains(&from),
                ));
                removed
            } else {
                self.view.expire_links(now, self.cfg.link_max_age)
            };
            for ((dpid, port), _) in removed {
                self.log_event(ViewEvent::LinkDel {
                    from_dpid: dpid,
                    from_port: port,
                });
                self.with_apps(ctx, |apps, ctl| {
                    for app in apps.iter_mut() {
                        app.on_port_status(ctl, dpid, port, false);
                    }
                });
            }
            self.quarantine_scan(ctx);
            self.retransmit_scan(ctx);
            self.cluster_tick(ctx);
            if self.cluster.is_none() {
                // Standalone intents commit on the tick, skipping the
                // cluster round cluster_tick would have run.
                self.dispatch_committed_intents(ctx);
            }
            self.discovery_round(ctx);
            self.echo_round(ctx);
            self.with_apps(ctx, |apps, ctl| {
                for app in apps.iter_mut() {
                    app.tick(ctl);
                }
            });
            self.planner_pump(ctx);
            self.flush_barriers(ctx);
            ctx.set_timer(self.cfg.tick_interval, TIMER_TICK);
        }
    }

    fn on_packet(&mut self, _ctx: &mut Context<'_>, _port: PortNo, _frame: &[u8]) {
        // The controller has no data-plane ports (out-of-band control).
    }

    fn on_control(&mut self, ctx: &mut Context<'_>, from: NodeId, bytes: &[u8]) {
        // Any bytes at all prove the agent's channel works.
        self.liveness.insert(from, ctx.now());
        let mut at = 0;
        // PACKET_INs decode to borrowed views over `bytes` and are
        // collected for one batched app dispatch. Any other message
        // flushes the batch first, preserving relative order.
        let mut punts: Vec<(PortNo, &[u8])> = Vec::new();
        while at < bytes.len() {
            match decode_view(&bytes[at..]) {
                Ok((view, xid, consumed)) => {
                    at += consumed;
                    self.stats.msgs_received += 1;
                    match view {
                        MessageView::PacketIn { in_port, frame, .. } => {
                            punts.push((in_port, frame));
                        }
                        other => {
                            if !punts.is_empty() {
                                let batch = std::mem::take(&mut punts);
                                self.handle_packet_in_batch(ctx, from, &batch);
                            }
                            self.handle_message(ctx, from, other.into_message(), xid);
                        }
                    }
                }
                Err(e) if e.is_truncated() && at > 0 => break,
                Err(_) => {
                    self.stats.decode_errors += 1;
                    break;
                }
            }
        }
        if !punts.is_empty() {
            self.handle_packet_in_batch(ctx, from, &punts);
        }
        self.planner_pump(ctx);
        self.flush_barriers(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
