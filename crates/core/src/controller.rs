//! The logically centralized controller.
//!
//! The controller is itself a simulator node; switch agents reach it
//! over the out-of-band control channel. It owns the
//! [`view::NetworkView`](crate::view::NetworkView), runs LLDP topology
//! discovery, learns host locations from punted edge traffic, and
//! dispatches everything else to the application chain.

use std::any::Any;
use std::collections::BTreeMap;

use zen_dataplane::{FlowSpec, GroupDesc, PortNo};
use zen_proto::{decode, encode, CodecError, FlowModCmd, GroupModCmd, Message, MeterModCmd};
use zen_sim::{Context, Duration, Instant, Node, NodeId};
use zen_wire::ethernet::{EtherType, Frame};
use zen_wire::{arp, ipv4, lldp};

use crate::app::{App, Disposition};
use crate::view::{Dpid, NetworkView};

const TIMER_TICK: u64 = 1;

/// Controller configuration.
#[derive(Debug, Clone, Copy)]
pub struct ControllerConfig {
    /// Discovery + app tick period.
    pub tick_interval: Duration,
    /// TTL stamped into discovery LLDPs.
    pub lldp_ttl_secs: u16,
    /// Age after which an unconfirmed link is declared dead (silent
    /// failure detection). Should be several tick intervals.
    pub link_max_age: Duration,
}

impl Default for ControllerConfig {
    fn default() -> ControllerConfig {
        ControllerConfig {
            tick_interval: Duration::from_millis(50),
            lldp_ttl_secs: 120,
            link_max_age: Duration::from_millis(175),
        }
    }
}

/// Controller counters, read by experiments.
#[derive(Debug, Default, Clone, Copy)]
pub struct CtlStats {
    /// PACKET_INs received (excluding LLDP discovery returns).
    pub packet_ins: u64,
    /// LLDP discovery PACKET_INs received.
    pub lldp_ins: u64,
    /// FLOW_MODs sent.
    pub flow_mods: u64,
    /// GROUP_MODs sent.
    pub group_mods: u64,
    /// PACKET_OUTs sent.
    pub packet_outs: u64,
    /// Total control messages sent.
    pub msgs_sent: u64,
    /// Total control messages received.
    pub msgs_received: u64,
    /// Protocol decode errors.
    pub decode_errors: u64,
    /// ECHO_REQUEST liveness probes sent to agents.
    pub echo_probes: u64,
    /// ECHO_REPLYs received from agents.
    pub echo_replies: u64,
}

/// The services handle passed to applications: the network view plus
/// typed message-sending helpers.
pub struct Ctl<'a, 'w> {
    /// The simulator context (time, RNG, metrics).
    pub ctx: &'a mut Context<'w>,
    /// The controller's network view.
    pub view: &'a mut NetworkView,
    registry: &'a BTreeMap<Dpid, NodeId>,
    xid: &'a mut u32,
    stats: &'a mut CtlStats,
}

impl Ctl<'_, '_> {
    /// Current simulated time.
    pub fn now(&self) -> Instant {
        self.ctx.now()
    }

    /// Send a raw protocol message to a switch. Unknown dpids are
    /// silently dropped (the switch may have disconnected).
    pub fn send(&mut self, dpid: Dpid, msg: &Message) {
        let Some(&node) = self.registry.get(&dpid) else {
            return;
        };
        let xid = *self.xid;
        *self.xid += 1;
        self.stats.msgs_sent += 1;
        match msg {
            Message::FlowMod { .. } => self.stats.flow_mods += 1,
            Message::GroupMod { .. } => self.stats.group_mods += 1,
            Message::PacketOut { .. } => self.stats.packet_outs += 1,
            _ => {}
        }
        self.ctx.send_control(node, encode(msg, xid));
    }

    /// Install a flow.
    pub fn install_flow(&mut self, dpid: Dpid, table_id: u8, spec: FlowSpec) {
        self.send(
            dpid,
            &Message::FlowMod {
                table_id,
                cmd: FlowModCmd::Add(spec),
            },
        );
    }

    /// Delete all flows carrying `cookie` on a switch.
    pub fn delete_flows_by_cookie(&mut self, dpid: Dpid, cookie: u64) {
        self.send(
            dpid,
            &Message::FlowMod {
                table_id: 0,
                cmd: FlowModCmd::DeleteByCookie { cookie },
            },
        );
    }

    /// Install or replace a group.
    pub fn install_group(&mut self, dpid: Dpid, group_id: u32, desc: GroupDesc) {
        self.send(
            dpid,
            &Message::GroupMod {
                group_id,
                cmd: GroupModCmd::Add(desc),
            },
        );
    }

    /// Install or replace a meter.
    pub fn install_meter(&mut self, dpid: Dpid, meter_id: u32, rate_bps: u64, burst_bytes: u64) {
        self.send(
            dpid,
            &Message::MeterMod {
                meter_id,
                cmd: MeterModCmd::Add {
                    rate_bps,
                    burst_bytes,
                },
            },
        );
    }

    /// Inject a frame at a switch with the given actions.
    pub fn packet_out(
        &mut self,
        dpid: Dpid,
        in_port: PortNo,
        actions: Vec<zen_dataplane::Action>,
        frame: Vec<u8>,
    ) {
        self.send(
            dpid,
            &Message::PacketOut {
                in_port,
                actions,
                frame,
            },
        );
    }

    /// Fence a switch (answered asynchronously).
    pub fn barrier(&mut self, dpid: Dpid) {
        self.send(dpid, &Message::BarrierRequest);
    }
}

/// The controller node.
pub struct Controller {
    cfg: ControllerConfig,
    apps: Vec<Box<dyn App>>,
    /// The network view (public for post-run inspection).
    pub view: NetworkView,
    registry: BTreeMap<Dpid, NodeId>,
    rev_registry: BTreeMap<NodeId, Dpid>,
    xid: u32,
    /// Counters.
    pub stats: CtlStats,
}

impl Controller {
    /// A controller running `apps` (dispatched in order).
    pub fn new(apps: Vec<Box<dyn App>>) -> Controller {
        Controller::with_config(apps, ControllerConfig::default())
    }

    /// A controller with explicit configuration.
    pub fn with_config(apps: Vec<Box<dyn App>>, cfg: ControllerConfig) -> Controller {
        Controller {
            cfg,
            apps,
            view: NetworkView::new(),
            registry: BTreeMap::new(),
            rev_registry: BTreeMap::new(),
            xid: 1,
            stats: CtlStats::default(),
        }
    }

    /// Access an application by index (post-run inspection).
    pub fn app(&self, index: usize) -> &dyn App {
        self.apps[index].as_ref()
    }

    /// Run `f` with the services handle and the app list temporarily
    /// split apart (the standard take/put dance).
    fn with_apps(
        &mut self,
        ctx: &mut Context<'_>,
        f: impl FnOnce(&mut Vec<Box<dyn App>>, &mut Ctl<'_, '_>),
    ) {
        let mut apps = std::mem::take(&mut self.apps);
        {
            let mut ctl = Ctl {
                ctx,
                view: &mut self.view,
                registry: &self.registry,
                xid: &mut self.xid,
                stats: &mut self.stats,
            };
            f(&mut apps, &mut ctl);
        }
        self.apps = apps;
    }

    fn send_direct(&mut self, ctx: &mut Context<'_>, dpid: Dpid, msg: &Message) {
        let Some(&node) = self.registry.get(&dpid) else {
            return;
        };
        let xid = self.xid;
        self.xid += 1;
        self.stats.msgs_sent += 1;
        ctx.send_control(node, encode(msg, xid));
    }

    /// Probe every registered agent's control-channel liveness with an
    /// ECHO_REQUEST (the token encodes the send time, so a reply dates
    /// the probe it answers).
    fn echo_round(&mut self, ctx: &mut Context<'_>) {
        let targets: Vec<Dpid> = self.registry.keys().copied().collect();
        let token = ctx.now().as_nanos();
        for dpid in targets {
            self.stats.echo_probes += 1;
            self.send_direct(ctx, dpid, &Message::EchoRequest { token });
        }
    }

    /// Send one LLDP probe out of every known up port of every switch.
    fn discovery_round(&mut self, ctx: &mut Context<'_>) {
        let targets: Vec<(Dpid, PortNo)> = self
            .view
            .switches
            .iter()
            .flat_map(|(&dpid, info)| {
                info.ports
                    .iter()
                    .filter(|&(_, &up)| up)
                    .map(move |(&port, _)| (dpid, port))
            })
            .collect();
        for (dpid, port) in targets {
            let frame = zen_wire::builder::PacketBuilder::lldp(
                zen_wire::EthernetAddress::from_id(0x70_0000 + dpid),
                dpid,
                port,
                self.cfg.lldp_ttl_secs,
            );
            self.stats.packet_outs += 1;
            let msg = Message::PacketOut {
                in_port: 0,
                actions: vec![zen_dataplane::Action::Output(port)],
                frame,
            };
            self.send_direct(ctx, dpid, &msg);
        }
    }

    fn handle_packet_in(
        &mut self,
        ctx: &mut Context<'_>,
        dpid: Dpid,
        in_port: PortNo,
        frame: Vec<u8>,
    ) {
        let Ok(eth) = Frame::new_checked(&frame[..]) else {
            return;
        };
        // Discovery return path.
        if eth.ethertype() == EtherType::Lldp {
            self.stats.lldp_ins += 1;
            if let Ok(repr) = lldp::Repr::parse(eth.payload()) {
                let now = ctx.now();
                self.view
                    .add_link_at((repr.chassis_id, repr.port_id), (dpid, in_port), now);
            }
            return;
        }
        self.stats.packet_ins += 1;

        // Host learning from edge-port traffic.
        if self.view.is_edge_port(dpid, in_port) && eth.src_addr().is_unicast() {
            let ip = match eth.ethertype() {
                EtherType::Arp => arp::Packet::new_checked(eth.payload())
                    .ok()
                    .and_then(|p| arp::Repr::parse(&p).ok())
                    .map(|r| r.sender_protocol_addr)
                    .filter(|ip| ip.is_unicast()),
                EtherType::Ipv4 => ipv4::Packet::new_checked(eth.payload())
                    .ok()
                    .map(|p| p.src_addr())
                    .filter(|ip| ip.is_unicast()),
                _ => None,
            };
            let now = ctx.now();
            self.view.learn_host(eth.src_addr(), dpid, in_port, ip, now);
        }

        // Application chain.
        self.with_apps(ctx, |apps, ctl| {
            for app in apps.iter_mut() {
                if app.on_packet_in(ctl, dpid, in_port, &frame) == Disposition::Handled {
                    break;
                }
            }
        });
    }

    fn handle_message(&mut self, ctx: &mut Context<'_>, from: NodeId, msg: Message, _xid: u32) {
        match msg {
            Message::Hello { .. } => {
                // Learn the session, ask who they are.
                let reply = encode(
                    &Message::Hello {
                        version: zen_proto::VERSION,
                    },
                    0,
                );
                self.stats.msgs_sent += 2;
                ctx.send_control(from, reply);
                ctx.send_control(from, encode(&Message::FeaturesRequest, 0));
            }
            Message::FeaturesReply {
                dpid,
                n_tables,
                ports,
            } => {
                self.registry.insert(dpid, from);
                self.rev_registry.insert(from, dpid);
                let port_list: Vec<(PortNo, bool)> =
                    ports.iter().map(|p| (p.port_no, p.up)).collect();
                self.view.add_switch(dpid, n_tables, &port_list);
                self.with_apps(ctx, |apps, ctl| {
                    for app in apps.iter_mut() {
                        app.on_switch_up(ctl, dpid);
                    }
                });
                // Probe its links right away.
                self.discovery_round(ctx);
            }
            Message::PacketIn { in_port, frame, .. } => {
                let Some(&dpid) = self.rev_registry.get(&from) else {
                    return;
                };
                self.handle_packet_in(ctx, dpid, in_port, frame);
            }
            Message::PortStatus { port } => {
                let Some(&dpid) = self.rev_registry.get(&from) else {
                    return;
                };
                self.view.set_port(dpid, port.port_no, port.up);
                self.with_apps(ctx, |apps, ctl| {
                    for app in apps.iter_mut() {
                        app.on_port_status(ctl, dpid, port.port_no, port.up);
                    }
                });
            }
            Message::FlowRemoved {
                table_id,
                priority,
                cookie,
                ..
            } => {
                let Some(&dpid) = self.rev_registry.get(&from) else {
                    return;
                };
                self.with_apps(ctx, |apps, ctl| {
                    for app in apps.iter_mut() {
                        app.on_flow_removed(ctl, dpid, table_id, priority, cookie);
                    }
                });
            }
            Message::EchoRequest { token } => {
                self.stats.msgs_sent += 1;
                ctx.send_control(from, encode(&Message::EchoReply { token }, 0));
            }
            Message::EchoReply { .. } => {
                self.stats.echo_replies += 1;
            }
            Message::StatsReply { body } => {
                let Some(&dpid) = self.rev_registry.get(&from) else {
                    return;
                };
                self.with_apps(ctx, |apps, ctl| {
                    for app in apps.iter_mut() {
                        app.on_stats(ctl, dpid, &body);
                    }
                });
            }
            // BarrierReply, EchoReply, Error: surfaced to apps as needed;
            // currently informational.
            _ => {}
        }
    }
}

impl Node for Controller {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(self.cfg.tick_interval, TIMER_TICK);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        if token == TIMER_TICK {
            // Silent-failure detection: drop links whose LLDP confirmations
            // stopped arriving.
            let removed = self.view.expire_links(ctx.now(), self.cfg.link_max_age);
            for ((dpid, port), _) in removed {
                self.with_apps(ctx, |apps, ctl| {
                    for app in apps.iter_mut() {
                        app.on_port_status(ctl, dpid, port, false);
                    }
                });
            }
            self.discovery_round(ctx);
            self.echo_round(ctx);
            self.with_apps(ctx, |apps, ctl| {
                for app in apps.iter_mut() {
                    app.tick(ctl);
                }
            });
            ctx.set_timer(self.cfg.tick_interval, TIMER_TICK);
        }
    }

    fn on_packet(&mut self, _ctx: &mut Context<'_>, _port: PortNo, _frame: &[u8]) {
        // The controller has no data-plane ports (out-of-band control).
    }

    fn on_control(&mut self, ctx: &mut Context<'_>, from: NodeId, bytes: &[u8]) {
        let mut at = 0;
        while at < bytes.len() {
            match decode(&bytes[at..]) {
                Ok((msg, xid, consumed)) => {
                    at += consumed;
                    self.stats.msgs_received += 1;
                    self.handle_message(ctx, from, msg, xid);
                }
                Err(CodecError::Truncated) if at > 0 => break,
                Err(_) => {
                    self.stats.decode_errors += 1;
                    break;
                }
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
