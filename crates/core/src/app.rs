//! The application framework: controller behaviour is composed from
//! apps dispatched in chain order (Ryu/ONOS style).

use zen_dataplane::PortNo;
use zen_proto::{CacheStatsRec, FlowStats, Intent, PortStatsRec, TableStats};

use crate::controller::Ctl;
use crate::view::Dpid;

/// What an app decided about a PACKET_IN.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Pass the event to the next app in the chain.
    Continue,
    /// The packet is dealt with; stop the chain.
    Handled,
}

/// A controller application.
///
/// All methods have no-op defaults; implement the events you care
/// about. Apps interact with the network exclusively through
/// [`Ctl`] — typed wrappers over control-protocol messages — so
/// everything an app does is observable control-channel traffic.
#[allow(unused_variables)]
pub trait App: 'static {
    /// A short name for logs and diagnostics.
    fn name(&self) -> &'static str;

    /// A switch completed its handshake.
    fn on_switch_up(&mut self, ctl: &mut Ctl<'_, '_>, dpid: Dpid) {}

    /// A non-LLDP frame was punted to the controller.
    fn on_packet_in(
        &mut self,
        ctl: &mut Ctl<'_, '_>,
        dpid: Dpid,
        in_port: PortNo,
        frame: &[u8],
    ) -> Disposition {
        Disposition::Continue
    }

    /// A switch port changed state (the view is already updated).
    fn on_port_status(&mut self, ctl: &mut Ctl<'_, '_>, dpid: Dpid, port: PortNo, up: bool) {}

    /// A switch bounced one of this controller's flow adds with a
    /// TABLE_FULL error (refuse overflow policy). The offending mod has
    /// already been retired from the pending table; reactive apps
    /// should back off installs toward `dpid` and/or shorten timeouts
    /// so the table drains.
    fn on_table_full(&mut self, ctl: &mut Ctl<'_, '_>, dpid: Dpid) {}

    /// A flow entry was evicted or deleted.
    fn on_flow_removed(
        &mut self,
        ctl: &mut Ctl<'_, '_>,
        dpid: Dpid,
        table_id: u8,
        priority: u16,
        cookie: u64,
    ) {
    }

    /// A port-statistics reply arrived.
    fn on_port_stats(&mut self, ctl: &mut Ctl<'_, '_>, dpid: Dpid, records: &[PortStatsRec]) {}

    /// A table-statistics reply arrived.
    fn on_table_stats(&mut self, ctl: &mut Ctl<'_, '_>, dpid: Dpid, records: &[TableStats]) {}

    /// A flow-statistics reply arrived (per-entry packet/byte counters).
    fn on_flow_stats(&mut self, ctl: &mut Ctl<'_, '_>, dpid: Dpid, records: &[FlowStats]) {}

    /// A datapath-cache statistics reply arrived.
    fn on_cache_stats(&mut self, ctl: &mut Ctl<'_, '_>, dpid: Dpid, record: &CacheStatsRec) {}

    /// A switch reconnected after a control-channel outage and its
    /// reported flow state diverged from what the controller believes
    /// (see [`zen_proto::Message::HelloResync`]). Apps owning proactive
    /// state on the switch should reprogram it; the view has already
    /// been unquarantined.
    fn on_switch_resync(&mut self, ctl: &mut Ctl<'_, '_>, dpid: Dpid) {}

    /// This replica's mastership over a switch changed (clustered
    /// controllers only). On gain, the replica has already re-asserted
    /// its role at the switch and requested a resync; apps owning
    /// proactive state should compare their desired program against the
    /// replicated program stamp ([`Ctl::program_stamp`]) and reprogram
    /// only on mismatch — an unconditional reprogram would re-flood
    /// every orphaned switch on failover.
    fn on_mastership_change(&mut self, ctl: &mut Ctl<'_, '_>, dpid: Dpid, is_master: bool) {}

    /// A cluster-wide intent committed through the replicated log (or
    /// locally when not clustered) — the linearizable counterpart to
    /// the eventually consistent view replication. Fires at most once
    /// per intent on every replica, in commit order; apps holding
    /// switch state derived from intents (network-wide ACL rules,
    /// pinned mastership) materialize it here. Proposed via
    /// [`Ctl::propose_intent`]. A replica that rejoins past the
    /// leader's compaction floor does **not** replay individual
    /// commits: it receives one [`App::on_intent_snapshot`] instead.
    fn on_intent_committed(&mut self, ctl: &mut Ctl<'_, '_>, intent: &Intent) {}

    /// The replicated intent state was replaced wholesale by a
    /// snapshot install (this replica rejoined past the leader's
    /// compaction floor). `intents` is the full active set — the
    /// latest committed install per key; withdrawn state is simply
    /// absent. Apps deriving state from intents must **rebuild** from
    /// this set, replacing rather than patching their materialization:
    /// incremental replay cannot retract state whose withdrawal the
    /// snapshot compacted away. [`App::on_intent_committed`] does not
    /// fire for these entries.
    fn on_intent_snapshot(&mut self, ctl: &mut Ctl<'_, '_>, intents: &[Intent]) {}

    /// A two-phase [`crate::txn::NetworkUpdate`] this app committed
    /// (identified by the `owner`/`token` it passed to
    /// [`crate::txn::NetworkUpdate::owned_by`]) finished its drain wave:
    /// every packet now traverses the new configuration.
    fn on_update_committed(&mut self, ctl: &mut Ctl<'_, '_>, owner: &'static str, token: u64) {}

    /// A two-phase [`crate::txn::NetworkUpdate`] was aborted (staging
    /// failure or deadline): its staged rules have been deleted and the
    /// old configuration still carries all traffic. The owner may
    /// re-stage.
    fn on_update_aborted(&mut self, ctl: &mut Ctl<'_, '_>, owner: &'static str, token: u64) {}

    /// The periodic controller tick (also the discovery cadence).
    fn tick(&mut self, ctl: &mut Ctl<'_, '_>) {}

    /// Downcast support for post-run inspection.
    fn as_any(&self) -> &dyn std::any::Any;
}
