//! Transactional network updates — the northbound programming API.
//!
//! Applications no longer scatter loose `install_flow` calls: they open
//! a transaction with [`crate::controller::Ctl::txn`], stage flow,
//! group, and meter operations on the returned [`NetworkUpdate`], and
//! commit the batch atomically. Two consistency levels:
//!
//! * [`Consistency::Relaxed`] — operations are sent immediately in
//!   staging order over the tracked (barrier-acked, retransmitted)
//!   send path. Equivalent to the loose calls, but the batch is
//!   declared as one unit.
//! * [`Consistency::PerPacket`] — a Reitblatt-style two-phase
//!   versioned update. The controller's update planner stages the new
//!   configuration under the next epoch (internal rules match the
//!   epoch tag, see [`zen_dataplane::epoch`]), waits for barrier acks
//!   from every touched switch, then *flips* the edge rules to stamp
//!   the new epoch and garbage-collects the old epoch after a drain
//!   wave — every packet traverses entirely-old or entirely-new
//!   state, never a mix. Updates touching at most one switch commit
//!   on the fast path (a single switch applies its mods in order, so
//!   two-phase staging buys nothing).
//!
//! Flow operations carry a role: [`NetworkUpdate::edge_flow`] marks
//! rules that stamp packets entering the network (the planner prepends
//! `SetEpoch` at flip time), [`NetworkUpdate::internal_flow`] marks
//! rules that should only see packets of their own epoch (the planner
//! injects the epoch qualifier into the matcher at staging time), and
//! plain [`NetworkUpdate::flow`] is sent verbatim. *Retire* operations
//! name the old configuration's footprint; the planner deletes it only
//! after the drain wave (under `Relaxed` they execute in staging
//! order, preserving the classic delete-then-reinstall sequence).

use std::collections::VecDeque;

use zen_dataplane::{FlowSpec, GroupDesc};
use zen_sim::Instant;

use crate::view::Dpid;

/// How atomically a [`NetworkUpdate`] must take effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Consistency {
    /// Send operations immediately, in staging order, over the tracked
    /// send path. No cross-switch atomicity.
    #[default]
    Relaxed,
    /// Two-phase epoch-versioned commit: no packet ever sees a mix of
    /// old and new rules (per-packet consistency).
    PerPacket,
}

/// A flow operation's role in a two-phase update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowRole {
    /// Sent verbatim at staging time.
    Plain,
    /// An edge rule that stamps packets with the config epoch; held
    /// back until every staged rule is acked, then sent with
    /// `SetEpoch(tag)` prepended to its actions (the flip).
    Edge,
    /// An internal rule that must only see packets of its own epoch;
    /// the planner injects `matcher.epoch = Some(Some(tag))` at
    /// staging time.
    Internal,
}

/// One staged operation of a [`NetworkUpdate`].
#[derive(Debug, Clone)]
pub(crate) enum UpdateOp {
    /// Install a flow (role decides epoch decoration).
    Flow {
        dpid: Dpid,
        table_id: u8,
        spec: FlowSpec,
        role: FlowRole,
    },
    /// Delete flows by cookie at staging time.
    DeleteFlowsByCookie { dpid: Dpid, cookie: u64 },
    /// Install or replace a group.
    Group {
        dpid: Dpid,
        group_id: u32,
        desc: GroupDesc,
    },
    /// Delete a group at staging time.
    DeleteGroup { dpid: Dpid, group_id: u32 },
    /// Install or replace a meter.
    Meter {
        dpid: Dpid,
        meter_id: u32,
        rate_bps: u64,
        burst_bytes: u64,
    },
    /// Delete the old configuration's flows — after the drain wave
    /// under `PerPacket`, in staging order under `Relaxed`.
    RetireFlowsByCookie { dpid: Dpid, cookie: u64 },
    /// Delete an old configuration's group — after the drain wave
    /// under `PerPacket`, in staging order under `Relaxed`.
    RetireGroup { dpid: Dpid, group_id: u32 },
}

impl UpdateOp {
    pub(crate) fn dpid(&self) -> Dpid {
        match *self {
            UpdateOp::Flow { dpid, .. }
            | UpdateOp::DeleteFlowsByCookie { dpid, .. }
            | UpdateOp::Group { dpid, .. }
            | UpdateOp::DeleteGroup { dpid, .. }
            | UpdateOp::Meter { dpid, .. }
            | UpdateOp::RetireFlowsByCookie { dpid, .. }
            | UpdateOp::RetireGroup { dpid, .. } => dpid,
        }
    }
}

/// A staged atomic network update. Build with
/// [`crate::controller::Ctl::txn`], stage operations, then
/// [`NetworkUpdate::commit`].
#[derive(Debug, Clone, Default)]
pub struct NetworkUpdate {
    pub(crate) consistency: Consistency,
    /// The submitting app's name, echoed in the completion callbacks.
    pub(crate) owner: &'static str,
    /// Opaque app-chosen correlation value, echoed in the callbacks.
    pub(crate) token: u64,
    pub(crate) ops: Vec<UpdateOp>,
}

impl NetworkUpdate {
    /// Request two-phase per-packet consistency for this update.
    pub fn per_packet(mut self) -> NetworkUpdate {
        self.consistency = Consistency::PerPacket;
        self
    }

    /// Name the submitting app and an opaque correlation token; both
    /// are echoed in [`crate::app::App::on_update_committed`] /
    /// [`crate::app::App::on_update_aborted`].
    pub fn owned_by(mut self, owner: &'static str, token: u64) -> NetworkUpdate {
        self.owner = owner;
        self.token = token;
        self
    }

    /// Stage a plain flow install.
    pub fn flow(&mut self, dpid: Dpid, table_id: u8, spec: FlowSpec) -> &mut NetworkUpdate {
        self.ops.push(UpdateOp::Flow {
            dpid,
            table_id,
            spec,
            role: FlowRole::Plain,
        });
        self
    }

    /// Stage an edge (epoch-stamping) flow install; see [`FlowRole::Edge`].
    pub fn edge_flow(&mut self, dpid: Dpid, table_id: u8, spec: FlowSpec) -> &mut NetworkUpdate {
        self.ops.push(UpdateOp::Flow {
            dpid,
            table_id,
            spec,
            role: FlowRole::Edge,
        });
        self
    }

    /// Stage an internal (epoch-qualified) flow install; see
    /// [`FlowRole::Internal`].
    pub fn internal_flow(
        &mut self,
        dpid: Dpid,
        table_id: u8,
        spec: FlowSpec,
    ) -> &mut NetworkUpdate {
        self.ops.push(UpdateOp::Flow {
            dpid,
            table_id,
            spec,
            role: FlowRole::Internal,
        });
        self
    }

    /// Stage an immediate delete of all flows carrying `cookie`.
    pub fn delete_flows_by_cookie(&mut self, dpid: Dpid, cookie: u64) -> &mut NetworkUpdate {
        self.ops
            .push(UpdateOp::DeleteFlowsByCookie { dpid, cookie });
        self
    }

    /// Stage a group install (or replace).
    pub fn group(&mut self, dpid: Dpid, group_id: u32, desc: GroupDesc) -> &mut NetworkUpdate {
        self.ops.push(UpdateOp::Group {
            dpid,
            group_id,
            desc,
        });
        self
    }

    /// Stage an immediate group delete.
    pub fn delete_group(&mut self, dpid: Dpid, group_id: u32) -> &mut NetworkUpdate {
        self.ops.push(UpdateOp::DeleteGroup { dpid, group_id });
        self
    }

    /// Stage a meter install (or replace).
    pub fn meter(
        &mut self,
        dpid: Dpid,
        meter_id: u32,
        rate_bps: u64,
        burst_bytes: u64,
    ) -> &mut NetworkUpdate {
        self.ops.push(UpdateOp::Meter {
            dpid,
            meter_id,
            rate_bps,
            burst_bytes,
        });
        self
    }

    /// Mark the old configuration's flows for retirement: deleted after
    /// the drain wave under `PerPacket`, in staging order under
    /// `Relaxed`.
    pub fn retire_flows_by_cookie(&mut self, dpid: Dpid, cookie: u64) -> &mut NetworkUpdate {
        self.ops
            .push(UpdateOp::RetireFlowsByCookie { dpid, cookie });
        self
    }

    /// Mark an old configuration's group for retirement (deleted after
    /// the drain wave under `PerPacket`).
    pub fn retire_group(&mut self, dpid: Dpid, group_id: u32) -> &mut NetworkUpdate {
        self.ops.push(UpdateOp::RetireGroup { dpid, group_id });
        self
    }

    /// Whether nothing was staged.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The number of distinct switches this update touches.
    pub fn switches_touched(&self) -> usize {
        let mut dpids: Vec<Dpid> = self.ops.iter().map(UpdateOp::dpid).collect();
        dpids.sort_unstable();
        dpids.dedup();
        dpids.len()
    }

    /// Commit the staged batch. `Relaxed` (and single-switch
    /// `PerPacket`) updates are sent immediately; multi-switch
    /// `PerPacket` updates are handed to the controller's update
    /// planner, which drives the two-phase protocol over the following
    /// ticks and reports the outcome through
    /// [`crate::app::App::on_update_committed`] /
    /// [`crate::app::App::on_update_aborted`].
    pub fn commit(self, ctl: &mut crate::controller::Ctl<'_, '_>) {
        ctl.commit_update(self);
    }
}

/// Phase of the active two-phase transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TxnPhase {
    /// New-epoch internal rules, groups, and meters are in flight,
    /// awaiting barrier acks from every touched switch.
    Staging,
    /// Edge rules stamping the new epoch are in flight.
    Flipping,
    /// Edge flipped; waiting out the drain wave so packets stamped
    /// with the old epoch exit the network before its rules go.
    Draining,
    /// Epoch committed; the old configuration's retire wave is in
    /// flight. The planner stays busy until every retire is
    /// barrier-acked: the next epoch reuses this parity's cookie and
    /// group-id namespace, so a delayed (or duplicated, after a lost
    /// ack) retire must never interleave with its installs.
    Retiring,
}

impl TxnPhase {
    pub(crate) fn name(self) -> &'static str {
        match self {
            TxnPhase::Staging => "staging",
            TxnPhase::Flipping => "flipping",
            TxnPhase::Draining => "draining",
            TxnPhase::Retiring => "retiring",
        }
    }
}

/// The in-flight two-phase transaction.
pub(crate) struct ActiveTxn {
    /// The epoch being installed (`config_epoch + 1` at activation).
    pub epoch: u64,
    pub phase: TxnPhase,
    /// Submitting app + token, echoed in the completion callbacks.
    pub owner: &'static str,
    pub token: u64,
    /// Mod xids of the current phase still awaiting acks.
    pub outstanding: std::collections::BTreeSet<u32>,
    /// A tracked xid of the current phase failed (retries exhausted,
    /// TABLE_FULL, superseded by resync or mastership change).
    pub failed: bool,
    /// Give-up time: a staging transaction aborts past this (e.g. a
    /// touched switch died and its acks will never come); a flipping
    /// one force-advances (the quarantine/resync machinery repairs the
    /// straggler switch).
    pub deadline: Instant,
    /// End of the drain wave (set when entering `Draining`).
    pub drain_until: Instant,
    /// Edge-flow messages held back until the flip.
    pub flip_msgs: Vec<(Dpid, zen_proto::Message)>,
    /// Old-configuration deletes held back until after the drain.
    pub retire_msgs: Vec<(Dpid, zen_proto::Message)>,
    /// Footprint staged so far, deleted on abort: cookies of staged
    /// flow adds and ids of staged groups.
    pub staged_cookies: std::collections::BTreeSet<(Dpid, u64)>,
    pub staged_groups: std::collections::BTreeSet<(Dpid, u32)>,
}

/// The controller's consistent-update planner: a queue of committed
/// [`NetworkUpdate`]s awaiting two-phase installation, at most one
/// active at a time, plus the committed configuration epoch.
#[derive(Default)]
pub struct UpdatePlanner {
    pub(crate) queue: VecDeque<NetworkUpdate>,
    pub(crate) active: Option<ActiveTxn>,
    pub(crate) config_epoch: u64,
}

impl UpdatePlanner {
    /// The committed configuration epoch (starts at 0; each two-phase
    /// commit increments it).
    pub fn config_epoch(&self) -> u64 {
        self.config_epoch
    }

    /// The epoch the *next* committed two-phase update will install
    /// under. Apps use its parity to pick disjoint cookie/group-id
    /// namespaces for consecutive configurations. A retiring
    /// transaction's epoch is already committed, so it no longer
    /// counts as pending.
    pub fn staged_epoch(&self) -> u64 {
        let pending = self
            .active
            .as_ref()
            .map_or(0, |t| (t.epoch > self.config_epoch) as u64);
        self.config_epoch + 1 + pending + self.queue.len() as u64
    }

    /// Whether a two-phase transaction is active or queued.
    pub fn is_busy(&self) -> bool {
        self.active.is_some() || !self.queue.is_empty()
    }

    /// Resolve a tracked mod xid: `ok` for barrier-acked, `!ok` for
    /// failed/superseded. Called from every site that retires a
    /// pending mod so the active transaction's phase gate advances.
    pub(crate) fn note_xid(&mut self, xid: u32, ok: bool) {
        if let Some(txn) = self.active.as_mut() {
            if txn.outstanding.remove(&xid) && !ok {
                txn.failed = true;
            }
        }
    }
}
