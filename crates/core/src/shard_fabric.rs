//! Datapath-backed workload nodes for the sharded engine (experiment E21).
//!
//! `zen-sim`'s [`ShardedWorld`] is a pure data-plane engine; this module
//! supplies the two node types the E21 scaling experiment runs on it:
//!
//! * [`ShardSwitch`] — a switch whose forwarding is a real
//!   `zen-dataplane` pipeline, driven through `Datapath::process_batch`
//!   so a burst of frames arriving at one instant costs one cache probe
//!   per microflow group instead of one per packet.
//! * [`ShardTrafficHost`] — a seeded traffic source that bursts UDP
//!   flows at deterministic-random remote hosts every period.
//!
//! [`build_shard_fat_tree`] assembles a `k`-ary fat-tree out of them with
//! classic two-level prefix routing: edge switches hold host `/32`s and
//! ECMP-up defaults, aggregation switches hold intra-pod `/24`s and
//! ECMP-up defaults, core switches hold per-pod `/16`s. ECMP uses
//! `SELECT` groups keyed by the deterministic flow hash, so the path a
//! flow takes — and therefore every byte of the run — is independent of
//! the shard count.

use std::any::Any;
use std::sync::Arc;

use zen_dataplane::{
    Action, Bucket, Datapath, Effect, FlowMatch, FlowSpec, GroupDesc, GroupType, MissPolicy,
};
use zen_sim::topo::FatTreeIndex;
use zen_sim::{CounterId, Duration, LinkParams, NodeId, PortNo, ShardCtx, ShardNode, ShardedWorld};
use zen_wire::builder::PacketBuilder;
use zen_wire::{EthernetAddress, Ipv4Address, Ipv4Cidr};

/// A sharded-engine switch wrapping a real `zen-dataplane` pipeline.
///
/// Frames delivered in one batch go through `Datapath::process_batch`;
/// resulting `Output` effects are transmitted on the corresponding sim
/// ports (datapath port numbers are wired one-to-one to sim ports by the
/// fabric builder).
pub struct ShardSwitch {
    dp: Datapath,
    effects: Vec<Effect>,
    fwd: Option<CounterId>,
    /// Frames the pipeline punted at the controller (there is none in
    /// sharded mode, so a well-programmed fabric keeps this at zero).
    pub punts: u64,
}

impl ShardSwitch {
    /// Wrap a (typically still unprogrammed) datapath.
    pub fn new(dp: Datapath) -> ShardSwitch {
        ShardSwitch {
            dp,
            effects: Vec::new(),
            fwd: None,
            punts: 0,
        }
    }

    /// The embedded datapath.
    pub fn dp(&self) -> &Datapath {
        &self.dp
    }

    /// The embedded datapath, mutably (used by builders to program
    /// flows once port numbers are known).
    pub fn dp_mut(&mut self) -> &mut Datapath {
        &mut self.dp
    }

    fn process(&mut self, ctx: &mut ShardCtx<'_, '_>, batch: &[(PortNo, &[u8])]) {
        let mut effects = std::mem::take(&mut self.effects);
        effects.clear();
        self.dp
            .process_batch(ctx.now().as_nanos(), batch, &mut effects);
        let mut forwarded = 0u64;
        for effect in effects.drain(..) {
            match effect {
                Effect::Output { port, frame } => {
                    ctx.transmit(port, &frame);
                    forwarded += 1;
                }
                Effect::ToController { .. } => self.punts += 1,
            }
        }
        self.effects = effects;
        if forwarded > 0 {
            if let Some(id) = self.fwd {
                ctx.metrics().add(id, forwarded);
            }
        }
    }
}

impl ShardNode for ShardSwitch {
    fn on_start(&mut self, ctx: &mut ShardCtx<'_, '_>) {
        self.fwd = Some(ctx.metrics().register_counter("fabric.fwd_frames"));
    }

    fn on_packet(&mut self, ctx: &mut ShardCtx<'_, '_>, in_port: PortNo, frame: &[u8]) {
        self.process(ctx, &[(in_port, frame)]);
    }

    fn on_packet_batch(&mut self, ctx: &mut ShardCtx<'_, '_>, frames: &[(PortNo, Vec<u8>)]) {
        let batch: Vec<(PortNo, &[u8])> = frames.iter().map(|(p, f)| (*p, f.as_slice())).collect();
        self.process(ctx, &batch);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A periodic burst traffic source for the sharded fabric.
///
/// Every `period` the host picks a deterministic-random remote target and
/// a random source port (spreading flows across ECMP buckets), then
/// transmits `burst` identical UDP frames back-to-back — on instant links
/// they arrive as one batch and exercise the switches' batched fast path.
pub struct ShardTrafficHost {
    mac: EthernetAddress,
    ip: Ipv4Address,
    targets: Arc<Vec<(EthernetAddress, Ipv4Address)>>,
    period: Duration,
    burst: usize,
    /// Frames transmitted.
    pub tx: u64,
    /// Frames received.
    pub rx: u64,
    tx_id: Option<CounterId>,
    rx_id: Option<CounterId>,
}

impl ShardTrafficHost {
    /// A host at `(mac, ip)` bursting at the given cadence toward
    /// `targets` (its own address is skipped if picked; the list is
    /// shared so thousands of hosts don't each copy it).
    pub fn new(
        mac: EthernetAddress,
        ip: Ipv4Address,
        targets: Arc<Vec<(EthernetAddress, Ipv4Address)>>,
        period: Duration,
        burst: usize,
    ) -> ShardTrafficHost {
        ShardTrafficHost {
            mac,
            ip,
            targets,
            period,
            burst,
            tx: 0,
            rx: 0,
            tx_id: None,
            rx_id: None,
        }
    }
}

impl ShardNode for ShardTrafficHost {
    fn on_start(&mut self, ctx: &mut ShardCtx<'_, '_>) {
        self.tx_id = Some(ctx.metrics().register_counter("fabric.host_tx"));
        self.rx_id = Some(ctx.metrics().register_counter("fabric.host_rx"));
        let period = self.period;
        ctx.set_timer(period, 0);
    }

    fn on_timer(&mut self, ctx: &mut ShardCtx<'_, '_>, _token: u64) {
        if !self.targets.is_empty() && self.burst > 0 {
            let pick = ctx.rng().gen_index(self.targets.len());
            let (dst_mac, dst_ip) = self.targets[pick];
            if dst_ip != self.ip {
                let sport = 1024 + ctx.rng().gen_range(50_000) as u16;
                let frame = PacketBuilder::udp(
                    self.mac,
                    self.ip,
                    sport,
                    dst_mac,
                    dst_ip,
                    4791,
                    b"zen-e21-burst",
                );
                for _ in 0..self.burst {
                    ctx.transmit(1, &frame);
                }
                self.tx += self.burst as u64;
                if let Some(id) = self.tx_id {
                    ctx.metrics().add(id, self.burst as u64);
                }
            }
        }
        let period = self.period;
        ctx.set_timer(period, 0);
    }

    fn on_packet(&mut self, ctx: &mut ShardCtx<'_, '_>, _in_port: PortNo, _frame: &[u8]) {
        self.rx += 1;
        if let Some(id) = self.rx_id {
            ctx.metrics().incr(id);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Node ids and addressing of a built sharded fat-tree.
pub struct ShardFabric {
    /// Fat-tree arity.
    pub k: usize,
    /// Switch node ids, in [`FatTreeIndex`] order (edges, aggs, cores).
    pub switches: Vec<NodeId>,
    /// Host node ids, pod-major order.
    pub hosts: Vec<NodeId>,
    /// `(mac, ip)` per host, aligned with `hosts`.
    pub host_addrs: Vec<(EthernetAddress, Ipv4Address)>,
}

/// The IP plan: host `h` on edge `e` of pod `p` is `10.p.e.h+2`.
fn host_ip(pod: usize, edge: usize, h: usize) -> Ipv4Address {
    Ipv4Address::new(10, pod as u8, edge as u8, (h + 2) as u8)
}

/// Build a `k`-ary fat-tree of [`ShardSwitch`]es with `k/2` hosts per
/// edge switch and two-level prefix routing (see module docs). Every
/// fabric and host link must have positive latency; the smallest is the
/// engine's lookahead horizon.
pub fn build_shard_fat_tree(
    world: &mut ShardedWorld,
    k: usize,
    fabric_params: LinkParams,
    host_params: LinkParams,
    host_period: Duration,
    host_burst: usize,
) -> ShardFabric {
    assert!(k >= 2 && k.is_multiple_of(2), "fat-tree arity must be even");
    let half = k / 2;
    let idx = FatTreeIndex::new(k);
    let n_switches = idx.switch_count();

    // Addresses first, so every host can know every target at build time.
    let mut host_addrs = Vec::with_capacity(k * half * half);
    for pod in 0..k {
        for e in 0..half {
            for h in 0..half {
                let i = host_addrs.len() as u64;
                host_addrs.push((EthernetAddress::from_id(0x1_0000 + i), host_ip(pod, e, h)));
            }
        }
    }

    // Switches are added first so switch node ids equal FatTreeIndex
    // positions; hosts follow in pod-major order.
    let switches: Vec<NodeId> = (0..n_switches)
        .map(|i| {
            world.add_node(Box::new(ShardSwitch::new(Datapath::new(
                i as u64,
                1,
                MissPolicy::Drop,
            ))))
        })
        .collect();
    let shared_targets = Arc::new(host_addrs.clone());
    let hosts: Vec<NodeId> = host_addrs
        .iter()
        .map(|&(mac, ip)| {
            world.add_node(Box::new(ShardTrafficHost::new(
                mac,
                ip,
                Arc::clone(&shared_targets),
                host_period,
                host_burst,
            )))
        })
        .collect();

    // Wire everything, recording the sim-assigned port numbers so flows
    // can reference them.
    let mut edge_host: Vec<Vec<(usize, PortNo)>> = vec![Vec::new(); n_switches];
    let mut up_ports: Vec<Vec<PortNo>> = vec![Vec::new(); n_switches];
    let mut agg_down: Vec<Vec<(usize, PortNo)>> = vec![Vec::new(); n_switches];
    let mut core_down: Vec<Vec<(usize, PortNo)>> = vec![Vec::new(); n_switches];
    for pod in 0..k {
        for e in 0..half {
            let edge = idx.edge(pod, e);
            for a in 0..half {
                let agg = idx.agg(pod, a);
                let (_, pe, pa) = world.connect(switches[edge], switches[agg], fabric_params);
                up_ports[edge].push(pe);
                agg_down[agg].push((e, pa));
            }
            for h in 0..half {
                let host = hosts[(pod * half + e) * half + h];
                let (_, pe, _) = world.connect(switches[edge], host, host_params);
                edge_host[edge].push((h, pe));
            }
        }
        for a in 0..half {
            let agg = idx.agg(pod, a);
            for c in a * half..(a + 1) * half {
                let core = idx.core(c);
                let (_, pa, pc) = world.connect(switches[agg], switches[core], fabric_params);
                up_ports[agg].push(pa);
                core_down[core].push((pod, pc));
            }
        }
    }

    // Program the pipelines: register ports, install the prefix plan.
    let ecmp_up = 1u32;
    for pod in 0..k {
        for e in 0..half {
            let s = idx.edge(pod, e);
            let dp = world.node_as_mut::<ShardSwitch>(switches[s]).dp_mut();
            for &p in &up_ports[s] {
                dp.add_port(p);
            }
            for &(_, p) in &edge_host[s] {
                dp.add_port(p);
            }
            dp.groups.add(
                ecmp_up,
                GroupDesc {
                    group_type: GroupType::Select,
                    buckets: up_ports[s].iter().map(|&p| Bucket::output(p)).collect(),
                },
            );
            for &(h, p) in &edge_host[s] {
                let cidr = Ipv4Cidr::new(host_ip(pod, e, h), 32).expect("valid /32");
                dp.add_flow(
                    0,
                    FlowSpec::new(
                        100,
                        FlowMatch {
                            ipv4_dst: Some(cidr),
                            ..FlowMatch::ANY
                        },
                        vec![Action::Output(p)],
                    ),
                    0,
                );
            }
            dp.add_flow(
                0,
                FlowSpec::new(1, FlowMatch::ANY, vec![Action::Group(ecmp_up)]),
                0,
            );
        }
        for a in 0..half {
            let s = idx.agg(pod, a);
            let dp = world.node_as_mut::<ShardSwitch>(switches[s]).dp_mut();
            for &p in &up_ports[s] {
                dp.add_port(p);
            }
            for &(_, p) in &agg_down[s] {
                dp.add_port(p);
            }
            dp.groups.add(
                ecmp_up,
                GroupDesc {
                    group_type: GroupType::Select,
                    buckets: up_ports[s].iter().map(|&p| Bucket::output(p)).collect(),
                },
            );
            for &(e, p) in &agg_down[s] {
                let cidr = Ipv4Cidr::new(Ipv4Address::new(10, pod as u8, e as u8, 0), 24)
                    .expect("valid /24");
                dp.add_flow(
                    0,
                    FlowSpec::new(
                        50,
                        FlowMatch {
                            ipv4_dst: Some(cidr),
                            ..FlowMatch::ANY
                        },
                        vec![Action::Output(p)],
                    ),
                    0,
                );
            }
            dp.add_flow(
                0,
                FlowSpec::new(1, FlowMatch::ANY, vec![Action::Group(ecmp_up)]),
                0,
            );
        }
    }
    for c in 0..k * k / 4 {
        let s = idx.core(c);
        let dp = world.node_as_mut::<ShardSwitch>(switches[s]).dp_mut();
        for &(_, p) in &core_down[s] {
            dp.add_port(p);
        }
        for &(pod, p) in &core_down[s] {
            let cidr = Ipv4Cidr::new(Ipv4Address::new(10, pod as u8, 0, 0), 16).expect("valid /16");
            dp.add_flow(
                0,
                FlowSpec::new(
                    50,
                    FlowMatch {
                        ipv4_dst: Some(cidr),
                        ..FlowMatch::ANY
                    },
                    vec![Action::Output(p)],
                ),
                0,
            );
        }
    }

    ShardFabric {
        k,
        switches,
        hosts,
        host_addrs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zen_sim::Instant;

    fn run(k: usize, shards: usize) -> (u64, Vec<(String, u64)>, u64, u64) {
        let mut w = ShardedWorld::new(0xE21_5EED);
        let fabric = build_shard_fat_tree(
            &mut w,
            k,
            LinkParams::instant(Duration::from_micros(5)),
            LinkParams::instant(Duration::from_micros(2)),
            Duration::from_micros(100),
            4,
        );
        w.set_digest_enabled(true);
        w.run_until(Instant::from_millis(2), shards);
        let counters: Vec<(String, u64)> = w
            .metrics()
            .counters()
            .map(|(name, v)| (name.to_string(), v))
            .collect();
        let rx: u64 = fabric
            .hosts
            .iter()
            .map(|&id| w.node_as::<ShardTrafficHost>(id).rx)
            .sum();
        let punts: u64 = fabric
            .switches
            .iter()
            .map(|&id| w.node_as::<ShardSwitch>(id).punts)
            .sum();
        (w.digest().unwrap(), counters, rx, punts)
    }

    #[test]
    fn fat_tree_delivers_and_is_shard_count_independent() {
        let one = run(4, 1);
        let two = run(4, 2);
        let four = run(4, 4);
        assert_eq!(one, two);
        assert_eq!(one, four);
        let (digest, counters, rx, punts) = one;
        assert_ne!(digest, 0);
        assert_eq!(punts, 0, "fully-routed fabric never punts");
        assert!(rx > 500, "cross-fabric delivery too low: {rx}");
        let get = |name: &str| {
            counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| v)
                .unwrap_or(0)
        };
        // Every host burst is delivered somewhere: no route should drop
        // (queues are infinite on instant links, links never flap).
        assert_eq!(get("fabric.host_rx"), rx);
        assert_eq!(get("sim.drops_down"), 0);
        assert_eq!(get("sim.drops_queue"), 0);
        assert!(get("fabric.fwd_frames") >= rx, "hops at least deliveries");
    }

    #[test]
    fn ecmp_spreads_across_uplinks() {
        let mut w = ShardedWorld::new(42);
        let fabric = build_shard_fat_tree(
            &mut w,
            4,
            LinkParams::instant(Duration::from_micros(5)),
            LinkParams::instant(Duration::from_micros(2)),
            Duration::from_micros(50),
            2,
        );
        w.run_until(Instant::from_millis(2), 2);
        // Core switches only see cross-pod traffic that ECMP hashed onto
        // them; with many flows, every core should have forwarded some.
        let idle_cores = fabric
            .switches
            .iter()
            .skip(fabric.k * fabric.k)
            .filter(|&&id| {
                let dp = w.node_as::<ShardSwitch>(id).dp();
                dp.table(0).hits == 0
            })
            .count();
        assert_eq!(idle_cores, 0, "some cores never matched a frame");
    }
}
