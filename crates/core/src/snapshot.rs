//! End-of-run telemetry export: one deterministic JSON-lines document
//! capturing the world's metrics registry, the controller's counters,
//! the [`Monitor`] app's folded statistics, and the flight recorder's
//! trace ring.
//!
//! Determinism is the contract: two runs of the same seeded scenario
//! must produce byte-identical output (the CI gate diffs them), so
//! nothing wall-clock-derived is ever written and all collections are
//! iterated in key order.

use zen_sim::{NodeId, World};
use zen_telemetry::json::Line;

use crate::apps::Monitor;
use crate::controller::Controller;

/// Serialize the end-of-run state of `world` and its `controller` node
/// to JSON lines. Includes, in order: a `meta` line, every metric
/// (counters then histograms, name order), the controller's protocol
/// counters, the Monitor app's statistics if one is installed, and the
/// flight recorder's span profile and trace ring.
pub fn export_jsonl(world: &mut World, controller: NodeId) -> String {
    let mut out = String::new();
    Line::new("meta")
        .u64("now_nanos", world.now().as_nanos())
        .u64("events", world.events_processed())
        .finish(&mut out);
    world.metrics_mut().write_jsonl(&mut out);

    let ctl = world.node_as::<Controller>(controller);
    let s = &ctl.stats;
    Line::new("controller")
        .u64("packet_ins", s.packet_ins)
        .u64("lldp_ins", s.lldp_ins)
        .u64("flow_mods", s.flow_mods)
        .u64("group_mods", s.group_mods)
        .u64("packet_outs", s.packet_outs)
        .u64("msgs_sent", s.msgs_sent)
        .u64("msgs_received", s.msgs_received)
        .u64("decode_errors", s.decode_errors)
        .u64("mods_acked", s.mods_acked)
        .u64("mods_retransmitted", s.mods_retransmitted)
        .u64("mods_failed", s.mods_failed)
        .u64("table_full_errors", s.table_full_errors)
        .u64("evictions_noted", s.evictions_noted)
        .u64("quarantines", s.quarantines)
        .finish(&mut out);

    if let Some(mon) = ctl.find_app::<Monitor>() {
        Line::new("monitor")
            .u64("polls", mon.polls)
            .u64("replies", mon.replies)
            .u64("total_tx_bytes", mon.total_tx_bytes())
            .finish(&mut out);
        for (&(dpid, table_id), sample) in &mon.tables {
            Line::new("monitor_table")
                .u64("dpid", dpid)
                .u64("table", u64::from(table_id))
                .u64("active", u64::from(sample.active))
                .u64("max_entries", u64::from(sample.max_entries))
                .u64("hits", sample.hits)
                .u64("misses", sample.misses)
                .u64("evictions", sample.evictions)
                .u64("refusals", sample.refusals)
                .finish(&mut out);
        }
        for (&(dpid, cookie), sample) in &mon.flows {
            Line::new("monitor_flow")
                .u64("dpid", dpid)
                .u64("cookie", cookie)
                .u64("packets", sample.packets)
                .u64("bytes", sample.bytes)
                .finish(&mut out);
        }
        for (&dpid, rec) in &mon.caches {
            Line::new("monitor_cache")
                .u64("dpid", dpid)
                .u64("micro_hits", rec.micro_hits)
                .u64("mega_hits", rec.mega_hits)
                .u64("misses", rec.misses)
                .u64("entries", rec.entries)
                .finish(&mut out);
        }
    }

    world.recorder().write_jsonl(&mut out);
    out
}
