//! Fabric construction: wire a [`Topology`] into a world as SDN
//! switches plus a controller, and attach instrumented hosts.
//!
//! Used by the examples, the integration tests, and every end-to-end
//! benchmark, so they all build networks the same way.

use zen_dataplane::PortNo;
use zen_sim::{Duration, Host, LinkId, LinkParams, NodeId, Topology, World};
use zen_wire::{EthernetAddress, Ipv4Address};

use zen_cluster::{ClusterConfig, GossipMode};

use crate::agent::{AgentConfig, SwitchAgent};
use crate::app::App;
use crate::apps::proactive::StaticHost;
use crate::controller::{Controller, ControllerConfig};

/// Options for [`build_fabric`].
#[derive(Debug, Clone, Copy)]
pub struct FabricOptions {
    /// Pipeline tables per switch (TE needs ≥ 2).
    pub n_tables: usize,
    /// Out-of-band control channel latency.
    pub control_latency: Duration,
    /// Controller timer configuration.
    pub controller_cfg: ControllerConfig,
    /// Switch-agent keepalive/policy configuration.
    pub agent_cfg: AgentConfig,
    /// Link parameters for host attachment links.
    pub host_link: LinkParams,
    /// Number of controller replicas. The default of 1 builds the
    /// classic single-controller fabric; values above 1 require
    /// [`build_cluster_fabric`] / [`build_cluster_fabric_with_hosts`]
    /// (each replica needs its own app instances).
    pub n_controllers: usize,
    /// Mastership lease for multi-controller fabrics: a replica silent
    /// for this long is presumed dead and its switches taken over.
    pub cluster_lease: Duration,
    /// East-west anti-entropy strategy for multi-controller fabrics
    /// (digest exchange by default; suffix resend for comparison).
    pub cluster_gossip: GossipMode,
}

impl Default for FabricOptions {
    fn default() -> FabricOptions {
        FabricOptions {
            n_tables: 2,
            control_latency: Duration::from_micros(50),
            controller_cfg: ControllerConfig::default(),
            agent_cfg: AgentConfig::default(),
            host_link: LinkParams::default(),
            n_controllers: 1,
            cluster_lease: Duration::from_millis(300),
            cluster_gossip: GossipMode::Digest,
        }
    }
}

/// A constructed fabric: node ids and host addressing.
pub struct Fabric {
    /// The first (or only) controller node.
    pub controller: NodeId,
    /// Every controller replica, in replica-index order. Length 1 for
    /// single-controller fabrics; `controllers[0] == controller`.
    pub controllers: Vec<NodeId>,
    /// Switch agents, indexed by topology switch index (== dpid).
    pub switches: Vec<NodeId>,
    /// Host nodes, indexed like `topo.hosts`.
    pub hosts: Vec<NodeId>,
    /// Host MACs.
    pub host_macs: Vec<EthernetAddress>,
    /// Host IPs.
    pub host_ips: Vec<Ipv4Address>,
    /// (switch index, switch-side port) for each host attachment.
    pub host_attach: Vec<(usize, PortNo)>,
    /// Switch-to-switch link ids, parallel to `topo.links`.
    pub switch_links: Vec<LinkId>,
}

impl Fabric {
    /// The host inventory in the form proactive apps consume.
    pub fn static_hosts(&self) -> Vec<StaticHost> {
        (0..self.hosts.len())
            .map(|i| StaticHost {
                ip: self.host_ips[i],
                mac: self.host_macs[i],
                dpid: self.host_attach[i].0 as u64,
                port: self.host_attach[i].1,
            })
            .collect()
    }
}

/// The default host MAC for host index `i`.
pub fn default_host_mac(i: usize) -> EthernetAddress {
    EthernetAddress::from_id(0x50_0000 + i as u64)
}

/// The default host IP for host index `i`: `10.0.x.y`.
pub fn default_host_ip(i: usize) -> Ipv4Address {
    Ipv4Address::new(10, 0, (i / 250) as u8, (i % 250 + 1) as u8)
}

/// A per-site host IP: `10.<site>.0.<n+1>` — used by TE scenarios where
/// each switch is a "site" owning `10.<site>.0.0/16`.
pub fn site_host_ip(site: usize, n: usize) -> Ipv4Address {
    Ipv4Address::new(10, site as u8, (n / 250) as u8, (n % 250 + 1) as u8)
}

/// Build an SDN fabric over `topo` with default hosts (gratuitous-ARP
/// announcers with no workload). Returns the fabric handle.
pub fn build_fabric(
    world: &mut World,
    topo: &Topology,
    apps: Vec<Box<dyn App>>,
    opts: FabricOptions,
) -> Fabric {
    build_fabric_with_hosts(world, topo, apps, opts, |_i, mac, ip| {
        Host::new(mac, ip).with_gratuitous_arp()
    })
}

/// Build an SDN fabric with custom host construction (`host_fn`
/// receives the index and the default addressing and returns the host
/// node, typically adding workloads).
pub fn build_fabric_with_hosts(
    world: &mut World,
    topo: &Topology,
    apps: Vec<Box<dyn App>>,
    opts: FabricOptions,
    host_fn: impl FnMut(usize, EthernetAddress, Ipv4Address) -> Host,
) -> Fabric {
    assert!(
        opts.n_controllers <= 1,
        "multi-controller fabrics need per-replica app instances; \
         use build_cluster_fabric_with_hosts"
    );
    let mut apps = Some(apps);
    build_cluster_fabric_with_hosts(
        world,
        topo,
        |_i| apps.take().expect("single controller builds apps once"),
        opts,
        host_fn,
    )
}

/// Build an SDN fabric with `opts.n_controllers` controller replicas
/// and default hosts. `app_fn(i)` builds replica `i`'s app stack —
/// every replica must run the same apps for takeover to be seamless.
pub fn build_cluster_fabric(
    world: &mut World,
    topo: &Topology,
    app_fn: impl FnMut(usize) -> Vec<Box<dyn App>>,
    opts: FabricOptions,
) -> Fabric {
    build_cluster_fabric_with_hosts(world, topo, app_fn, opts, |_i, mac, ip| {
        Host::new(mac, ip).with_gratuitous_arp()
    })
}

/// Build an SDN fabric with `opts.n_controllers` controller replicas
/// and custom host construction. With one replica this is byte-for-byte
/// the classic fabric: a lone `Controller` with no cluster state and
/// single-homed agents. With more, every replica is wired into the
/// cluster, every agent is homed to all of them, and mastership is
/// negotiated at the features handshake.
pub fn build_cluster_fabric_with_hosts(
    world: &mut World,
    topo: &Topology,
    mut app_fn: impl FnMut(usize) -> Vec<Box<dyn App>>,
    opts: FabricOptions,
    mut host_fn: impl FnMut(usize, EthernetAddress, Ipv4Address) -> Host,
) -> Fabric {
    let n_controllers = opts.n_controllers.max(1);
    let controllers: Vec<NodeId> = (0..n_controllers)
        .map(|i| {
            world.add_node(Box::new(Controller::with_config(
                app_fn(i),
                opts.controller_cfg,
            )))
        })
        .collect();
    if n_controllers > 1 {
        for (i, &id) in controllers.iter().enumerate() {
            let mut cfg = ClusterConfig::new(controllers.clone(), i);
            cfg.lease_timeout = opts.cluster_lease;
            cfg.gossip = opts.cluster_gossip;
            world.node_as_mut::<Controller>(id).enable_cluster(cfg);
        }
    }
    let controller = controllers[0];
    world.set_control_latency(opts.control_latency);

    let switches: Vec<NodeId> = (0..topo.switches)
        .map(|i| {
            if n_controllers == 1 {
                world.add_node(Box::new(SwitchAgent::with_config(
                    i as u64,
                    opts.n_tables,
                    controller,
                    opts.agent_cfg,
                )))
            } else {
                world.add_node(Box::new(SwitchAgent::with_controllers(
                    i as u64,
                    opts.n_tables,
                    controllers.clone(),
                    opts.agent_cfg,
                )))
            }
        })
        .collect();

    let switch_links: Vec<LinkId> = topo
        .links
        .iter()
        .map(|l| world.connect(switches[l.a], switches[l.b], l.params).0)
        .collect();

    let mut hosts = Vec::new();
    let mut host_macs = Vec::new();
    let mut host_ips = Vec::new();
    let mut host_attach = Vec::new();
    for (i, &sw) in topo.hosts.iter().enumerate() {
        let mac = default_host_mac(i);
        let ip = default_host_ip(i);
        let host = host_fn(i, mac, ip);
        // The host may have chosen different addressing.
        let (mac, ip) = (host.mac(), host.ip());
        let node = world.add_node(Box::new(host));
        let (_, _, switch_port) = world.connect(node, switches[sw], opts.host_link);
        hosts.push(node);
        host_macs.push(mac);
        host_ips.push(ip);
        host_attach.push((sw, switch_port));
    }

    Fabric {
        controller,
        controllers,
        switches,
        hosts,
        host_macs,
        host_ips,
        host_attach,
        switch_links,
    }
}
