//! The platform-wide flow-policy register: every magic cookie and
//! eviction-importance value in one place, so the precedence ladder is
//! auditable at a glance instead of scattered across controller and
//! apps.
//!
//! **Importance ladder** (what a full table sheds first, lowest first):
//! reactive churn (0) < fabric infrastructure (100) < control-plane
//! self-defense push-backs (150) < operator ACLs (200).
//!
//! **Cookie register** (who owns which flows in dumps, FLOW_REMOVED
//! notices, shadow digests, and per-cookie deletes): each subsystem has
//! a distinct prefix byte pattern so a flow dump reads like a routing
//! table of responsibilities.

/// Cookie carried by push-back drop rules so they are recognizable in
/// flow dumps, FLOW_REMOVED notices, and per-cookie stats.
pub const PUSHBACK_COOKIE: u64 = 0xDEFE_2E00;

/// Priority of push-back drop rules: above every forwarding app (L2
/// learning and the reactive/proactive fabrics install below 100),
/// below explicit ACL denies (200) so operator policy still wins.
pub const PUSHBACK_PRIORITY: u16 = 190;

/// Eviction importance of push-back rules: a loaded table sheds churn
/// flows (importance 0) and even fabric rules (100) before it sheds
/// its own defenses, but operator ACLs (200) outrank them.
pub const PUSHBACK_IMPORTANCE: u16 = 150;

/// Cookie marking ACL flows.
pub const ACL_COOKIE: u64 = 0xac1c_0001;

/// Eviction importance of ACL deny rules: a security boundary outranks
/// everything else a table holds.
pub const ACL_IMPORTANCE: u16 = 200;

/// Cookie marking fabric flows.
pub const FABRIC_COOKIE: u64 = 0xfab0_0001;

/// Cookie marking fabric flows staged for an odd configuration epoch
/// (two-phase consistent updates alternate cookies by epoch parity so
/// the lame epoch can be garbage-collected by cookie).
pub const FABRIC_EPOCH_COOKIE: u64 = 0xfab0_0002;

/// Eviction importance of proactive fabric rules: standing
/// infrastructure outranks reactive churn under capacity pressure.
pub const FABRIC_IMPORTANCE: u16 = 100;

/// Cookie marking reactive-forwarding flows.
pub const REACTIVE_COOKIE: u64 = 0x5eac_0001;

/// Eviction importance of reactive microflows: pure churn, first to be
/// shed under table pressure (the implicit [`zen_dataplane::FlowSpec`]
/// default, named here so the ladder is complete).
pub const REACTIVE_IMPORTANCE: u16 = 0;

/// Cookie marking static TE flows (local delivery, own-site shortcut) —
/// never torn down by reconfiguration.
pub const TE_STATIC_COOKIE: u64 = 0x7e7e_0001;

/// Cookie for generation-0 tunnel state.
pub const TE_GEN0_COOKIE: u64 = 0x7e7e_0010;

/// Cookie for generation-1 tunnel state.
pub const TE_GEN1_COOKIE: u64 = 0x7e7e_0011;
