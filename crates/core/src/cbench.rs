//! cbench-style emulated switches for controller saturation testing.
//!
//! A [`CbenchSwitch`] is a [`Node`] that speaks just enough of the
//! control protocol to complete the handshake and then blast
//! PACKET_INs at a controller as fast as the configured mode allows —
//! the moral equivalent of the classic `cbench` tool, but inside the
//! deterministic simulator. It carries **no datapath**: FLOW_MODs are
//! acknowledged (via BARRIER_REPLY) and counted, never applied.
//!
//! Each steady-state punt carries a frame whose destination MAC the
//! controller's L2 learning app has already learned (a "primer" frame
//! teaches it at session start), so every PACKET_IN elicits exactly
//! one FLOW_MOD plus one PACKET_OUT — one *flow setup* in cbench
//! terminology. Source MACs cycle through a configurable pool, like
//! cbench's rotating host addresses.
//!
//! Two load modes mirror cbench's:
//!
//! * **Closed loop** (`cbench -l`-ish): keep `outstanding` punts in
//!   flight; each completed setup immediately triggers the next punt.
//!   Measures sustainable setup throughput and per-setup latency.
//! * **Open loop** (`cbench -t`-ish): punt on a fixed timer regardless
//!   of completions. Measures behaviour under a fixed offered rate.
//!
//! The switch records two latency series per setup. **Simulated-time**
//! latency is a pure function of the world seed and is safe to fold
//! into determinism digests. **Wall-clock** latency measures the real
//! CPU cost of the controller stack (decode, dispatch, app, encode)
//! between punt and FLOW_MOD; it is *not* deterministic and must stay
//! out of replay comparisons — it exists for the E17 saturation
//! numbers.

use std::collections::VecDeque;

use zen_dataplane::PortNo;
use zen_proto::{decode_view, encode, Message, MessageView, PortDesc};
use zen_sim::{Context, Duration, Instant, Node, NodeId};
use zen_wire::builder::PacketBuilder;
use zen_wire::{EthernetAddress, Ipv4Address};

/// Timer token used by open-loop punting.
const PUNT_TIMER: u64 = 0x9bec;

/// Ingress port claimed by steady-state punts.
const PUNT_PORT: PortNo = 1;

/// Port the learned destination MAC "lives" on (primer ingress).
const TARGET_PORT: PortNo = 2;

/// Load-generation mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CbenchMode {
    /// Keep `outstanding` punts in flight; refill on each FLOW_MOD.
    Closed {
        /// Punts kept in flight per switch.
        outstanding: usize,
    },
    /// Punt once per `interval`, independent of completions.
    Open {
        /// Inter-punt interval.
        interval: Duration,
    },
}

/// Configuration for a [`CbenchSwitch`].
#[derive(Debug, Clone, Copy)]
pub struct CbenchConfig {
    /// Load-generation mode.
    pub mode: CbenchMode,
    /// Distinct source MACs cycled through (cbench's `--macs`).
    pub sources: usize,
    /// UDP payload bytes per punted frame.
    pub payload_len: usize,
    /// Most punts allowed to await their FLOW_MOD at once. In open-loop
    /// mode against a controller that falls behind — or one that sheds
    /// punts by design (admission control) — the FIFO would otherwise
    /// grow without bound and pair shed punts' timestamps with later
    /// FLOW_MODs, poisoning the latency series. Overflow evicts the
    /// oldest punt and counts it in [`CbenchStats::setups_lost`].
    pub in_flight_cap: usize,
}

impl Default for CbenchConfig {
    fn default() -> CbenchConfig {
        CbenchConfig {
            mode: CbenchMode::Closed { outstanding: 8 },
            sources: 64,
            payload_len: 64,
            in_flight_cap: 4096,
        }
    }
}

/// Deterministic outcome counters — everything here is a pure function
/// of the world seed and safe to assert on in replay tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CbenchStats {
    /// Steady-state PACKET_INs sent.
    pub punts_sent: u64,
    /// FLOW_MODs received (= completed flow setups).
    pub flow_mods: u64,
    /// Non-LLDP PACKET_OUTs received (punt releases and floods).
    pub packet_outs: u64,
    /// LLDP discovery PACKET_OUTs received (ignored, counted).
    pub lldp_outs: u64,
    /// BARRIER_REQUESTs acknowledged.
    pub barriers: u64,
    /// ECHO_REQUESTs answered.
    pub echoes: u64,
    /// Messages that failed to decode (always 0 on a healthy channel).
    pub decode_errors: u64,
    /// Punts whose FLOW_MOD never arrived before
    /// [`CbenchConfig::in_flight_cap`] later punts were sent — shed by
    /// controller admission control or left behind by a saturated
    /// controller. Their ages are excluded from both latency series so
    /// defended runs report honest percentiles.
    pub setups_lost: u64,
}

/// An emulated switch that floods a controller with PACKET_INs.
pub struct CbenchSwitch {
    dpid: u64,
    controller: NodeId,
    cfg: CbenchConfig,
    /// Pre-built punt frames, source MAC cycling per punt.
    frames: Vec<Vec<u8>>,
    /// Frame from the target MAC (broadcast dst): teaches the L2 app
    /// where the steady-state destination lives, eliciting a flood
    /// rather than an install.
    primer: Vec<u8>,
    next_frame: usize,
    session_up: bool,
    xid: u32,
    /// Punt timestamps awaiting their FLOW_MOD, in send order. The
    /// control channel is FIFO per (src, dst), so completions pair
    /// with the oldest outstanding punt.
    in_flight: VecDeque<(Instant, std::time::Instant)>,
    /// Deterministic counters.
    pub stats: CbenchStats,
    /// Simulated punt→FLOW_MOD latency per setup, nanoseconds.
    /// Deterministic; digestible.
    pub sim_setup_ns: Vec<u64>,
    /// Wall-clock punt→FLOW_MOD latency per setup, nanoseconds.
    /// NOT deterministic; reporting only.
    pub wall_setup_ns: Vec<u64>,
}

impl CbenchSwitch {
    /// An emulated switch with datapath id `dpid` homed to
    /// `controller`.
    pub fn new(dpid: u64, controller: NodeId, cfg: CbenchConfig) -> CbenchSwitch {
        let target_mac = EthernetAddress::from_id(0x61_0000 + dpid);
        let target_ip = Ipv4Address::new(10, 200, (dpid % 250) as u8, 1);
        let payload = vec![0u8; cfg.payload_len];
        let frames = (0..cfg.sources.max(1))
            .map(|i| {
                PacketBuilder::udp(
                    EthernetAddress::from_id(0x60_0000 + (dpid << 8) + i as u64),
                    Ipv4Address::new(10, 100, (dpid % 250) as u8, (i % 250 + 1) as u8),
                    1024 + i as u16,
                    target_mac,
                    target_ip,
                    53,
                    &payload,
                )
            })
            .collect();
        let primer = PacketBuilder::udp(
            target_mac,
            target_ip,
            53,
            EthernetAddress::BROADCAST,
            Ipv4Address::BROADCAST,
            67,
            &payload,
        );
        CbenchSwitch {
            dpid,
            controller,
            cfg,
            frames,
            primer,
            next_frame: 0,
            session_up: false,
            xid: 0,
            in_flight: VecDeque::new(),
            stats: CbenchStats::default(),
            sim_setup_ns: Vec::new(),
            wall_setup_ns: Vec::new(),
        }
    }

    fn send(&mut self, ctx: &mut Context<'_>, msg: &Message) {
        self.xid = self.xid.wrapping_add(1);
        ctx.send_control(self.controller, encode(msg, self.xid));
    }

    /// Answer a request, echoing its xid (the controller correlates
    /// BARRIER_REPLYs and friends by transaction id).
    fn reply(&mut self, ctx: &mut Context<'_>, msg: &Message, xid: u32) {
        ctx.send_control(self.controller, encode(msg, xid));
    }

    /// Send one steady-state PACKET_IN and start its latency clock.
    fn punt(&mut self, ctx: &mut Context<'_>) {
        let frame = self.frames[self.next_frame].clone();
        self.next_frame = (self.next_frame + 1) % self.frames.len();
        self.stats.punts_sent += 1;
        self.in_flight
            .push_back((ctx.now(), std::time::Instant::now()));
        if self.in_flight.len() > self.cfg.in_flight_cap.max(1) {
            // The oldest punt's FLOW_MOD evidently isn't coming: count
            // it as a lost setup instead of letting FIFO pairing hand
            // its age to a later completion.
            self.in_flight.pop_front();
            self.stats.setups_lost += 1;
        }
        self.send(
            ctx,
            &Message::PacketIn {
                in_port: PUNT_PORT,
                table_id: 0,
                is_miss: true,
                frame,
            },
        );
    }

    fn handle(&mut self, ctx: &mut Context<'_>, msg: Message, xid: u32) {
        match msg {
            Message::FeaturesRequest => {
                self.reply(
                    ctx,
                    &Message::FeaturesReply {
                        dpid: self.dpid,
                        n_tables: 1,
                        ports: vec![
                            PortDesc {
                                port_no: PUNT_PORT,
                                up: true,
                            },
                            PortDesc {
                                port_no: TARGET_PORT,
                                up: true,
                            },
                        ],
                    },
                    xid,
                );
                if !self.session_up {
                    self.session_up = true;
                    // Teach the L2 app where the target MAC lives,
                    // then open the firehose.
                    let primer = self.primer.clone();
                    self.send(
                        ctx,
                        &Message::PacketIn {
                            in_port: TARGET_PORT,
                            table_id: 0,
                            is_miss: true,
                            frame: primer,
                        },
                    );
                    match self.cfg.mode {
                        CbenchMode::Closed { outstanding } => {
                            for _ in 0..outstanding.max(1) {
                                self.punt(ctx);
                            }
                        }
                        CbenchMode::Open { interval } => {
                            ctx.set_timer(interval, PUNT_TIMER);
                        }
                    }
                }
            }
            Message::EchoRequest { token } => {
                self.stats.echoes += 1;
                self.reply(ctx, &Message::EchoReply { token }, xid);
            }
            Message::BarrierRequest { xids } => {
                self.stats.barriers += 1;
                // No datapath: everything the wire delivered "applied".
                self.reply(ctx, &Message::BarrierReply { applied: xids }, xid);
            }
            Message::FlowMod { .. } => {
                self.stats.flow_mods += 1;
                if let Some((sim_at, wall_at)) = self.in_flight.pop_front() {
                    self.sim_setup_ns
                        .push(ctx.now().duration_since(sim_at).as_nanos());
                    self.wall_setup_ns
                        .push(wall_at.elapsed().as_nanos().min(u64::MAX as u128) as u64);
                }
                if let CbenchMode::Closed { .. } = self.cfg.mode {
                    self.punt(ctx);
                }
            }
            Message::PacketOut { frame, .. } => {
                // Distinguish discovery probes from punt releases by
                // ethertype (LLDP = 0x88cc).
                if frame.len() >= 14 && frame[12..14] == [0x88, 0xcc] {
                    self.stats.lldp_outs += 1;
                } else {
                    self.stats.packet_outs += 1;
                }
            }
            Message::ResyncRequest => {
                let generation = self.stats.flow_mods;
                self.reply(
                    ctx,
                    &Message::HelloResync {
                        generation,
                        cookies: Vec::new(),
                    },
                    xid,
                );
            }
            Message::RoleRequest {
                role,
                term,
                replica,
            } => {
                // Single upstream: grant whatever is claimed.
                self.reply(
                    ctx,
                    &Message::RoleReply {
                        role,
                        term,
                        replica,
                    },
                    xid,
                );
            }
            _ => {}
        }
    }
}

impl Node for CbenchSwitch {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.send(
            ctx,
            &Message::Hello {
                version: zen_proto::VERSION,
            },
        );
    }

    fn on_packet(&mut self, _ctx: &mut Context<'_>, _port: PortNo, _frame: &[u8]) {}

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        if token == PUNT_TIMER && self.session_up {
            if let CbenchMode::Open { interval } = self.cfg.mode {
                self.punt(ctx);
                ctx.set_timer(interval, PUNT_TIMER);
            }
        }
    }

    fn on_control(&mut self, ctx: &mut Context<'_>, _from: NodeId, bytes: &[u8]) {
        let mut at = 0;
        while at < bytes.len() {
            match decode_view(&bytes[at..]) {
                Ok((view, xid, consumed)) => {
                    at += consumed;
                    match view {
                        // Hot path: classify the frame straight out of
                        // the receive buffer.
                        MessageView::PacketOut { frame, .. } => {
                            if frame.len() >= 14 && frame[12..14] == [0x88, 0xcc] {
                                self.stats.lldp_outs += 1;
                            } else {
                                self.stats.packet_outs += 1;
                            }
                        }
                        other => self.handle(ctx, other.into_message(), xid),
                    }
                }
                Err(_) => {
                    self.stats.decode_errors += 1;
                    break;
                }
            }
        }
    }
}
