//! The switch agent: a simulator node that embeds a [`Datapath`] and
//! speaks `zen-proto` to the controller.
//!
//! This is the software running *on* the switch in a deployed SDN — the
//! part of Open vSwitch that terminates the OpenFlow session: it
//! registers local ports, punts table misses as PACKET_IN, applies
//! FLOW_MOD / GROUP_MOD / METER_MOD, executes PACKET_OUT, answers
//! BARRIER and STATS, and reports PORT_STATUS and FLOW_REMOVED.

use std::any::Any;

use zen_dataplane::{AddOutcome, Datapath, DatapathId, Effect, MissPolicy, OverflowPolicy, PortNo};
use zen_proto::{
    decode_view, encode, ErrorCode, FlowModCmd, GroupModCmd, Message, MessageView, MeterModCmd,
    PortDesc, Role, StatsBody, StatsKind,
};
use zen_sim::{Context, Duration, Node, NodeId};
use zen_telemetry::{trace_id_for_frame, TraceEvent};

const TIMER_EXPIRE: u64 = 1;
const TIMER_ECHO: u64 = 2;

/// What the agent does with table-miss traffic while it believes the
/// controller is unreachable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConnLossPolicy {
    /// Keep installed flows and flood unmatched edge traffic out every
    /// up port — the switch degrades to a learning-less hub rather than
    /// a black hole (OpenFlow's fail-standalone mode).
    #[default]
    FailStandalone,
    /// Keep installed flows but drop table-miss packets — no traffic
    /// moves without controller say-so (fail-secure mode).
    FailSecure,
}

/// The agent's view of its control session, driven by echo keepalives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConnState {
    /// Replies arriving normally.
    #[default]
    Connected,
    /// At least one probe outstanding past its interval.
    Degraded,
    /// `miss_limit` consecutive probes unanswered; the conn-loss policy
    /// governs miss traffic until the controller is heard from again.
    Disconnected,
}

/// Tunables for the switch agent.
#[derive(Debug, Clone, Copy)]
pub struct AgentConfig {
    /// How often to scan tables for idle/hard timeouts.
    pub expire_interval: Duration,
    /// Keepalive probe interval.
    pub echo_interval: Duration,
    /// Consecutive unanswered probes before `Disconnected`.
    pub miss_limit: u32,
    /// Behaviour for miss traffic while disconnected.
    pub policy: ConnLossPolicy,
    /// Capacity bound applied to every flow table at construction, with
    /// the overflow policy a full table follows. `None` = unbounded
    /// (the classic behaviour).
    pub table_limit: Option<(usize, OverflowPolicy)>,
    /// Punt-path self-defense: a token bucket on PACKET_INs toward the
    /// master. Punts over the budget are shed *at the switch* — they
    /// never cross the control channel, so a local PACKET_IN storm
    /// cannot monopolize the controller. `None` = unmetered (the
    /// classic behaviour).
    pub punt_meter: Option<PuntMeterConfig>,
}

/// Budget for the agent's punt-path meter ([`AgentConfig::punt_meter`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PuntMeterConfig {
    /// Sustained PACKET_INs per second toward the master.
    pub rate_pps: u64,
    /// Burst allowance, in PACKET_INs.
    pub burst: u64,
}

impl Default for AgentConfig {
    fn default() -> AgentConfig {
        AgentConfig {
            expire_interval: Duration::from_millis(10),
            echo_interval: Duration::from_millis(50),
            miss_limit: 4,
            policy: ConnLossPolicy::FailStandalone,
            table_limit: None,
            punt_meter: None,
        }
    }
}

/// Agent counters, read by experiments.
#[derive(Debug, Default, Clone, Copy)]
pub struct AgentStats {
    /// PACKET_INs sent to the controller.
    pub packet_ins: u64,
    /// FLOW_MODs applied.
    pub flow_mods: u64,
    /// PACKET_OUTs executed.
    pub packet_outs: u64,
    /// Protocol decode errors.
    pub decode_errors: u64,
    /// ECHO_REQUESTs sent to the controller (liveness probes).
    pub echo_sent: u64,
    /// ECHO_REPLYs received from the controller.
    pub echo_replies: u64,
    /// Miss packets flooded while disconnected (fail-standalone).
    pub standalone_floods: u64,
    /// Punted packets dropped while disconnected.
    pub disconnected_drops: u64,
    /// Transitions out of `Disconnected` (each sends a HELLO_RESYNC).
    pub reconnects: u64,
    /// State mods rejected because the sending connection did not hold
    /// the Master role (each answered with a NOT_MASTER error frame).
    pub nonmaster_rejected: u64,
    /// Flow adds bounced with a TABLE_FULL error frame (refuse policy).
    pub table_full_rejected: u64,
    /// Capacity evictions reported to the master as
    /// `FlowRemoved { reason: Eviction }` (evict policy).
    pub evictions_reported: u64,
    /// PACKET_INs shed at the agent's punt-path meter before
    /// transmission ([`AgentConfig::punt_meter`]).
    pub punts_metered: u64,
}

/// One control connection of a (possibly multi-homed) agent.
#[derive(Debug, Clone, Copy)]
struct Conn {
    node: NodeId,
    state: ConnState,
    /// Probes sent on this connection since it was last heard from.
    outstanding: u32,
    role: Role,
}

impl Conn {
    fn new(node: NodeId, role: Role) -> Conn {
        Conn {
            node,
            state: ConnState::Connected,
            outstanding: 0,
            role,
        }
    }
}

/// The switch-side control agent.
///
/// An agent holds one control connection per controller replica. In the
/// single-controller configuration ([`SwitchAgent::new`] /
/// [`SwitchAgent::with_config`]) that sole connection is born holding
/// the Master role and behaviour is exactly the classic one. With
/// [`SwitchAgent::with_controllers`] every connection starts as Equal
/// and mastership is granted through OpenFlow-style ROLE_REQUESTs: a
/// Master claim carries a `(term, replica)` pair and wins only if it is
/// lexicographically `>=` the highest claim granted so far — the
/// monotonic floor that keeps a partitioned stale master from clawing
/// the switch back after the majority side has moved on.
pub struct SwitchAgent {
    /// The embedded forwarding plane.
    pub dp: Datapath,
    cfg: AgentConfig,
    /// Control connections, one per controller replica.
    conns: Vec<Conn>,
    /// Index into `conns` of the current master, if any.
    master: Option<usize>,
    /// Highest `(term, replica)` Master claim ever granted — the floor
    /// new claims must meet. Survives the master role being vacated so
    /// a stale claim cannot regress mastership.
    master_claim: (u64, u32),
    /// Monotonic count of state-mutating mods applied (flow/group/meter).
    generation: u64,
    /// Xids of recently applied state mods, answered back in
    /// BARRIER_REPLYs so the controller learns which mods survived the
    /// channel (bounded; xids are monotonic, so the smallest are oldest).
    applied_xids: std::collections::BTreeSet<u32>,
    echo_token: u64,
    xid: u32,
    /// Token bucket gating PACKET_INs, when configured.
    punt_meter: Option<zen_dataplane::Meter>,
    /// Cached metric handle for `defense.agent_punts_shed`.
    punt_shed_cid: Option<zen_sim::CounterId>,
    /// Counters.
    pub stats: AgentStats,
}

impl SwitchAgent {
    /// An agent for a switch with `dpid`, `n_tables` tables, punting
    /// misses (truncated to 2 KiB) to `controller`.
    pub fn new(dpid: DatapathId, n_tables: usize, controller: NodeId) -> SwitchAgent {
        SwitchAgent::with_config(dpid, n_tables, controller, AgentConfig::default())
    }

    /// As [`SwitchAgent::new`], with explicit tunables. The single
    /// connection is born Master, so no role negotiation is needed and
    /// behaviour matches the classic single-controller agent exactly.
    pub fn with_config(
        dpid: DatapathId,
        n_tables: usize,
        controller: NodeId,
        cfg: AgentConfig,
    ) -> SwitchAgent {
        let mut agent = SwitchAgent::with_controllers(dpid, n_tables, vec![controller], cfg);
        agent.conns[0].role = Role::Master;
        agent.master = Some(0);
        agent
    }

    /// A multi-homed agent holding one connection per controller
    /// replica. All connections start Equal with no master; the cluster
    /// elects one via ROLE_REQUEST after the features handshake.
    pub fn with_controllers(
        dpid: DatapathId,
        n_tables: usize,
        controllers: Vec<NodeId>,
        cfg: AgentConfig,
    ) -> SwitchAgent {
        assert!(
            !controllers.is_empty(),
            "agent needs at least one controller"
        );
        let mut dp = Datapath::new(dpid, n_tables, MissPolicy::ToController { max_len: 2048 });
        if let Some((max_entries, policy)) = cfg.table_limit {
            for tid in 0..n_tables as u8 {
                dp.set_table_limit(tid, max_entries, policy);
            }
        }
        SwitchAgent {
            dp,
            cfg,
            conns: controllers
                .into_iter()
                .map(|n| Conn::new(n, Role::Equal))
                .collect(),
            master: None,
            master_claim: (0, 0),
            generation: 0,
            applied_xids: std::collections::BTreeSet::new(),
            echo_token: 0,
            xid: 1,
            punt_meter: cfg
                .punt_meter
                .map(|m| zen_dataplane::Meter::per_packet(m.rate_pps, m.burst)),
            punt_shed_cid: None,
            stats: AgentStats::default(),
        }
    }

    /// The agent's view of its primary control session: the master
    /// connection when one exists, the first connection otherwise.
    pub fn conn_state(&self) -> ConnState {
        self.conns[self.master.unwrap_or(0)].state
    }

    /// The controller node currently holding the Master role, if any.
    pub fn master_node(&self) -> Option<NodeId> {
        self.master.map(|mi| self.conns[mi].node)
    }

    /// The highest `(term, replica)` Master claim granted so far.
    pub fn master_claim(&self) -> (u64, u32) {
        self.master_claim
    }

    /// The state-mutation generation (see [`Message::HelloResync`]).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Remember a state mod's xid for barrier acknowledgement, bounding
    /// the memory (monotonic xids make the smallest entries the oldest).
    fn note_applied(&mut self, xid: u32) {
        self.applied_xids.insert(xid);
        while self.applied_xids.len() > 4096 {
            self.applied_xids.pop_first();
        }
    }

    /// Per-cookie installed flow-entry counts across all tables,
    /// ascending by cookie — the digest reported in HELLO_RESYNC.
    pub fn flow_digest(&self) -> Vec<zen_proto::CookieCount> {
        let mut counts = std::collections::BTreeMap::new();
        for tid in 0..self.dp.table_count() as u8 {
            for entry in self.dp.table(tid).entries() {
                *counts.entry(entry.spec.cookie).or_insert(0u32) += 1;
            }
        }
        counts
            .into_iter()
            .map(|(cookie, count)| zen_proto::CookieCount { cookie, count })
            .collect()
    }

    fn send_resync(&mut self, ctx: &mut Context<'_>, ci: usize) {
        let msg = Message::HelloResync {
            generation: self.generation,
            cookies: self.flow_digest(),
        };
        self.send_to(ctx, ci, &msg);
    }

    /// Any message from a controller proves that channel works: clear
    /// its outstanding-probe count and, when coming back from
    /// `Disconnected`, start the resync handshake on that connection.
    fn note_controller_alive(&mut self, ctx: &mut Context<'_>, ci: usize) {
        self.conns[ci].outstanding = 0;
        if self.conns[ci].state == ConnState::Disconnected {
            self.stats.reconnects += 1;
            self.send_resync(ctx, ci);
        }
        self.conns[ci].state = ConnState::Connected;
    }

    /// Send on one connection with a fresh xid.
    fn send_to(&mut self, ctx: &mut Context<'_>, ci: usize, msg: &Message) {
        let xid = self.xid;
        self.xid += 1;
        ctx.send_control(self.conns[ci].node, encode(msg, xid));
    }

    /// Send to the master connection, if one is assigned. Asynchronous
    /// switch-originated reports (FLOW_REMOVED) go here; with no master
    /// assigned they are dropped — the incoming master's resync digest
    /// will reconcile the difference.
    fn send_master(&mut self, ctx: &mut Context<'_>, msg: &Message) {
        if let Some(mi) = self.master {
            self.send_to(ctx, mi, msg);
        }
    }

    /// Broadcast to every connection (HELLO, PORT_STATUS): topology
    /// events must reach standby replicas too, or their replicated view
    /// would go stale the moment they take over.
    fn send_all(&mut self, ctx: &mut Context<'_>, msg: &Message) {
        for ci in 0..self.conns.len() {
            self.send_to(ctx, ci, msg);
        }
    }

    /// Reply on the connection the request arrived on, echoing its xid.
    fn reply(&mut self, ctx: &mut Context<'_>, ci: usize, msg: &Message, xid: u32) {
        ctx.send_control(self.conns[ci].node, encode(msg, xid));
    }

    fn port_descs(&self, ctx: &Context<'_>) -> Vec<PortDesc> {
        ctx.ports()
            .into_iter()
            .map(|p| PortDesc {
                port_no: p,
                up: ctx.port_up(p),
            })
            .collect()
    }

    fn run_effects(&mut self, ctx: &mut Context<'_>, effects: Vec<Effect>) {
        for effect in effects {
            match effect {
                Effect::Output { port, frame } => {
                    if self.dp.port_up(port) {
                        ctx.transmit(port, frame);
                    }
                }
                Effect::ToController {
                    reason,
                    in_port,
                    frame,
                    table_id,
                } => {
                    let is_miss = reason == zen_dataplane::datapath::PacketInReason::NoMatch;
                    // Punts go to the master only. A usable master is
                    // one that is assigned and not judged Disconnected.
                    let usable_master = self
                        .master
                        .filter(|&mi| self.conns[mi].state != ConnState::Disconnected);
                    if usable_master.is_none() {
                        // Single-controller agents honour the conn-loss
                        // policy as before. Multi-homed agents always
                        // drop (fail-secure): flooding during a
                        // mastership gap would hand standby replicas
                        // LLDP and host frames out of order and corrupt
                        // their replicated view.
                        if is_miss
                            && self.conns.len() == 1
                            && self.cfg.policy == ConnLossPolicy::FailStandalone
                        {
                            self.stats.standalone_floods += 1;
                            for port in ctx.ports() {
                                if port != in_port && ctx.port_up(port) && self.dp.port_up(port) {
                                    ctx.transmit(port, frame.clone());
                                }
                            }
                        } else {
                            self.stats.disconnected_drops += 1;
                        }
                        continue;
                    }
                    if let Some(meter) = self.punt_meter.as_mut() {
                        if !meter.allow_one(ctx.now().as_nanos()) {
                            // Over the punt budget: shed locally. The
                            // frame was already forwarded/dropped by the
                            // datapath's miss policy; only the
                            // controller notification is suppressed.
                            self.stats.punts_metered += 1;
                            let cid = *self.punt_shed_cid.get_or_insert_with(|| {
                                ctx.metrics().register_counter("defense.agent_punts_shed")
                            });
                            ctx.metrics().incr(cid);
                            let rec = ctx.recorder();
                            if rec.is_enabled() {
                                if let Some(tid) = trace_id_for_frame(&frame) {
                                    rec.record(
                                        ctx.now().as_nanos(),
                                        tid,
                                        TraceEvent::PuntShed {
                                            dpid: self.dp.dpid,
                                            at_agent: true,
                                        },
                                    );
                                }
                            }
                            continue;
                        }
                    }
                    self.stats.packet_ins += 1;
                    {
                        let rec = ctx.recorder();
                        if rec.is_enabled() {
                            if let Some(tid) = trace_id_for_frame(&frame) {
                                rec.record(
                                    ctx.now().as_nanos(),
                                    tid,
                                    TraceEvent::Punt {
                                        dpid: self.dp.dpid,
                                        table_id,
                                    },
                                );
                            }
                        }
                    }
                    let msg = Message::PacketIn {
                        in_port,
                        table_id,
                        is_miss,
                        frame,
                    };
                    self.send_master(ctx, &msg);
                }
            }
        }
    }

    fn handle_message(&mut self, ctx: &mut Context<'_>, ci: usize, msg: Message, xid: u32) {
        let now = ctx.now().as_nanos();
        // State mods are a Master-only privilege. A replica that lost
        // mastership mid-flight (its RoleReply may still be in the air)
        // gets an explicit NOT_MASTER error carrying the rejected xid,
        // so it can either re-assert its claim or retire the mod —
        // silence would leave it retransmitting forever.
        if matches!(
            msg,
            Message::FlowMod { .. } | Message::GroupMod { .. } | Message::MeterMod { .. }
        ) && self.conns[ci].role != Role::Master
        {
            self.stats.nonmaster_rejected += 1;
            let counter = ctx
                .metrics()
                .register_counter("fault.nonmaster_mod_rejected");
            ctx.metrics().incr(counter);
            let err = Message::Error {
                code: ErrorCode::NotMaster,
                data: xid.to_be_bytes().to_vec(),
            };
            self.reply(ctx, ci, &err, xid);
            return;
        }
        match msg {
            Message::Hello { .. } => {
                // Each side sends HELLO exactly once (ours went out at
                // start); answering here would ping-pong forever.
            }
            Message::RoleRequest {
                role,
                term,
                replica,
            } => {
                let granted = match role {
                    Role::Master => {
                        let claim = (term, replica);
                        if claim >= self.master_claim {
                            if let Some(old) = self.master {
                                if old != ci {
                                    self.conns[old].role = Role::Equal;
                                }
                            }
                            self.master = Some(ci);
                            self.master_claim = claim;
                            self.conns[ci].role = Role::Master;
                            Role::Master
                        } else {
                            // Stale claim: the floor stands. Reply with
                            // the winning claim so the loser knows whom
                            // to defer to.
                            self.conns[ci].role
                        }
                    }
                    other => {
                        // Voluntary step-down (Equal) or standby
                        // (Slave). The claim floor survives so the
                        // vacated mastership cannot be re-taken by a
                        // claim older than the one that vacated it.
                        self.conns[ci].role = other;
                        if self.master == Some(ci) {
                            self.master = None;
                        }
                        other
                    }
                };
                let reply = Message::RoleReply {
                    role: granted,
                    term: self.master_claim.0,
                    replica: self.master_claim.1,
                };
                self.reply(ctx, ci, &reply, xid);
            }
            Message::EchoRequest { token } => {
                self.reply(ctx, ci, &Message::EchoReply { token }, xid);
            }
            Message::EchoReply { .. } => {
                self.stats.echo_replies += 1;
            }
            Message::FeaturesRequest => {
                let reply = Message::FeaturesReply {
                    dpid: self.dp.dpid,
                    n_tables: self.dp.table_count() as u8,
                    ports: self.port_descs(ctx),
                };
                self.reply(ctx, ci, &reply, xid);
            }
            Message::PacketOut {
                in_port,
                actions,
                frame,
            } => {
                self.stats.packet_outs += 1;
                let effects = self.dp.inject(now, in_port, &actions, &frame);
                self.run_effects(ctx, effects);
            }
            Message::FlowMod { table_id, cmd } => {
                if usize::from(table_id) >= self.dp.table_count()
                    && !matches!(cmd, FlowModCmd::DeleteByCookie { .. })
                {
                    let err = Message::Error {
                        code: ErrorCode::BadRequest,
                        data: vec![table_id],
                    };
                    self.reply(ctx, ci, &err, xid);
                    return;
                }
                // Adds are attempted *before* the applied bookkeeping: a
                // table-full refusal must not enter `applied_xids` (or a
                // later barrier would ack a mod that never took effect)
                // and must not bump the state generation.
                if let FlowModCmd::Add(spec) = cmd {
                    match self.dp.add_flow(table_id, spec, now) {
                        AddOutcome::Refused => {
                            self.stats.table_full_rejected += 1;
                            let counter = ctx
                                .metrics()
                                .register_counter("pressure.table_full_rejected");
                            ctx.metrics().incr(counter);
                            let err = Message::Error {
                                code: ErrorCode::TableFull,
                                data: xid.to_be_bytes().to_vec(),
                            };
                            self.reply(ctx, ci, &err, xid);
                        }
                        AddOutcome::Added => self.note_flow_mod_applied(ctx, now, xid),
                        AddOutcome::Evicted(victims) => {
                            self.note_flow_mod_applied(ctx, now, xid);
                            for victim in victims {
                                self.stats.evictions_reported += 1;
                                {
                                    let rec = ctx.recorder();
                                    if rec.is_enabled() {
                                        if let Some(trace) = rec.xid_trace(xid) {
                                            rec.record(
                                                now,
                                                trace,
                                                TraceEvent::FlowEvicted {
                                                    dpid: self.dp.dpid,
                                                    table_id,
                                                    cookie: victim.spec.cookie,
                                                },
                                            );
                                        }
                                    }
                                }
                                let note = Message::FlowRemoved {
                                    table_id,
                                    priority: victim.spec.priority,
                                    cookie: victim.spec.cookie,
                                    reason: zen_proto::RemovedReason::Eviction,
                                    packets: victim.packets,
                                    bytes: victim.bytes,
                                };
                                self.send_master(ctx, &note);
                            }
                        }
                    }
                    return;
                }
                self.note_flow_mod_applied(ctx, now, xid);
                match cmd {
                    FlowModCmd::Add(_) => unreachable!("handled above"),
                    FlowModCmd::DeleteStrict { priority, matcher } => {
                        if let Some(entry) =
                            self.dp.delete_flow_strict(table_id, priority, &matcher)
                        {
                            let note = Message::FlowRemoved {
                                table_id,
                                priority: entry.spec.priority,
                                cookie: entry.spec.cookie,
                                reason: zen_proto::RemovedReason::Delete,
                                packets: entry.packets,
                                bytes: entry.bytes,
                            };
                            self.send_to(ctx, ci, &note);
                        }
                    }
                    FlowModCmd::DeleteByCookie { cookie } => {
                        for (tid, entry) in self.dp.delete_flows_by_cookie(cookie) {
                            let note = Message::FlowRemoved {
                                table_id: tid,
                                priority: entry.spec.priority,
                                cookie: entry.spec.cookie,
                                reason: zen_proto::RemovedReason::Delete,
                                packets: entry.packets,
                                bytes: entry.bytes,
                            };
                            self.send_to(ctx, ci, &note);
                        }
                    }
                }
            }
            Message::GroupMod { group_id, cmd } => {
                self.generation += 1;
                self.note_applied(xid);
                match cmd {
                    GroupModCmd::Add(desc) => self.dp.groups.add(group_id, desc),
                    GroupModCmd::Delete => {
                        self.dp.groups.remove(group_id);
                    }
                }
            }
            Message::MeterMod { meter_id, cmd } => {
                self.generation += 1;
                self.note_applied(xid);
                match cmd {
                    MeterModCmd::Add {
                        rate_bps,
                        burst_bytes,
                    } => self.dp.set_meter(meter_id, rate_bps, burst_bytes),
                    MeterModCmd::Delete => {
                        self.dp.remove_meter(meter_id);
                    }
                }
            }
            Message::BarrierRequest { xids } => {
                // Messages apply synchronously here, so ordering holds
                // by construction — but on a lossy channel the fence
                // must also say *which* of the covered mods arrived.
                let applied: Vec<u32> = xids
                    .iter()
                    .copied()
                    .filter(|x| self.applied_xids.contains(x))
                    .collect();
                self.reply(ctx, ci, &Message::BarrierReply { applied }, xid);
            }
            Message::ResyncRequest => {
                self.send_resync(ctx, ci);
            }
            Message::StatsRequest { kind } => {
                let body = self.collect_stats(ctx, kind);
                self.reply(ctx, ci, &Message::StatsReply { body }, xid);
            }
            // Symmetric / controller-bound messages are ignored here.
            _ => {}
        }
    }

    /// The bookkeeping shared by every flow-mod that took effect: it
    /// counts, bumps the state generation, becomes barrier-ackable, and
    /// is traced. Refused adds must never reach this.
    fn note_flow_mod_applied(&mut self, ctx: &mut Context<'_>, now: u64, xid: u32) {
        self.stats.flow_mods += 1;
        self.generation += 1;
        self.note_applied(xid);
        let rec = ctx.recorder();
        if rec.is_enabled() {
            if let Some(trace) = rec.xid_trace(xid) {
                rec.record(
                    now,
                    trace,
                    TraceEvent::FlowModApplied {
                        dpid: self.dp.dpid,
                        xid,
                    },
                );
            }
        }
    }

    fn collect_stats(&self, ctx: &Context<'_>, kind: StatsKind) -> StatsBody {
        match kind {
            StatsKind::Flow { table_id } => {
                let tables: Vec<u8> = if table_id == 0xff {
                    (0..self.dp.table_count() as u8).collect()
                } else {
                    vec![table_id.min(self.dp.table_count() as u8 - 1)]
                };
                let mut records = Vec::new();
                for tid in tables {
                    for entry in self.dp.table(tid).entries() {
                        records.push(zen_proto::FlowStats {
                            table_id: tid,
                            priority: entry.spec.priority,
                            cookie: entry.spec.cookie,
                            packets: entry.packets,
                            bytes: entry.bytes,
                        });
                    }
                }
                StatsBody::Flow(records)
            }
            StatsKind::Port { port_no } => {
                let ports: Vec<PortNo> = if port_no == 0 {
                    ctx.ports()
                } else {
                    vec![port_no]
                };
                StatsBody::Port(
                    ports
                        .into_iter()
                        .map(|p| {
                            let s = self.dp.port_stats(p);
                            zen_proto::PortStatsRec {
                                port_no: p,
                                rx_frames: s.rx_frames,
                                rx_bytes: s.rx_bytes,
                                tx_frames: s.tx_frames,
                                tx_bytes: s.tx_bytes,
                            }
                        })
                        .collect(),
                )
            }
            StatsKind::Table => StatsBody::Table(
                (0..self.dp.table_count() as u8)
                    .map(|tid| {
                        let t = self.dp.table(tid);
                        zen_proto::TableStats {
                            table_id: tid,
                            active: t.len() as u32,
                            max_entries: t.max_entries().unwrap_or(0) as u32,
                            hits: t.hits,
                            misses: t.misses,
                            evictions: t.evictions,
                            refusals: t.refusals,
                        }
                    })
                    .collect(),
            ),
            StatsKind::Cache => {
                let s = self.dp.cache_stats();
                StatsBody::Cache(zen_proto::CacheStatsRec {
                    micro_hits: s.micro_hits,
                    mega_hits: s.mega_hits,
                    misses: s.misses,
                    inserts: s.inserts,
                    invalidations: s.invalidations,
                    micro_evictions: s.micro_evictions,
                    mega_evictions: s.mega_evictions,
                    generation: self.dp.cache_generation(),
                    entries: self.dp.cache_len() as u64,
                })
            }
        }
    }
}

impl Node for SwitchAgent {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        // Share the world's flight recorder with the embedded datapath
        // so cache-tier, group, and meter events carry trace ids.
        self.dp.set_recorder(ctx.recorder().clone());
        for port in ctx.ports() {
            self.dp.add_port(port);
            if !ctx.port_up(port) {
                self.dp.set_port_up(port, false);
            }
        }
        self.send_all(
            ctx,
            &Message::Hello {
                version: zen_proto::VERSION,
            },
        );
        ctx.set_timer(self.cfg.expire_interval, TIMER_EXPIRE);
        ctx.set_timer(self.cfg.echo_interval, TIMER_ECHO);
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, port: PortNo, frame: &[u8]) {
        let now = ctx.now().as_nanos();
        let effects = self.dp.process(now, port, frame);
        self.run_effects(ctx, effects);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        if token == TIMER_EXPIRE {
            let removed = self.dp.expire(ctx.now().as_nanos());
            for (table_id, entry, reason) in removed {
                let note = Message::FlowRemoved {
                    table_id,
                    priority: entry.spec.priority,
                    cookie: entry.spec.cookie,
                    reason: reason.into(),
                    packets: entry.packets,
                    bytes: entry.bytes,
                };
                self.send_master(ctx, &note);
            }
            ctx.set_timer(self.cfg.expire_interval, TIMER_EXPIRE);
        } else if token == TIMER_ECHO {
            // Judge each session by probes still unanswered on it, then
            // probe every controller again. Only receipt of a message
            // from that controller (any message, not just an echo
            // reply) restores its connection to `Connected`.
            for ci in 0..self.conns.len() {
                if self.conns[ci].outstanding >= self.cfg.miss_limit {
                    self.conns[ci].state = ConnState::Disconnected;
                } else if self.conns[ci].outstanding > 0
                    && self.conns[ci].state == ConnState::Connected
                {
                    self.conns[ci].state = ConnState::Degraded;
                }
                self.echo_token += 1;
                self.stats.echo_sent += 1;
                self.conns[ci].outstanding += 1;
                let probe = Message::EchoRequest {
                    token: self.echo_token,
                };
                self.send_to(ctx, ci, &probe);
            }
            ctx.set_timer(self.cfg.echo_interval, TIMER_ECHO);
        }
    }

    fn on_control(&mut self, ctx: &mut Context<'_>, from: NodeId, bytes: &[u8]) {
        // Frames from nodes that are not our controllers are ignored —
        // an agent only speaks to the replicas it was homed to.
        let Some(ci) = self.conns.iter().position(|c| c.node == from) else {
            return;
        };
        self.note_controller_alive(ctx, ci);
        let mut at = 0;
        while at < bytes.len() {
            match decode_view(&bytes[at..]) {
                Ok((view, xid, consumed)) => {
                    at += consumed;
                    match view {
                        // Hot path: inject straight from the receive
                        // buffer, no owned copy of the frame.
                        MessageView::PacketOut {
                            in_port,
                            actions,
                            frame,
                        } => {
                            self.stats.packet_outs += 1;
                            let now = ctx.now().as_nanos();
                            let effects = self.dp.inject(now, in_port, &actions, frame);
                            self.run_effects(ctx, effects);
                        }
                        other => self.handle_message(ctx, ci, other.into_message(), xid),
                    }
                }
                Err(e) if e.is_truncated() && at > 0 => break,
                Err(_) => {
                    self.stats.decode_errors += 1;
                    break;
                }
            }
        }
    }

    fn on_link_status(&mut self, ctx: &mut Context<'_>, port: PortNo, up: bool) {
        self.dp.set_port_up(port, up);
        let msg = Message::PortStatus {
            port: PortDesc { port_no: port, up },
        };
        self.send_all(ctx, &msg);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
