//! The switch agent: a simulator node that embeds a [`Datapath`] and
//! speaks `zen-proto` to the controller.
//!
//! This is the software running *on* the switch in a deployed SDN — the
//! part of Open vSwitch that terminates the OpenFlow session: it
//! registers local ports, punts table misses as PACKET_IN, applies
//! FLOW_MOD / GROUP_MOD / METER_MOD, executes PACKET_OUT, answers
//! BARRIER and STATS, and reports PORT_STATUS and FLOW_REMOVED.

use std::any::Any;

use zen_dataplane::{Datapath, DatapathId, Effect, MissPolicy, PortNo};
use zen_proto::{
    decode, encode, CodecError, ErrorCode, FlowModCmd, GroupModCmd, Message, MeterModCmd, PortDesc,
    StatsBody, StatsKind,
};
use zen_sim::{Context, Duration, Node, NodeId};

const TIMER_EXPIRE: u64 = 1;
const TIMER_ECHO: u64 = 2;

/// Agent counters, read by experiments.
#[derive(Debug, Default, Clone, Copy)]
pub struct AgentStats {
    /// PACKET_INs sent to the controller.
    pub packet_ins: u64,
    /// FLOW_MODs applied.
    pub flow_mods: u64,
    /// PACKET_OUTs executed.
    pub packet_outs: u64,
    /// Protocol decode errors.
    pub decode_errors: u64,
    /// ECHO_REQUESTs sent to the controller (liveness probes).
    pub echo_sent: u64,
    /// ECHO_REPLYs received from the controller.
    pub echo_replies: u64,
}

/// The switch-side control agent.
pub struct SwitchAgent {
    /// The embedded forwarding plane.
    pub dp: Datapath,
    controller: NodeId,
    expire_interval: Duration,
    echo_interval: Duration,
    echo_token: u64,
    xid: u32,
    /// Counters.
    pub stats: AgentStats,
}

impl SwitchAgent {
    /// An agent for a switch with `dpid`, `n_tables` tables, punting
    /// misses (truncated to 2 KiB) to `controller`.
    pub fn new(dpid: DatapathId, n_tables: usize, controller: NodeId) -> SwitchAgent {
        SwitchAgent {
            dp: Datapath::new(dpid, n_tables, MissPolicy::ToController { max_len: 2048 }),
            controller,
            expire_interval: Duration::from_millis(10),
            echo_interval: Duration::from_millis(50),
            echo_token: 0,
            xid: 1,
            stats: AgentStats::default(),
        }
    }

    fn send(&mut self, ctx: &mut Context<'_>, msg: &Message) {
        let xid = self.xid;
        self.xid += 1;
        ctx.send_control(self.controller, encode(msg, xid));
    }

    fn send_with_xid(&mut self, ctx: &mut Context<'_>, msg: &Message, xid: u32) {
        ctx.send_control(self.controller, encode(msg, xid));
    }

    fn port_descs(&self, ctx: &Context<'_>) -> Vec<PortDesc> {
        ctx.ports()
            .into_iter()
            .map(|p| PortDesc {
                port_no: p,
                up: ctx.port_up(p),
            })
            .collect()
    }

    fn run_effects(&mut self, ctx: &mut Context<'_>, effects: Vec<Effect>) {
        for effect in effects {
            match effect {
                Effect::Output { port, frame } => {
                    if self.dp.port_up(port) {
                        ctx.transmit(port, frame);
                    }
                }
                Effect::ToController {
                    reason,
                    in_port,
                    frame,
                    table_id,
                } => {
                    self.stats.packet_ins += 1;
                    let msg = Message::PacketIn {
                        in_port,
                        table_id,
                        is_miss: reason == zen_dataplane::datapath::PacketInReason::NoMatch,
                        frame,
                    };
                    self.send(ctx, &msg);
                }
            }
        }
    }

    fn handle_message(&mut self, ctx: &mut Context<'_>, msg: Message, xid: u32) {
        let now = ctx.now().as_nanos();
        match msg {
            Message::Hello { .. } => {
                // Each side sends HELLO exactly once (ours went out at
                // start); answering here would ping-pong forever.
            }
            Message::EchoRequest { token } => {
                self.send_with_xid(ctx, &Message::EchoReply { token }, xid);
            }
            Message::EchoReply { .. } => {
                self.stats.echo_replies += 1;
            }
            Message::FeaturesRequest => {
                let reply = Message::FeaturesReply {
                    dpid: self.dp.dpid,
                    n_tables: self.dp.table_count() as u8,
                    ports: self.port_descs(ctx),
                };
                self.send_with_xid(ctx, &reply, xid);
            }
            Message::PacketOut {
                in_port,
                actions,
                frame,
            } => {
                self.stats.packet_outs += 1;
                let effects = self.dp.inject(now, in_port, &actions, &frame);
                self.run_effects(ctx, effects);
            }
            Message::FlowMod { table_id, cmd } => {
                if usize::from(table_id) >= self.dp.table_count()
                    && !matches!(cmd, FlowModCmd::DeleteByCookie { .. })
                {
                    let err = Message::Error {
                        code: ErrorCode::BadRequest,
                        data: vec![table_id],
                    };
                    self.send_with_xid(ctx, &err, xid);
                    return;
                }
                self.stats.flow_mods += 1;
                match cmd {
                    FlowModCmd::Add(spec) => self.dp.add_flow(table_id, spec, now),
                    FlowModCmd::DeleteStrict { priority, matcher } => {
                        if let Some(entry) =
                            self.dp.delete_flow_strict(table_id, priority, &matcher)
                        {
                            let note = Message::FlowRemoved {
                                table_id,
                                priority: entry.spec.priority,
                                cookie: entry.spec.cookie,
                                reason: zen_proto::RemovedReason::Delete,
                                packets: entry.packets,
                                bytes: entry.bytes,
                            };
                            self.send(ctx, &note);
                        }
                    }
                    FlowModCmd::DeleteByCookie { cookie } => {
                        for (tid, entry) in self.dp.delete_flows_by_cookie(cookie) {
                            let note = Message::FlowRemoved {
                                table_id: tid,
                                priority: entry.spec.priority,
                                cookie: entry.spec.cookie,
                                reason: zen_proto::RemovedReason::Delete,
                                packets: entry.packets,
                                bytes: entry.bytes,
                            };
                            self.send(ctx, &note);
                        }
                    }
                }
            }
            Message::GroupMod { group_id, cmd } => match cmd {
                GroupModCmd::Add(desc) => self.dp.groups.add(group_id, desc),
                GroupModCmd::Delete => {
                    self.dp.groups.remove(group_id);
                }
            },
            Message::MeterMod { meter_id, cmd } => match cmd {
                MeterModCmd::Add {
                    rate_bps,
                    burst_bytes,
                } => self.dp.set_meter(meter_id, rate_bps, burst_bytes),
                MeterModCmd::Delete => {
                    self.dp.remove_meter(meter_id);
                }
            },
            Message::BarrierRequest => {
                // The simulator applies messages synchronously, so the
                // fence holds by construction; acknowledge it.
                self.send_with_xid(ctx, &Message::BarrierReply, xid);
            }
            Message::StatsRequest { kind } => {
                let body = self.collect_stats(ctx, kind);
                self.send_with_xid(ctx, &Message::StatsReply { body }, xid);
            }
            // Symmetric / controller-bound messages are ignored here.
            _ => {}
        }
    }

    fn collect_stats(&self, ctx: &Context<'_>, kind: StatsKind) -> StatsBody {
        match kind {
            StatsKind::Flow { table_id } => {
                let tables: Vec<u8> = if table_id == 0xff {
                    (0..self.dp.table_count() as u8).collect()
                } else {
                    vec![table_id.min(self.dp.table_count() as u8 - 1)]
                };
                let mut records = Vec::new();
                for tid in tables {
                    for entry in self.dp.table(tid).entries() {
                        records.push(zen_proto::FlowStats {
                            table_id: tid,
                            priority: entry.spec.priority,
                            cookie: entry.spec.cookie,
                            packets: entry.packets,
                            bytes: entry.bytes,
                        });
                    }
                }
                StatsBody::Flow(records)
            }
            StatsKind::Port { port_no } => {
                let ports: Vec<PortNo> = if port_no == 0 {
                    ctx.ports()
                } else {
                    vec![port_no]
                };
                StatsBody::Port(
                    ports
                        .into_iter()
                        .map(|p| {
                            let s = self.dp.port_stats(p);
                            zen_proto::PortStatsRec {
                                port_no: p,
                                rx_frames: s.rx_frames,
                                rx_bytes: s.rx_bytes,
                                tx_frames: s.tx_frames,
                                tx_bytes: s.tx_bytes,
                            }
                        })
                        .collect(),
                )
            }
            StatsKind::Table => StatsBody::Table(
                (0..self.dp.table_count() as u8)
                    .map(|tid| {
                        let t = self.dp.table(tid);
                        zen_proto::TableStats {
                            table_id: tid,
                            active: t.len() as u32,
                            hits: t.hits,
                            misses: t.misses,
                        }
                    })
                    .collect(),
            ),
            StatsKind::Cache => {
                let s = self.dp.cache_stats();
                StatsBody::Cache(zen_proto::CacheStatsRec {
                    micro_hits: s.micro_hits,
                    mega_hits: s.mega_hits,
                    misses: s.misses,
                    inserts: s.inserts,
                    invalidations: s.invalidations,
                    evictions: s.evictions,
                    generation: self.dp.cache_generation(),
                    entries: self.dp.cache_len() as u64,
                })
            }
        }
    }
}

impl Node for SwitchAgent {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        for port in ctx.ports() {
            self.dp.add_port(port);
            if !ctx.port_up(port) {
                self.dp.set_port_up(port, false);
            }
        }
        self.send(
            ctx,
            &Message::Hello {
                version: zen_proto::VERSION,
            },
        );
        ctx.set_timer(self.expire_interval, TIMER_EXPIRE);
        ctx.set_timer(self.echo_interval, TIMER_ECHO);
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, port: PortNo, frame: &[u8]) {
        let now = ctx.now().as_nanos();
        let effects = self.dp.process(now, port, frame);
        self.run_effects(ctx, effects);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        if token == TIMER_EXPIRE {
            let removed = self.dp.expire(ctx.now().as_nanos());
            for (table_id, entry, reason) in removed {
                let note = Message::FlowRemoved {
                    table_id,
                    priority: entry.spec.priority,
                    cookie: entry.spec.cookie,
                    reason: reason.into(),
                    packets: entry.packets,
                    bytes: entry.bytes,
                };
                self.send(ctx, &note);
            }
            ctx.set_timer(self.expire_interval, TIMER_EXPIRE);
        } else if token == TIMER_ECHO {
            self.echo_token += 1;
            self.stats.echo_sent += 1;
            let probe = Message::EchoRequest {
                token: self.echo_token,
            };
            self.send(ctx, &probe);
            ctx.set_timer(self.echo_interval, TIMER_ECHO);
        }
    }

    fn on_control(&mut self, ctx: &mut Context<'_>, _from: NodeId, bytes: &[u8]) {
        let mut at = 0;
        while at < bytes.len() {
            match decode(&bytes[at..]) {
                Ok((msg, xid, consumed)) => {
                    at += consumed;
                    self.handle_message(ctx, msg, xid);
                }
                Err(CodecError::Truncated) if at > 0 => break,
                Err(_) => {
                    self.stats.decode_errors += 1;
                    break;
                }
            }
        }
    }

    fn on_link_status(&mut self, ctx: &mut Context<'_>, port: PortNo, up: bool) {
        self.dp.set_port_up(port, up);
        let msg = Message::PortStatus {
            port: PortDesc { port_no: port, up },
        };
        self.send(ctx, &msg);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
